//! Radiation-hardening demonstration: identical SEU sequences against
//! unprotected, TMR, and EDAC memories (the mechanisms the paper credits
//! NG-ULTRA with providing transparently), plus a configuration-bitstream
//! attack caught by per-frame CRC.
//!
//! ```sh
//! cargo run --example rad_campaign
//! ```

use hermes::core::accelerator::AcceleratorFlow;
use hermes::rad::campaign::{bitstream_campaign, Campaign, Protection};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== HERMES radiation campaign ==\n");
    let words = 4096;
    println!("memory: {words} x 32-bit words, 400 upsets, scrub every 2000 cycles\n");
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>10} {:>9}",
        "protection", "silent", "detected", "corrected", "overhead", "scrubs"
    );
    for protection in [Protection::None, Protection::Tmr, Protection::Edac] {
        let r = Campaign::new(words, 0xC0FFEE)
            .upsets(400)
            .scrub_interval(Some(2000))
            .run(protection);
        println!(
            "{:<12} {:>8} {:>10} {:>10} {:>9}% {:>9}",
            format!("{:?}", r.protection),
            r.silent_corruptions,
            r.detected_uncorrectable,
            r.corrected,
            r.storage_overhead_pct,
            r.scrub_passes,
        );
    }

    println!("\nscrub-interval sweep (TMR, 2000 upsets on 512 words):");
    println!("{:>12} {:>8}", "interval", "silent");
    for interval in [None, Some(50_000u64), Some(5_000), Some(500), Some(50)] {
        let r = Campaign::new(512, 0xBEEF)
            .upsets(2000)
            .scrub_interval(interval)
            .run(Protection::Tmr);
        println!(
            "{:>12} {:>8}",
            interval.map(|i| i.to_string()).unwrap_or_else(|| "never".into()),
            r.silent_corruptions
        );
    }

    println!("\nconfiguration-memory attack (eFPGA bitstream):");
    let artifact = AcceleratorFlow::new()
        .build("int f(int a, int b) { return a * b + 7; }")?;
    let r = bitstream_campaign(&artifact.bitstream, 64, 0x5EED);
    println!(
        "  {} upsets -> {} corrupted frames detected by CRC, {} undetected",
        r.upsets, r.detected_frames, r.undetected_frames
    );
    assert_eq!(r.undetected_frames, 0);
    Ok(())
}
