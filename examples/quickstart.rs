//! Quickstart: C kernel → HLS → simulation → Verilog → FPGA bitstream.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hermes::core::accelerator::AcceleratorFlow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The kernel a software developer writes: no HDL knowledge needed.
    let source = r#"
        int dot3(int ax, int ay, int az, int bx, int by, int bz) {
            return ax * bx + ay * by + az * bz;
        }
    "#;

    println!("== HERMES quickstart: C to bitstream ==\n");
    let artifact = AcceleratorFlow::new().clock_ns(10.0).build(source)?;

    // 1. functional check via cycle-accurate co-simulation
    let r = artifact.design.simulate(&[1, 2, 3, 4, 5, 6])?;
    println!(
        "simulate dot3(1,2,3, 4,5,6) = {:?} in {} cycles",
        r.return_value, r.cycles
    );
    assert_eq!(r.return_value, Some(32));

    // 2. the HLS report (Fig. 2 artifacts)
    println!("\n{}", artifact.design.report());

    // 3. the implementation report (Fig. 3 artifacts)
    println!("\n{}", artifact.flow_report.render());

    // 4. generated HDL (first lines)
    let verilog_head: String = artifact
        .verilog
        .lines()
        .take(8)
        .collect::<Vec<_>>()
        .join("\n");
    println!("\ngenerated Verilog (head):\n{verilog_head}\n...");

    // 5. the bitstream BL1 would program into the eFPGA
    artifact.bitstream.verify()?;
    println!(
        "\nbitstream: {} frames, {} bytes, CRC-verified OK",
        artifact.bitstream.frames.len(),
        artifact.bitstream.size_bytes()
    );

    // 6. the NXmap backend script Bambu-style integration hands over
    let device = hermes::fpga::device::DeviceProfile::ng_medium_like();
    println!("\nNXmap backend script:\n{}", artifact.nxmap_script(&device));

    // 7. the Eucalyptus characterization library the scheduler consumed
    //    (saved as XML, as the paper describes)
    let lib = hermes::eucalyptus::Eucalyptus::new(device)
        .with_kinds(vec![hermes::rtl::component::ComponentKind::Adder])
        .characterize(&hermes::eucalyptus::SweepConfig {
            widths: vec![32],
            pipeline_stages: vec![0, 1],
        })?;
    let path = std::env::temp_dir().join("hermes_quickstart_lib.xml");
    lib.save(&path)?;
    println!("characterization library written to {}:", path.display());
    println!("{}", lib.to_xml());
    std::fs::remove_file(&path).ok();
    Ok(())
}
