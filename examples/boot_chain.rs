//! Boot-chain use case (Section IV / Fig. 5): BL0 → BL1 → application,
//! from flash (TMR-protected, with injected corruption) and from
//! SpaceWire, printing the BL1 boot reports.
//!
//! ```sh
//! cargo run --example boot_chain
//! ```

use hermes::boot::bl1::{Bl1, BootSource};
use hermes::boot::flash::{FlashImageBuilder, RedundancyMode};
use hermes::boot::loadlist::LoadList;
use hermes::cpu::isa::assemble;
use hermes::cpu::memmap::layout;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== HERMES boot chain: BL0 -> BL1 -> BL2 ==\n");

    // The application: writes a banner to the UART, computes a checksum of
    // its own load-list-deployed data, and halts.
    let app = assemble(&format!(
        r#"
        lui  r10, {uart_hi}       ; uart base
        addi r1, r0, 66           ; 'B'
        sb   r1, (r10)
        addi r1, r0, 76           ; 'L'
        sb   r1, (r10)
        addi r1, r0, 50           ; '2'
        sb   r1, (r10)
        lui  r2, {data_hi}        ; deployed data
        addi r2, r2, 0x100
        addi r3, r0, 8            ; words
        addi r4, r0, 0            ; sum
    loop:
        lw   r5, (r2)
        add  r4, r4, r5
        addi r2, r2, 4
        addi r3, r3, -1
        bne  r3, r0, loop
        halt
        "#,
        uart_hi = layout::UART_TX >> 16,
        data_hi = layout::SRAM_BASE >> 16,
    ))?;

    let payload: Vec<u8> = (1u32..=8).flat_map(|v| v.to_le_bytes()).collect();

    let build = |mode| {
        let mut b = FlashImageBuilder::new();
        let e1 = b.add_data(layout::SRAM_BASE + 0x100, &payload);
        let e2 = b.add_software(layout::DDR_BASE, layout::DDR_BASE, &app);
        let list = LoadList {
            entries: vec![e1, e2],
        };
        b.build(&list, mode)
    };

    // 1. clean flash boot
    println!("--- clean flash boot (TMR) ---");
    let mut bl1 = Bl1::new(BootSource::Flash(build(RedundancyMode::Tmr)));
    let out = bl1.boot()?;
    print!("{}", out.report.render());
    println!("UART: {:?}", String::from_utf8_lossy(out.cluster.bus.uart_output()));
    println!("checksum register r4 = {} (expect 36)\n", out.cluster.core(0).reg(4));
    assert_eq!(out.cluster.core(0).reg(4), 36);

    // 2. boot with one flash copy riddled with upsets: TMR repairs
    println!("--- flash boot with 200 upsets in copy 1 (TMR) ---");
    let mut flash = build(RedundancyMode::Tmr);
    for i in 0..200u32 {
        flash.flip_bit(1, 0x2_0000 + i * 7, (i % 8) as u8);
    }
    let mut bl1 = Bl1::new(BootSource::Flash(flash));
    let out = bl1.boot()?;
    println!(
        "boot {} with {} bytes voted back to health; app checksum = {}\n",
        if out.report.success { "SUCCEEDED" } else { "FAILED" },
        out.report.flash_corrected_bytes,
        out.cluster.core(0).reg(4)
    );
    assert_eq!(out.cluster.core(0).reg(4), 36);

    // 3. the same mission booted over SpaceWire
    println!("--- remote SpaceWire boot ---");
    let mut b = FlashImageBuilder::new();
    let e1 = b.add_data(layout::SRAM_BASE + 0x100, &payload);
    let e2 = b.add_software(layout::DDR_BASE, layout::DDR_BASE, &app);
    let list = LoadList {
        entries: vec![e1, e2],
    };
    let flash = b.build(&list, RedundancyMode::Tmr);
    let link = BootSource::spacewire_from_flash(flash, &list)?;
    let mut bl1 = Bl1::new(BootSource::SpaceWire(link));
    let out = bl1.boot()?;
    print!("{}", out.report.render());
    println!("UART: {:?}", String::from_utf8_lossy(out.cluster.bus.uart_output()));
    assert_eq!(out.cluster.core(0).reg(4), 36);
    Ok(())
}
