//! Hypervisor use case (Section V): AOCS + VBN + EOR partitions under the
//! XtratuM-NG analogue, with inter-partition ports and a misbehaving
//! partition contained by the health monitor.
//!
//! ```sh
//! cargo run --example partitioned_aocs
//! ```

use hermes::apps::aocs::{AocsState, AocsTask, ONE};
use hermes::apps::eor::EorTask;
use hermes::apps::vbn::VbnTask;
use hermes::xng::config::{
    Channel, PartitionConfig, Plan, PortConfig, PortDirection, PortKind, Slot, XngConfig,
};
use hermes::xng::hypervisor::Hypervisor;
use hermes::xng::partition::native_task;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== HERMES partitioned mission: AOCS / VBN / EOR ==\n");
    let mut cfg = XngConfig::new("selene-like");

    let aocs = cfg.add_partition(
        PartitionConfig::new("aocs")
            .system()
            .with_port(PortConfig {
                name: "att".into(),
                direction: PortDirection::Source,
                kind: PortKind::Sampling,
            }),
    );
    let vbn = cfg.add_partition(
        PartitionConfig::new("vbn")
            .with_port(PortConfig {
                name: "frames".into(),
                direction: PortDirection::Destination,
                kind: PortKind::Queuing { depth: 8 },
            })
            .with_port(PortConfig {
                name: "nav".into(),
                direction: PortDirection::Source,
                kind: PortKind::Sampling,
            }),
    );
    let eor = cfg.add_partition(PartitionConfig::new("eor").with_port(PortConfig {
        name: "orbit".into(),
        direction: PortDirection::Source,
        kind: PortKind::Sampling,
    }));
    let monitor = cfg.add_partition(
        PartitionConfig::new("monitor")
            .with_port(PortConfig {
                name: "att_in".into(),
                direction: PortDirection::Destination,
                kind: PortKind::Sampling,
            })
            .with_port(PortConfig {
                name: "nav_in".into(),
                direction: PortDirection::Destination,
                kind: PortKind::Sampling,
            })
            .with_port(PortConfig {
                name: "orbit_in".into(),
                direction: PortDirection::Destination,
                kind: PortKind::Sampling,
            }),
    );
    let rogue = cfg.add_partition(PartitionConfig::new("rogue"));

    cfg.add_channel(Channel {
        source: (aocs, "att".into()),
        destinations: vec![(monitor, "att_in".into())],
        max_message: 32,
    });
    cfg.add_channel(Channel {
        source: (vbn, "nav".into()),
        destinations: vec![(monitor, "nav_in".into())],
        max_message: 16,
    });
    cfg.add_channel(Channel {
        source: (eor, "orbit".into()),
        destinations: vec![(monitor, "orbit_in".into())],
        max_message: 16,
    });

    // core 0: control-heavy partitions; core 1: payload; the rogue shares
    // core 1 and keeps crashing.
    cfg.set_plan(
        0,
        Plan::new(vec![Slot::new(aocs, 20_000), Slot::new(eor, 10_000)]),
    );
    cfg.set_plan(
        1,
        Plan::new(vec![
            Slot::new(vbn, 20_000),
            Slot::new(rogue, 5_000),
            Slot::new(monitor, 5_000),
        ]),
    );

    let mut hv = Hypervisor::new(cfg)?;
    hv.attach_native(
        aocs,
        Box::new(AocsTask::new(AocsState::tumbling([ONE / 4, -ONE / 8, ONE / 16]))),
    )?;
    hv.attach_native(vbn, Box::new(VbnTask::new(32, 32)))?;
    hv.attach_native(eor, Box::new(EorTask::gto_to_geo()))?;
    hv.attach_native(
        monitor,
        native_task("monitor", |ctx| {
            let mut line = String::new();
            if let Ok(Some((att, age))) = ctx.read_sampling("att_in") {
                let w = i32::from_le_bytes([att[0], att[1], att[2], att[3]]);
                line.push_str(&format!("qw={:.3} (age {age}) ", w as f64 / 65536.0));
            }
            if let Ok(Some((orb, _))) = ctx.read_sampling("orbit_in") {
                let r = i32::from_le_bytes([orb[0], orb[1], orb[2], orb[3]]);
                line.push_str(&format!("r={r} km"));
            }
            if !line.is_empty() {
                ctx.trace(line);
            }
            ctx.consume(500);
            Ok(())
        }),
    )?;
    hv.attach_native(rogue, native_task("rogue", |_| Err("segfault".into())))?;

    // feed the VBN partition camera frames (environment injection)
    for i in 0..4u32 {
        let mut msg = Vec::new();
        msg.extend_from_slice(&(5 + i * 3).to_le_bytes());
        msg.extend_from_slice(&(7 + i * 2).to_le_bytes());
        hv.ports_mut().inject(vbn, "frames", &msg, 0)?;
    }

    hv.run(400_000)?;

    println!("partition statistics after {} cycles:", hv.time());
    for (name, pid) in [
        ("aocs", aocs),
        ("vbn", vbn),
        ("eor", eor),
        ("monitor", monitor),
        ("rogue", rogue),
    ] {
        let s = hv.stats(pid);
        println!(
            "  {name:<8} activations {:>4}  cpu {:>8} cy  traps {:>2}  restarts {:>2}",
            s.activations, s.cpu_cycles, s.traps, s.restarts
        );
    }
    println!("\nhealth monitor log (first 5):");
    for e in hv.health().log().iter().take(5) {
        println!("  {e}");
    }
    println!("\nmonitor partition trace (last 5):");
    for line in hv.trace(monitor).iter().rev().take(5).rev() {
        println!("  {line}");
    }

    let rogue_stats = hv.stats(rogue);
    let aocs_stats = hv.stats(aocs);
    assert!(rogue_stats.restarts > 0, "rogue was restarted");
    assert!(
        aocs_stats.activations > 10,
        "AOCS schedule unaffected by the rogue partition"
    );
    println!("\nisolation holds: rogue restarted {} times, AOCS ran {} slots on time",
        rogue_stats.restarts, aocs_stats.activations);
    Ok(())
}
