//! Scheduling-mode changes (XtratuM plan switching): a system partition
//! monitors the health log and commands a switch from the nominal plan to
//! a degraded safe-mode plan when a payload partition keeps failing.
//!
//! ```sh
//! cargo run --release --example mode_change
//! ```

use hermes::cpu::cluster::CORE_COUNT;
use hermes::xng::config::{PartitionConfig, Plan, Slot, XngConfig};
use hermes::xng::hypervisor::Hypervisor;
use hermes::xng::partition::native_task;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== HERMES mode change: nominal -> safe ==\n");
    let mut cfg = XngConfig::new("mode-demo");
    let payload = cfg.add_partition(PartitionConfig::new("payload"));
    let aocs = cfg.add_partition(PartitionConfig::new("aocs").system());
    let safeguard = cfg.add_partition(PartitionConfig::new("safeguard").system());

    // nominal: payload gets most of core 0; safeguard supervises on core 1
    cfg.set_plan(
        0,
        Plan::new(vec![Slot::new(payload, 8_000), Slot::new(aocs, 2_000)]),
    );
    cfg.set_plan(1, Plan::new(vec![Slot::new(safeguard, 5_000)]));

    // safe mode: payload is descheduled entirely; AOCS gets the core
    let mut safe_plans = vec![Plan::default(); CORE_COUNT];
    safe_plans[0] = Plan::new(vec![Slot::new(aocs, 10_000)]);
    safe_plans[1] = Plan::new(vec![Slot::new(safeguard, 5_000)]);
    let safe_mode = cfg.add_mode("safe", safe_plans);

    let mut hv = Hypervisor::new(cfg)?;
    // the payload starts failing after a few activations (latch-up-like)
    let counter = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&counter);
    hv.attach_native(
        payload,
        native_task("payload", move |ctx| {
            let n = c2.fetch_add(1, Ordering::Relaxed);
            ctx.consume(4_000);
            if n >= 3 {
                Err("sensor interface latch-up".into())
            } else {
                Ok(())
            }
        }),
    )?;
    hv.attach_native(aocs, native_task("aocs", |ctx| {
        ctx.consume(1_500);
        Ok(())
    }))?;
    hv.attach_native(safeguard, native_task("safeguard", |ctx| {
        ctx.consume(200);
        Ok(())
    }))?;

    // supervision loop: the embedder (ground software model) watches the
    // health log and commands the mode change after repeated failures
    let mut commanded = false;
    for _ in 0..40 {
        hv.run(5_000)?;
        let traps = hv.stats(payload).traps;
        if !commanded && traps >= 3 {
            println!(
                "t={}: payload failed {traps} times -> commanding SAFE mode",
                hv.time()
            );
            hv.request_mode_change(safe_mode)?;
            commanded = true;
        }
    }

    println!("\nfinal state at t={}:", hv.time());
    println!("  active mode        : {:?}", hv.current_mode());
    println!("  mode changes       : {}", hv.mode_changes);
    for (name, pid) in [("payload", payload), ("aocs", aocs), ("safeguard", safeguard)] {
        let s = hv.stats(pid);
        println!(
            "  {name:<10} activations {:>3}  traps {:>2}  restarts {:>2}",
            s.activations, s.traps, s.restarts
        );
    }
    println!("\nhealth log (tail):");
    for e in hv.health().log().iter().rev().take(3).rev() {
        println!("  {e}");
    }

    assert_eq!(hv.current_mode(), Some(safe_mode));
    let payload_after = hv.stats(payload).activations;
    hv.run(50_000)?;
    assert_eq!(
        hv.stats(payload).activations,
        payload_after,
        "payload is descheduled in safe mode"
    );
    assert!(hv.stats(aocs).activations > 10, "AOCS keeps flying");
    println!("\nsafe mode holds: payload descheduled, AOCS uninterrupted.");
    Ok(())
}
