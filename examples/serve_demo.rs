//! Serve demo: compile a C kernel, front it with the deadline-aware
//! serving runtime, and push it past saturation — with the full
//! observability stack watching: causal request traces, an exact
//! critical-path profile, and a burn-rate SLO.
//!
//! ```sh
//! cargo run --example serve_demo
//! ```
//!
//! The runtime admits an open-loop stream of requests (two priority
//! classes, four tenants), coalesces compatible requests into batches,
//! dispatches them over a pool of simulated accelerator instances, and
//! sheds what it cannot serve by deadline — every offered request ends in
//! exactly one accounted verdict. A chaos plan then kills one instance
//! mid-batch and the in-flight work is re-queued, not lost. Each admitted
//! request carries a minted `TraceCtx`, so afterwards the deterministic
//! profiler can decompose every served request's latency into segments
//! that sum to it *exactly*, and a deadline-hit SLO judges the run on
//! multi-window burn rates over the simulated clock.

use hermes::chaos::plan::{FaultPlan, FaultPlanConfig};
use hermes::hls::HlsFlow;
use hermes::obs::profile::profile;
use hermes::obs::slo::{SloEngine, SloObjective, SloSpec};
use hermes::obs::Recorder;
use hermes::serve::engine::{ServeConfig, ServeEngine};
use hermes::serve::model::AcceleratorModel;
use hermes::serve::workload::{self, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== HERMES serve demo: C kernel to serving runtime ==\n");

    // 1. the accelerator: a C kernel through the HLS flow; its service
    //    time is measured from one cycle-accurate co-simulation and its
    //    DMA cost from one AXI round trip
    let design = HlsFlow::new()
        .compile("int poly(int x) { return (3 * x + 1) * x + 7; }")?;
    let model = AcceleratorModel::from_design(design, &[11], 16)?.with_measured_dma(8);
    println!(
        "model `{}`: per-item {} ticks, DMA {} ticks, batch overhead {}\n",
        model.name, model.per_item, model.dma_per_item, model.batch_overhead
    );

    // 2. an open-loop workload past the pool's capacity
    let wl = WorkloadConfig {
        requests: 300,
        mean_interarrival: model.service_cycles(1) / 5,
        payload_words: 1,
        ..WorkloadConfig::default()
    };
    let arrivals = workload::generate(7, &wl);
    let span = arrivals.last().expect("non-empty").arrival;

    // 3. serve it with the observability stack attached — a flight
    //    recorder tracing every admitted request (sample 1000‰; dial
    //    down via `trace_sample_permille` or `HERMES_TRACE_SAMPLE` to
    //    bound the cost), a deadline-hit SLO judged on short and long
    //    burn-rate windows, and a chaos campaign killing pool instances
    //    mid-batch
    let rec = Recorder::new().with_capacity(1 << 14);
    let slo = SloEngine::new(vec![SloSpec::new(
        "deadline-hit",
        SloObjective::DeadlineHitRatio { min_permille: 950 },
        (span / 4).max(8),
    )]);
    let plan = FaultPlan::generate(3, &FaultPlanConfig::pool_only(span, 2, 1, span as u32 / 6, 2));
    let cfg = ServeConfig { trace_sample_permille: 1000, ..ServeConfig::default() };
    let mut engine = ServeEngine::new(cfg, model, arrivals)
        .with_recorder(rec)
        .with_slo(slo)
        .with_chaos(plan);
    let report = engine.run();
    println!("{}", report.render());

    // 4. the contract: every offered request has exactly one verdict
    assert!(report.accounted(), "accounting invariant");
    assert_eq!(engine.verdicts().len() as u64, report.offered);
    println!(
        "accounted: {} served + {} shed + {} rejected == {} offered",
        report.served,
        report.shed(),
        report.rejected(),
        report.offered
    );

    // 5. the profiler replays the recorder post-hoc: every served
    //    request's queue-wait / batch / service / DMA / stall segments
    //    must sum to its latency exactly, and self-time ranks the hot
    //    spans
    let prof = profile(&engine.recorder().snapshot());
    let (exact, total) = prof.exact_paths("request");
    assert_eq!(exact, total, "critical-path segments must sum to latency");
    println!("\ncritical paths: {exact}/{total} exact; hottest spans by self-time:");
    for s in prof.hot(3) {
        println!("  {}:{} x{} self {} ticks", s.subsystem, s.name, s.count, s.self_time);
    }

    // 6. the SLO verdict: deadline-hit judges *resolved admissions*, and
    //    queue-full rejections are excluded — bounded admission turns
    //    overload away at the front door, so what the engine does accept
    //    it serves on time and the alert stays green (E17a shows the
    //    paging side, where shedding turns systemic past 150% load)
    let slo = engine.slo().expect("slo attached");
    let (name, state) = slo.worst_states()[0];
    println!("\nSLO `{name}`: {} ({} verdicts)", state.as_str(), slo.verdicts().len());
    Ok(())
}
