//! Serve demo: compile a C kernel, front it with the deadline-aware
//! serving runtime, and push it past saturation.
//!
//! ```sh
//! cargo run --example serve_demo
//! ```
//!
//! The runtime admits an open-loop stream of requests (two priority
//! classes, four tenants), coalesces compatible requests into batches,
//! dispatches them over a pool of simulated accelerator instances, and
//! sheds what it cannot serve by deadline — every offered request ends in
//! exactly one accounted verdict. A chaos plan then kills one instance
//! mid-batch and the in-flight work is re-queued, not lost.

use hermes::chaos::plan::{FaultPlan, FaultPlanConfig};
use hermes::hls::HlsFlow;
use hermes::serve::engine::{ServeConfig, ServeEngine};
use hermes::serve::model::AcceleratorModel;
use hermes::serve::workload::{self, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== HERMES serve demo: C kernel to serving runtime ==\n");

    // 1. the accelerator: a C kernel through the HLS flow; its service
    //    time is measured from one cycle-accurate co-simulation and its
    //    DMA cost from one AXI round trip
    let design = HlsFlow::new()
        .compile("int poly(int x) { return (3 * x + 1) * x + 7; }")?;
    let model = AcceleratorModel::from_design(design, &[11], 16)?.with_measured_dma(8);
    println!(
        "model `{}`: per-item {} ticks, DMA {} ticks, batch overhead {}\n",
        model.name, model.per_item, model.dma_per_item, model.batch_overhead
    );

    // 2. an open-loop workload past the pool's capacity
    let wl = WorkloadConfig {
        requests: 300,
        mean_interarrival: model.service_cycles(1) / 5,
        payload_words: 1,
        ..WorkloadConfig::default()
    };
    let arrivals = workload::generate(7, &wl);
    let span = arrivals.last().expect("non-empty").arrival;

    // 3. serve it, with a chaos campaign killing pool instances mid-batch
    let plan = FaultPlan::generate(3, &FaultPlanConfig::pool_only(span, 2, 1, span as u32 / 6, 2));
    let mut engine = ServeEngine::new(ServeConfig::default(), model, arrivals).with_chaos(plan);
    let report = engine.run();
    println!("{}", report.render());

    // 4. the contract: every offered request has exactly one verdict
    assert!(report.accounted(), "accounting invariant");
    assert_eq!(engine.verdicts().len() as u64, report.offered);
    println!(
        "accounted: {} served + {} shed + {} rejected == {} offered",
        report.served,
        report.shed(),
        report.rejected(),
        report.offered
    );
    Ok(())
}
