//! Cross-crate integration tests: the full ecosystem paths a HERMES user
//! exercises, spanning HLS, FPGA implementation, boot, hypervisor, and the
//! use-case applications.

use hermes::apps::aocs::{AocsState, AocsTask, ONE};
use hermes::apps::vbn::VbnTask;
use hermes::boot::flash::RedundancyMode;
use hermes::core::accelerator::AcceleratorFlow;
use hermes::core::mission::MissionBuilder;
use hermes::cpu::memmap::layout;
use hermes::hls::HlsFlow;
use hermes::rtl::sim::Simulator;
use hermes::xng::config::{
    Channel, PartitionConfig, Plan, PortConfig, PortDirection, PortKind, Slot, XngConfig,
};
use hermes::xng::hypervisor::Hypervisor;
use hermes::xng::partition::native_task;

/// C source → HLS → FPGA bitstream → flash → BL1 boot → eFPGA programmed
/// and the companion application executed: the complete Fig. 2 + Fig. 3 +
/// Fig. 5 chain in one test.
#[test]
fn c_source_to_booted_mission() {
    let artifact = AcceleratorFlow::new()
        .build(
            "int checksum(int a, int b, int c) { return (a ^ b) + (b ^ c) + (a % (c + 1)); }",
        )
        .expect("accelerator flow");
    // the HLS design is functionally correct
    let sim = artifact.design.simulate(&[10, 20, 30]).expect("simulate");
    assert_eq!(sim.return_value, Some((10 ^ 20) + (20 ^ 30) + 10)); // 10 % 31 == 10

    let outcome = MissionBuilder::new()
        .redundancy(RedundancyMode::Tmr)
        .with_bitstream(&artifact.bitstream)
        .with_application_asm(layout::DDR_BASE, 0, "addi r1, r0, 55\nhalt")
        .expect("assembles")
        .boot()
        .expect("boots");
    assert!(outcome.report.success);
    assert_eq!(outcome.bitstreams[0].design_name, "checksum");
    outcome.bitstreams[0].verify().expect("bitstream intact");
    assert_eq!(outcome.cluster.core(0).reg(1), 55);
}

/// HLS co-simulation vs structural netlist simulation on a nontrivial
/// control-flow kernel — values and latency must agree exactly.
#[test]
fn hls_vs_netlist_simulation_agree() {
    let src = r#"
        int collatz_steps(int n) {
            int steps = 0;
            while (n != 1 && steps < 200) {
                if ((n & 1) == 1) { n = 3 * n + 1; } else { n = n / 2; }
                steps += 1;
            }
            return steps;
        }
    "#;
    let design = HlsFlow::new().compile(src).expect("compiles");
    for n in [1i64, 6, 7, 27] {
        let expect = design.simulate(&[n]).expect("co-sim");
        let mut sim = Simulator::new(design.netlist()).expect("netlist valid");
        sim.reset();
        sim.poke("arg_n", n as u64).expect("arg port exists");
        let cycles = sim
            .run_until(expect.states_visited * 3 + 64, |s| {
                s.peek("done").expect("done net") == 1
            })
            .expect("sim runs")
            .expect("finishes");
        assert_eq!(
            sim.peek("ret_q").expect("ret net"),
            expect.return_value.expect("non-void") as u64,
            "collatz({n})"
        );
        assert_eq!(cycles, expect.states_visited, "latency for n={n}");
    }
}

/// A partitioned mission where a guest assembly partition feeds data to a
/// native monitoring partition through a queuing port.
#[test]
fn guest_to_native_port_flow() {
    let mut cfg = XngConfig::new("flow");
    let producer = cfg.add_partition(
        PartitionConfig::new("producer")
            .with_memory(hermes::xng::config::MemRegion {
                base: layout::SRAM_BASE,
                size: 0x1000,
                writable: true,
            })
            .with_port(PortConfig {
                name: "data".into(),
                direction: PortDirection::Source,
                kind: PortKind::Queuing { depth: 16 },
            }),
    );
    let consumer = cfg.add_partition(PartitionConfig::new("consumer").with_port(PortConfig {
        name: "data_in".into(),
        direction: PortDirection::Destination,
        kind: PortKind::Queuing { depth: 16 },
    }));
    cfg.add_channel(Channel {
        source: (producer, "data".into()),
        destinations: vec![(consumer, "data_in".into())],
        max_message: 8,
    });
    cfg.set_plan(
        0,
        Plan::new(vec![Slot::new(producer, 4_000), Slot::new(consumer, 4_000)]),
    );
    let mut hv = Hypervisor::new(cfg).expect("config");
    // guest: send 1, 2, 3, ... on queuing port 0, yielding between sends
    let prog = hermes::cpu::isa::assemble(
        r#"
        addi r3, r0, 0
        addi r1, r0, 0      ; port index
    loop:
        addi r3, r3, 1
        add  r2, r0, r3     ; payload
        ecall 0x05          ; send queuing
        ecall 0x08          ; yield
        jal  r0, loop
        "#,
    )
    .expect("assembles");
    hv.attach_guest(producer, layout::SRAM_BASE, vec![(layout::SRAM_BASE, prog)])
        .expect("attach guest");
    hv.attach_native(
        consumer,
        native_task("consumer", move |ctx| {
            while let Ok(Some(msg)) = ctx.read_queuing("data_in") {
                let v = u32::from_le_bytes([msg[0], msg[1], msg[2], msg[3]]);
                ctx.trace(format!("got {v}"));
            }
            ctx.consume(200);
            Ok(())
        }),
    )
    .expect("attach native");
    hv.run(60_000).expect("run");
    let trace = hv.trace(consumer);
    assert!(
        trace.len() >= 3,
        "consumer should have received several messages: {trace:?}"
    );
    assert_eq!(trace[0], "got 1");
    assert_eq!(trace[1], "got 2");
}

/// The full SELENE-like mission of the paper's Section V hypervisor
/// evaluation: AOCS detumbles while VBN processes injected frames, on a
/// two-core plan.
#[test]
fn aocs_vbn_mission_converges() {
    let mut cfg = XngConfig::new("selene");
    let aocs = cfg.add_partition(PartitionConfig::new("aocs").with_port(PortConfig {
        name: "att".into(),
        direction: PortDirection::Source,
        kind: PortKind::Sampling,
    }));
    let vbn = cfg.add_partition(
        PartitionConfig::new("vbn")
            .with_port(PortConfig {
                name: "frames".into(),
                direction: PortDirection::Destination,
                kind: PortKind::Queuing { depth: 8 },
            })
            .with_port(PortConfig {
                name: "nav".into(),
                direction: PortDirection::Source,
                kind: PortKind::Sampling,
            }),
    );
    let sink = cfg.add_partition(
        PartitionConfig::new("sink")
            .with_port(PortConfig {
                name: "att_in".into(),
                direction: PortDirection::Destination,
                kind: PortKind::Sampling,
            })
            .with_port(PortConfig {
                name: "nav_in".into(),
                direction: PortDirection::Destination,
                kind: PortKind::Sampling,
            }),
    );
    cfg.add_channel(Channel {
        source: (aocs, "att".into()),
        destinations: vec![(sink, "att_in".into())],
        max_message: 32,
    });
    cfg.add_channel(Channel {
        source: (vbn, "nav".into()),
        destinations: vec![(sink, "nav_in".into())],
        max_message: 16,
    });
    cfg.set_plan(0, Plan::new(vec![Slot::new(aocs, 10_000)]));
    cfg.set_plan(1, Plan::new(vec![Slot::new(vbn, 10_000), Slot::new(sink, 2_000)]));

    let mut hv = Hypervisor::new(cfg).expect("config");
    hv.attach_native(
        aocs,
        Box::new(AocsTask::new(AocsState::tumbling([ONE / 5, -ONE / 9, ONE / 12]))),
    )
    .expect("attach aocs");
    hv.attach_native(vbn, Box::new(VbnTask::new(16, 16))).expect("attach vbn");
    hv.attach_native(sink, native_task("sink", |ctx| {
        ctx.consume(100);
        Ok(())
    }))
    .expect("attach sink");

    // inject a frame descriptor for the VBN partition
    let mut msg = Vec::new();
    msg.extend_from_slice(&9u32.to_le_bytes());
    msg.extend_from_slice(&4u32.to_le_bytes());
    hv.ports_mut().inject(vbn, "frames", &msg, 0).expect("inject");

    hv.run(2_000_000).expect("run");

    // AOCS published attitude; quaternion w close to 1.0 after detumbling
    let (att, _age) = hv
        .ports_mut()
        .read_sampling(sink, "att_in", 0)
        .expect("port exists")
        .expect("attitude published");
    let w = i32::from_le_bytes([att[0], att[1], att[2], att[3]]);
    assert!(
        (f64::from(w) / 65536.0) > 0.97,
        "attitude should settle near identity, qw = {}",
        f64::from(w) / 65536.0
    );
    // VBN published the centroid of the injected frame (blob at 9,4)
    let (nav, _) = hv
        .ports_mut()
        .read_sampling(sink, "nav_in", 0)
        .expect("port exists")
        .expect("centroid published");
    let cx = i32::from_le_bytes([nav[0], nav[1], nav[2], nav[3]]);
    let cy = i32::from_le_bytes([nav[4], nav[5], nav[6], nav[7]]);
    assert!((cx - (9 << 8)).abs() < 192, "cx = {}", f64::from(cx) / 256.0);
    assert!((cy - (4 << 8)).abs() < 192, "cy = {}", f64::from(cy) / 256.0);
    assert!(!hv.is_system_halted());
}

/// An HLS accelerator for a use-case kernel is implemented on both device
/// generations; the modern one must close timing roughly 2x higher.
#[test]
fn device_generation_speed_claim() {
    use hermes::fpga::device::DeviceProfile;
    use hermes::fpga::flow::{FlowOptions, NxFlow};
    let design = HlsFlow::new()
        .unroll_limit(0)
        .compile(hermes::apps::sdr::FIR_SOURCE)
        .expect("compiles");
    let run = |dev: DeviceProfile| {
        NxFlow::new(
            dev,
            FlowOptions {
                effort: hermes::fpga::place::Effort::Zero,
                ..FlowOptions::default()
            },
        )
        .run(design.netlist())
        .expect("implements")
        .timing
        .fmax_mhz
    };
    let modern = run(DeviceProfile::ng_medium_like());
    let legacy = run(DeviceProfile::legacy_radhard_like());
    let ratio = modern / legacy;
    assert!(
        (1.7..=2.3).contains(&ratio),
        "28nm vs 65nm speed ratio should be ~2x, got {ratio:.2}"
    );
}
