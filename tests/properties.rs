//! Property-based tests over the ecosystem's core invariants (proptest).

use hermes::axi::master::AxiMaster;
use hermes::axi::memory::MemoryTiming;
use hermes::axi::testbench::AxiTestbench;
use hermes::fpga::bitstream::crc32;
use hermes::hls::HlsFlow;
use hermes::rad::edac;
use hermes::rad::tmr::TmrWord;
use hermes::rtl::sim::Simulator;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CRC-32 detects any single-bit corruption of any payload.
    #[test]
    fn crc32_detects_single_bitflips(
        mut data in proptest::collection::vec(any::<u8>(), 1..256),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let clean = crc32(&data);
        let idx = pos % data.len();
        data[idx] ^= 1 << bit;
        prop_assert_ne!(clean, crc32(&data));
    }

    /// SECDED corrects any single-bit error on any data word, at any code
    /// position.
    #[test]
    fn edac_corrects_any_single_error(data in any::<u32>(), bit in 0u32..edac::CODE_BITS) {
        let code = edac::encode(data) ^ (1u64 << bit);
        match edac::decode(code) {
            edac::Decode::Corrected(v) => prop_assert_eq!(v, data),
            other => prop_assert!(false, "expected correction, got {:?}", other),
        }
    }

    /// SECDED never silently miscorrects a double-bit error.
    #[test]
    fn edac_flags_any_double_error(
        data in any::<u32>(),
        b1 in 0u32..edac::CODE_BITS,
        b2 in 0u32..edac::CODE_BITS,
    ) {
        prop_assume!(b1 != b2);
        let code = edac::encode(data) ^ (1u64 << b1) ^ (1u64 << b2);
        prop_assert_eq!(edac::decode(code), edac::Decode::DoubleError);
    }

    /// TMR masks any set of upsets confined to one copy.
    #[test]
    fn tmr_masks_single_copy_damage(
        value in any::<u32>(),
        copy in 0usize..3,
        bits in proptest::collection::vec(0u32..32, 1..8),
    ) {
        let mut w = TmrWord::new(value);
        for b in bits {
            w.flip_bit(copy, b);
        }
        prop_assert_eq!(w.read(), value);
    }

    /// The AXI master's burst plans cover exactly the requested bytes, with
    /// every burst legal (the constructor validates 4K crossings etc.).
    #[test]
    fn axi_plans_cover_request(addr in 0u64..1_000_000, len in 1usize..5000) {
        let mut m = AxiMaster::new(8);
        let plans = m.plan_read(addr, len).expect("plan is legal");
        let total: usize = plans.iter().map(|p| p.take).sum();
        prop_assert_eq!(total, len);
        // chunks are contiguous
        let mut cursor = addr;
        for p in &plans {
            let start = p.burst.beat_addr(0) + p.skip as u64;
            prop_assert_eq!(start, cursor);
            cursor += p.take as u64;
        }
    }

    /// Bus-level writes followed by reads return the written data for any
    /// alignment and length.
    #[test]
    fn axi_memory_roundtrip(
        addr in 0u64..3000,
        data in proptest::collection::vec(any::<u8>(), 1..300),
    ) {
        let mut tb = AxiTestbench::new(8192, MemoryTiming::ideal());
        tb.write_blocking(addr, &data).expect("write");
        let (back, _) = tb.read_blocking(addr, data.len()).expect("read");
        prop_assert_eq!(back, data);
        prop_assert!(tb.violations().is_empty());
    }

    /// The load-list binary format round-trips arbitrary entries and
    /// detects any single-bit corruption.
    #[test]
    fn loadlist_roundtrip_and_integrity(
        offsets in proptest::collection::vec(any::<u32>(), 0..6),
        flip_pos in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        use hermes::boot::loadlist::{ImageKind, LoadEntry, LoadList};
        let list = LoadList {
            entries: offsets
                .iter()
                .enumerate()
                .map(|(i, &o)| LoadEntry {
                    kind: if i % 2 == 0 { ImageKind::Software } else { ImageKind::Bitstream },
                    offset: o,
                    size: o.wrapping_mul(3),
                    dest: o ^ 0xFFFF,
                    entry: o.wrapping_add(1),
                    core: (i % 4) as u8,
                    crc: o.wrapping_mul(7),
                })
                .collect(),
        };
        let bytes = list.to_bytes();
        prop_assert_eq!(LoadList::from_bytes(&bytes).expect("parses"), list);
        let mut corrupt = bytes.clone();
        let idx = flip_pos % corrupt.len();
        corrupt[idx] ^= 1 << flip_bit;
        // any flip must either fail to parse or parse to different content
        // (the manifest CRC makes silent acceptance impossible)
        if let Ok(parsed) = LoadList::from_bytes(&corrupt) {
            prop_assert!(parsed != LoadList::from_bytes(&bytes).expect("parses"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For randomized straight-line integer expressions, the HLS
    /// co-simulation, the structural-netlist simulation, and the C-like
    /// reference semantics all agree.
    #[test]
    fn hls_netlist_reference_agree(
        a in -1000i64..1000,
        b in -1000i64..1000,
        c1 in 1i64..64,
        op_sel in 0usize..5,
    ) {
        let (op, reference): (&str, fn(i64, i64, i64) -> i64) = match op_sel {
            0 => ("+", |a, b, c| (a + b + c) as i32 as i64),
            1 => ("-", |a, b, c| (a - b - c) as i32 as i64),
            2 => ("*", |a, b, c| ((a * b) as i32 as i64 * c) as i32 as i64),
            3 => ("&", |a, b, c| a & b & c),
            _ => ("^", |a, b, c| a ^ b ^ c),
        };
        let src = format!("int f(int a, int b) {{ return (a {op} b) {op} {c1}; }}");
        let design = HlsFlow::new().compile(&src).expect("compiles");
        let sim = design.simulate(&[a, b]).expect("simulates");
        let want = reference(a, b, c1);
        prop_assert_eq!(sim.return_value, Some(want), "co-sim for {}", src);
        // structural netlist agrees
        let mut ns = Simulator::new(design.netlist()).expect("valid");
        ns.reset();
        ns.poke("arg_a", a as u64).expect("a");
        ns.poke("arg_b", b as u64).expect("b");
        ns.run_until(sim.states_visited * 3 + 32, |s| s.peek("done").expect("done") == 1)
            .expect("runs")
            .expect("finishes");
        prop_assert_eq!(
            ns.peek("ret_q").expect("ret"),
            (want as u64) & 0xFFFF_FFFF,
            "netlist for {}", src
        );
    }

    /// Scheduling under a minimal allocation never runs faster than under
    /// the default allocation, and both compute the same values.
    #[test]
    fn allocation_monotonicity(x in 0i64..500, y in 1i64..500) {
        use hermes::hls::allocate::Allocation;
        let src = "int f(int a, int b) {
            return a * b + (a - b) * (a + b) + a * 3 + b * 5; }";
        let fast = HlsFlow::new().compile(src).expect("compiles");
        let slow = HlsFlow::new()
            .allocation(Allocation::minimal())
            .compile(src)
            .expect("compiles");
        let rf = fast.simulate(&[x, y]).expect("fast sim");
        let rs = slow.simulate(&[x, y]).expect("slow sim");
        prop_assert_eq!(rf.return_value, rs.return_value);
        prop_assert!(rs.cycles >= rf.cycles);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Assembler/disassembler agreement: every assembled instruction
    /// decodes back to text that re-assembles to the same word.
    #[test]
    fn isa_reassembly_fixpoint(
        rd in 0u8..16,
        rs1 in 0u8..16,
        rs2 in 0u8..16,
        imm in -500i32..500,
    ) {
        use hermes::cpu::isa::{assemble, disassemble};
        let programs = [
            format!("add r{rd}, r{rs1}, r{rs2}"),
            format!("addi r{rd}, r{rs1}, {imm}"),
            format!("lw r{rd}, {imm}(r{rs1})"),
            format!("sw r{rd}, {imm}(r{rs1})"),
        ];
        for p in &programs {
            let w1 = assemble(p).expect("assembles")[0];
            let text = disassemble(w1);
            let w2 = assemble(&text).expect("reassembles")[0];
            prop_assert_eq!(w1, w2, "fixpoint for `{}` -> `{}`", p, text);
        }
    }

    /// The cyclic plan locator always returns an in-range slot whose offset
    /// is within the slot duration.
    #[test]
    fn plan_locate_in_range(
        durations in proptest::collection::vec(1u64..10_000, 1..8),
        time in any::<u64>(),
    ) {
        use hermes::xng::config::{Plan, Slot};
        use hermes::xng::PartitionId;
        let plan = Plan::new(
            durations
                .iter()
                .enumerate()
                .map(|(i, &d)| Slot::new(PartitionId(i as u32), d))
                .collect(),
        );
        let (idx, off) = plan.locate(time % (plan.major_frame() * 3)).expect("nonempty plan");
        prop_assert!(idx < durations.len());
        prop_assert!(off < durations[idx]);
    }
}
