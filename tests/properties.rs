//! Property-based tests over the ecosystem's core invariants, driven by
//! the repo's deterministic seeded PRNG (`DetRng`) so the suite stays
//! hermetic — no external dependencies, byte-identical runs.

use hermes::axi::master::AxiMaster;
use hermes::axi::memory::MemoryTiming;
use hermes::axi::testbench::AxiTestbench;
use hermes::fpga::bitstream::crc32;
use hermes::hls::HlsFlow;
use hermes::rad::edac;
use hermes::rad::tmr::TmrWord;
use hermes::rtl::rng::DetRng;
use hermes::rtl::sim::Simulator;

/// CRC-32 detects any single-bit corruption of any payload.
#[test]
fn crc32_detects_single_bitflips() {
    let mut rng = DetRng::new(0xC2C1);
    for _ in 0..64 {
        let len = rng.range_u64(1, 256) as usize;
        let mut data = rng.bytes(len);
        let clean = crc32(&data);
        let idx = rng.below(data.len() as u64) as usize;
        let bit = rng.below(8) as u8;
        data[idx] ^= 1 << bit;
        assert_ne!(clean, crc32(&data));
    }
}

/// SECDED corrects any single-bit error on any data word, at any code
/// position.
#[test]
fn edac_corrects_any_single_error() {
    let mut rng = DetRng::new(0xC2C2);
    for _ in 0..64 {
        let data = rng.next_u32();
        let bit = rng.below(u64::from(edac::CODE_BITS)) as u32;
        let code = edac::encode(data) ^ (1u64 << bit);
        match edac::decode(code) {
            edac::Decode::Corrected(v) => assert_eq!(v, data),
            other => panic!("expected correction, got {other:?}"),
        }
    }
}

/// SECDED never silently miscorrects a double-bit error.
#[test]
fn edac_flags_any_double_error() {
    let mut rng = DetRng::new(0xC2C3);
    for _ in 0..64 {
        let data = rng.next_u32();
        let b1 = rng.below(u64::from(edac::CODE_BITS)) as u32;
        let b2 = rng.below(u64::from(edac::CODE_BITS)) as u32;
        if b1 == b2 {
            continue;
        }
        let code = edac::encode(data) ^ (1u64 << b1) ^ (1u64 << b2);
        assert_eq!(edac::decode(code), edac::Decode::DoubleError);
    }
}

/// TMR masks any set of upsets confined to one copy.
#[test]
fn tmr_masks_single_copy_damage() {
    let mut rng = DetRng::new(0xC2C4);
    for _ in 0..64 {
        let value = rng.next_u32();
        let copy = rng.below(3) as usize;
        let mut w = TmrWord::new(value);
        for _ in 0..rng.range_u64(1, 8) {
            w.flip_bit(copy, rng.below(32) as u32);
        }
        assert_eq!(w.read(), value);
    }
}

/// The AXI master's burst plans cover exactly the requested bytes, with
/// every burst legal (the constructor validates 4K crossings etc.).
#[test]
fn axi_plans_cover_request() {
    let mut rng = DetRng::new(0xC2C5);
    for _ in 0..64 {
        let addr = rng.below(1_000_000);
        let len = rng.range_u64(1, 5000) as usize;
        let mut m = AxiMaster::new(8);
        let plans = m.plan_read(addr, len).expect("plan is legal");
        let total: usize = plans.iter().map(|p| p.take).sum();
        assert_eq!(total, len);
        // chunks are contiguous
        let mut cursor = addr;
        for p in &plans {
            let start = p.burst.beat_addr(0) + p.skip as u64;
            assert_eq!(start, cursor);
            cursor += p.take as u64;
        }
    }
}

/// Bus-level writes followed by reads return the written data for any
/// alignment and length.
#[test]
fn axi_memory_roundtrip() {
    let mut rng = DetRng::new(0xC2C6);
    for _ in 0..64 {
        let addr = rng.below(3000);
        let len = rng.range_u64(1, 300) as usize;
        let data = rng.bytes(len);
        let mut tb = AxiTestbench::new(8192, MemoryTiming::ideal());
        tb.write_blocking(addr, &data).expect("write");
        let (back, _) = tb.read_blocking(addr, data.len()).expect("read");
        assert_eq!(back, data);
        assert!(tb.violations().is_empty());
    }
}

/// The load-list binary format round-trips arbitrary entries and
/// detects any single-bit corruption.
#[test]
fn loadlist_roundtrip_and_integrity() {
    use hermes::boot::loadlist::{ImageKind, LoadEntry, LoadList};
    let mut rng = DetRng::new(0xC2C7);
    for _ in 0..64 {
        let offsets: Vec<u32> = (0..rng.below(6)).map(|_| rng.next_u32()).collect();
        let list = LoadList {
            entries: offsets
                .iter()
                .enumerate()
                .map(|(i, &o)| LoadEntry {
                    kind: if i % 2 == 0 {
                        ImageKind::Software
                    } else {
                        ImageKind::Bitstream
                    },
                    offset: o,
                    size: o.wrapping_mul(3),
                    dest: o ^ 0xFFFF,
                    entry: o.wrapping_add(1),
                    core: (i % 4) as u8,
                    crc: o.wrapping_mul(7),
                })
                .collect(),
        };
        let bytes = list.to_bytes();
        assert_eq!(LoadList::from_bytes(&bytes).expect("parses"), list);
        let mut corrupt = bytes.clone();
        let idx = rng.below(corrupt.len() as u64) as usize;
        corrupt[idx] ^= 1 << (rng.below(8) as u8);
        // any flip must either fail to parse or parse to different content
        // (the manifest CRC makes silent acceptance impossible)
        if let Ok(parsed) = LoadList::from_bytes(&corrupt) {
            assert!(parsed != LoadList::from_bytes(&bytes).expect("parses"));
        }
    }
}

/// For randomized straight-line integer expressions, the HLS
/// co-simulation, the structural-netlist simulation, and the C-like
/// reference semantics all agree.
#[test]
fn hls_netlist_reference_agree() {
    type Ref3 = fn(i64, i64, i64) -> i64;
    let mut rng = DetRng::new(0xC2C8);
    for case in 0..12usize {
        let a = rng.range_i64(-1000, 1000);
        let b = rng.range_i64(-1000, 1000);
        let c1 = rng.range_i64(1, 64);
        let op_sel = case % 5;
        let (op, reference): (&str, Ref3) = match op_sel {
            0 => ("+", |a, b, c| (a + b + c) as i32 as i64),
            1 => ("-", |a, b, c| (a - b - c) as i32 as i64),
            2 => ("*", |a, b, c| ((a * b) as i32 as i64 * c) as i32 as i64),
            3 => ("&", |a, b, c| a & b & c),
            _ => ("^", |a, b, c| a ^ b ^ c),
        };
        let src = format!("int f(int a, int b) {{ return (a {op} b) {op} {c1}; }}");
        let design = HlsFlow::new().compile(&src).expect("compiles");
        let sim = design.simulate(&[a, b]).expect("simulates");
        let want = reference(a, b, c1);
        assert_eq!(sim.return_value, Some(want), "co-sim for {src}");
        // structural netlist agrees
        let mut ns = Simulator::new(design.netlist()).expect("valid");
        ns.reset();
        ns.poke("arg_a", a as u64).expect("a");
        ns.poke("arg_b", b as u64).expect("b");
        ns.run_until(sim.states_visited * 3 + 32, |s| {
            s.peek("done").expect("done") == 1
        })
        .expect("runs")
        .expect("finishes");
        assert_eq!(
            ns.peek("ret_q").expect("ret"),
            (want as u64) & 0xFFFF_FFFF,
            "netlist for {src}"
        );
    }
}

/// Scheduling under a minimal allocation never runs faster than under
/// the default allocation, and both compute the same values.
#[test]
fn allocation_monotonicity() {
    use hermes::hls::allocate::Allocation;
    let mut rng = DetRng::new(0xC2C9);
    for _ in 0..12 {
        let x = rng.range_i64(0, 500);
        let y = rng.range_i64(1, 500);
        let src = "int f(int a, int b) {
            return a * b + (a - b) * (a + b) + a * 3 + b * 5; }";
        let fast = HlsFlow::new().compile(src).expect("compiles");
        let slow = HlsFlow::new()
            .allocation(Allocation::minimal())
            .compile(src)
            .expect("compiles");
        let rf = fast.simulate(&[x, y]).expect("fast sim");
        let rs = slow.simulate(&[x, y]).expect("slow sim");
        assert_eq!(rf.return_value, rs.return_value);
        assert!(rs.cycles >= rf.cycles);
    }
}

/// Assembler/disassembler agreement: every assembled instruction
/// decodes back to text that re-assembles to the same word.
#[test]
fn isa_reassembly_fixpoint() {
    use hermes::cpu::isa::{assemble, disassemble};
    let mut rng = DetRng::new(0xC2CA);
    for _ in 0..24 {
        let rd = rng.below(16);
        let rs1 = rng.below(16);
        let rs2 = rng.below(16);
        let imm = rng.range_i64(-500, 500);
        let programs = [
            format!("add r{rd}, r{rs1}, r{rs2}"),
            format!("addi r{rd}, r{rs1}, {imm}"),
            format!("lw r{rd}, {imm}(r{rs1})"),
            format!("sw r{rd}, {imm}(r{rs1})"),
        ];
        for p in &programs {
            let w1 = assemble(p).expect("assembles")[0];
            let text = disassemble(w1);
            let w2 = assemble(&text).expect("reassembles")[0];
            assert_eq!(w1, w2, "fixpoint for `{p}` -> `{text}`");
        }
    }
}

/// The cyclic plan locator always returns an in-range slot whose offset
/// is within the slot duration.
#[test]
fn plan_locate_in_range() {
    use hermes::xng::config::{Plan, Slot};
    use hermes::xng::PartitionId;
    let mut rng = DetRng::new(0xC2CB);
    for _ in 0..24 {
        let durations: Vec<u64> = (0..rng.range_u64(1, 8))
            .map(|_| rng.range_u64(1, 10_000))
            .collect();
        let time = rng.next_u64();
        let plan = Plan::new(
            durations
                .iter()
                .enumerate()
                .map(|(i, &d)| Slot::new(PartitionId(i as u32), d))
                .collect(),
        );
        let (idx, off) = plan
            .locate(time % (plan.major_frame() * 3))
            .expect("nonempty plan");
        assert!(idx < durations.len());
        assert!(off < durations[idx]);
    }
}
