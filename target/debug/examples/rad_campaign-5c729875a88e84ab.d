/root/repo/target/debug/examples/rad_campaign-5c729875a88e84ab.d: examples/rad_campaign.rs

/root/repo/target/debug/examples/rad_campaign-5c729875a88e84ab: examples/rad_campaign.rs

examples/rad_campaign.rs:
