/root/repo/target/debug/examples/partitioned_aocs-db6b7fd3d23dfd4c.d: examples/partitioned_aocs.rs

/root/repo/target/debug/examples/partitioned_aocs-db6b7fd3d23dfd4c: examples/partitioned_aocs.rs

examples/partitioned_aocs.rs:
