/root/repo/target/debug/examples/mode_change-9e3ccb80efcfbd8f.d: examples/mode_change.rs

/root/repo/target/debug/examples/mode_change-9e3ccb80efcfbd8f: examples/mode_change.rs

examples/mode_change.rs:
