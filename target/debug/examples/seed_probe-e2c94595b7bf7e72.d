/root/repo/target/debug/examples/seed_probe-e2c94595b7bf7e72.d: crates/rad/examples/seed_probe.rs

/root/repo/target/debug/examples/seed_probe-e2c94595b7bf7e72: crates/rad/examples/seed_probe.rs

crates/rad/examples/seed_probe.rs:
