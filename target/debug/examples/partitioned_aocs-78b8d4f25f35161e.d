/root/repo/target/debug/examples/partitioned_aocs-78b8d4f25f35161e.d: examples/partitioned_aocs.rs Cargo.toml

/root/repo/target/debug/examples/libpartitioned_aocs-78b8d4f25f35161e.rmeta: examples/partitioned_aocs.rs Cargo.toml

examples/partitioned_aocs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
