/root/repo/target/debug/examples/boot_chain-baec1a5f540274f0.d: examples/boot_chain.rs

/root/repo/target/debug/examples/boot_chain-baec1a5f540274f0: examples/boot_chain.rs

examples/boot_chain.rs:
