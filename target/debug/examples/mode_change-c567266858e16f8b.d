/root/repo/target/debug/examples/mode_change-c567266858e16f8b.d: examples/mode_change.rs Cargo.toml

/root/repo/target/debug/examples/libmode_change-c567266858e16f8b.rmeta: examples/mode_change.rs Cargo.toml

examples/mode_change.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
