/root/repo/target/debug/examples/image_pipeline-d743e192d4308b34.d: examples/image_pipeline.rs

/root/repo/target/debug/examples/image_pipeline-d743e192d4308b34: examples/image_pipeline.rs

examples/image_pipeline.rs:
