/root/repo/target/debug/examples/rad_campaign-7689a3f008851445.d: examples/rad_campaign.rs Cargo.toml

/root/repo/target/debug/examples/librad_campaign-7689a3f008851445.rmeta: examples/rad_campaign.rs Cargo.toml

examples/rad_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
