/root/repo/target/debug/examples/boot_chain-7b5dcbcc3b55185d.d: examples/boot_chain.rs Cargo.toml

/root/repo/target/debug/examples/libboot_chain-7b5dcbcc3b55185d.rmeta: examples/boot_chain.rs Cargo.toml

examples/boot_chain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
