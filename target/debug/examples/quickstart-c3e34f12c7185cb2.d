/root/repo/target/debug/examples/quickstart-c3e34f12c7185cb2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c3e34f12c7185cb2: examples/quickstart.rs

examples/quickstart.rs:
