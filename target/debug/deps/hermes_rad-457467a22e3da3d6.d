/root/repo/target/debug/deps/hermes_rad-457467a22e3da3d6.d: crates/rad/src/lib.rs crates/rad/src/campaign.rs crates/rad/src/edac.rs crates/rad/src/scrub.rs crates/rad/src/seu.rs crates/rad/src/tmr.rs

/root/repo/target/debug/deps/hermes_rad-457467a22e3da3d6: crates/rad/src/lib.rs crates/rad/src/campaign.rs crates/rad/src/edac.rs crates/rad/src/scrub.rs crates/rad/src/seu.rs crates/rad/src/tmr.rs

crates/rad/src/lib.rs:
crates/rad/src/campaign.rs:
crates/rad/src/edac.rs:
crates/rad/src/scrub.rs:
crates/rad/src/seu.rs:
crates/rad/src/tmr.rs:
