/root/repo/target/debug/deps/hermes_apps-2d30f97281782ac4.d: crates/apps/src/lib.rs crates/apps/src/ai.rs crates/apps/src/aocs.rs crates/apps/src/eor.rs crates/apps/src/image.rs crates/apps/src/sdr.rs crates/apps/src/vbn.rs

/root/repo/target/debug/deps/libhermes_apps-2d30f97281782ac4.rlib: crates/apps/src/lib.rs crates/apps/src/ai.rs crates/apps/src/aocs.rs crates/apps/src/eor.rs crates/apps/src/image.rs crates/apps/src/sdr.rs crates/apps/src/vbn.rs

/root/repo/target/debug/deps/libhermes_apps-2d30f97281782ac4.rmeta: crates/apps/src/lib.rs crates/apps/src/ai.rs crates/apps/src/aocs.rs crates/apps/src/eor.rs crates/apps/src/image.rs crates/apps/src/sdr.rs crates/apps/src/vbn.rs

crates/apps/src/lib.rs:
crates/apps/src/ai.rs:
crates/apps/src/aocs.rs:
crates/apps/src/eor.rs:
crates/apps/src/image.rs:
crates/apps/src/sdr.rs:
crates/apps/src/vbn.rs:
