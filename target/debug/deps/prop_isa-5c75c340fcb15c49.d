/root/repo/target/debug/deps/prop_isa-5c75c340fcb15c49.d: crates/cpu/tests/prop_isa.rs Cargo.toml

/root/repo/target/debug/deps/libprop_isa-5c75c340fcb15c49.rmeta: crates/cpu/tests/prop_isa.rs Cargo.toml

crates/cpu/tests/prop_isa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
