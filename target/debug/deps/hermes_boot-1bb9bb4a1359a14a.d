/root/repo/target/debug/deps/hermes_boot-1bb9bb4a1359a14a.d: crates/boot/src/lib.rs crates/boot/src/bl0.rs crates/boot/src/bl1.rs crates/boot/src/flash.rs crates/boot/src/loadlist.rs crates/boot/src/report.rs crates/boot/src/spacewire.rs

/root/repo/target/debug/deps/libhermes_boot-1bb9bb4a1359a14a.rlib: crates/boot/src/lib.rs crates/boot/src/bl0.rs crates/boot/src/bl1.rs crates/boot/src/flash.rs crates/boot/src/loadlist.rs crates/boot/src/report.rs crates/boot/src/spacewire.rs

/root/repo/target/debug/deps/libhermes_boot-1bb9bb4a1359a14a.rmeta: crates/boot/src/lib.rs crates/boot/src/bl0.rs crates/boot/src/bl1.rs crates/boot/src/flash.rs crates/boot/src/loadlist.rs crates/boot/src/report.rs crates/boot/src/spacewire.rs

crates/boot/src/lib.rs:
crates/boot/src/bl0.rs:
crates/boot/src/bl1.rs:
crates/boot/src/flash.rs:
crates/boot/src/loadlist.rs:
crates/boot/src/report.rs:
crates/boot/src/spacewire.rs:
