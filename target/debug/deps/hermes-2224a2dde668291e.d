/root/repo/target/debug/deps/hermes-2224a2dde668291e.d: src/lib.rs

/root/repo/target/debug/deps/hermes-2224a2dde668291e: src/lib.rs

src/lib.rs:
