/root/repo/target/debug/deps/hermes_bench-fc5af9891d4a6296.d: crates/bench/src/lib.rs crates/bench/src/e1_hls_flow.rs crates/bench/src/e2_fpga_flow.rs crates/bench/src/e3_characterization.rs crates/bench/src/e4_axi.rs crates/bench/src/e5_hypervisor.rs crates/bench/src/e6_boot.rs crates/bench/src/e7_usecases.rs crates/bench/src/e8_radiation.rs crates/bench/src/e9_dataflow.rs crates/bench/src/e10_chaos.rs crates/bench/src/hdl_check.rs crates/bench/src/kernels.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libhermes_bench-fc5af9891d4a6296.rlib: crates/bench/src/lib.rs crates/bench/src/e1_hls_flow.rs crates/bench/src/e2_fpga_flow.rs crates/bench/src/e3_characterization.rs crates/bench/src/e4_axi.rs crates/bench/src/e5_hypervisor.rs crates/bench/src/e6_boot.rs crates/bench/src/e7_usecases.rs crates/bench/src/e8_radiation.rs crates/bench/src/e9_dataflow.rs crates/bench/src/e10_chaos.rs crates/bench/src/hdl_check.rs crates/bench/src/kernels.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libhermes_bench-fc5af9891d4a6296.rmeta: crates/bench/src/lib.rs crates/bench/src/e1_hls_flow.rs crates/bench/src/e2_fpga_flow.rs crates/bench/src/e3_characterization.rs crates/bench/src/e4_axi.rs crates/bench/src/e5_hypervisor.rs crates/bench/src/e6_boot.rs crates/bench/src/e7_usecases.rs crates/bench/src/e8_radiation.rs crates/bench/src/e9_dataflow.rs crates/bench/src/e10_chaos.rs crates/bench/src/hdl_check.rs crates/bench/src/kernels.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/e1_hls_flow.rs:
crates/bench/src/e2_fpga_flow.rs:
crates/bench/src/e3_characterization.rs:
crates/bench/src/e4_axi.rs:
crates/bench/src/e5_hypervisor.rs:
crates/bench/src/e6_boot.rs:
crates/bench/src/e7_usecases.rs:
crates/bench/src/e8_radiation.rs:
crates/bench/src/e9_dataflow.rs:
crates/bench/src/e10_chaos.rs:
crates/bench/src/hdl_check.rs:
crates/bench/src/kernels.rs:
crates/bench/src/table.rs:
