/root/repo/target/debug/deps/hermes_axi-d6b8f6d99dbac624.d: crates/axi/src/lib.rs crates/axi/src/cache.rs crates/axi/src/checker.rs crates/axi/src/master.rs crates/axi/src/memory.rs crates/axi/src/testbench.rs crates/axi/src/transaction.rs Cargo.toml

/root/repo/target/debug/deps/libhermes_axi-d6b8f6d99dbac624.rmeta: crates/axi/src/lib.rs crates/axi/src/cache.rs crates/axi/src/checker.rs crates/axi/src/master.rs crates/axi/src/memory.rs crates/axi/src/testbench.rs crates/axi/src/transaction.rs Cargo.toml

crates/axi/src/lib.rs:
crates/axi/src/cache.rs:
crates/axi/src/checker.rs:
crates/axi/src/master.rs:
crates/axi/src/memory.rs:
crates/axi/src/testbench.rs:
crates/axi/src/transaction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
