/root/repo/target/debug/deps/hermes_xng-44bac239911a7f2e.d: crates/xng/src/lib.rs crates/xng/src/config.rs crates/xng/src/health.rs crates/xng/src/hypercall.rs crates/xng/src/hypervisor.rs crates/xng/src/partition.rs crates/xng/src/ports.rs Cargo.toml

/root/repo/target/debug/deps/libhermes_xng-44bac239911a7f2e.rmeta: crates/xng/src/lib.rs crates/xng/src/config.rs crates/xng/src/health.rs crates/xng/src/hypercall.rs crates/xng/src/hypervisor.rs crates/xng/src/partition.rs crates/xng/src/ports.rs Cargo.toml

crates/xng/src/lib.rs:
crates/xng/src/config.rs:
crates/xng/src/health.rs:
crates/xng/src/hypercall.rs:
crates/xng/src/hypervisor.rs:
crates/xng/src/partition.rs:
crates/xng/src/ports.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
