/root/repo/target/debug/deps/hermes-50701d3669e361ef.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhermes-50701d3669e361ef.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
