/root/repo/target/debug/deps/hermes_fpga-ce9cfb8dc17afb12.d: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/device.rs crates/fpga/src/flow.rs crates/fpga/src/place.rs crates/fpga/src/primitives.rs crates/fpga/src/route.rs crates/fpga/src/synth.rs crates/fpga/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libhermes_fpga-ce9cfb8dc17afb12.rmeta: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/device.rs crates/fpga/src/flow.rs crates/fpga/src/place.rs crates/fpga/src/primitives.rs crates/fpga/src/route.rs crates/fpga/src/synth.rs crates/fpga/src/timing.rs Cargo.toml

crates/fpga/src/lib.rs:
crates/fpga/src/bitstream.rs:
crates/fpga/src/device.rs:
crates/fpga/src/flow.rs:
crates/fpga/src/place.rs:
crates/fpga/src/primitives.rs:
crates/fpga/src/route.rs:
crates/fpga/src/synth.rs:
crates/fpga/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
