/root/repo/target/debug/deps/hermes-57ded4d20e633d5b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhermes-57ded4d20e633d5b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
