/root/repo/target/debug/deps/hermes_rtl-95b05793cddbc2c9.d: crates/rtl/src/lib.rs crates/rtl/src/component.rs crates/rtl/src/netlist.rs crates/rtl/src/rng.rs crates/rtl/src/sim.rs crates/rtl/src/verilog.rs crates/rtl/src/vhdl.rs Cargo.toml

/root/repo/target/debug/deps/libhermes_rtl-95b05793cddbc2c9.rmeta: crates/rtl/src/lib.rs crates/rtl/src/component.rs crates/rtl/src/netlist.rs crates/rtl/src/rng.rs crates/rtl/src/sim.rs crates/rtl/src/verilog.rs crates/rtl/src/vhdl.rs Cargo.toml

crates/rtl/src/lib.rs:
crates/rtl/src/component.rs:
crates/rtl/src/netlist.rs:
crates/rtl/src/rng.rs:
crates/rtl/src/sim.rs:
crates/rtl/src/verilog.rs:
crates/rtl/src/vhdl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
