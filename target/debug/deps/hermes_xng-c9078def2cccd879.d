/root/repo/target/debug/deps/hermes_xng-c9078def2cccd879.d: crates/xng/src/lib.rs crates/xng/src/config.rs crates/xng/src/health.rs crates/xng/src/hypercall.rs crates/xng/src/hypervisor.rs crates/xng/src/partition.rs crates/xng/src/ports.rs

/root/repo/target/debug/deps/libhermes_xng-c9078def2cccd879.rlib: crates/xng/src/lib.rs crates/xng/src/config.rs crates/xng/src/health.rs crates/xng/src/hypercall.rs crates/xng/src/hypervisor.rs crates/xng/src/partition.rs crates/xng/src/ports.rs

/root/repo/target/debug/deps/libhermes_xng-c9078def2cccd879.rmeta: crates/xng/src/lib.rs crates/xng/src/config.rs crates/xng/src/health.rs crates/xng/src/hypercall.rs crates/xng/src/hypervisor.rs crates/xng/src/partition.rs crates/xng/src/ports.rs

crates/xng/src/lib.rs:
crates/xng/src/config.rs:
crates/xng/src/health.rs:
crates/xng/src/hypercall.rs:
crates/xng/src/hypervisor.rs:
crates/xng/src/partition.rs:
crates/xng/src/ports.rs:
