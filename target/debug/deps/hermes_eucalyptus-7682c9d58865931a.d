/root/repo/target/debug/deps/hermes_eucalyptus-7682c9d58865931a.d: crates/eucalyptus/src/lib.rs crates/eucalyptus/src/library.rs crates/eucalyptus/src/sweep.rs crates/eucalyptus/src/templates.rs

/root/repo/target/debug/deps/hermes_eucalyptus-7682c9d58865931a: crates/eucalyptus/src/lib.rs crates/eucalyptus/src/library.rs crates/eucalyptus/src/sweep.rs crates/eucalyptus/src/templates.rs

crates/eucalyptus/src/lib.rs:
crates/eucalyptus/src/library.rs:
crates/eucalyptus/src/sweep.rs:
crates/eucalyptus/src/templates.rs:
