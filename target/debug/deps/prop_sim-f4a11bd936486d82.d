/root/repo/target/debug/deps/prop_sim-f4a11bd936486d82.d: crates/rtl/tests/prop_sim.rs

/root/repo/target/debug/deps/prop_sim-f4a11bd936486d82: crates/rtl/tests/prop_sim.rs

crates/rtl/tests/prop_sim.rs:
