/root/repo/target/debug/deps/properties-f4e6adc2a958f7ed.d: tests/properties.rs

/root/repo/target/debug/deps/properties-f4e6adc2a958f7ed: tests/properties.rs

tests/properties.rs:
