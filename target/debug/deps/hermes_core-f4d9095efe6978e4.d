/root/repo/target/debug/deps/hermes_core-f4d9095efe6978e4.d: crates/core/src/lib.rs crates/core/src/accelerator.rs crates/core/src/mission.rs Cargo.toml

/root/repo/target/debug/deps/libhermes_core-f4d9095efe6978e4.rmeta: crates/core/src/lib.rs crates/core/src/accelerator.rs crates/core/src/mission.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/accelerator.rs:
crates/core/src/mission.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
