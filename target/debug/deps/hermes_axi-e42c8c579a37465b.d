/root/repo/target/debug/deps/hermes_axi-e42c8c579a37465b.d: crates/axi/src/lib.rs crates/axi/src/cache.rs crates/axi/src/checker.rs crates/axi/src/master.rs crates/axi/src/memory.rs crates/axi/src/testbench.rs crates/axi/src/transaction.rs

/root/repo/target/debug/deps/libhermes_axi-e42c8c579a37465b.rlib: crates/axi/src/lib.rs crates/axi/src/cache.rs crates/axi/src/checker.rs crates/axi/src/master.rs crates/axi/src/memory.rs crates/axi/src/testbench.rs crates/axi/src/transaction.rs

/root/repo/target/debug/deps/libhermes_axi-e42c8c579a37465b.rmeta: crates/axi/src/lib.rs crates/axi/src/cache.rs crates/axi/src/checker.rs crates/axi/src/master.rs crates/axi/src/memory.rs crates/axi/src/testbench.rs crates/axi/src/transaction.rs

crates/axi/src/lib.rs:
crates/axi/src/cache.rs:
crates/axi/src/checker.rs:
crates/axi/src/master.rs:
crates/axi/src/memory.rs:
crates/axi/src/testbench.rs:
crates/axi/src/transaction.rs:
