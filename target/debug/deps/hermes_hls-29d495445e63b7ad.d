/root/repo/target/debug/deps/hermes_hls-29d495445e63b7ad.d: crates/hls/src/lib.rs crates/hls/src/allocate.rs crates/hls/src/bind.rs crates/hls/src/cdfg.rs crates/hls/src/dataflow.rs crates/hls/src/datapath.rs crates/hls/src/emit.rs crates/hls/src/estimate.rs crates/hls/src/flow.rs crates/hls/src/fsm.rs crates/hls/src/interface.rs crates/hls/src/ir.rs crates/hls/src/lang/mod.rs crates/hls/src/lang/ast.rs crates/hls/src/lang/lexer.rs crates/hls/src/lang/parser.rs crates/hls/src/opt.rs crates/hls/src/schedule.rs crates/hls/src/simulate.rs Cargo.toml

/root/repo/target/debug/deps/libhermes_hls-29d495445e63b7ad.rmeta: crates/hls/src/lib.rs crates/hls/src/allocate.rs crates/hls/src/bind.rs crates/hls/src/cdfg.rs crates/hls/src/dataflow.rs crates/hls/src/datapath.rs crates/hls/src/emit.rs crates/hls/src/estimate.rs crates/hls/src/flow.rs crates/hls/src/fsm.rs crates/hls/src/interface.rs crates/hls/src/ir.rs crates/hls/src/lang/mod.rs crates/hls/src/lang/ast.rs crates/hls/src/lang/lexer.rs crates/hls/src/lang/parser.rs crates/hls/src/opt.rs crates/hls/src/schedule.rs crates/hls/src/simulate.rs Cargo.toml

crates/hls/src/lib.rs:
crates/hls/src/allocate.rs:
crates/hls/src/bind.rs:
crates/hls/src/cdfg.rs:
crates/hls/src/dataflow.rs:
crates/hls/src/datapath.rs:
crates/hls/src/emit.rs:
crates/hls/src/estimate.rs:
crates/hls/src/flow.rs:
crates/hls/src/fsm.rs:
crates/hls/src/interface.rs:
crates/hls/src/ir.rs:
crates/hls/src/lang/mod.rs:
crates/hls/src/lang/ast.rs:
crates/hls/src/lang/lexer.rs:
crates/hls/src/lang/parser.rs:
crates/hls/src/opt.rs:
crates/hls/src/schedule.rs:
crates/hls/src/simulate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
