/root/repo/target/debug/deps/hermes_rad-4a6001f7e0344bc2.d: crates/rad/src/lib.rs crates/rad/src/campaign.rs crates/rad/src/edac.rs crates/rad/src/scrub.rs crates/rad/src/seu.rs crates/rad/src/tmr.rs

/root/repo/target/debug/deps/libhermes_rad-4a6001f7e0344bc2.rlib: crates/rad/src/lib.rs crates/rad/src/campaign.rs crates/rad/src/edac.rs crates/rad/src/scrub.rs crates/rad/src/seu.rs crates/rad/src/tmr.rs

/root/repo/target/debug/deps/libhermes_rad-4a6001f7e0344bc2.rmeta: crates/rad/src/lib.rs crates/rad/src/campaign.rs crates/rad/src/edac.rs crates/rad/src/scrub.rs crates/rad/src/seu.rs crates/rad/src/tmr.rs

crates/rad/src/lib.rs:
crates/rad/src/campaign.rs:
crates/rad/src/edac.rs:
crates/rad/src/scrub.rs:
crates/rad/src/seu.rs:
crates/rad/src/tmr.rs:
