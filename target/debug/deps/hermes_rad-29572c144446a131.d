/root/repo/target/debug/deps/hermes_rad-29572c144446a131.d: crates/rad/src/lib.rs crates/rad/src/campaign.rs crates/rad/src/edac.rs crates/rad/src/scrub.rs crates/rad/src/seu.rs crates/rad/src/tmr.rs Cargo.toml

/root/repo/target/debug/deps/libhermes_rad-29572c144446a131.rmeta: crates/rad/src/lib.rs crates/rad/src/campaign.rs crates/rad/src/edac.rs crates/rad/src/scrub.rs crates/rad/src/seu.rs crates/rad/src/tmr.rs Cargo.toml

crates/rad/src/lib.rs:
crates/rad/src/campaign.rs:
crates/rad/src/edac.rs:
crates/rad/src/scrub.rs:
crates/rad/src/seu.rs:
crates/rad/src/tmr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
