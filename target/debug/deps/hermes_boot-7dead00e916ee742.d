/root/repo/target/debug/deps/hermes_boot-7dead00e916ee742.d: crates/boot/src/lib.rs crates/boot/src/bl0.rs crates/boot/src/bl1.rs crates/boot/src/flash.rs crates/boot/src/loadlist.rs crates/boot/src/report.rs crates/boot/src/spacewire.rs Cargo.toml

/root/repo/target/debug/deps/libhermes_boot-7dead00e916ee742.rmeta: crates/boot/src/lib.rs crates/boot/src/bl0.rs crates/boot/src/bl1.rs crates/boot/src/flash.rs crates/boot/src/loadlist.rs crates/boot/src/report.rs crates/boot/src/spacewire.rs Cargo.toml

crates/boot/src/lib.rs:
crates/boot/src/bl0.rs:
crates/boot/src/bl1.rs:
crates/boot/src/flash.rs:
crates/boot/src/loadlist.rs:
crates/boot/src/report.rs:
crates/boot/src/spacewire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
