/root/repo/target/debug/deps/hermes_cpu-c344343fb3c6c212.d: crates/cpu/src/lib.rs crates/cpu/src/cluster.rs crates/cpu/src/hart.rs crates/cpu/src/isa.rs crates/cpu/src/memmap.rs crates/cpu/src/mpu.rs

/root/repo/target/debug/deps/libhermes_cpu-c344343fb3c6c212.rlib: crates/cpu/src/lib.rs crates/cpu/src/cluster.rs crates/cpu/src/hart.rs crates/cpu/src/isa.rs crates/cpu/src/memmap.rs crates/cpu/src/mpu.rs

/root/repo/target/debug/deps/libhermes_cpu-c344343fb3c6c212.rmeta: crates/cpu/src/lib.rs crates/cpu/src/cluster.rs crates/cpu/src/hart.rs crates/cpu/src/isa.rs crates/cpu/src/memmap.rs crates/cpu/src/mpu.rs

crates/cpu/src/lib.rs:
crates/cpu/src/cluster.rs:
crates/cpu/src/hart.rs:
crates/cpu/src/isa.rs:
crates/cpu/src/memmap.rs:
crates/cpu/src/mpu.rs:
