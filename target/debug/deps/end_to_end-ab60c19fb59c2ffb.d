/root/repo/target/debug/deps/end_to_end-ab60c19fb59c2ffb.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ab60c19fb59c2ffb: tests/end_to_end.rs

tests/end_to_end.rs:
