/root/repo/target/debug/deps/prop_retry-0868a51e502d399d.d: crates/axi/tests/prop_retry.rs Cargo.toml

/root/repo/target/debug/deps/libprop_retry-0868a51e502d399d.rmeta: crates/axi/tests/prop_retry.rs Cargo.toml

crates/axi/tests/prop_retry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
