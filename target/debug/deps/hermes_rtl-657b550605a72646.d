/root/repo/target/debug/deps/hermes_rtl-657b550605a72646.d: crates/rtl/src/lib.rs crates/rtl/src/component.rs crates/rtl/src/netlist.rs crates/rtl/src/rng.rs crates/rtl/src/sim.rs crates/rtl/src/verilog.rs crates/rtl/src/vhdl.rs

/root/repo/target/debug/deps/libhermes_rtl-657b550605a72646.rlib: crates/rtl/src/lib.rs crates/rtl/src/component.rs crates/rtl/src/netlist.rs crates/rtl/src/rng.rs crates/rtl/src/sim.rs crates/rtl/src/verilog.rs crates/rtl/src/vhdl.rs

/root/repo/target/debug/deps/libhermes_rtl-657b550605a72646.rmeta: crates/rtl/src/lib.rs crates/rtl/src/component.rs crates/rtl/src/netlist.rs crates/rtl/src/rng.rs crates/rtl/src/sim.rs crates/rtl/src/verilog.rs crates/rtl/src/vhdl.rs

crates/rtl/src/lib.rs:
crates/rtl/src/component.rs:
crates/rtl/src/netlist.rs:
crates/rtl/src/rng.rs:
crates/rtl/src/sim.rs:
crates/rtl/src/verilog.rs:
crates/rtl/src/vhdl.rs:
