/root/repo/target/debug/deps/hermes_eucalyptus-ded30fa697715e7e.d: crates/eucalyptus/src/lib.rs crates/eucalyptus/src/library.rs crates/eucalyptus/src/sweep.rs crates/eucalyptus/src/templates.rs Cargo.toml

/root/repo/target/debug/deps/libhermes_eucalyptus-ded30fa697715e7e.rmeta: crates/eucalyptus/src/lib.rs crates/eucalyptus/src/library.rs crates/eucalyptus/src/sweep.rs crates/eucalyptus/src/templates.rs Cargo.toml

crates/eucalyptus/src/lib.rs:
crates/eucalyptus/src/library.rs:
crates/eucalyptus/src/sweep.rs:
crates/eucalyptus/src/templates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
