/root/repo/target/debug/deps/hermes_axi-b62f6fb372783004.d: crates/axi/src/lib.rs crates/axi/src/cache.rs crates/axi/src/checker.rs crates/axi/src/master.rs crates/axi/src/memory.rs crates/axi/src/testbench.rs crates/axi/src/transaction.rs

/root/repo/target/debug/deps/hermes_axi-b62f6fb372783004: crates/axi/src/lib.rs crates/axi/src/cache.rs crates/axi/src/checker.rs crates/axi/src/master.rs crates/axi/src/memory.rs crates/axi/src/testbench.rs crates/axi/src/transaction.rs

crates/axi/src/lib.rs:
crates/axi/src/cache.rs:
crates/axi/src/checker.rs:
crates/axi/src/master.rs:
crates/axi/src/memory.rs:
crates/axi/src/testbench.rs:
crates/axi/src/transaction.rs:
