/root/repo/target/debug/deps/hermes_chaos-7caac88143674276.d: crates/chaos/src/lib.rs crates/chaos/src/plan.rs crates/chaos/src/report.rs crates/chaos/src/scenario.rs

/root/repo/target/debug/deps/libhermes_chaos-7caac88143674276.rlib: crates/chaos/src/lib.rs crates/chaos/src/plan.rs crates/chaos/src/report.rs crates/chaos/src/scenario.rs

/root/repo/target/debug/deps/libhermes_chaos-7caac88143674276.rmeta: crates/chaos/src/lib.rs crates/chaos/src/plan.rs crates/chaos/src/report.rs crates/chaos/src/scenario.rs

crates/chaos/src/lib.rs:
crates/chaos/src/plan.rs:
crates/chaos/src/report.rs:
crates/chaos/src/scenario.rs:
