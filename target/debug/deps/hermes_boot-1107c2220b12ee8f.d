/root/repo/target/debug/deps/hermes_boot-1107c2220b12ee8f.d: crates/boot/src/lib.rs crates/boot/src/bl0.rs crates/boot/src/bl1.rs crates/boot/src/flash.rs crates/boot/src/loadlist.rs crates/boot/src/report.rs crates/boot/src/spacewire.rs

/root/repo/target/debug/deps/hermes_boot-1107c2220b12ee8f: crates/boot/src/lib.rs crates/boot/src/bl0.rs crates/boot/src/bl1.rs crates/boot/src/flash.rs crates/boot/src/loadlist.rs crates/boot/src/report.rs crates/boot/src/spacewire.rs

crates/boot/src/lib.rs:
crates/boot/src/bl0.rs:
crates/boot/src/bl1.rs:
crates/boot/src/flash.rs:
crates/boot/src/loadlist.rs:
crates/boot/src/report.rs:
crates/boot/src/spacewire.rs:
