/root/repo/target/debug/deps/experiments-010802b87305411e.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-010802b87305411e: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
