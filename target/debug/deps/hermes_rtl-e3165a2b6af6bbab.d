/root/repo/target/debug/deps/hermes_rtl-e3165a2b6af6bbab.d: crates/rtl/src/lib.rs crates/rtl/src/component.rs crates/rtl/src/netlist.rs crates/rtl/src/rng.rs crates/rtl/src/sim.rs crates/rtl/src/verilog.rs crates/rtl/src/vhdl.rs

/root/repo/target/debug/deps/hermes_rtl-e3165a2b6af6bbab: crates/rtl/src/lib.rs crates/rtl/src/component.rs crates/rtl/src/netlist.rs crates/rtl/src/rng.rs crates/rtl/src/sim.rs crates/rtl/src/verilog.rs crates/rtl/src/vhdl.rs

crates/rtl/src/lib.rs:
crates/rtl/src/component.rs:
crates/rtl/src/netlist.rs:
crates/rtl/src/rng.rs:
crates/rtl/src/sim.rs:
crates/rtl/src/verilog.rs:
crates/rtl/src/vhdl.rs:
