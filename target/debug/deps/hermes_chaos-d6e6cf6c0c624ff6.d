/root/repo/target/debug/deps/hermes_chaos-d6e6cf6c0c624ff6.d: crates/chaos/src/lib.rs crates/chaos/src/plan.rs crates/chaos/src/report.rs crates/chaos/src/scenario.rs

/root/repo/target/debug/deps/hermes_chaos-d6e6cf6c0c624ff6: crates/chaos/src/lib.rs crates/chaos/src/plan.rs crates/chaos/src/report.rs crates/chaos/src/scenario.rs

crates/chaos/src/lib.rs:
crates/chaos/src/plan.rs:
crates/chaos/src/report.rs:
crates/chaos/src/scenario.rs:
