/root/repo/target/debug/deps/prop_sim-31f2e2cc02aec9b9.d: crates/rtl/tests/prop_sim.rs Cargo.toml

/root/repo/target/debug/deps/libprop_sim-31f2e2cc02aec9b9.rmeta: crates/rtl/tests/prop_sim.rs Cargo.toml

crates/rtl/tests/prop_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
