/root/repo/target/debug/deps/hermes_cpu-17abdb3e484800a1.d: crates/cpu/src/lib.rs crates/cpu/src/cluster.rs crates/cpu/src/hart.rs crates/cpu/src/isa.rs crates/cpu/src/memmap.rs crates/cpu/src/mpu.rs

/root/repo/target/debug/deps/hermes_cpu-17abdb3e484800a1: crates/cpu/src/lib.rs crates/cpu/src/cluster.rs crates/cpu/src/hart.rs crates/cpu/src/isa.rs crates/cpu/src/memmap.rs crates/cpu/src/mpu.rs

crates/cpu/src/lib.rs:
crates/cpu/src/cluster.rs:
crates/cpu/src/hart.rs:
crates/cpu/src/isa.rs:
crates/cpu/src/memmap.rs:
crates/cpu/src/mpu.rs:
