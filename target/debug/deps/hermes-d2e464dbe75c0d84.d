/root/repo/target/debug/deps/hermes-d2e464dbe75c0d84.d: src/lib.rs

/root/repo/target/debug/deps/libhermes-d2e464dbe75c0d84.rlib: src/lib.rs

/root/repo/target/debug/deps/libhermes-d2e464dbe75c0d84.rmeta: src/lib.rs

src/lib.rs:
