/root/repo/target/debug/deps/hermes_fpga-46849c2c8eea9f3a.d: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/device.rs crates/fpga/src/flow.rs crates/fpga/src/place.rs crates/fpga/src/primitives.rs crates/fpga/src/route.rs crates/fpga/src/synth.rs crates/fpga/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libhermes_fpga-46849c2c8eea9f3a.rmeta: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/device.rs crates/fpga/src/flow.rs crates/fpga/src/place.rs crates/fpga/src/primitives.rs crates/fpga/src/route.rs crates/fpga/src/synth.rs crates/fpga/src/timing.rs Cargo.toml

crates/fpga/src/lib.rs:
crates/fpga/src/bitstream.rs:
crates/fpga/src/device.rs:
crates/fpga/src/flow.rs:
crates/fpga/src/place.rs:
crates/fpga/src/primitives.rs:
crates/fpga/src/route.rs:
crates/fpga/src/synth.rs:
crates/fpga/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
