/root/repo/target/debug/deps/hermes_core-88632aed0e0636fd.d: crates/core/src/lib.rs crates/core/src/accelerator.rs crates/core/src/mission.rs

/root/repo/target/debug/deps/hermes_core-88632aed0e0636fd: crates/core/src/lib.rs crates/core/src/accelerator.rs crates/core/src/mission.rs

crates/core/src/lib.rs:
crates/core/src/accelerator.rs:
crates/core/src/mission.rs:
