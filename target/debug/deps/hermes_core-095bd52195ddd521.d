/root/repo/target/debug/deps/hermes_core-095bd52195ddd521.d: crates/core/src/lib.rs crates/core/src/accelerator.rs crates/core/src/mission.rs

/root/repo/target/debug/deps/libhermes_core-095bd52195ddd521.rlib: crates/core/src/lib.rs crates/core/src/accelerator.rs crates/core/src/mission.rs

/root/repo/target/debug/deps/libhermes_core-095bd52195ddd521.rmeta: crates/core/src/lib.rs crates/core/src/accelerator.rs crates/core/src/mission.rs

crates/core/src/lib.rs:
crates/core/src/accelerator.rs:
crates/core/src/mission.rs:
