/root/repo/target/debug/deps/hermes_xng-998a626445bbfb6c.d: crates/xng/src/lib.rs crates/xng/src/config.rs crates/xng/src/health.rs crates/xng/src/hypercall.rs crates/xng/src/hypervisor.rs crates/xng/src/partition.rs crates/xng/src/ports.rs

/root/repo/target/debug/deps/hermes_xng-998a626445bbfb6c: crates/xng/src/lib.rs crates/xng/src/config.rs crates/xng/src/health.rs crates/xng/src/hypercall.rs crates/xng/src/hypervisor.rs crates/xng/src/partition.rs crates/xng/src/ports.rs

crates/xng/src/lib.rs:
crates/xng/src/config.rs:
crates/xng/src/health.rs:
crates/xng/src/hypercall.rs:
crates/xng/src/hypervisor.rs:
crates/xng/src/partition.rs:
crates/xng/src/ports.rs:
