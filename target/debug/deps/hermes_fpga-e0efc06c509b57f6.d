/root/repo/target/debug/deps/hermes_fpga-e0efc06c509b57f6.d: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/device.rs crates/fpga/src/flow.rs crates/fpga/src/place.rs crates/fpga/src/primitives.rs crates/fpga/src/route.rs crates/fpga/src/synth.rs crates/fpga/src/timing.rs

/root/repo/target/debug/deps/hermes_fpga-e0efc06c509b57f6: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/device.rs crates/fpga/src/flow.rs crates/fpga/src/place.rs crates/fpga/src/primitives.rs crates/fpga/src/route.rs crates/fpga/src/synth.rs crates/fpga/src/timing.rs

crates/fpga/src/lib.rs:
crates/fpga/src/bitstream.rs:
crates/fpga/src/device.rs:
crates/fpga/src/flow.rs:
crates/fpga/src/place.rs:
crates/fpga/src/primitives.rs:
crates/fpga/src/route.rs:
crates/fpga/src/synth.rs:
crates/fpga/src/timing.rs:
