/root/repo/target/debug/deps/hermes_apps-f564af4279b0d50f.d: crates/apps/src/lib.rs crates/apps/src/ai.rs crates/apps/src/aocs.rs crates/apps/src/eor.rs crates/apps/src/image.rs crates/apps/src/sdr.rs crates/apps/src/vbn.rs Cargo.toml

/root/repo/target/debug/deps/libhermes_apps-f564af4279b0d50f.rmeta: crates/apps/src/lib.rs crates/apps/src/ai.rs crates/apps/src/aocs.rs crates/apps/src/eor.rs crates/apps/src/image.rs crates/apps/src/sdr.rs crates/apps/src/vbn.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/ai.rs:
crates/apps/src/aocs.rs:
crates/apps/src/eor.rs:
crates/apps/src/image.rs:
crates/apps/src/sdr.rs:
crates/apps/src/vbn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
