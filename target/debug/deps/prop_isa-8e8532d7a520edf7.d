/root/repo/target/debug/deps/prop_isa-8e8532d7a520edf7.d: crates/cpu/tests/prop_isa.rs

/root/repo/target/debug/deps/prop_isa-8e8532d7a520edf7: crates/cpu/tests/prop_isa.rs

crates/cpu/tests/prop_isa.rs:
