/root/repo/target/debug/deps/hermes_eucalyptus-1c4404bc7119593c.d: crates/eucalyptus/src/lib.rs crates/eucalyptus/src/library.rs crates/eucalyptus/src/sweep.rs crates/eucalyptus/src/templates.rs

/root/repo/target/debug/deps/libhermes_eucalyptus-1c4404bc7119593c.rlib: crates/eucalyptus/src/lib.rs crates/eucalyptus/src/library.rs crates/eucalyptus/src/sweep.rs crates/eucalyptus/src/templates.rs

/root/repo/target/debug/deps/libhermes_eucalyptus-1c4404bc7119593c.rmeta: crates/eucalyptus/src/lib.rs crates/eucalyptus/src/library.rs crates/eucalyptus/src/sweep.rs crates/eucalyptus/src/templates.rs

crates/eucalyptus/src/lib.rs:
crates/eucalyptus/src/library.rs:
crates/eucalyptus/src/sweep.rs:
crates/eucalyptus/src/templates.rs:
