/root/repo/target/debug/deps/prop_burst-60e12a0870f1f33d.d: crates/axi/tests/prop_burst.rs Cargo.toml

/root/repo/target/debug/deps/libprop_burst-60e12a0870f1f33d.rmeta: crates/axi/tests/prop_burst.rs Cargo.toml

crates/axi/tests/prop_burst.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
