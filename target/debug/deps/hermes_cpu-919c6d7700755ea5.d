/root/repo/target/debug/deps/hermes_cpu-919c6d7700755ea5.d: crates/cpu/src/lib.rs crates/cpu/src/cluster.rs crates/cpu/src/hart.rs crates/cpu/src/isa.rs crates/cpu/src/memmap.rs crates/cpu/src/mpu.rs Cargo.toml

/root/repo/target/debug/deps/libhermes_cpu-919c6d7700755ea5.rmeta: crates/cpu/src/lib.rs crates/cpu/src/cluster.rs crates/cpu/src/hart.rs crates/cpu/src/isa.rs crates/cpu/src/memmap.rs crates/cpu/src/mpu.rs Cargo.toml

crates/cpu/src/lib.rs:
crates/cpu/src/cluster.rs:
crates/cpu/src/hart.rs:
crates/cpu/src/isa.rs:
crates/cpu/src/memmap.rs:
crates/cpu/src/mpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
