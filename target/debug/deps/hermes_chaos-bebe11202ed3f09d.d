/root/repo/target/debug/deps/hermes_chaos-bebe11202ed3f09d.d: crates/chaos/src/lib.rs crates/chaos/src/plan.rs crates/chaos/src/report.rs crates/chaos/src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libhermes_chaos-bebe11202ed3f09d.rmeta: crates/chaos/src/lib.rs crates/chaos/src/plan.rs crates/chaos/src/report.rs crates/chaos/src/scenario.rs Cargo.toml

crates/chaos/src/lib.rs:
crates/chaos/src/plan.rs:
crates/chaos/src/report.rs:
crates/chaos/src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
