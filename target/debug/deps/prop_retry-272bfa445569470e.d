/root/repo/target/debug/deps/prop_retry-272bfa445569470e.d: crates/axi/tests/prop_retry.rs

/root/repo/target/debug/deps/prop_retry-272bfa445569470e: crates/axi/tests/prop_retry.rs

crates/axi/tests/prop_retry.rs:
