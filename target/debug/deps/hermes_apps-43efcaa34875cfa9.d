/root/repo/target/debug/deps/hermes_apps-43efcaa34875cfa9.d: crates/apps/src/lib.rs crates/apps/src/ai.rs crates/apps/src/aocs.rs crates/apps/src/eor.rs crates/apps/src/image.rs crates/apps/src/sdr.rs crates/apps/src/vbn.rs

/root/repo/target/debug/deps/hermes_apps-43efcaa34875cfa9: crates/apps/src/lib.rs crates/apps/src/ai.rs crates/apps/src/aocs.rs crates/apps/src/eor.rs crates/apps/src/image.rs crates/apps/src/sdr.rs crates/apps/src/vbn.rs

crates/apps/src/lib.rs:
crates/apps/src/ai.rs:
crates/apps/src/aocs.rs:
crates/apps/src/eor.rs:
crates/apps/src/image.rs:
crates/apps/src/sdr.rs:
crates/apps/src/vbn.rs:
