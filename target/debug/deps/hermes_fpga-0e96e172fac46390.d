/root/repo/target/debug/deps/hermes_fpga-0e96e172fac46390.d: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/device.rs crates/fpga/src/flow.rs crates/fpga/src/place.rs crates/fpga/src/primitives.rs crates/fpga/src/route.rs crates/fpga/src/synth.rs crates/fpga/src/timing.rs

/root/repo/target/debug/deps/libhermes_fpga-0e96e172fac46390.rlib: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/device.rs crates/fpga/src/flow.rs crates/fpga/src/place.rs crates/fpga/src/primitives.rs crates/fpga/src/route.rs crates/fpga/src/synth.rs crates/fpga/src/timing.rs

/root/repo/target/debug/deps/libhermes_fpga-0e96e172fac46390.rmeta: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/device.rs crates/fpga/src/flow.rs crates/fpga/src/place.rs crates/fpga/src/primitives.rs crates/fpga/src/route.rs crates/fpga/src/synth.rs crates/fpga/src/timing.rs

crates/fpga/src/lib.rs:
crates/fpga/src/bitstream.rs:
crates/fpga/src/device.rs:
crates/fpga/src/flow.rs:
crates/fpga/src/place.rs:
crates/fpga/src/primitives.rs:
crates/fpga/src/route.rs:
crates/fpga/src/synth.rs:
crates/fpga/src/timing.rs:
