/root/repo/target/debug/deps/prop_burst-e2d56aa04a3f162c.d: crates/axi/tests/prop_burst.rs

/root/repo/target/debug/deps/prop_burst-e2d56aa04a3f162c: crates/axi/tests/prop_burst.rs

crates/axi/tests/prop_burst.rs:
