/root/repo/target/debug/deps/properties-509e20a35dc24e16.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-509e20a35dc24e16.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
