/root/repo/target/release/deps/hermes_rtl-df850cd2126d538d.d: crates/rtl/src/lib.rs crates/rtl/src/component.rs crates/rtl/src/netlist.rs crates/rtl/src/rng.rs crates/rtl/src/sim.rs crates/rtl/src/verilog.rs crates/rtl/src/vhdl.rs

/root/repo/target/release/deps/libhermes_rtl-df850cd2126d538d.rlib: crates/rtl/src/lib.rs crates/rtl/src/component.rs crates/rtl/src/netlist.rs crates/rtl/src/rng.rs crates/rtl/src/sim.rs crates/rtl/src/verilog.rs crates/rtl/src/vhdl.rs

/root/repo/target/release/deps/libhermes_rtl-df850cd2126d538d.rmeta: crates/rtl/src/lib.rs crates/rtl/src/component.rs crates/rtl/src/netlist.rs crates/rtl/src/rng.rs crates/rtl/src/sim.rs crates/rtl/src/verilog.rs crates/rtl/src/vhdl.rs

crates/rtl/src/lib.rs:
crates/rtl/src/component.rs:
crates/rtl/src/netlist.rs:
crates/rtl/src/rng.rs:
crates/rtl/src/sim.rs:
crates/rtl/src/verilog.rs:
crates/rtl/src/vhdl.rs:
