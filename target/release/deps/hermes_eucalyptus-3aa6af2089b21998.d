/root/repo/target/release/deps/hermes_eucalyptus-3aa6af2089b21998.d: crates/eucalyptus/src/lib.rs crates/eucalyptus/src/library.rs crates/eucalyptus/src/sweep.rs crates/eucalyptus/src/templates.rs

/root/repo/target/release/deps/libhermes_eucalyptus-3aa6af2089b21998.rlib: crates/eucalyptus/src/lib.rs crates/eucalyptus/src/library.rs crates/eucalyptus/src/sweep.rs crates/eucalyptus/src/templates.rs

/root/repo/target/release/deps/libhermes_eucalyptus-3aa6af2089b21998.rmeta: crates/eucalyptus/src/lib.rs crates/eucalyptus/src/library.rs crates/eucalyptus/src/sweep.rs crates/eucalyptus/src/templates.rs

crates/eucalyptus/src/lib.rs:
crates/eucalyptus/src/library.rs:
crates/eucalyptus/src/sweep.rs:
crates/eucalyptus/src/templates.rs:
