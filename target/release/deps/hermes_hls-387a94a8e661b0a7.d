/root/repo/target/release/deps/hermes_hls-387a94a8e661b0a7.d: crates/hls/src/lib.rs crates/hls/src/allocate.rs crates/hls/src/bind.rs crates/hls/src/cdfg.rs crates/hls/src/dataflow.rs crates/hls/src/datapath.rs crates/hls/src/emit.rs crates/hls/src/estimate.rs crates/hls/src/flow.rs crates/hls/src/fsm.rs crates/hls/src/interface.rs crates/hls/src/ir.rs crates/hls/src/lang/mod.rs crates/hls/src/lang/ast.rs crates/hls/src/lang/lexer.rs crates/hls/src/lang/parser.rs crates/hls/src/opt.rs crates/hls/src/schedule.rs crates/hls/src/simulate.rs

/root/repo/target/release/deps/libhermes_hls-387a94a8e661b0a7.rlib: crates/hls/src/lib.rs crates/hls/src/allocate.rs crates/hls/src/bind.rs crates/hls/src/cdfg.rs crates/hls/src/dataflow.rs crates/hls/src/datapath.rs crates/hls/src/emit.rs crates/hls/src/estimate.rs crates/hls/src/flow.rs crates/hls/src/fsm.rs crates/hls/src/interface.rs crates/hls/src/ir.rs crates/hls/src/lang/mod.rs crates/hls/src/lang/ast.rs crates/hls/src/lang/lexer.rs crates/hls/src/lang/parser.rs crates/hls/src/opt.rs crates/hls/src/schedule.rs crates/hls/src/simulate.rs

/root/repo/target/release/deps/libhermes_hls-387a94a8e661b0a7.rmeta: crates/hls/src/lib.rs crates/hls/src/allocate.rs crates/hls/src/bind.rs crates/hls/src/cdfg.rs crates/hls/src/dataflow.rs crates/hls/src/datapath.rs crates/hls/src/emit.rs crates/hls/src/estimate.rs crates/hls/src/flow.rs crates/hls/src/fsm.rs crates/hls/src/interface.rs crates/hls/src/ir.rs crates/hls/src/lang/mod.rs crates/hls/src/lang/ast.rs crates/hls/src/lang/lexer.rs crates/hls/src/lang/parser.rs crates/hls/src/opt.rs crates/hls/src/schedule.rs crates/hls/src/simulate.rs

crates/hls/src/lib.rs:
crates/hls/src/allocate.rs:
crates/hls/src/bind.rs:
crates/hls/src/cdfg.rs:
crates/hls/src/dataflow.rs:
crates/hls/src/datapath.rs:
crates/hls/src/emit.rs:
crates/hls/src/estimate.rs:
crates/hls/src/flow.rs:
crates/hls/src/fsm.rs:
crates/hls/src/interface.rs:
crates/hls/src/ir.rs:
crates/hls/src/lang/mod.rs:
crates/hls/src/lang/ast.rs:
crates/hls/src/lang/lexer.rs:
crates/hls/src/lang/parser.rs:
crates/hls/src/opt.rs:
crates/hls/src/schedule.rs:
crates/hls/src/simulate.rs:
