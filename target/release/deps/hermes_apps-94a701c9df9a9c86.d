/root/repo/target/release/deps/hermes_apps-94a701c9df9a9c86.d: crates/apps/src/lib.rs crates/apps/src/ai.rs crates/apps/src/aocs.rs crates/apps/src/eor.rs crates/apps/src/image.rs crates/apps/src/sdr.rs crates/apps/src/vbn.rs

/root/repo/target/release/deps/libhermes_apps-94a701c9df9a9c86.rlib: crates/apps/src/lib.rs crates/apps/src/ai.rs crates/apps/src/aocs.rs crates/apps/src/eor.rs crates/apps/src/image.rs crates/apps/src/sdr.rs crates/apps/src/vbn.rs

/root/repo/target/release/deps/libhermes_apps-94a701c9df9a9c86.rmeta: crates/apps/src/lib.rs crates/apps/src/ai.rs crates/apps/src/aocs.rs crates/apps/src/eor.rs crates/apps/src/image.rs crates/apps/src/sdr.rs crates/apps/src/vbn.rs

crates/apps/src/lib.rs:
crates/apps/src/ai.rs:
crates/apps/src/aocs.rs:
crates/apps/src/eor.rs:
crates/apps/src/image.rs:
crates/apps/src/sdr.rs:
crates/apps/src/vbn.rs:
