/root/repo/target/release/deps/hermes_rad-4254e52dd3ca67b7.d: crates/rad/src/lib.rs crates/rad/src/campaign.rs crates/rad/src/edac.rs crates/rad/src/scrub.rs crates/rad/src/seu.rs crates/rad/src/tmr.rs

/root/repo/target/release/deps/libhermes_rad-4254e52dd3ca67b7.rlib: crates/rad/src/lib.rs crates/rad/src/campaign.rs crates/rad/src/edac.rs crates/rad/src/scrub.rs crates/rad/src/seu.rs crates/rad/src/tmr.rs

/root/repo/target/release/deps/libhermes_rad-4254e52dd3ca67b7.rmeta: crates/rad/src/lib.rs crates/rad/src/campaign.rs crates/rad/src/edac.rs crates/rad/src/scrub.rs crates/rad/src/seu.rs crates/rad/src/tmr.rs

crates/rad/src/lib.rs:
crates/rad/src/campaign.rs:
crates/rad/src/edac.rs:
crates/rad/src/scrub.rs:
crates/rad/src/seu.rs:
crates/rad/src/tmr.rs:
