/root/repo/target/release/deps/hermes_core-9f3cf3cabfe7da3f.d: crates/core/src/lib.rs crates/core/src/accelerator.rs crates/core/src/mission.rs

/root/repo/target/release/deps/libhermes_core-9f3cf3cabfe7da3f.rlib: crates/core/src/lib.rs crates/core/src/accelerator.rs crates/core/src/mission.rs

/root/repo/target/release/deps/libhermes_core-9f3cf3cabfe7da3f.rmeta: crates/core/src/lib.rs crates/core/src/accelerator.rs crates/core/src/mission.rs

crates/core/src/lib.rs:
crates/core/src/accelerator.rs:
crates/core/src/mission.rs:
