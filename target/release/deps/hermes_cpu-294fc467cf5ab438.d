/root/repo/target/release/deps/hermes_cpu-294fc467cf5ab438.d: crates/cpu/src/lib.rs crates/cpu/src/cluster.rs crates/cpu/src/hart.rs crates/cpu/src/isa.rs crates/cpu/src/memmap.rs crates/cpu/src/mpu.rs

/root/repo/target/release/deps/libhermes_cpu-294fc467cf5ab438.rlib: crates/cpu/src/lib.rs crates/cpu/src/cluster.rs crates/cpu/src/hart.rs crates/cpu/src/isa.rs crates/cpu/src/memmap.rs crates/cpu/src/mpu.rs

/root/repo/target/release/deps/libhermes_cpu-294fc467cf5ab438.rmeta: crates/cpu/src/lib.rs crates/cpu/src/cluster.rs crates/cpu/src/hart.rs crates/cpu/src/isa.rs crates/cpu/src/memmap.rs crates/cpu/src/mpu.rs

crates/cpu/src/lib.rs:
crates/cpu/src/cluster.rs:
crates/cpu/src/hart.rs:
crates/cpu/src/isa.rs:
crates/cpu/src/memmap.rs:
crates/cpu/src/mpu.rs:
