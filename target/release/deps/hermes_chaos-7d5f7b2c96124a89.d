/root/repo/target/release/deps/hermes_chaos-7d5f7b2c96124a89.d: crates/chaos/src/lib.rs crates/chaos/src/plan.rs crates/chaos/src/report.rs crates/chaos/src/scenario.rs

/root/repo/target/release/deps/libhermes_chaos-7d5f7b2c96124a89.rlib: crates/chaos/src/lib.rs crates/chaos/src/plan.rs crates/chaos/src/report.rs crates/chaos/src/scenario.rs

/root/repo/target/release/deps/libhermes_chaos-7d5f7b2c96124a89.rmeta: crates/chaos/src/lib.rs crates/chaos/src/plan.rs crates/chaos/src/report.rs crates/chaos/src/scenario.rs

crates/chaos/src/lib.rs:
crates/chaos/src/plan.rs:
crates/chaos/src/report.rs:
crates/chaos/src/scenario.rs:
