/root/repo/target/release/deps/hermes_boot-577188ecb7c868d8.d: crates/boot/src/lib.rs crates/boot/src/bl0.rs crates/boot/src/bl1.rs crates/boot/src/flash.rs crates/boot/src/loadlist.rs crates/boot/src/report.rs crates/boot/src/spacewire.rs

/root/repo/target/release/deps/libhermes_boot-577188ecb7c868d8.rlib: crates/boot/src/lib.rs crates/boot/src/bl0.rs crates/boot/src/bl1.rs crates/boot/src/flash.rs crates/boot/src/loadlist.rs crates/boot/src/report.rs crates/boot/src/spacewire.rs

/root/repo/target/release/deps/libhermes_boot-577188ecb7c868d8.rmeta: crates/boot/src/lib.rs crates/boot/src/bl0.rs crates/boot/src/bl1.rs crates/boot/src/flash.rs crates/boot/src/loadlist.rs crates/boot/src/report.rs crates/boot/src/spacewire.rs

crates/boot/src/lib.rs:
crates/boot/src/bl0.rs:
crates/boot/src/bl1.rs:
crates/boot/src/flash.rs:
crates/boot/src/loadlist.rs:
crates/boot/src/report.rs:
crates/boot/src/spacewire.rs:
