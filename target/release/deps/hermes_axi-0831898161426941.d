/root/repo/target/release/deps/hermes_axi-0831898161426941.d: crates/axi/src/lib.rs crates/axi/src/cache.rs crates/axi/src/checker.rs crates/axi/src/master.rs crates/axi/src/memory.rs crates/axi/src/testbench.rs crates/axi/src/transaction.rs

/root/repo/target/release/deps/libhermes_axi-0831898161426941.rlib: crates/axi/src/lib.rs crates/axi/src/cache.rs crates/axi/src/checker.rs crates/axi/src/master.rs crates/axi/src/memory.rs crates/axi/src/testbench.rs crates/axi/src/transaction.rs

/root/repo/target/release/deps/libhermes_axi-0831898161426941.rmeta: crates/axi/src/lib.rs crates/axi/src/cache.rs crates/axi/src/checker.rs crates/axi/src/master.rs crates/axi/src/memory.rs crates/axi/src/testbench.rs crates/axi/src/transaction.rs

crates/axi/src/lib.rs:
crates/axi/src/cache.rs:
crates/axi/src/checker.rs:
crates/axi/src/master.rs:
crates/axi/src/memory.rs:
crates/axi/src/testbench.rs:
crates/axi/src/transaction.rs:
