/root/repo/target/release/deps/hermes-dd412b4d12804cc5.d: src/lib.rs

/root/repo/target/release/deps/libhermes-dd412b4d12804cc5.rlib: src/lib.rs

/root/repo/target/release/deps/libhermes-dd412b4d12804cc5.rmeta: src/lib.rs

src/lib.rs:
