/root/repo/target/release/deps/hermes_xng-26e1d07df197b1b7.d: crates/xng/src/lib.rs crates/xng/src/config.rs crates/xng/src/health.rs crates/xng/src/hypercall.rs crates/xng/src/hypervisor.rs crates/xng/src/partition.rs crates/xng/src/ports.rs

/root/repo/target/release/deps/libhermes_xng-26e1d07df197b1b7.rlib: crates/xng/src/lib.rs crates/xng/src/config.rs crates/xng/src/health.rs crates/xng/src/hypercall.rs crates/xng/src/hypervisor.rs crates/xng/src/partition.rs crates/xng/src/ports.rs

/root/repo/target/release/deps/libhermes_xng-26e1d07df197b1b7.rmeta: crates/xng/src/lib.rs crates/xng/src/config.rs crates/xng/src/health.rs crates/xng/src/hypercall.rs crates/xng/src/hypervisor.rs crates/xng/src/partition.rs crates/xng/src/ports.rs

crates/xng/src/lib.rs:
crates/xng/src/config.rs:
crates/xng/src/health.rs:
crates/xng/src/hypercall.rs:
crates/xng/src/hypervisor.rs:
crates/xng/src/partition.rs:
crates/xng/src/ports.rs:
