/root/repo/target/release/deps/hermes_fpga-c11e18b8848e72a7.d: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/device.rs crates/fpga/src/flow.rs crates/fpga/src/place.rs crates/fpga/src/primitives.rs crates/fpga/src/route.rs crates/fpga/src/synth.rs crates/fpga/src/timing.rs

/root/repo/target/release/deps/libhermes_fpga-c11e18b8848e72a7.rlib: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/device.rs crates/fpga/src/flow.rs crates/fpga/src/place.rs crates/fpga/src/primitives.rs crates/fpga/src/route.rs crates/fpga/src/synth.rs crates/fpga/src/timing.rs

/root/repo/target/release/deps/libhermes_fpga-c11e18b8848e72a7.rmeta: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/device.rs crates/fpga/src/flow.rs crates/fpga/src/place.rs crates/fpga/src/primitives.rs crates/fpga/src/route.rs crates/fpga/src/synth.rs crates/fpga/src/timing.rs

crates/fpga/src/lib.rs:
crates/fpga/src/bitstream.rs:
crates/fpga/src/device.rs:
crates/fpga/src/flow.rs:
crates/fpga/src/place.rs:
crates/fpga/src/primitives.rs:
crates/fpga/src/route.rs:
crates/fpga/src/synth.rs:
crates/fpga/src/timing.rs:
