/root/repo/target/release/deps/experiments-39d18fa4c74775f7.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-39d18fa4c74775f7: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
