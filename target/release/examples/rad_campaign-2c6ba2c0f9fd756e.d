/root/repo/target/release/examples/rad_campaign-2c6ba2c0f9fd756e.d: examples/rad_campaign.rs

/root/repo/target/release/examples/rad_campaign-2c6ba2c0f9fd756e: examples/rad_campaign.rs

examples/rad_campaign.rs:
