/root/repo/target/release/examples/partitioned_aocs-1fcf48b63bf9fd68.d: examples/partitioned_aocs.rs

/root/repo/target/release/examples/partitioned_aocs-1fcf48b63bf9fd68: examples/partitioned_aocs.rs

examples/partitioned_aocs.rs:
