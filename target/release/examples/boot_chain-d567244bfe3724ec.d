/root/repo/target/release/examples/boot_chain-d567244bfe3724ec.d: examples/boot_chain.rs

/root/repo/target/release/examples/boot_chain-d567244bfe3724ec: examples/boot_chain.rs

examples/boot_chain.rs:
