//! # hermes
//!
//! Umbrella crate of the HERMES ecosystem reproduction — a Rust
//! implementation of the software stack described in *"HERMES:
//! qualification of High pErformance pRogrammable Microprocessor and
//! dEvelopment of Software ecosystem"* (DATE 2023): an HLS tool in the
//! style of Bambu, an NXmap-style FPGA implementation flow for an
//! NG-ULTRA-like device model, AXI4 interface generation and
//! co-simulation, a XtratuM-NG-style TSP hypervisor on a quad-core
//! R52-analogue cluster, the BL0/BL1 boot chain, radiation-effects
//! tooling, and the Section V space use cases.
//!
//! Each subsystem lives in its own crate, re-exported here:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`rtl`] | `hermes-rtl` | component library, netlists, cycle simulator, HDL emitters |
//! | [`fpga`] | `hermes-fpga` | device model, synth/place/route/STA/bitstream |
//! | [`eucalyptus`] | `hermes-eucalyptus` | component characterization (XML library) |
//! | [`axi`] | `hermes-axi` | AXI4 master/slave model, protocol checker, testbench |
//! | [`hls`] | `hermes-hls` | C-subset HLS: CDFG, schedule, bind, FSM+datapath |
//! | [`cpu`] | `hermes-cpu` | quad-core R52-analogue ISA simulator with MPU |
//! | [`xng`] | `hermes-xng` | TSP hypervisor: partitions, plans, ports, health |
//! | [`boot`] | `hermes-boot` | BL0/BL1 chain, flash TMR, SpaceWire, boot report |
//! | [`rad`] | `hermes-rad` | SEU campaigns, TMR voting, SECDED EDAC, scrubbing |
//! | [`apps`] | `hermes-apps` | image/AI/SDR kernels; AOCS/VBN/EOR partitions |
//! | [`core`] | `hermes-core` | end-to-end flows: C→bitstream, mission packaging |
//! | [`chaos`] | `hermes-chaos` | fault-injection plane, chaos campaigns, availability/MTTR reports |
//! | [`par`] | `hermes-par` | std-only parallel execution engine (deterministic `par_map`) |
//! | [`obs`] | `hermes-obs` | deterministic flight recorder: spans/events, metrics, bounded rings |
//! | [`serve`] | `hermes-serve` | deadline-aware accelerator serving: admission, batching, pools, shedding |
//! | [`kernel`] | `hermes-kernel` | unified discrete-event kernel: hierarchical timer wheel, reference queue |
//! | [`fleet`] | `hermes-fleet` | sharded serving fleet: consistent-hash routing, autoscaling, failover |
//!
//! ## Quickstart
//!
//! ```
//! use hermes::core::accelerator::AcceleratorFlow;
//!
//! # fn main() -> Result<(), hermes::core::CoreError> {
//! let artifact = AcceleratorFlow::new()
//!     .build("int saxpy(int a, int x, int y) { return a * x + y; }")?;
//! assert_eq!(artifact.design.simulate(&[2, 3, 4])?.return_value, Some(10));
//! # Ok(())
//! # }
//! ```

pub use hermes_apps as apps;
pub use hermes_axi as axi;
pub use hermes_boot as boot;
pub use hermes_chaos as chaos;
pub use hermes_core as core;
pub use hermes_cpu as cpu;
pub use hermes_eucalyptus as eucalyptus;
pub use hermes_fleet as fleet;
pub use hermes_fpga as fpga;
pub use hermes_hls as hls;
pub use hermes_kernel as kernel;
pub use hermes_obs as obs;
pub use hermes_par as par;
pub use hermes_rad as rad;
pub use hermes_rtl as rtl;
pub use hermes_serve as serve;
pub use hermes_xng as xng;
