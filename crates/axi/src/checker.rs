//! AXI4 protocol monitor.
//!
//! Observes the channel traffic of a master/slave pair and flags violations
//! of the ARM AXI4 specification rules that matter at the transaction level:
//! data beat counts matching AxLEN, WLAST/RLAST on exactly the final beat,
//! responses only for outstanding transactions, and strobe widths matching
//! the bus.

use crate::transaction::{Burst, ReadBeat, WriteBeat, WriteResponse};
use std::collections::HashMap;

/// A recorded protocol violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Cycle at which the violation was observed.
    pub cycle: u64,
    /// Rule identifier, e.g. `WLAST_PLACEMENT`.
    pub rule: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// The protocol monitor.
#[derive(Debug, Default)]
pub struct ProtocolChecker {
    cycle: u64,
    outstanding_reads: HashMap<u16, (u16, u16)>, // id -> (expected beats, seen)
    outstanding_writes: HashMap<u16, (u16, u16)>,
    write_data_done: HashMap<u16, bool>,
    violations: Vec<Violation>,
}

impl ProtocolChecker {
    /// Create an idle checker.
    pub fn new() -> Self {
        ProtocolChecker::default()
    }

    /// Advance the checker's cycle counter (call once per bus cycle).
    pub fn tick(&mut self) {
        self.cycle += 1;
    }

    /// Advance the checker across `n` cycles at once. Only legal when no
    /// channel activity happens in the crossed interval (the event-kernel
    /// fast-forward over provably quiet slave cycles): the checker is
    /// purely reactive, so skipping inactive cycles cannot miss a rule.
    pub fn tick_n(&mut self, n: u64) {
        self.cycle += n;
    }

    fn flag(&mut self, rule: &'static str, detail: String) {
        self.violations.push(Violation {
            cycle: self.cycle,
            rule,
            detail,
        });
    }

    /// Observe an AR handshake.
    pub fn on_read_burst(&mut self, burst: &Burst) {
        if self
            .outstanding_reads
            .insert(burst.id, (burst.beats, 0))
            .is_some()
        {
            self.flag(
                "ARID_REUSE",
                format!("read id {} reissued while outstanding", burst.id),
            );
        }
    }

    /// Observe an AW handshake.
    pub fn on_write_burst(&mut self, burst: &Burst) {
        if self
            .outstanding_writes
            .insert(burst.id, (burst.beats, 0))
            .is_some()
        {
            self.flag(
                "AWID_REUSE",
                format!("write id {} reissued while outstanding", burst.id),
            );
        }
        self.write_data_done.insert(burst.id, false);
    }

    /// Observe a W beat belonging to write id `id` on a bus of
    /// `bus_bytes` bytes.
    pub fn on_write_beat(&mut self, id: u16, beat: &WriteBeat, bus_bytes: u8) {
        if beat.data.len() != bus_bytes as usize || beat.strobe.len() != bus_bytes as usize {
            self.flag(
                "WSTRB_WIDTH",
                format!(
                    "beat width {} / strobe {} != bus {}",
                    beat.data.len(),
                    beat.strobe.len(),
                    bus_bytes
                ),
            );
        }
        let state = self.outstanding_writes.get_mut(&id).map(|(expected, seen)| {
            *seen += 1;
            (*expected, *seen)
        });
        match state {
            None => self.flag("W_ORPHAN", format!("data beat for unknown write id {id}")),
            Some((expected, seen)) => {
                let is_final = seen == expected;
                if beat.last != is_final {
                    self.flag(
                        "WLAST_PLACEMENT",
                        format!("id {id}: WLAST={} on beat {seen}/{expected}", beat.last),
                    );
                }
                if is_final {
                    self.write_data_done.insert(id, true);
                }
                if seen > expected {
                    self.flag(
                        "W_OVERRUN",
                        format!("id {id}: more data beats than AWLEN"),
                    );
                }
            }
        }
    }

    /// Observe an R beat.
    pub fn on_read_beat(&mut self, beat: &ReadBeat) {
        let state = self
            .outstanding_reads
            .get_mut(&beat.id)
            .map(|(expected, seen)| {
                *seen += 1;
                (*expected, *seen)
            });
        match state {
            None => self.flag(
                "R_ORPHAN",
                format!("read beat for unknown id {}", beat.id),
            ),
            Some((expected, seen)) => {
                let is_final = seen == expected;
                if beat.last != is_final {
                    self.flag(
                        "RLAST_PLACEMENT",
                        format!(
                            "id {}: RLAST={} on beat {seen}/{expected}",
                            beat.id, beat.last
                        ),
                    );
                }
                if is_final {
                    self.outstanding_reads.remove(&beat.id);
                }
            }
        }
    }

    /// Observe a B response.
    pub fn on_write_response(&mut self, resp: &WriteResponse) {
        match self.outstanding_writes.remove(&resp.id) {
            None => self.flag(
                "B_ORPHAN",
                format!("write response for unknown id {}", resp.id),
            ),
            Some((expected, seen)) => {
                if seen != expected {
                    self.flag(
                        "B_BEFORE_WLAST",
                        format!(
                            "id {}: response after {seen}/{expected} data beats",
                            resp.id
                        ),
                    );
                }
                if self.write_data_done.remove(&resp.id) != Some(true) {
                    self.flag(
                        "B_WITHOUT_DATA",
                        format!("id {}: response without completed data", resp.id),
                    );
                }
            }
        }
    }

    /// All violations observed so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether the traffic has been clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Transactions still outstanding (reads, writes).
    pub fn outstanding(&self) -> (usize, usize) {
        (self.outstanding_reads.len(), self.outstanding_writes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{BurstType, Response};

    fn wbeat(n: usize, last: bool) -> WriteBeat {
        WriteBeat {
            data: vec![0; n],
            strobe: vec![true; n],
            last,
        }
    }

    #[test]
    fn clean_write_sequence() {
        let mut c = ProtocolChecker::new();
        let b = Burst::new(5, 0, 2, 4, BurstType::Incr).unwrap();
        c.on_write_burst(&b);
        c.on_write_beat(5, &wbeat(4, false), 4);
        c.on_write_beat(5, &wbeat(4, true), 4);
        c.on_write_response(&WriteResponse {
            id: 5,
            resp: Response::Okay,
        });
        assert!(c.is_clean(), "{:?}", c.violations());
        assert_eq!(c.outstanding(), (0, 0));
    }

    #[test]
    fn early_wlast_flagged() {
        let mut c = ProtocolChecker::new();
        let b = Burst::new(1, 0, 2, 4, BurstType::Incr).unwrap();
        c.on_write_burst(&b);
        c.on_write_beat(1, &wbeat(4, true), 4); // WLAST one beat early
        assert!(!c.is_clean());
        assert_eq!(c.violations()[0].rule, "WLAST_PLACEMENT");
    }

    #[test]
    fn missing_rlast_flagged() {
        let mut c = ProtocolChecker::new();
        let b = Burst::new(2, 0, 1, 4, BurstType::Incr).unwrap();
        c.on_read_burst(&b);
        c.on_read_beat(&ReadBeat {
            id: 2,
            data: vec![0; 4],
            resp: Response::Okay,
            last: false, // final beat must set RLAST
        });
        assert_eq!(c.violations()[0].rule, "RLAST_PLACEMENT");
    }

    #[test]
    fn orphan_beats_flagged() {
        let mut c = ProtocolChecker::new();
        c.on_read_beat(&ReadBeat {
            id: 9,
            data: vec![],
            resp: Response::Okay,
            last: true,
        });
        c.on_write_response(&WriteResponse {
            id: 9,
            resp: Response::Okay,
        });
        let rules: Vec<_> = c.violations().iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"R_ORPHAN"));
        assert!(rules.contains(&"B_ORPHAN"));
    }

    #[test]
    fn response_before_data_flagged() {
        let mut c = ProtocolChecker::new();
        let b = Burst::new(3, 0, 2, 4, BurstType::Incr).unwrap();
        c.on_write_burst(&b);
        c.on_write_beat(3, &wbeat(4, false), 4);
        c.on_write_response(&WriteResponse {
            id: 3,
            resp: Response::Okay,
        });
        assert!(c
            .violations()
            .iter()
            .any(|v| v.rule == "B_BEFORE_WLAST"));
    }

    #[test]
    fn id_reuse_flagged() {
        let mut c = ProtocolChecker::new();
        let b = Burst::new(7, 0, 2, 4, BurstType::Incr).unwrap();
        c.on_read_burst(&b);
        c.on_read_burst(&b);
        assert!(c.violations().iter().any(|v| v.rule == "ARID_REUSE"));
    }

    #[test]
    fn strobe_width_checked() {
        let mut c = ProtocolChecker::new();
        let b = Burst::new(1, 0, 1, 8, BurstType::Incr).unwrap();
        c.on_write_burst(&b);
        c.on_write_beat(1, &wbeat(4, true), 8); // 4-byte beat on 8-byte bus
        assert!(c.violations().iter().any(|v| v.rule == "WSTRB_WIDTH"));
    }
}
