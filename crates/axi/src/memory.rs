//! Latency-configurable AXI4 slave memory.
//!
//! Models a DDR-backed memory controller: a fixed access latency before the
//! first beat of a burst, then back-to-back data beats (with an optional
//! inter-beat gap), separate read/write paths, and a bounded number of
//! outstanding transactions. These are the "memory delay estimates" the
//! paper says Bambu's AXI testbench lets users configure.

use crate::transaction::{Burst, ReadBeat, Response, WriteBeat, WriteResponse};
use std::collections::VecDeque;

/// Timing configuration of the memory model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryTiming {
    /// Cycles between accepting AR and the first R beat.
    pub read_latency: u32,
    /// Cycles between the last W beat and the B response.
    pub write_latency: u32,
    /// Extra cycles between consecutive data beats (0 = fully pipelined).
    pub beat_gap: u32,
    /// Maximum outstanding transactions per direction.
    pub outstanding: usize,
}

impl Default for MemoryTiming {
    fn default() -> Self {
        MemoryTiming {
            read_latency: 12,
            write_latency: 6,
            beat_gap: 0,
            outstanding: 4,
        }
    }
}

impl MemoryTiming {
    /// An idealized zero-latency memory (for isolating compute cycles).
    pub fn ideal() -> Self {
        MemoryTiming {
            read_latency: 1,
            write_latency: 1,
            beat_gap: 0,
            outstanding: 16,
        }
    }

    /// A slow external memory (e.g. radiation-tolerant SDRAM).
    pub fn slow() -> Self {
        MemoryTiming {
            read_latency: 60,
            write_latency: 30,
            beat_gap: 2,
            outstanding: 2,
        }
    }
}

#[derive(Debug)]
struct PendingRead {
    burst: Burst,
    countdown: u32,
    next_beat: u16,
    poisoned: bool,
}

#[derive(Debug)]
struct PendingWrite {
    burst: Burst,
    beats: Vec<WriteBeat>,
    countdown: Option<u32>,
    poisoned: bool,
}

/// Injectable slave-side faults (the bus half of the chaos fault plane).
///
/// Counters are consumed as transactions are served: a pending SLVERR
/// poisons the next burst of the matching direction (every beat / the
/// write response carries [`Response::SlvErr`], and the data is **not**
/// committed), and a stall freezes the whole slave — no beats, no
/// responses, no latency aging — for the given number of cycles, the way a
/// radiation-upset DDR controller re-trains its PHY.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlaveFaults {
    /// Read bursts still to be answered with SLVERR.
    pub read_slverrs: u32,
    /// Write bursts still to be answered with SLVERR.
    pub write_slverrs: u32,
    /// Cycles the slave remains frozen.
    pub stall_cycles: u32,
}

/// The slave memory.
#[derive(Debug)]
pub struct AxiMemory {
    data: Vec<u8>,
    timing: MemoryTiming,
    reads: VecDeque<PendingRead>,
    writes: VecDeque<PendingWrite>,
    read_out: VecDeque<ReadBeat>,
    write_resp_out: VecDeque<WriteResponse>,
    /// Total cycles stepped (exposed for stats).
    pub cycles: u64,
    /// Total data beats transferred.
    pub beats_served: u64,
    /// Pending injected faults.
    pub faults: SlaveFaults,
}

impl AxiMemory {
    /// Create a memory of `size` bytes with the given timing.
    pub fn new(size: usize, timing: MemoryTiming) -> Self {
        AxiMemory {
            data: vec![0; size],
            timing,
            reads: VecDeque::new(),
            writes: VecDeque::new(),
            read_out: VecDeque::new(),
            write_resp_out: VecDeque::new(),
            cycles: 0,
            beats_served: 0,
            faults: SlaveFaults::default(),
        }
    }

    /// Inject `n` read-burst SLVERRs (consumed by the next `n` read
    /// bursts reaching their first beat).
    pub fn inject_read_slverr(&mut self, n: u32) {
        self.faults.read_slverrs += n;
    }

    /// Inject `n` write-burst SLVERRs.
    pub fn inject_write_slverr(&mut self, n: u32) {
        self.faults.write_slverrs += n;
    }

    /// Freeze the slave for `cycles` (added to any pending stall).
    pub fn inject_stall(&mut self, cycles: u32) {
        self.faults.stall_cycles += cycles;
    }

    /// Size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Backdoor read (testbench initialization / checking).
    pub fn peek(&self, addr: u64, len: usize) -> &[u8] {
        let a = addr as usize;
        &self.data[a..a + len]
    }

    /// Backdoor write.
    pub fn poke(&mut self, addr: u64, bytes: &[u8]) {
        let a = addr as usize;
        self.data[a..a + bytes.len()].copy_from_slice(bytes);
    }

    /// Whether any transaction is still in flight or any output is queued
    /// (used by masters to drain the bus before re-issuing after a fault).
    pub fn busy(&self) -> bool {
        !self.reads.is_empty()
            || !self.writes.is_empty()
            || !self.read_out.is_empty()
            || !self.write_resp_out.is_empty()
    }

    /// Whether a new read burst can be accepted this cycle (ARREADY).
    pub fn ar_ready(&self) -> bool {
        self.reads.len() < self.timing.outstanding
    }

    /// Whether a new write burst can be accepted this cycle (AWREADY).
    pub fn aw_ready(&self) -> bool {
        self.writes.len() < self.timing.outstanding
    }

    /// Present a read burst (AR handshake). Returns `false` if not ready.
    pub fn push_read(&mut self, burst: Burst) -> bool {
        if !self.ar_ready() {
            return false;
        }
        self.reads.push_back(PendingRead {
            countdown: self.timing.read_latency,
            burst,
            next_beat: 0,
            poisoned: false,
        });
        true
    }

    /// Present a write burst with all its data beats (AW + W handshakes).
    /// Returns `false` if not ready.
    pub fn push_write(&mut self, burst: Burst, beats: Vec<WriteBeat>) -> bool {
        if !self.aw_ready() {
            return false;
        }
        self.writes.push_back(PendingWrite {
            burst,
            beats,
            countdown: None,
            poisoned: false,
        });
        true
    }

    /// Pop a read-data beat if one is available (R handshake).
    pub fn pop_read_beat(&mut self) -> Option<ReadBeat> {
        self.read_out.pop_front()
    }

    /// Pop a write response if one is available (B handshake).
    pub fn pop_write_response(&mut self) -> Option<WriteResponse> {
        self.write_resp_out.pop_front()
    }

    /// How many consecutive [`step`](Self::step) calls from this state are
    /// provably pure countdown — no beat emitted, no response queued, no
    /// commit — so a cycle-stepped harness may cross them in one
    /// [`advance_quiet`](Self::advance_quiet). `0` means the next step can
    /// do observable work (or output is already queued and should be
    /// drained); `u64::MAX` means the slave is completely idle and only
    /// the cycle counter would advance.
    pub fn quiet_cycles(&self) -> u64 {
        if !self.read_out.is_empty() || !self.write_resp_out.is_empty() {
            return 0;
        }
        if self.faults.stall_cycles > 0 {
            // a frozen slave does nothing until the stall drains (head-of-
            // line countdowns do not age underneath it)
            return u64::from(self.faults.stall_cycles);
        }
        let read_quiet = self
            .reads
            .front()
            .map(|front| u64::from(front.countdown));
        let write_quiet = self.writes.front().map(|front| match front.countdown {
            // the absorb step itself mutates state observably enough
            // (latency computation, fault consumption) to poll it
            None => 0,
            Some(n) => u64::from(n),
        });
        match (read_quiet, write_quiet) {
            (Some(r), Some(w)) => r.min(w),
            (Some(r), None) => r,
            (None, Some(w)) => w,
            (None, None) => u64::MAX,
        }
    }

    /// Cross `k` quiet cycles in one call: advances the cycle counter and
    /// ages exactly the counters `k` consecutive [`step`](Self::step)
    /// calls would have aged. Callers must keep `k` within
    /// [`quiet_cycles`](Self::quiet_cycles).
    pub fn advance_quiet(&mut self, k: u64) {
        debug_assert!(k <= self.quiet_cycles(), "advance crosses observable work");
        self.cycles += k;
        if self.faults.stall_cycles > 0 {
            self.faults.stall_cycles -= k as u32;
            return;
        }
        if let Some(front) = self.reads.front_mut() {
            front.countdown -= k as u32;
        }
        if let Some(front) = self.writes.front_mut() {
            if let Some(n) = &mut front.countdown {
                *n -= k as u32;
            }
        }
    }

    fn in_range(&self, burst: &Burst) -> bool {
        let end = burst.beat_addr(burst.beats - 1) + u64::from(burst.beat_bytes);
        end <= self.data.len() as u64 && burst.beat_addr(0) < self.data.len() as u64
    }

    /// Advance one clock cycle: age latencies, emit at most one read beat
    /// and one write response.
    pub fn step(&mut self) {
        self.cycles += 1;
        // A stalled slave is completely frozen: latencies do not age and
        // nothing is emitted until the stall drains.
        if self.faults.stall_cycles > 0 {
            self.faults.stall_cycles -= 1;
            return;
        }
        // Read path: head-of-line burst streams beats after its latency.
        let emit = match self.reads.front_mut() {
            Some(front) if front.countdown > 0 => {
                front.countdown -= 1;
                None
            }
            Some(front) => {
                if front.next_beat == 0 && self.faults.read_slverrs > 0 {
                    self.faults.read_slverrs -= 1;
                    front.poisoned = true;
                }
                Some((front.burst.clone(), front.next_beat, front.poisoned))
            }
            None => None,
        };
        if let Some((burst, i, poisoned)) = emit {
            let (resp, bytes) = if poisoned {
                (Response::SlvErr, vec![0u8; burst.beat_bytes as usize])
            } else if !self.in_range(&burst) {
                (Response::DecErr, vec![0u8; burst.beat_bytes as usize])
            } else {
                let a = burst.beat_addr(i) as usize;
                (
                    Response::Okay,
                    self.data[a..a + burst.beat_bytes as usize].to_vec(),
                )
            };
            let last = i + 1 == burst.beats;
            self.read_out.push_back(ReadBeat {
                id: burst.id,
                data: bytes,
                resp,
                last,
            });
            self.beats_served += 1;
            if last {
                self.reads.pop_front();
            } else {
                let front = self.reads.front_mut().expect("burst still pending");
                front.next_beat += 1;
                front.countdown = self.timing.beat_gap;
            }
        }
        // Write path: head-of-line burst commits after its latency.
        let commit = match self.writes.front_mut() {
            Some(front) => match &mut front.countdown {
                None => {
                    if self.faults.write_slverrs > 0 {
                        self.faults.write_slverrs -= 1;
                        front.poisoned = true;
                    }
                    // absorb data beats: 1 per cycle + gap
                    let absorbed = front.beats.len() as u32;
                    front.countdown = Some(
                        self.timing.write_latency
                            + absorbed.saturating_sub(1) * (1 + self.timing.beat_gap),
                    );
                    false
                }
                Some(0) => true,
                Some(n) => {
                    *n -= 1;
                    false
                }
            },
            None => false,
        };
        if commit {
            let pw = self.writes.pop_front().expect("front exists");
            let resp = if pw.poisoned {
                Response::SlvErr
            } else if !self.in_range(&pw.burst) {
                Response::DecErr
            } else {
                for (i, beat) in pw.beats.iter().enumerate() {
                    let a = pw.burst.beat_addr(i as u16) as usize;
                    for (j, (&byte, &st)) in beat.data.iter().zip(beat.strobe.iter()).enumerate() {
                        if st {
                            self.data[a + j] = byte;
                        }
                    }
                    self.beats_served += 1;
                }
                Response::Okay
            };
            self.write_resp_out.push_back(WriteResponse {
                id: pw.burst.id,
                resp,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::BurstType;

    fn beat(data: Vec<u8>, last: bool) -> WriteBeat {
        let strobe = vec![true; data.len()];
        WriteBeat { data, strobe, last }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut m = AxiMemory::new(4096, MemoryTiming::default());
        let wb = Burst::new(1, 0x100, 2, 4, BurstType::Incr).unwrap();
        assert!(m.push_write(
            wb,
            vec![beat(vec![1, 2, 3, 4], false), beat(vec![5, 6, 7, 8], true)]
        ));
        for _ in 0..100 {
            m.step();
        }
        let resp = m.pop_write_response().unwrap();
        assert_eq!(resp.resp, Response::Okay);
        assert_eq!(m.peek(0x100, 8), &[1, 2, 3, 4, 5, 6, 7, 8]);

        let rb = Burst::new(2, 0x100, 2, 4, BurstType::Incr).unwrap();
        assert!(m.push_read(rb));
        let mut beats = Vec::new();
        for _ in 0..100 {
            m.step();
            while let Some(b) = m.pop_read_beat() {
                beats.push(b);
            }
        }
        assert_eq!(beats.len(), 2);
        assert_eq!(beats[0].data, vec![1, 2, 3, 4]);
        assert!(beats[1].last);
    }

    #[test]
    fn read_latency_respected() {
        let timing = MemoryTiming {
            read_latency: 20,
            ..MemoryTiming::default()
        };
        let mut m = AxiMemory::new(4096, timing);
        m.push_read(Burst::new(0, 0, 1, 4, BurstType::Incr).unwrap());
        let mut first_beat_cycle = None;
        for c in 0..100 {
            m.step();
            if m.pop_read_beat().is_some() {
                first_beat_cycle = Some(c);
                break;
            }
        }
        assert_eq!(first_beat_cycle, Some(20));
    }

    #[test]
    fn strobes_mask_bytes() {
        let mut m = AxiMemory::new(64, MemoryTiming::ideal());
        m.poke(0, &[0xAA; 8]);
        let wb = Burst::new(0, 0, 1, 8, BurstType::Incr).unwrap();
        let strobe = vec![true, false, true, false, false, false, false, true];
        m.push_write(
            wb,
            vec![WriteBeat {
                data: vec![1, 2, 3, 4, 5, 6, 7, 8],
                strobe,
                last: true,
            }],
        );
        for _ in 0..20 {
            m.step();
        }
        assert_eq!(m.peek(0, 8), &[1, 0xAA, 3, 0xAA, 0xAA, 0xAA, 0xAA, 8]);
    }

    #[test]
    fn out_of_range_gets_decerr() {
        let mut m = AxiMemory::new(64, MemoryTiming::ideal());
        m.push_read(Burst::new(0, 4096, 1, 4, BurstType::Incr).unwrap());
        let mut got = None;
        for _ in 0..20 {
            m.step();
            if let Some(b) = m.pop_read_beat() {
                got = Some(b);
                break;
            }
        }
        assert_eq!(got.unwrap().resp, Response::DecErr);
    }

    #[test]
    fn injected_read_slverr_poisons_exactly_one_burst() {
        let mut m = AxiMemory::new(64, MemoryTiming::ideal());
        m.poke(0, &[7; 8]);
        m.inject_read_slverr(1);
        let run = |m: &mut AxiMemory, id| {
            m.push_read(Burst::new(id, 0, 2, 4, BurstType::Incr).unwrap());
            let mut beats = Vec::new();
            for _ in 0..50 {
                m.step();
                while let Some(b) = m.pop_read_beat() {
                    beats.push(b);
                }
            }
            beats
        };
        let poisoned = run(&mut m, 0);
        assert!(poisoned.iter().all(|b| b.resp == Response::SlvErr));
        assert!(poisoned.iter().all(|b| b.data.iter().all(|&x| x == 0)));
        let clean = run(&mut m, 1);
        assert!(clean.iter().all(|b| b.resp == Response::Okay));
        assert_eq!(clean[0].data, vec![7; 4]);
    }

    #[test]
    fn injected_write_slverr_blocks_commit() {
        let mut m = AxiMemory::new(64, MemoryTiming::ideal());
        m.poke(0, &[0xAA; 4]);
        m.inject_write_slverr(1);
        let wb = Burst::new(0, 0, 1, 4, BurstType::Incr).unwrap();
        m.push_write(wb, vec![beat(vec![1, 2, 3, 4], true)]);
        for _ in 0..20 {
            m.step();
        }
        assert_eq!(m.pop_write_response().unwrap().resp, Response::SlvErr);
        assert_eq!(m.peek(0, 4), &[0xAA; 4], "poisoned write must not commit");
        // A second, clean write commits normally.
        let wb = Burst::new(1, 0, 1, 4, BurstType::Incr).unwrap();
        m.push_write(wb, vec![beat(vec![1, 2, 3, 4], true)]);
        for _ in 0..20 {
            m.step();
        }
        assert_eq!(m.pop_write_response().unwrap().resp, Response::Okay);
        assert_eq!(m.peek(0, 4), &[1, 2, 3, 4]);
    }

    #[test]
    fn stall_freezes_latency_aging() {
        let timing = MemoryTiming {
            read_latency: 5,
            ..MemoryTiming::ideal()
        };
        let mut m = AxiMemory::new(64, timing);
        m.inject_stall(10);
        m.push_read(Burst::new(0, 0, 1, 4, BurstType::Incr).unwrap());
        let mut first = None;
        for c in 0..100 {
            m.step();
            if m.pop_read_beat().is_some() {
                first = Some(c);
                break;
            }
        }
        // 10 frozen cycles + the usual 5-cycle latency.
        assert_eq!(first, Some(15));
    }

    #[test]
    fn outstanding_limit_backpressures() {
        let timing = MemoryTiming {
            outstanding: 2,
            read_latency: 50,
            ..MemoryTiming::default()
        };
        let mut m = AxiMemory::new(4096, timing);
        let b = |id| Burst::new(id, 0, 1, 4, BurstType::Incr).unwrap();
        assert!(m.push_read(b(0)));
        assert!(m.push_read(b(1)));
        assert!(!m.push_read(b(2)), "third outstanding read refused");
        assert!(!m.ar_ready());
    }
}
