//! Accelerator-side cache with prefetch — the extension Section II of the
//! paper plans for Bambu's AXI subsystem: "adding support for prefetching
//! and caching mechanisms might drastically reduce the average access time.
//! Furthermore, Bambu will be extended to support the customization of
//! cache sizes, associativity, and other features".
//!
//! [`AxiCache`] sits between an accelerator's byte-level requests and the
//! [`AxiTestbench`] bus: set-associative with LRU replacement,
//! write-through with write-around, line-granular fills, and optional
//! next-line prefetch. [`CacheConfig`] exposes exactly the knobs the paper
//! names (size, associativity, line length, prefetch).

use crate::testbench::AxiTestbench;
use crate::AxiError;

/// Cache geometry and policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Bytes per line (power of two).
    pub line_bytes: u32,
    /// Number of sets (power of two).
    pub sets: u32,
    /// Ways per set.
    pub ways: u32,
    /// Fetch line `n+1` in the background after a miss on line `n`.
    pub prefetch_next_line: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            line_bytes: 64,
            sets: 16,
            ways: 2,
            prefetch_next_line: true,
        }
    }
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> u32 {
        self.line_bytes * self.sets * self.ways
    }
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Read requests served from the cache.
    pub hits: u64,
    /// Read requests that went to the bus.
    pub misses: u64,
    /// Lines brought in by prefetch.
    pub prefetches: u64,
    /// Prefetched lines that were later hit.
    pub prefetch_hits: u64,
    /// Write-throughs performed.
    pub writes: u64,
}

impl CacheStats {
    /// Hit rate over all reads.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    valid: bool,
    data: Vec<u8>,
    lru: u64,
    prefetched: bool,
}

/// The cache.
#[derive(Debug, Clone)]
pub struct AxiCache {
    config: CacheConfig,
    lines: Vec<Line>, // sets * ways
    tick: u64,
    /// Statistics.
    pub stats: CacheStats,
}

impl AxiCache {
    /// Build a cache.
    ///
    /// # Panics
    ///
    /// Panics unless line bytes and set count are nonzero powers of two and
    /// there is at least one way.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_bytes.is_power_of_two() && config.line_bytes > 0);
        assert!(config.sets.is_power_of_two() && config.sets > 0);
        assert!(config.ways > 0);
        AxiCache {
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    data: vec![0; config.line_bytes as usize],
                    lru: 0,
                    prefetched: false,
                };
                (config.sets * config.ways) as usize
            ],
            config,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / u64::from(self.config.line_bytes)) % u64::from(self.config.sets)) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / u64::from(self.config.line_bytes) / u64::from(self.config.sets)
    }

    fn find(&mut self, addr: u64) -> Option<usize> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.config.ways as usize;
        (base..base + self.config.ways as usize)
            .find(|&i| self.lines[i].valid && self.lines[i].tag == tag)
    }

    fn victim(&self, addr: u64) -> usize {
        let set = self.set_of(addr);
        let base = set * self.config.ways as usize;
        (base..base + self.config.ways as usize)
            .min_by_key(|&i| {
                if self.lines[i].valid {
                    self.lines[i].lru
                } else {
                    0 // invalid lines are free victims
                }
            })
            .expect("ways >= 1")
    }

    fn fill(
        &mut self,
        bus: &mut AxiTestbench,
        line_addr: u64,
        prefetched: bool,
    ) -> Result<usize, AxiError> {
        let lb = u64::from(self.config.line_bytes);
        let (data, _) = bus.read_blocking(line_addr, lb as usize)?;
        let idx = self.victim(line_addr);
        self.tick += 1;
        let tag = self.tag_of(line_addr);
        let line = &mut self.lines[idx];
        line.tag = tag;
        line.valid = true;
        line.data = data;
        line.lru = self.tick;
        line.prefetched = prefetched;
        Ok(idx)
    }

    /// Read `len` bytes at `addr` through the cache; returns the data.
    ///
    /// Accesses crossing a line boundary are split.
    ///
    /// # Errors
    ///
    /// Propagates bus errors from line fills.
    pub fn read(
        &mut self,
        bus: &mut AxiTestbench,
        addr: u64,
        len: usize,
    ) -> Result<Vec<u8>, AxiError> {
        let lb = u64::from(self.config.line_bytes);
        let mut out = Vec::with_capacity(len);
        let mut cur = addr;
        let end = addr + len as u64;
        while cur < end {
            let line_addr = cur / lb * lb;
            let take = ((line_addr + lb).min(end) - cur) as usize;
            let idx = match self.find(cur) {
                Some(i) => {
                    self.stats.hits += 1;
                    self.tick += 1;
                    if self.lines[i].prefetched {
                        self.stats.prefetch_hits += 1;
                        self.lines[i].prefetched = false;
                    }
                    self.lines[i].lru = self.tick;
                    i
                }
                None => {
                    self.stats.misses += 1;
                    let i = self.fill(bus, line_addr, false)?;
                    if self.config.prefetch_next_line {
                        let next = line_addr + lb;
                        if self.find(next).is_none() {
                            self.fill(bus, next, true)?;
                            self.stats.prefetches += 1;
                        }
                    }
                    i
                }
            };
            let off = (cur - line_addr) as usize;
            out.extend_from_slice(&self.lines[idx].data[off..off + take]);
            cur += take as u64;
        }
        Ok(out)
    }

    /// Write-through with write-around (no allocation on write miss; hits
    /// update the cached copy to stay coherent).
    ///
    /// # Errors
    ///
    /// Propagates bus errors.
    pub fn write(
        &mut self,
        bus: &mut AxiTestbench,
        addr: u64,
        data: &[u8],
    ) -> Result<(), AxiError> {
        bus.write_blocking(addr, data)?;
        self.stats.writes += 1;
        // coherence: patch any cached bytes in the written range
        let lb = u64::from(self.config.line_bytes);
        let mut cur = addr;
        let end = addr + data.len() as u64;
        while cur < end {
            let line_addr = cur / lb * lb;
            let take = ((line_addr + lb).min(end) - cur) as usize;
            if let Some(i) = self.find(cur) {
                let off = (cur - line_addr) as usize;
                let src = ((cur - addr) as usize)..((cur - addr) as usize + take);
                self.lines[i].data[off..off + take].copy_from_slice(&data[src]);
            }
            cur += take as u64;
        }
        Ok(())
    }

    /// Drop every line (e.g. when the host rewrites a buffer).
    pub fn invalidate_all(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryTiming;

    fn bus_with_pattern(size: usize) -> AxiTestbench {
        let mut tb = AxiTestbench::new(size, MemoryTiming::default());
        for i in 0..size {
            tb.memory_mut().poke(i as u64, &[(i % 251) as u8]);
        }
        tb
    }

    #[test]
    fn reads_are_correct_and_hit_after_fill() {
        let mut bus = bus_with_pattern(8192);
        let mut cache = AxiCache::new(CacheConfig::default());
        let a = cache.read(&mut bus, 100, 40).unwrap();
        let expected: Vec<u8> = (100..140).map(|i| (i % 251) as u8).collect();
        assert_eq!(a, expected);
        assert!(cache.stats.misses >= 1);
        let hits_before = cache.stats.hits;
        let b = cache.read(&mut bus, 100, 40).unwrap();
        assert_eq!(b, expected);
        assert!(cache.stats.hits > hits_before, "second read hits");
    }

    #[test]
    fn sequential_scan_benefits_from_prefetch() {
        let mut bus = bus_with_pattern(16 * 1024);
        let mut with = AxiCache::new(CacheConfig {
            prefetch_next_line: true,
            ..CacheConfig::default()
        });
        let mut without = AxiCache::new(CacheConfig {
            prefetch_next_line: false,
            ..CacheConfig::default()
        });
        let mut bus2 = bus_with_pattern(16 * 1024);
        for i in 0..512u64 {
            with.read(&mut bus, i * 4, 4).unwrap();
            without.read(&mut bus2, i * 4, 4).unwrap();
        }
        assert!(with.stats.prefetch_hits > 0);
        assert!(
            with.stats.misses < without.stats.misses,
            "prefetch should cut demand misses: {} vs {}",
            with.stats.misses,
            without.stats.misses
        );
    }

    #[test]
    fn write_through_keeps_coherence() {
        let mut bus = bus_with_pattern(4096);
        let mut cache = AxiCache::new(CacheConfig::default());
        cache.read(&mut bus, 200, 16).unwrap(); // fill
        cache.write(&mut bus, 204, &[0xAA, 0xBB]).unwrap();
        let data = cache.read(&mut bus, 200, 16).unwrap();
        assert_eq!(data[4], 0xAA);
        assert_eq!(data[5], 0xBB);
        // memory also updated (write-through)
        assert_eq!(bus.memory().peek(204, 2), &[0xAA, 0xBB]);
    }

    #[test]
    fn line_crossing_reads_split_correctly() {
        let mut bus = bus_with_pattern(4096);
        let mut cache = AxiCache::new(CacheConfig {
            line_bytes: 16,
            sets: 4,
            ways: 1,
            prefetch_next_line: false,
        });
        let got = cache.read(&mut bus, 10, 20).unwrap(); // spans 2-3 lines
        let expected: Vec<u8> = (10..30).map(|i| (i % 251) as u8).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn associativity_prevents_thrash() {
        // two addresses mapping to the same set
        let cfg_direct = CacheConfig {
            line_bytes: 16,
            sets: 4,
            ways: 1,
            prefetch_next_line: false,
        };
        let cfg_assoc = CacheConfig {
            ways: 2,
            ..cfg_direct
        };
        let stride = u64::from(cfg_direct.line_bytes * cfg_direct.sets);
        let mut direct = AxiCache::new(cfg_direct);
        let mut assoc = AxiCache::new(cfg_assoc);
        let mut bus1 = bus_with_pattern(8192);
        let mut bus2 = bus_with_pattern(8192);
        for _ in 0..8 {
            direct.read(&mut bus1, 0, 4).unwrap();
            direct.read(&mut bus1, stride, 4).unwrap();
            assoc.read(&mut bus2, 0, 4).unwrap();
            assoc.read(&mut bus2, stride, 4).unwrap();
        }
        assert!(
            assoc.stats.misses < direct.stats.misses,
            "2-way should stop the ping-pong: {} vs {}",
            assoc.stats.misses,
            direct.stats.misses
        );
        assert!(assoc.stats.hit_rate() > direct.stats.hit_rate());
    }

    #[test]
    fn invalidate_forces_refetch() {
        let mut bus = bus_with_pattern(4096);
        let mut cache = AxiCache::new(CacheConfig::default());
        cache.read(&mut bus, 0, 8).unwrap();
        bus.memory_mut().poke(0, &[0xEE]);
        // stale without invalidation
        assert_ne!(cache.read(&mut bus, 0, 1).unwrap()[0], 0xEE);
        cache.invalidate_all();
        assert_eq!(cache.read(&mut bus, 0, 1).unwrap()[0], 0xEE);
    }
}
