//! # hermes-axi
//!
//! Channel-accurate AXI4 bus model for the HERMES ecosystem.
//!
//! The paper's Bambu integration "supports the creation of a testbench that
//! includes the AXI4 slave counterparts of the master interfaces, so that
//! data exchange can be simulated to verify its correctness. Memory delay
//! estimates can also be configured to assess the performance of the
//! application considering also data transfers. The generated interface code
//! is fully functional and supports unaligned memory accesses."
//!
//! This crate provides exactly that substrate:
//!
//! * [`transaction`] — burst descriptors (INCR/WRAP/FIXED, 1–256 beats,
//!   1–128 byte beats, write strobes);
//! * [`master`] — an AXI4 master engine that splits byte-level requests
//!   (including unaligned ones) into legal bursts;
//! * [`memory`] — a latency-configurable slave memory;
//! * [`checker`] — a protocol monitor enforcing the AXI4 rules the ARM
//!   specification mandates (4 KiB boundary, WLAST placement, beat counts);
//! * [`testbench`] — a cycle-stepped harness wiring master to slave and
//!   collecting latency/bandwidth statistics;
//! * [`cache`] — the prefetching accelerator-side cache of the paper's
//!   planned extensions, with configurable size and associativity.
//!
//! ## Example
//!
//! ```
//! use hermes_axi::testbench::AxiTestbench;
//! use hermes_axi::memory::MemoryTiming;
//!
//! # fn main() -> Result<(), hermes_axi::AxiError> {
//! let mut tb = AxiTestbench::new(64 * 1024, MemoryTiming::default());
//! tb.write_blocking(0x103, &[1, 2, 3, 4, 5])?; // unaligned write
//! let (data, _cycles) = tb.read_blocking(0x103, 5)?;
//! assert_eq!(data, vec![1, 2, 3, 4, 5]);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod checker;
pub mod master;
pub mod memory;
pub mod testbench;
pub mod transaction;

use std::fmt;

/// Errors produced by the AXI model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxiError {
    /// A burst descriptor violates the AXI4 rules.
    IllegalBurst {
        /// Which rule is broken.
        rule: String,
    },
    /// An access fell outside the slave's address range.
    Decode {
        /// Offending address.
        addr: u64,
    },
    /// The slave returned an error response.
    SlaveError {
        /// Offending address.
        addr: u64,
    },
    /// A blocking operation exceeded its cycle budget.
    Timeout {
        /// Cycles waited.
        cycles: u64,
    },
    /// The protocol checker observed a violation.
    Protocol {
        /// Description of the violation.
        violation: String,
    },
}

impl fmt::Display for AxiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxiError::IllegalBurst { rule } => write!(f, "illegal AXI burst: {rule}"),
            AxiError::Decode { addr } => write!(f, "decode error at {addr:#x}"),
            AxiError::SlaveError { addr } => write!(f, "slave error at {addr:#x}"),
            AxiError::Timeout { cycles } => write!(f, "bus timeout after {cycles} cycles"),
            AxiError::Protocol { violation } => write!(f, "protocol violation: {violation}"),
        }
    }
}

impl std::error::Error for AxiError {}
