//! AXI4 burst descriptors and responses.

use crate::AxiError;

/// AXI4 burst type (AxBURST).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BurstType {
    /// Fixed address every beat (FIFO-style).
    Fixed,
    /// Incrementing address (the common case).
    #[default]
    Incr,
    /// Wrapping burst (cache-line fills); length must be 2, 4, 8, or 16.
    Wrap,
}

/// AXI4 response code (xRESP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Response {
    /// OKAY.
    #[default]
    Okay,
    /// SLVERR — slave reached but errored.
    SlvErr,
    /// DECERR — no slave at this address.
    DecErr,
}

/// One read or write burst, as carried on the AR/AW channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Burst {
    /// Transaction id (AxID).
    pub id: u16,
    /// Start address (AxADDR).
    pub addr: u64,
    /// Beats in the burst, 1..=256 (AxLEN + 1).
    pub beats: u16,
    /// Bytes per beat, power of two 1..=128 (decoded AxSIZE).
    pub beat_bytes: u8,
    /// Burst type (AxBURST).
    pub burst: BurstType,
}

impl Burst {
    /// Construct and validate a burst descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`AxiError::IllegalBurst`] when the descriptor violates the
    /// AXI4 specification: beat counts out of range, non-power-of-two beat
    /// size, INCR bursts crossing a 4 KiB boundary, WRAP bursts with illegal
    /// length or unaligned start.
    pub fn new(
        id: u16,
        addr: u64,
        beats: u16,
        beat_bytes: u8,
        burst: BurstType,
    ) -> Result<Self, AxiError> {
        let err = |rule: &str| AxiError::IllegalBurst { rule: rule.into() };
        if beats == 0 || beats > 256 {
            return Err(err("burst length must be 1..=256 beats"));
        }
        if !beat_bytes.is_power_of_two() || beat_bytes > 128 {
            return Err(err("beat size must be a power of two up to 128 bytes"));
        }
        match burst {
            BurstType::Incr => {
                let aligned_start = addr & !u64::from(beat_bytes - 1);
                let end = aligned_start + u64::from(beats) * u64::from(beat_bytes) - 1;
                if addr >> 12 != end >> 12 {
                    return Err(err("INCR burst must not cross a 4 KiB boundary"));
                }
            }
            BurstType::Wrap => {
                if !matches!(beats, 2 | 4 | 8 | 16) {
                    return Err(err("WRAP burst length must be 2, 4, 8, or 16"));
                }
                if !addr.is_multiple_of(u64::from(beat_bytes)) {
                    return Err(err("WRAP burst start must be size-aligned"));
                }
            }
            BurstType::Fixed => {
                if beats > 16 {
                    return Err(err("FIXED burst length must be 1..=16"));
                }
            }
        }
        Ok(Burst {
            id,
            addr,
            beats,
            beat_bytes,
            burst,
        })
    }

    /// Address of beat `i` (0-based), applying the burst addressing rules.
    pub fn beat_addr(&self, i: u16) -> u64 {
        let size = u64::from(self.beat_bytes);
        match self.burst {
            BurstType::Fixed => self.addr,
            BurstType::Incr => (self.addr & !(size - 1)) + u64::from(i) * size,
            BurstType::Wrap => {
                let container = size * u64::from(self.beats);
                let base = self.addr & !(container - 1);
                let offset = (self.addr - base + u64::from(i) * size) % container;
                base + offset
            }
        }
    }

    /// Total bytes covered by the burst.
    pub fn total_bytes(&self) -> u64 {
        u64::from(self.beats) * u64::from(self.beat_bytes)
    }
}

/// One write-data beat (W channel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteBeat {
    /// Data bytes, `beat_bytes` long.
    pub data: Vec<u8>,
    /// Per-byte write strobes (WSTRB); `strobe[i]` gates `data[i]`.
    pub strobe: Vec<bool>,
    /// WLAST flag.
    pub last: bool,
}

/// One read-data beat (R channel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadBeat {
    /// Transaction id (RID).
    pub id: u16,
    /// Data bytes.
    pub data: Vec<u8>,
    /// Response code.
    pub resp: Response,
    /// RLAST flag.
    pub last: bool,
}

/// A write response (B channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteResponse {
    /// Transaction id (BID).
    pub id: u16,
    /// Response code.
    pub resp: Response,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incr_addressing() {
        let b = Burst::new(0, 0x1000, 4, 8, BurstType::Incr).unwrap();
        assert_eq!(b.beat_addr(0), 0x1000);
        assert_eq!(b.beat_addr(3), 0x1018);
        assert_eq!(b.total_bytes(), 32);
    }

    #[test]
    fn incr_unaligned_start_aligns_following_beats() {
        let b = Burst::new(0, 0x1003, 2, 4, BurstType::Incr).unwrap();
        assert_eq!(b.beat_addr(0), 0x1000);
        assert_eq!(b.beat_addr(1), 0x1004);
    }

    #[test]
    fn fixed_addressing_repeats() {
        let b = Burst::new(0, 0x2000, 4, 4, BurstType::Fixed).unwrap();
        for i in 0..4 {
            assert_eq!(b.beat_addr(i), 0x2000);
        }
    }

    #[test]
    fn wrap_addressing_wraps() {
        // 4 beats x 4 bytes = 16-byte container; start mid-container
        let b = Burst::new(0, 0x1008, 4, 4, BurstType::Wrap).unwrap();
        assert_eq!(b.beat_addr(0), 0x1008);
        assert_eq!(b.beat_addr(1), 0x100C);
        assert_eq!(b.beat_addr(2), 0x1000); // wrapped
        assert_eq!(b.beat_addr(3), 0x1004);
    }

    #[test]
    fn boundary_4k_enforced() {
        // 0xFE0 + 16 beats x 8 bytes ends at 0x1060: crosses 4K
        let e = Burst::new(0, 0xFE0, 16, 8, BurstType::Incr).unwrap_err();
        assert!(matches!(e, AxiError::IllegalBurst { .. }));
        // exactly up to the boundary is fine
        Burst::new(0, 0xF80, 16, 8, BurstType::Incr).unwrap();
    }

    #[test]
    fn wrap_length_restricted() {
        assert!(Burst::new(0, 0, 3, 4, BurstType::Wrap).is_err());
        assert!(Burst::new(0, 2, 4, 4, BurstType::Wrap).is_err()); // unaligned
        assert!(Burst::new(0, 0, 16, 4, BurstType::Wrap).is_ok());
    }

    #[test]
    fn size_and_length_validation() {
        assert!(Burst::new(0, 0, 0, 4, BurstType::Incr).is_err());
        assert!(Burst::new(0, 0, 1, 3, BurstType::Incr).is_err());
        assert!(Burst::new(0, 0, 1, 0, BurstType::Incr).is_err());
        assert!(Burst::new(0, 0, 17, 4, BurstType::Fixed).is_err());
        // 256 beats of 1 byte stays within 4K
        assert!(Burst::new(0, 0, 256, 1, BurstType::Incr).is_ok());
    }
}
