//! AXI4 master engine: byte-level requests to legal burst plans.
//!
//! The master performs the job of Bambu's generated AXI controller modules:
//! the user asks for "read/write N bytes at address A" with no protocol
//! knowledge, and the engine splits the request into specification-legal
//! bursts — aligning beats to the bus width, masking head/tail bytes with
//! write strobes (unaligned support), capping burst length at 256 beats,
//! and never crossing a 4 KiB boundary.

use crate::transaction::{Burst, BurstType, WriteBeat};
use crate::AxiError;

/// A planned read burst plus the byte range of interest within it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadPlan {
    /// The burst to issue.
    pub burst: Burst,
    /// Offset of the first wanted byte within the burst data.
    pub skip: usize,
    /// Number of wanted bytes.
    pub take: usize,
}

/// The master engine configuration.
#[derive(Debug, Clone)]
pub struct AxiMaster {
    /// Data-bus width in bytes (power of two, 1..=128).
    pub bus_bytes: u8,
    next_id: u16,
}

impl AxiMaster {
    /// Create a master for a bus of `bus_bytes` bytes per beat.
    ///
    /// # Panics
    ///
    /// Panics if `bus_bytes` is not a power of two in 1..=128.
    pub fn new(bus_bytes: u8) -> Self {
        assert!(
            bus_bytes.is_power_of_two() && bus_bytes <= 128,
            "bus width must be a power of two up to 128 bytes"
        );
        AxiMaster {
            bus_bytes,
            next_id: 0,
        }
    }

    fn alloc_id(&mut self) -> u16 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        id
    }

    /// Split `[addr, addr + len)` into chunks that each stay within one
    /// 4 KiB page and one 256-beat burst.
    fn chunk(&self, addr: u64, len: usize) -> Vec<(u64, usize)> {
        let bb = u64::from(self.bus_bytes);
        let max_burst_bytes = 256 * bb;
        let mut chunks = Vec::new();
        let mut cur = addr;
        let mut remaining = len as u64;
        while remaining > 0 {
            let page_end = (cur | 0xFFF) + 1;
            let aligned = cur & !(bb - 1);
            let burst_cap = aligned + max_burst_bytes - cur;
            let n = remaining.min(page_end - cur).min(burst_cap);
            chunks.push((cur, n as usize));
            cur += n;
            remaining -= n;
        }
        chunks
    }

    /// Plan the bursts for a read of `len` bytes at `addr` (any alignment).
    ///
    /// # Errors
    ///
    /// Propagates burst-validation failures (should not occur for plans
    /// produced here; the validation is defense in depth).
    pub fn plan_read(&mut self, addr: u64, len: usize) -> Result<Vec<ReadPlan>, AxiError> {
        let bb = u64::from(self.bus_bytes);
        let mut plans = Vec::new();
        for (a, n) in self.chunk(addr, len) {
            let start_aligned = a & !(bb - 1);
            let end = a + n as u64;
            let end_aligned = end.div_ceil(bb) * bb;
            let beats = ((end_aligned - start_aligned) / bb) as u16;
            let burst = Burst::new(self.alloc_id(), a, beats, self.bus_bytes, BurstType::Incr)?;
            plans.push(ReadPlan {
                burst,
                skip: (a - start_aligned) as usize,
                take: n,
            });
        }
        Ok(plans)
    }

    /// Plan the bursts and strobed data beats for a write of `data` at
    /// `addr` (any alignment).
    ///
    /// # Errors
    ///
    /// Propagates burst-validation failures (defense in depth).
    pub fn plan_write(
        &mut self,
        addr: u64,
        data: &[u8],
    ) -> Result<Vec<(Burst, Vec<WriteBeat>)>, AxiError> {
        let bb = u64::from(self.bus_bytes);
        let mut out = Vec::new();
        let mut consumed = 0usize;
        for (a, n) in self.chunk(addr, data.len()) {
            let start_aligned = a & !(bb - 1);
            let end = a + n as u64;
            let end_aligned = end.div_ceil(bb) * bb;
            let beats = ((end_aligned - start_aligned) / bb) as u16;
            let burst = Burst::new(self.alloc_id(), a, beats, self.bus_bytes, BurstType::Incr)?;
            let chunk = &data[consumed..consumed + n];
            consumed += n;
            let mut beat_vec = Vec::with_capacity(beats as usize);
            for i in 0..beats {
                let beat_start = start_aligned + u64::from(i) * bb;
                let mut bytes = vec![0u8; self.bus_bytes as usize];
                let mut strobe = vec![false; self.bus_bytes as usize];
                for j in 0..bb {
                    let byte_addr = beat_start + j;
                    if byte_addr >= a && byte_addr < end {
                        bytes[j as usize] = chunk[(byte_addr - a) as usize];
                        strobe[j as usize] = true;
                    }
                }
                beat_vec.push(WriteBeat {
                    data: bytes,
                    strobe,
                    last: i + 1 == beats,
                });
            }
            out.push((burst, beat_vec));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_read_single_burst() {
        let mut m = AxiMaster::new(8);
        let plans = m.plan_read(0x100, 64).unwrap();
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].burst.beats, 8);
        assert_eq!(plans[0].skip, 0);
        assert_eq!(plans[0].take, 64);
    }

    #[test]
    fn unaligned_read_pads_beats() {
        let mut m = AxiMaster::new(8);
        let plans = m.plan_read(0x103, 10).unwrap();
        assert_eq!(plans.len(), 1);
        // bytes 0x103..0x10D span beats 0x100..0x110 -> 2 beats
        assert_eq!(plans[0].burst.beats, 2);
        assert_eq!(plans[0].skip, 3);
        assert_eq!(plans[0].take, 10);
    }

    #[test]
    fn page_crossing_splits() {
        let mut m = AxiMaster::new(8);
        let plans = m.plan_read(0xFF8, 16).unwrap();
        assert_eq!(plans.len(), 2, "crosses 4K page");
        assert_eq!(plans[0].burst.addr, 0xFF8);
        assert_eq!(plans[1].burst.addr, 0x1000);
    }

    #[test]
    fn long_transfer_splits_at_256_beats() {
        let mut m = AxiMaster::new(1);
        // 300 bytes on a 1-byte bus = more than 256 beats
        let plans = m.plan_read(0, 300).unwrap();
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].burst.beats, 256);
        assert_eq!(plans[1].burst.beats, 44);
    }

    #[test]
    fn unaligned_write_strobes_head_and_tail() {
        let mut m = AxiMaster::new(4);
        let plans = m.plan_write(0x102, &[0xAA, 0xBB, 0xCC]).unwrap();
        assert_eq!(plans.len(), 1);
        let (burst, beats) = &plans[0];
        assert_eq!(burst.beats, 2);
        // beat 0 covers 0x100..0x104: strobes on bytes 2, 3
        assert_eq!(beats[0].strobe, vec![false, false, true, true]);
        assert_eq!(beats[0].data[2], 0xAA);
        assert_eq!(beats[0].data[3], 0xBB);
        // beat 1 covers 0x104..0x108: strobe on byte 0
        assert_eq!(beats[1].strobe, vec![true, false, false, false]);
        assert_eq!(beats[1].data[0], 0xCC);
        assert!(beats[1].last);
        assert!(!beats[0].last);
    }

    #[test]
    fn all_planned_bursts_are_legal() {
        let mut m = AxiMaster::new(16);
        for addr in [0u64, 1, 7, 0xFFD, 0x1FFE, 12345] {
            for len in [1usize, 3, 16, 100, 5000] {
                let plans = m.plan_read(addr, len).unwrap();
                let total: usize = plans.iter().map(|p| p.take).sum();
                assert_eq!(total, len);
                let writes = m.plan_write(addr, &vec![0x5A; len]).unwrap();
                let wrote: usize = writes
                    .iter()
                    .flat_map(|(_, beats)| beats.iter())
                    .map(|b| b.strobe.iter().filter(|&&s| s).count())
                    .sum();
                assert_eq!(wrote, len);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_bus_width_panics() {
        let _ = AxiMaster::new(3);
    }
}
