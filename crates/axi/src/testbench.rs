//! Cycle-stepped master↔slave testbench.
//!
//! [`AxiTestbench`] wires an [`AxiMaster`] plan generator to an
//! [`AxiMemory`] slave through the [`ProtocolChecker`], advancing both one
//! clock at a time — the simulated counterpart of the AXI4 testbench Bambu
//! generates around HLS accelerators. Blocking helpers measure exact cycle
//! costs so accelerator models can account for data transfer time.

use crate::checker::ProtocolChecker;
use crate::master::AxiMaster;
use crate::memory::{AxiMemory, MemoryTiming};
use crate::transaction::Response;
use crate::AxiError;
use hermes_kernel::{DomainId, DomainRegistry, Scheduler, WheelStats};

/// Aggregated traffic statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BusStats {
    /// Total bus cycles elapsed.
    pub cycles: u64,
    /// Bytes read by the master.
    pub bytes_read: u64,
    /// Bytes written by the master.
    pub bytes_written: u64,
    /// Read bursts issued.
    pub read_bursts: u64,
    /// Write bursts issued.
    pub write_bursts: u64,
    /// Sum of per-read-request latencies (first request to last beat).
    pub total_read_latency: u64,
    /// Transactions re-issued after a recoverable error.
    pub retries: u64,
    /// SLVERR responses observed (before any retry).
    pub slverrs: u64,
    /// Timeouts observed (before any retry).
    pub timeouts: u64,
    /// Transactions abandoned after exhausting the retry budget.
    pub retry_give_ups: u64,
}

impl BusStats {
    /// Promote the bus statistics into flight-recorder metrics under
    /// subsystem `sub`, plus one `Cpu`-clocked instant summarizing the run
    /// at the final bus cycle.
    pub fn obs_export(&self, obs: &hermes_obs::Recorder, sub: &str) {
        self.obs_export_ctx(obs, sub, hermes_obs::TraceCtx::untraced());
    }

    /// [`Self::obs_export`] with a causal trace context: the summary
    /// instant links into `ctx`'s trace, so a request trace that crosses
    /// the bus (serve → DMA measurement → AXI) stays one connected tree.
    pub fn obs_export_ctx(&self, obs: &hermes_obs::Recorder, sub: &str, ctx: hermes_obs::TraceCtx) {
        obs.counter_add(sub, "cycles", self.cycles);
        obs.counter_add(sub, "bytes_read", self.bytes_read);
        obs.counter_add(sub, "bytes_written", self.bytes_written);
        obs.counter_add(sub, "read_bursts", self.read_bursts);
        obs.counter_add(sub, "write_bursts", self.write_bursts);
        obs.counter_add(sub, "retries", self.retries);
        obs.counter_add(sub, "slverrs", self.slverrs);
        obs.counter_add(sub, "timeouts", self.timeouts);
        obs.counter_add(sub, "retry_give_ups", self.retry_give_ups);
        if let Some(mean) = self.total_read_latency.checked_div(self.read_bursts) {
            // fixed buckets in bus cycles: latency profile of read bursts
            obs.observe(sub, "read_latency", &[8, 16, 32, 64, 128, 256], mean);
        }
        obs.trace_instant(
            sub,
            "bus-stats",
            hermes_obs::ClockDomain::Cpu,
            self.cycles,
            &[
                ("retries", self.retries.to_string()),
                ("slverrs", self.slverrs.to_string()),
                ("timeouts", self.timeouts.to_string()),
            ],
            ctx,
        );
    }
}

/// Retry-with-exponential-backoff policy for the blocking master helpers.
///
/// When installed (see [`AxiTestbench::with_retry`]), a transaction that
/// fails with [`AxiError::SlaveError`] or [`AxiError::Timeout`] is drained
/// off the bus, backed off for `backoff_base << attempt` idle cycles, and
/// re-issued — up to `max_retries` times before the error surfaces to the
/// caller. Decode errors are never retried: a wrong address does not heal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-issues allowed per transaction before giving up.
    pub max_retries: u32,
    /// Idle cycles before the first retry (doubled on each further one).
    pub backoff_base: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base: 8,
        }
    }
}

impl BusStats {
    /// Average cycles per read request.
    pub fn avg_read_latency(&self) -> f64 {
        if self.read_bursts == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.read_bursts as f64
        }
    }

    /// Achieved bandwidth in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.bytes_read + self.bytes_written) as f64 / self.cycles as f64
        }
    }
}

/// A timer posted into the event kernel during a blocking wait: either
/// the end of the slave's provably-quiet gap or the caller's timeout /
/// idle-budget deadline. The earlier one wins the wait quantum; the
/// loser is cancelled so it cannot linger as a stale entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AxiTimer {
    /// The slave can do observable work again (latency/stall drained).
    MemoryReady,
    /// The caller's timeout or idle budget expires.
    Deadline,
}

/// Event-kernel domain ids for the bus timers; `(time, domain, seq)`
/// tie-break makes a gap ending exactly at the deadline resolve to the
/// memory wake deterministically.
#[derive(Debug)]
struct AxiDomains {
    memory: DomainId,
    timeout: DomainId,
}

impl AxiDomains {
    fn register() -> Self {
        let mut reg = DomainRegistry::new();
        AxiDomains {
            memory: reg.register("axi.memory"),
            timeout: reg.register("axi.timeout"),
        }
    }
}

/// The testbench harness.
#[derive(Debug)]
pub struct AxiTestbench {
    master: AxiMaster,
    memory: AxiMemory,
    checker: ProtocolChecker,
    stats: BusStats,
    /// Cycle budget for blocking operations before declaring a hang.
    pub timeout_cycles: u64,
    /// Optional retry policy (off by default — errors surface immediately).
    pub retry: Option<RetryPolicy>,
    /// Whether blocking waits fast-forward quiet slave cycles through the
    /// unified event kernel (`HERMES_EVENT_KERNEL`, DESIGN.md §14).
    event_kernel: bool,
    /// Persistent wait-timer scheduler (wheel or reference, per the knob).
    sched: Scheduler<AxiTimer>,
    domains: AxiDomains,
    /// Bus cycles advanced one step at a time.
    ticks_polled: u64,
    /// Bus cycles crossed by quiet-gap fast-forward.
    ticks_skipped: u64,
}

impl AxiTestbench {
    /// Build a testbench over `mem_size` bytes of slave memory with the
    /// given timing and a 64-bit data bus.
    pub fn new(mem_size: usize, timing: MemoryTiming) -> Self {
        Self::with_bus_width(mem_size, timing, 8)
    }

    /// Build a testbench with an explicit bus width in bytes.
    pub fn with_bus_width(mem_size: usize, timing: MemoryTiming, bus_bytes: u8) -> Self {
        let event_kernel = hermes_kernel::event_kernel_enabled();
        AxiTestbench {
            master: AxiMaster::new(bus_bytes),
            memory: AxiMemory::new(mem_size, timing),
            checker: ProtocolChecker::new(),
            stats: BusStats::default(),
            timeout_cycles: 1_000_000,
            retry: None,
            event_kernel,
            sched: Scheduler::new(event_kernel),
            domains: AxiDomains::register(),
            ticks_polled: 0,
            ticks_skipped: 0,
        }
    }

    /// Install a retry policy (builder style).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Override the `HERMES_EVENT_KERNEL` default (builder style). Tests
    /// and experiments pass the knob explicitly — process-global env
    /// mutation is racy under the multithreaded test harness.
    pub fn with_event_kernel(mut self, on: bool) -> Self {
        self.event_kernel = on;
        self.sched = Scheduler::new(on);
        self
    }

    /// Bus cycles advanced one step at a time (the polled work the event
    /// kernel could not skip).
    pub fn ticks_polled(&self) -> u64 {
        self.ticks_polled
    }

    /// Bus cycles crossed by quiet-gap fast-forward.
    pub fn ticks_skipped(&self) -> u64 {
        self.ticks_skipped
    }

    /// Event-kernel scheduler counters (posted/popped/cancelled/…).
    pub fn kernel_stats(&self) -> &WheelStats {
        self.sched.stats()
    }

    /// Direct (zero-time) access to the slave memory for initialization.
    pub fn memory_mut(&mut self) -> &mut AxiMemory {
        &mut self.memory
    }

    /// Direct read-only access to the slave memory.
    pub fn memory(&self) -> &AxiMemory {
        &self.memory
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Protocol violations observed so far.
    pub fn violations(&self) -> &[crate::checker::Violation] {
        self.checker.violations()
    }

    fn step(&mut self) {
        self.memory.step();
        self.checker.tick();
        self.stats.cycles += 1;
        self.ticks_polled += 1;
    }

    /// One scheduling quantum inside a blocking wait: advance the bus
    /// toward `stop` (the absolute cycle where the caller's timeout check
    /// or idle budget fires) and return the cycles advanced.
    ///
    /// With the event kernel on and the slave provably quiet, the quiet
    /// gap's end and the deadline are posted as timers; the earlier pop
    /// wins, the loser is cancelled, and the whole span up to the winner
    /// is crossed in one bulk advance. Otherwise — knob off, or the slave
    /// can do observable work next cycle — this is exactly one [`step`].
    fn advance_toward(&mut self, stop: u64) -> u64 {
        let now = self.stats.cycles;
        if self.event_kernel && now < stop {
            let quiet = self.memory.quiet_cycles();
            if quiet > 0 {
                let mem = (quiet < u64::MAX - now).then(|| {
                    self.sched
                        .post(now + quiet, self.domains.memory, AxiTimer::MemoryReady)
                        .expect("quiet gap ends in the future")
                });
                let deadline = self
                    .sched
                    .post(stop, self.domains.timeout, AxiTimer::Deadline)
                    .expect("deadline is in the future");
                let ev = self.sched.pop_next().expect("a timer was just posted");
                match ev.payload {
                    AxiTimer::MemoryReady => {
                        self.sched.cancel(deadline);
                    }
                    AxiTimer::Deadline => {
                        if let Some(token) = mem {
                            self.sched.cancel(token);
                        }
                    }
                }
                let k = ev.time - now;
                self.memory.advance_quiet(k);
                self.checker.tick_n(k);
                self.stats.cycles += k;
                self.ticks_skipped += k;
                return k;
            }
        }
        self.step();
        1
    }

    /// Whether an error is worth re-issuing the transaction for.
    fn recoverable(err: &AxiError) -> bool {
        matches!(
            err,
            AxiError::SlaveError { .. } | AxiError::Timeout { .. }
        )
    }

    /// Record an observed error in the per-transaction stats.
    fn note_error(&mut self, err: &AxiError) {
        match err {
            AxiError::SlaveError { .. } => self.stats.slverrs += 1,
            AxiError::Timeout { .. } => self.stats.timeouts += 1,
            _ => {}
        }
    }

    /// Drain in-flight transactions and queued outputs off the bus after a
    /// failed attempt, so a re-issue starts from a quiescent slave.
    fn recover_bus(&mut self) {
        let mut waited = 0u64;
        while self.memory.busy() {
            let stop = self.stats.cycles + (self.timeout_cycles + 1 - waited);
            let k = self.advance_toward(stop);
            while let Some(beat) = self.memory.pop_read_beat() {
                self.checker.on_read_beat(&beat);
            }
            while let Some(resp) = self.memory.pop_write_response() {
                self.checker.on_write_response(&resp);
            }
            waited += k;
            if waited > self.timeout_cycles {
                break;
            }
        }
    }

    /// Issue a read of `len` bytes at `addr` and step the bus until the data
    /// returns. Returns the data and the cycles consumed. With a
    /// [`RetryPolicy`] installed, recoverable errors (SLVERR, timeout) are
    /// retried with exponential backoff before surfacing.
    ///
    /// # Errors
    ///
    /// Returns [`AxiError::Decode`] / [`AxiError::SlaveError`] on bad
    /// responses and [`AxiError::Timeout`] if the bus hangs — after the
    /// retry budget (if any) is exhausted.
    pub fn read_blocking(&mut self, addr: u64, len: usize) -> Result<(Vec<u8>, u64), AxiError> {
        let start_cycles = self.stats.cycles;
        let mut attempt = 0u32;
        loop {
            match self.read_attempt(addr, len) {
                Ok(out) => {
                    self.stats.bytes_read += len as u64;
                    return Ok((out, self.stats.cycles - start_cycles));
                }
                Err(err) => {
                    self.note_error(&err);
                    let Some(policy) = self.retry else {
                        return Err(err);
                    };
                    if !Self::recoverable(&err) {
                        return Err(err);
                    }
                    if attempt >= policy.max_retries {
                        self.stats.retry_give_ups += 1;
                        return Err(err);
                    }
                    self.recover_bus();
                    self.idle(policy.backoff_base << attempt);
                    attempt += 1;
                    self.stats.retries += 1;
                }
            }
        }
    }

    fn read_attempt(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, AxiError> {
        let plans = self.master.plan_read(addr, len)?;
        let mut out = Vec::with_capacity(len);
        for plan in plans {
            // wait for AR acceptance
            let mut waited = 0u64;
            while !self.memory.push_read(plan.burst.clone()) {
                let stop = self.stats.cycles + (self.timeout_cycles + 1 - waited);
                waited += self.advance_toward(stop);
                if waited > self.timeout_cycles {
                    return Err(AxiError::Timeout { cycles: waited });
                }
            }
            self.checker.on_read_burst(&plan.burst);
            self.stats.read_bursts += 1;
            let issue_cycle = self.stats.cycles;
            // collect beats
            let mut raw = Vec::with_capacity(plan.burst.total_bytes() as usize);
            let mut beats_seen = 0u16;
            while beats_seen < plan.burst.beats {
                self.advance_toward(issue_cycle + self.timeout_cycles + 1);
                while let Some(beat) = self.memory.pop_read_beat() {
                    self.checker.on_read_beat(&beat);
                    match beat.resp {
                        Response::Okay => {}
                        Response::DecErr => return Err(AxiError::Decode { addr }),
                        Response::SlvErr => return Err(AxiError::SlaveError { addr }),
                    }
                    raw.extend_from_slice(&beat.data);
                    beats_seen += 1;
                }
                if self.stats.cycles - issue_cycle > self.timeout_cycles {
                    return Err(AxiError::Timeout {
                        cycles: self.stats.cycles - issue_cycle,
                    });
                }
            }
            self.stats.total_read_latency += self.stats.cycles - issue_cycle;
            out.extend_from_slice(&raw[plan.skip..plan.skip + plan.take]);
        }
        Ok(out)
    }

    /// Issue a write of `data` at `addr` and step until the response
    /// arrives. Returns the cycles consumed. With a [`RetryPolicy`]
    /// installed, recoverable errors are retried with exponential backoff;
    /// a SLVERR'd write is never committed by the slave, so a re-issue is
    /// exactly-once from the memory's point of view.
    ///
    /// # Errors
    ///
    /// Returns [`AxiError::Decode`] / [`AxiError::SlaveError`] on bad
    /// responses and [`AxiError::Timeout`] if the bus hangs — after the
    /// retry budget (if any) is exhausted.
    pub fn write_blocking(&mut self, addr: u64, data: &[u8]) -> Result<u64, AxiError> {
        let start_cycles = self.stats.cycles;
        let mut attempt = 0u32;
        loop {
            match self.write_attempt(addr, data) {
                Ok(()) => {
                    self.stats.bytes_written += data.len() as u64;
                    return Ok(self.stats.cycles - start_cycles);
                }
                Err(err) => {
                    self.note_error(&err);
                    let Some(policy) = self.retry else {
                        return Err(err);
                    };
                    if !Self::recoverable(&err) {
                        return Err(err);
                    }
                    if attempt >= policy.max_retries {
                        self.stats.retry_give_ups += 1;
                        return Err(err);
                    }
                    self.recover_bus();
                    self.idle(policy.backoff_base << attempt);
                    attempt += 1;
                    self.stats.retries += 1;
                }
            }
        }
    }

    fn write_attempt(&mut self, addr: u64, data: &[u8]) -> Result<(), AxiError> {
        let plans = self.master.plan_write(addr, data)?;
        for (burst, beats) in plans {
            let mut waited = 0u64;
            while !self.memory.aw_ready() {
                let stop = self.stats.cycles + (self.timeout_cycles + 1 - waited);
                waited += self.advance_toward(stop);
                if waited > self.timeout_cycles {
                    return Err(AxiError::Timeout { cycles: waited });
                }
            }
            self.checker.on_write_burst(&burst);
            for beat in &beats {
                self.checker
                    .on_write_beat(burst.id, beat, self.master.bus_bytes);
            }
            self.memory.push_write(burst.clone(), beats);
            self.stats.write_bursts += 1;
            // wait for B
            let issue = self.stats.cycles;
            loop {
                self.advance_toward(issue + self.timeout_cycles + 1);
                if let Some(resp) = self.memory.pop_write_response() {
                    self.checker.on_write_response(&resp);
                    match resp.resp {
                        Response::Okay => break,
                        Response::DecErr => return Err(AxiError::Decode { addr }),
                        Response::SlvErr => return Err(AxiError::SlaveError { addr }),
                    }
                }
                if self.stats.cycles - issue > self.timeout_cycles {
                    return Err(AxiError::Timeout {
                        cycles: self.stats.cycles - issue,
                    });
                }
            }
        }
        Ok(())
    }

    /// Let the bus idle for `n` cycles (models compute phases between
    /// transfers). With the event kernel on and a quiescent slave this is
    /// a single bulk advance.
    pub fn idle(&mut self, n: u64) {
        let stop = self.stats.cycles + n;
        while self.stats.cycles < stop {
            self.advance_toward(stop);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_aligned() {
        let mut tb = AxiTestbench::new(4096, MemoryTiming::default());
        let data: Vec<u8> = (0..64u8).collect();
        tb.write_blocking(0x200, &data).unwrap();
        let (back, _) = tb.read_blocking(0x200, 64).unwrap();
        assert_eq!(back, data);
        assert!(tb.violations().is_empty());
    }

    #[test]
    fn roundtrip_unaligned_spanning_pages() {
        let mut tb = AxiTestbench::new(16 * 1024, MemoryTiming::default());
        let data: Vec<u8> = (0..255u8).collect();
        tb.write_blocking(0xFF1, &data).unwrap();
        let (back, _) = tb.read_blocking(0xFF1, 255).unwrap();
        assert_eq!(back, data);
        assert!(tb.violations().is_empty());
    }

    #[test]
    fn slower_memory_costs_more_cycles() {
        let mut fast = AxiTestbench::new(4096, MemoryTiming::ideal());
        let mut slow = AxiTestbench::new(4096, MemoryTiming::slow());
        let (_, cf) = fast.read_blocking(0, 64).unwrap();
        let (_, cs) = slow.read_blocking(0, 64).unwrap();
        assert!(
            cs > 2 * cf,
            "slow memory should dominate: fast={cf}, slow={cs}"
        );
    }

    #[test]
    fn unaligned_read_costs_at_least_aligned() {
        let timing = MemoryTiming::default();
        let mut a = AxiTestbench::new(4096, timing);
        let mut u = AxiTestbench::new(4096, timing);
        let (_, ca) = a.read_blocking(0x100, 64).unwrap();
        let (_, cu) = u.read_blocking(0x103, 64).unwrap();
        assert!(cu >= ca, "unaligned {cu} >= aligned {ca}");
    }

    #[test]
    fn decode_error_surfaces() {
        let mut tb = AxiTestbench::new(256, MemoryTiming::ideal());
        let err = tb.read_blocking(10_000, 4).unwrap_err();
        assert!(matches!(err, AxiError::Decode { .. }));
    }

    #[test]
    fn stats_accumulate() {
        let mut tb = AxiTestbench::new(4096, MemoryTiming::default());
        tb.write_blocking(0, &[0u8; 128]).unwrap();
        tb.read_blocking(0, 128).unwrap();
        let s = tb.stats();
        assert_eq!(s.bytes_written, 128);
        assert_eq!(s.bytes_read, 128);
        assert!(s.read_bursts >= 1);
        assert!(s.avg_read_latency() > 0.0);
        assert!(s.bytes_per_cycle() > 0.0);
    }

    #[test]
    fn slverr_surfaces_without_retry_policy() {
        let mut tb = AxiTestbench::new(4096, MemoryTiming::ideal());
        tb.memory_mut().inject_read_slverr(1);
        let err = tb.read_blocking(0, 4).unwrap_err();
        assert!(matches!(err, AxiError::SlaveError { .. }));
        assert_eq!(tb.stats().slverrs, 1);
        assert_eq!(tb.stats().retries, 0);
    }

    #[test]
    fn retry_recovers_read_slverr() {
        let mut tb =
            AxiTestbench::new(4096, MemoryTiming::ideal()).with_retry(RetryPolicy::default());
        tb.memory_mut().poke(0x80, &[42; 16]);
        tb.memory_mut().inject_read_slverr(2);
        let (data, _) = tb.read_blocking(0x80, 16).unwrap();
        assert_eq!(data, vec![42; 16]);
        let s = tb.stats();
        assert_eq!(s.retries, 2);
        assert_eq!(s.slverrs, 2);
        assert_eq!(s.retry_give_ups, 0);
    }

    #[test]
    fn retry_recovers_write_slverr_exactly_once() {
        let mut tb =
            AxiTestbench::new(4096, MemoryTiming::ideal()).with_retry(RetryPolicy::default());
        tb.memory_mut().inject_write_slverr(1);
        tb.write_blocking(0x40, &[1, 2, 3, 4]).unwrap();
        assert_eq!(tb.memory().peek(0x40, 4), &[1, 2, 3, 4]);
        assert_eq!(tb.stats().retries, 1);
    }

    #[test]
    fn retry_budget_exhaustion_gives_up() {
        let policy = RetryPolicy {
            max_retries: 2,
            backoff_base: 4,
        };
        let mut tb = AxiTestbench::new(4096, MemoryTiming::ideal()).with_retry(policy);
        tb.memory_mut().inject_read_slverr(10);
        let err = tb.read_blocking(0, 4).unwrap_err();
        assert!(matches!(err, AxiError::SlaveError { .. }));
        let s = tb.stats();
        assert_eq!(s.retries, 2);
        assert_eq!(s.retry_give_ups, 1);
    }

    #[test]
    fn retry_rides_out_timeout_from_stall() {
        let mut tb = AxiTestbench::new(4096, MemoryTiming::ideal()).with_retry(RetryPolicy {
            max_retries: 3,
            backoff_base: 16,
        });
        tb.timeout_cycles = 50;
        tb.memory_mut().poke(0, &[9; 8]);
        tb.memory_mut().inject_stall(120);
        let (data, _) = tb.read_blocking(0, 8).unwrap();
        assert_eq!(data, vec![9; 8]);
        let s = tb.stats();
        assert!(s.timeouts >= 1, "stall should cost at least one timeout");
        assert!(s.retries >= 1);
    }

    #[test]
    fn decode_error_is_never_retried() {
        let mut tb =
            AxiTestbench::new(256, MemoryTiming::ideal()).with_retry(RetryPolicy::default());
        let err = tb.read_blocking(10_000, 4).unwrap_err();
        assert!(matches!(err, AxiError::Decode { .. }));
        assert_eq!(tb.stats().retries, 0);
    }

    /// Run the same fault-laden traffic pattern (SLVERRs, a stall long
    /// enough to trip timeouts, retries with backoff, idle compute gaps)
    /// with the event kernel forced off and on; every observable — data,
    /// per-op cycle costs, cumulative stats, violations — must match
    /// exactly.
    fn drive(kernel: bool) -> (AxiTestbench, Vec<u64>) {
        let mut tb = AxiTestbench::new(8192, MemoryTiming::slow())
            .with_retry(RetryPolicy {
                max_retries: 3,
                backoff_base: 16,
            })
            .with_event_kernel(kernel);
        tb.timeout_cycles = 200;
        let mut costs = Vec::new();
        tb.memory_mut().poke(0x100, &[0x5A; 64]);
        costs.push(tb.write_blocking(0x400, &[7u8; 48]).unwrap());
        tb.memory_mut().inject_read_slverr(2);
        let (data, c) = tb.read_blocking(0x100, 64).unwrap();
        assert_eq!(data, vec![0x5A; 64]);
        costs.push(c);
        tb.idle(500);
        tb.memory_mut().inject_stall(700); // > timeout_cycles: trips a timeout
        let (data, c) = tb.read_blocking(0x400, 48).unwrap();
        assert_eq!(data, vec![7u8; 48]);
        costs.push(c);
        tb.memory_mut().inject_write_slverr(1);
        costs.push(tb.write_blocking(0x800, &[9u8; 32]).unwrap());
        (tb, costs)
    }

    #[test]
    fn event_kernel_bus_timing_is_bit_identical() {
        let (off, costs_off) = drive(false);
        let (on, costs_on) = drive(true);
        assert_eq!(costs_off, costs_on, "per-operation cycle costs");
        assert_eq!(off.stats(), on.stats(), "cumulative bus statistics");
        assert_eq!(off.violations().len(), on.violations().len());
        assert_eq!(off.ticks_skipped(), 0, "knob off never skips");
        assert!(on.ticks_skipped() > 0, "quiet gaps fast-forwarded");
        assert_eq!(
            on.ticks_polled() + on.ticks_skipped(),
            off.ticks_polled(),
            "every bus cycle is either polled or skipped"
        );
    }

    #[test]
    fn event_kernel_cancels_the_losing_wait_timer() {
        let (on, _) = drive(true);
        let ks = on.kernel_stats();
        assert!(ks.posted > 0 && ks.popped > 0);
        assert!(
            ks.cancelled > 0,
            "each wait quantum cancels its losing timer: {ks:?}"
        );
        assert_eq!(
            ks.posted,
            ks.popped + ks.cancelled,
            "no timer lingers: every post is popped or cancelled"
        );
    }

    #[test]
    fn event_kernel_skips_most_latency_cycles() {
        let mut tb = AxiTestbench::new(4096, MemoryTiming::slow()).with_event_kernel(true);
        tb.write_blocking(0, &[1u8; 256]).unwrap();
        tb.read_blocking(0, 256).unwrap();
        tb.idle(10_000);
        assert!(
            tb.ticks_skipped() > tb.ticks_polled(),
            "slow memory + idle is mostly quiet: polled {} skipped {}",
            tb.ticks_polled(),
            tb.ticks_skipped()
        );
    }

    #[test]
    fn backdoor_and_bus_agree() {
        let mut tb = AxiTestbench::new(1024, MemoryTiming::ideal());
        tb.memory_mut().poke(0x40, &[9, 8, 7]);
        let (v, _) = tb.read_blocking(0x40, 3).unwrap();
        assert_eq!(v, vec![9, 8, 7]);
    }
}
