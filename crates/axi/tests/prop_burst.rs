//! Property tests on AXI4 burst addressing rules, driven by the
//! workspace's deterministic seeded RNG (no external dependencies).

use hermes_axi::transaction::{Burst, BurstType};
use hermes_rtl::rng::DetRng;
use std::collections::HashSet;

const CASES: usize = 256;

/// INCR beat addresses are strictly increasing, size-aligned after the
/// first beat, and never cross a 4 KiB boundary.
#[test]
fn incr_addressing_invariants() {
    let mut rng = DetRng::new(0xA411);
    for _ in 0..CASES {
        let addr = rng.below(0x10_0000);
        let beats = rng.range_u64(1, 17) as u16;
        let size = 1u8 << rng.below(5);
        let Ok(b) = Burst::new(0, addr, beats, size, BurstType::Incr) else {
            // constructor rejected it: must actually cross 4K
            let start = addr & !u64::from(size - 1);
            let end = start + u64::from(beats) * u64::from(size) - 1;
            assert_ne!(addr >> 12, end >> 12, "legal burst was rejected");
            continue;
        };
        let page = b.beat_addr(0) >> 12;
        let mut prev = None;
        for i in 0..beats {
            let a = b.beat_addr(i);
            assert_eq!(a >> 12, page, "beat {i} crossed 4K");
            if i > 0 {
                assert_eq!(a % u64::from(size), 0, "beat {i} misaligned");
            }
            if let Some(p) = prev {
                assert!(a > p, "addresses must increase");
                assert_eq!(a - p, u64::from(size));
            }
            prev = Some(a);
        }
    }
}

/// WRAP bursts visit exactly `beats` distinct size-aligned addresses
/// inside one container and return to the start after a full loop.
#[test]
fn wrap_addressing_invariants() {
    let mut rng = DetRng::new(0xA412);
    for _ in 0..CASES {
        let beats = [2u16, 4, 8, 16][rng.below(4) as usize];
        let size = 1u8 << rng.below(4);
        let container = u64::from(size) * u64::from(beats);
        let base = rng.below(1000) * container;
        // start anywhere (aligned) inside the container
        let start = base + u64::from(size) * u64::from(beats / 2);
        let b = Burst::new(0, start, beats, size, BurstType::Wrap).expect("legal wrap");
        let mut seen = HashSet::new();
        for i in 0..beats {
            let a = b.beat_addr(i);
            assert!(a >= base && a < base + container, "beat {i} escaped container");
            assert_eq!(a % u64::from(size), 0);
            assert!(seen.insert(a), "beat address repeated");
        }
        assert_eq!(seen.len(), beats as usize);
    }
}

/// FIXED bursts never move.
#[test]
fn fixed_addressing_invariants() {
    let mut rng = DetRng::new(0xA413);
    for _ in 0..CASES {
        let addr = rng.next_u64();
        let beats = rng.range_u64(1, 17) as u16;
        let b = Burst::new(0, addr, beats, 4, BurstType::Fixed).expect("legal fixed");
        for i in 0..beats {
            assert_eq!(b.beat_addr(i), addr);
        }
    }
}
