//! Property tests on AXI4 burst addressing rules.

use hermes_axi::transaction::{Burst, BurstType};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// INCR beat addresses are strictly increasing, size-aligned after the
    /// first beat, and never cross a 4 KiB boundary.
    #[test]
    fn incr_addressing_invariants(
        addr in 0u64..0x10_0000,
        beats in 1u16..=16,
        size_log in 0u32..=4,
    ) {
        let size = 1u8 << size_log;
        let Ok(b) = Burst::new(0, addr, beats, size, BurstType::Incr) else {
            // constructor rejected it: must actually cross 4K
            let start = addr & !u64::from(size - 1);
            let end = start + u64::from(beats) * u64::from(size) - 1;
            prop_assert_ne!(addr >> 12, end >> 12, "legal burst was rejected");
            return Ok(());
        };
        let page = b.beat_addr(0) >> 12;
        let mut prev = None;
        for i in 0..beats {
            let a = b.beat_addr(i);
            prop_assert_eq!(a >> 12, page, "beat {} crossed 4K", i);
            if i > 0 {
                prop_assert_eq!(a % u64::from(size), 0, "beat {} misaligned", i);
            }
            if let Some(p) = prev {
                prop_assert!(a > p, "addresses must increase");
                prop_assert_eq!(a - p, u64::from(size));
            }
            prev = Some(a);
        }
    }

    /// WRAP bursts visit exactly `beats` distinct size-aligned addresses
    /// inside one container and return to the start after a full loop.
    #[test]
    fn wrap_addressing_invariants(
        container_index in 0u64..1000,
        beats_sel in 0usize..4,
        size_log in 0u32..=3,
    ) {
        let beats = [2u16, 4, 8, 16][beats_sel];
        let size = 1u8 << size_log;
        let container = u64::from(size) * u64::from(beats);
        let base = container_index * container;
        // start anywhere (aligned) inside the container
        let start = base + u64::from(size) * u64::from(beats / 2);
        let b = Burst::new(0, start, beats, size, BurstType::Wrap).expect("legal wrap");
        let mut seen = HashSet::new();
        for i in 0..beats {
            let a = b.beat_addr(i);
            prop_assert!(a >= base && a < base + container, "beat {} escaped container", i);
            prop_assert_eq!(a % u64::from(size), 0);
            prop_assert!(seen.insert(a), "beat address repeated");
        }
        prop_assert_eq!(seen.len(), beats as usize);
    }

    /// FIXED bursts never move.
    #[test]
    fn fixed_addressing_invariants(addr in any::<u64>(), beats in 1u16..=16) {
        let b = Burst::new(0, addr, beats, 4, BurstType::Fixed).expect("legal fixed");
        for i in 0..beats {
            prop_assert_eq!(b.beat_addr(i), addr);
        }
    }
}
