//! Property tests for the retry-enabled master: a transaction the fault
//! plan allows to succeed always completes, and `AxiError::Timeout` /
//! `AxiError::SlaveError` surface only once the retry budget is exhausted.

use hermes_axi::memory::MemoryTiming;
use hermes_axi::testbench::{AxiTestbench, RetryPolicy};
use hermes_axi::AxiError;
use hermes_rtl::rng::DetRng;

/// Whenever the number of injected SLVERRs is within the retry budget, the
/// retry-enabled master completes the transaction and returns intact data.
#[test]
fn retry_completes_whenever_budget_allows() {
    let mut rng = DetRng::new(0x5E71);
    for case in 0..64 {
        let max_retries = rng.range_u64(1, 5) as u32;
        let slverrs = rng.below(u64::from(max_retries) + 1) as u32;
        let mut tb = AxiTestbench::new(4096, MemoryTiming::ideal()).with_retry(RetryPolicy {
            max_retries,
            backoff_base: 4,
        });
        let len = rng.range_u64(1, 65) as usize;
        let data = rng.bytes(len);
        let addr = rng.below(2048);
        tb.memory_mut().poke(addr, &data);
        tb.memory_mut().inject_read_slverr(slverrs);
        let (back, _) = tb
            .read_blocking(addr, len)
            .unwrap_or_else(|e| panic!("case {case}: {slverrs} errs <= {max_retries} budget: {e}"));
        assert_eq!(back, data, "case {case}: data corrupted through retries");
        assert_eq!(tb.stats().retries, u64::from(slverrs));
    }
}

/// Errors beyond the budget surface — and exactly the budgeted number of
/// retries was spent first.
#[test]
fn error_surfaces_only_after_budget_exhausted() {
    let mut rng = DetRng::new(0x5E72);
    for case in 0..64 {
        let max_retries = rng.below(4) as u32;
        let slverrs = max_retries + 1 + rng.below(3) as u32;
        let mut tb = AxiTestbench::new(4096, MemoryTiming::ideal()).with_retry(RetryPolicy {
            max_retries,
            backoff_base: 2,
        });
        tb.memory_mut().inject_read_slverr(slverrs);
        let err = tb.read_blocking(0, 8).unwrap_err();
        assert!(
            matches!(err, AxiError::SlaveError { .. }),
            "case {case}: {err}"
        );
        let s = tb.stats();
        assert_eq!(s.retries, u64::from(max_retries), "case {case}");
        assert_eq!(s.retry_give_ups, 1, "case {case}");
    }
}

/// A stalled slave produces timeouts, but as long as the total stall fits
/// inside the budgeted attempts the transaction still completes.
#[test]
fn stall_timeouts_ride_out_within_budget() {
    let mut rng = DetRng::new(0x5E73);
    for case in 0..32 {
        let mut tb = AxiTestbench::new(4096, MemoryTiming::ideal()).with_retry(RetryPolicy {
            max_retries: 4,
            backoff_base: 8,
        });
        tb.timeout_cycles = 64;
        let data = rng.bytes(16);
        tb.memory_mut().poke(0x200, &data);
        // Anything under ~2 attempts' worth of cycles must ride out.
        let stall = rng.range_u64(65, 120) as u32;
        tb.memory_mut().inject_stall(stall);
        let (back, _) = tb
            .read_blocking(0x200, 16)
            .unwrap_or_else(|e| panic!("case {case}: stall {stall}: {e}"));
        assert_eq!(back, data, "case {case}");
        let s = tb.stats();
        assert!(s.timeouts >= 1, "case {case}: stall {stall} cost no timeout");
    }
}

/// Writes are exactly-once: however many SLVERRs strike, the final memory
/// image matches the last successful write, never a torn one.
#[test]
fn write_retries_are_exactly_once() {
    let mut rng = DetRng::new(0x5E74);
    for case in 0..32 {
        let slverrs = rng.below(4) as u32;
        let mut tb = AxiTestbench::new(4096, MemoryTiming::ideal()).with_retry(RetryPolicy {
            max_retries: 4,
            backoff_base: 2,
        });
        let data = rng.bytes(24);
        tb.memory_mut().inject_write_slverr(slverrs);
        tb.write_blocking(0x300, &data)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(tb.memory().peek(0x300, 24), &data[..], "case {case}");
    }
}
