//! Parametric FPGA device model.
//!
//! A [`DeviceProfile`] describes a rad-hard NanoXplore-style fabric: a grid
//! of logic tiles (each holding a cluster of LUT4 + FF pairs), dedicated DSP
//! and block-RAM columns, and a 28 nm FD-SOI timing model. Two built-in
//! profiles are provided: [`DeviceProfile::ng_ultra_like`] matching the
//! paper's headline numbers and the smaller
//! [`DeviceProfile::ng_medium_like`] used to keep tests and benches fast.

use std::fmt;

/// Timing parameters of the fabric, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// LUT4 propagation delay.
    pub lut_delay_ns: f64,
    /// Incremental delay of one carry-chain position.
    pub carry_delay_ns: f64,
    /// Flip-flop clock-to-Q delay.
    pub ff_clk_to_q_ns: f64,
    /// Flip-flop setup time.
    pub ff_setup_ns: f64,
    /// DSP block combinational delay (unpipelined multiply).
    pub dsp_delay_ns: f64,
    /// Block-RAM clock-to-out delay.
    pub ram_clk_to_out_ns: f64,
    /// Block-RAM address setup.
    pub ram_setup_ns: f64,
    /// Base net delay (fanout-1, adjacent tiles).
    pub net_base_ns: f64,
    /// Incremental net delay per tile of Manhattan distance.
    pub net_per_tile_ns: f64,
    /// Incremental net delay per unit of fanout above 1.
    pub net_per_fanout_ns: f64,
}

impl TimingModel {
    /// 28 nm FD-SOI model tuned so a simple 32-bit datapath closes near the
    /// quad-core subsystem's 600 MHz reference clock region (paper, §I).
    pub fn fdsoi_28nm() -> Self {
        TimingModel {
            lut_delay_ns: 0.28,
            carry_delay_ns: 0.045,
            ff_clk_to_q_ns: 0.14,
            ff_setup_ns: 0.09,
            dsp_delay_ns: 2.1,
            ram_clk_to_out_ns: 1.4,
            ram_setup_ns: 0.35,
            net_base_ns: 0.18,
            net_per_tile_ns: 0.022,
            net_per_fanout_ns: 0.03,
        }
    }

    /// A previous-generation 65 nm rad-hard model: roughly half the speed of
    /// [`TimingModel::fdsoi_28nm`]. Used for the "twice as fast as current
    /// rad-hard FPGAs" comparison the paper claims.
    pub fn radhard_65nm() -> Self {
        let f = TimingModel::fdsoi_28nm();
        TimingModel {
            lut_delay_ns: f.lut_delay_ns * 2.0,
            carry_delay_ns: f.carry_delay_ns * 2.0,
            ff_clk_to_q_ns: f.ff_clk_to_q_ns * 2.0,
            ff_setup_ns: f.ff_setup_ns * 2.0,
            dsp_delay_ns: f.dsp_delay_ns * 2.0,
            ram_clk_to_out_ns: f.ram_clk_to_out_ns * 2.0,
            ram_setup_ns: f.ram_setup_ns * 2.0,
            net_base_ns: f.net_base_ns * 2.0,
            net_per_tile_ns: f.net_per_tile_ns * 2.0,
            net_per_fanout_ns: f.net_per_fanout_ns * 2.0,
        }
    }
}

/// Power parameters of the fabric (relative units, used for the 4× power
/// comparison in the paper's introduction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Static power per occupied LUT, µW.
    pub lut_static_uw: f64,
    /// Dynamic energy per LUT toggle at 100 MHz, µW.
    pub lut_dynamic_uw_per_100mhz: f64,
    /// Static power per DSP, µW.
    pub dsp_static_uw: f64,
    /// Static power per RAMB, µW.
    pub ram_static_uw: f64,
}

impl PowerModel {
    /// 28 nm FD-SOI power model.
    pub fn fdsoi_28nm() -> Self {
        PowerModel {
            lut_static_uw: 0.9,
            lut_dynamic_uw_per_100mhz: 2.4,
            dsp_static_uw: 35.0,
            ram_static_uw: 60.0,
        }
    }

    /// Previous-generation model: 4× the power of 28 nm FD-SOI.
    pub fn radhard_65nm() -> Self {
        let f = PowerModel::fdsoi_28nm();
        PowerModel {
            lut_static_uw: f.lut_static_uw * 4.0,
            lut_dynamic_uw_per_100mhz: f.lut_dynamic_uw_per_100mhz * 4.0,
            dsp_static_uw: f.dsp_static_uw * 4.0,
            ram_static_uw: f.ram_static_uw * 4.0,
        }
    }
}

/// A rad-hard FPGA device description.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Marketing / part name.
    pub name: String,
    /// Tile grid width (columns).
    pub grid_cols: u32,
    /// Tile grid height (rows).
    pub grid_rows: u32,
    /// LUT4 + FF pairs per logic tile.
    pub luts_per_tile: u32,
    /// Columns (x coordinates) occupied by DSP sites instead of logic.
    pub dsp_columns: Vec<u32>,
    /// DSP sites per DSP column.
    pub dsps_per_column: u32,
    /// Multiplier operand width of one DSP block.
    pub dsp_width: u32,
    /// Columns occupied by block-RAM sites.
    pub ram_columns: Vec<u32>,
    /// RAM sites per RAM column.
    pub rams_per_column: u32,
    /// Capacity of one block RAM in bits.
    pub ram_bits: u32,
    /// Maximum data width of one block-RAM port.
    pub ram_port_width: u32,
    /// Timing model.
    pub timing: TimingModel,
    /// Power model.
    pub power: PowerModel,
    /// Whether configuration memory is TMR-hardened (affects the SEU model
    /// in `hermes-rad`, reported here as a device property).
    pub config_tmr: bool,
}

impl DeviceProfile {
    /// A profile matching the published NG-ULTRA headline numbers:
    /// ~550k LUTs in 28 nm FD-SOI with hardened configuration memory.
    pub fn ng_ultra_like() -> Self {
        // 280 logic columns x 246 rows x 8 LUTs = 551,040 LUTs
        // (plus 28 DSP and 14 RAM columns -> 322 columns total)
        DeviceProfile {
            name: "NG-ULTRA-like".into(),
            grid_cols: 322,
            grid_rows: 246,
            luts_per_tile: 8,
            dsp_columns: (0..28).map(|i| 10 * i + 5).collect(),
            dsps_per_column: 60,
            dsp_width: 24,
            ram_columns: (0..14).map(|i| 20 * i + 12).collect(),
            rams_per_column: 48,
            ram_bits: 49_152, // 48 kbit true dual-port
            ram_port_width: 64,
            timing: TimingModel::fdsoi_28nm(),
            power: PowerModel::fdsoi_28nm(),
            config_tmr: true,
        }
    }

    /// A smaller sibling (~32k LUTs), analogous to NG-MEDIUM, convenient for
    /// fast tests and characterization sweeps.
    pub fn ng_medium_like() -> Self {
        DeviceProfile {
            name: "NG-MEDIUM-like".into(),
            grid_cols: 64,
            grid_rows: 64,
            luts_per_tile: 8,
            dsp_columns: vec![15, 31, 47],
            dsps_per_column: 28,
            dsp_width: 24,
            ram_columns: vec![7, 39],
            rams_per_column: 28,
            ram_bits: 49_152,
            ram_port_width: 64,
            timing: TimingModel::fdsoi_28nm(),
            power: PowerModel::fdsoi_28nm(),
            config_tmr: true,
        }
    }

    /// A previous-generation 65 nm rad-hard baseline device with the same
    /// logic capacity as [`DeviceProfile::ng_medium_like`] but the slower,
    /// hungrier process. Used in E2/E3 ablations of the paper's
    /// "2× faster, 4× lower power" claim.
    pub fn legacy_radhard_like() -> Self {
        DeviceProfile {
            name: "Legacy-65nm-like".into(),
            timing: TimingModel::radhard_65nm(),
            power: PowerModel::radhard_65nm(),
            config_tmr: false,
            ..DeviceProfile::ng_medium_like()
        }
    }

    /// Total LUT4 capacity.
    pub fn total_luts(&self) -> u64 {
        let logic_cols = self.grid_cols as u64
            - self.dsp_columns.len() as u64
            - self.ram_columns.len() as u64;
        logic_cols * self.grid_rows as u64 * self.luts_per_tile as u64
    }

    /// Total flip-flop capacity (one per LUT site).
    pub fn total_ffs(&self) -> u64 {
        self.total_luts()
    }

    /// Total DSP block count.
    pub fn total_dsps(&self) -> u64 {
        self.dsp_columns.len() as u64 * self.dsps_per_column as u64
    }

    /// Total block-RAM count.
    pub fn total_rams(&self) -> u64 {
        self.ram_columns.len() as u64 * self.rams_per_column as u64
    }

    /// Whether column `x` is a DSP column.
    pub fn is_dsp_column(&self, x: u32) -> bool {
        self.dsp_columns.contains(&x)
    }

    /// Whether column `x` is a RAM column.
    pub fn is_ram_column(&self, x: u32) -> bool {
        self.ram_columns.contains(&x)
    }

    /// Number of block RAMs needed for a `depth x width` true dual-port
    /// memory.
    pub fn rams_for(&self, depth: u32, width: u32) -> u32 {
        let width_slices = width.div_ceil(self.ram_port_width);
        let depth_per_ram = self.ram_bits / self.ram_port_width.min(width.max(1));
        let depth_slices = depth.div_ceil(depth_per_ram.max(1));
        width_slices * depth_slices
    }

    /// Number of DSP blocks needed for a `width x width` multiplier.
    pub fn dsps_for_multiplier(&self, width: u32) -> u32 {
        let per_dim = width.div_ceil(self.dsp_width);
        per_dim * per_dim
    }
}

impl fmt::Display for DeviceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} LUTs, {} DSPs, {} RAMBs)",
            self.name,
            self.total_luts(),
            self.total_dsps(),
            self.total_rams()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ng_ultra_matches_headline_capacity() {
        let d = DeviceProfile::ng_ultra_like();
        let luts = d.total_luts();
        assert!(
            (500_000..600_000).contains(&luts),
            "NG-ULTRA-like should be ~550k LUTs, got {luts}"
        );
        assert!(d.config_tmr);
    }

    #[test]
    fn medium_is_much_smaller() {
        let m = DeviceProfile::ng_medium_like();
        assert!(m.total_luts() < DeviceProfile::ng_ultra_like().total_luts() / 10);
        assert!(m.total_dsps() > 0);
        assert!(m.total_rams() > 0);
    }

    #[test]
    fn legacy_is_slower_and_hungrier() {
        let m = DeviceProfile::ng_medium_like();
        let l = DeviceProfile::legacy_radhard_like();
        assert!(l.timing.lut_delay_ns > 1.9 * m.timing.lut_delay_ns);
        assert!(l.power.lut_static_uw > 3.9 * m.power.lut_static_uw);
    }

    #[test]
    fn ram_sizing() {
        let d = DeviceProfile::ng_medium_like();
        // 1024 x 32 fits in one 48kbit RAM (32768 bits)
        assert_eq!(d.rams_for(1024, 32), 1);
        // 4096 x 32 = 128kbit needs several
        assert!(d.rams_for(4096, 32) >= 3);
        // wide port forces width slicing
        assert!(d.rams_for(16, 128) >= 2);
    }

    #[test]
    fn dsp_sizing() {
        let d = DeviceProfile::ng_medium_like();
        assert_eq!(d.dsps_for_multiplier(16), 1);
        assert_eq!(d.dsps_for_multiplier(24), 1);
        assert_eq!(d.dsps_for_multiplier(32), 4);
        assert_eq!(d.dsps_for_multiplier(48), 4);
    }

    #[test]
    fn display_mentions_capacity() {
        let s = DeviceProfile::ng_medium_like().to_string();
        assert!(s.contains("LUTs"));
    }
}
