//! Static timing analysis.
//!
//! Computes the longest register-to-register / pad-to-pad combinational
//! path of a mapped (and optionally placed + routed) design, yielding the
//! maximum operating frequency. This mirrors the STA step of the NXmap
//! suite that the paper's Bambu back-end integration relies on for its
//! clock-constraint-aware optimization.

use crate::device::DeviceProfile;
use crate::primitives::{PCellId, PNetId, PrimNetlist, Primitive};
use crate::route::RouteReport;
use std::collections::HashMap;

/// Multicycle exceptions: combinational cells expanded from the named
/// source (coarse) cells have `factor` clock cycles to settle, so their
/// per-cycle contribution to the critical path is `delay / factor` — the
/// STA counterpart of an SDC `set_multicycle_path`, with the hints coming
/// from the HLS schedule exactly as the paper's Bambu/NXmap integration
/// passes timing knowledge downstream.
pub type MulticycleHints = HashMap<String, u32>;

/// Result of static timing analysis.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Delay of the critical path in nanoseconds (including setup).
    pub critical_path_ns: f64,
    /// Maximum clock frequency in MHz.
    pub fmax_mhz: f64,
    /// Worst slack against the requested clock (ns); negative = violated.
    pub worst_slack_ns: f64,
    /// The requested clock period used for slack, ns.
    pub target_period_ns: f64,
    /// Cells on the critical path, source to sink.
    pub critical_cells: Vec<String>,
    /// Combinational logic levels on the critical path.
    pub logic_levels: u32,
}

impl TimingReport {
    /// Whether the design meets the requested clock.
    pub fn met(&self) -> bool {
        self.worst_slack_ns >= 0.0
    }
}

/// The timing analyzer.
#[derive(Debug, Clone)]
pub struct Analyzer {
    device: DeviceProfile,
    multicycle: MulticycleHints,
}

impl Analyzer {
    /// Create an analyzer using the device's timing model.
    pub fn new(device: DeviceProfile) -> Self {
        Analyzer {
            device,
            multicycle: MulticycleHints::new(),
        }
    }

    /// Install multicycle exceptions (keyed by the source coarse-cell name
    /// recorded during technology mapping).
    pub fn with_multicycle(mut self, hints: MulticycleHints) -> Self {
        self.multicycle = hints;
        self
    }

    /// Cell propagation delay in ns.
    fn cell_delay(&self, prim: &Primitive) -> f64 {
        let t = &self.device.timing;
        match prim {
            Primitive::Lut4 { .. } => t.lut_delay_ns,
            Primitive::Carry => t.carry_delay_ns,
            Primitive::Dff { .. } => t.ff_clk_to_q_ns,
            Primitive::Dsp { pipelined, .. } => {
                if *pipelined {
                    t.ff_clk_to_q_ns
                } else {
                    t.dsp_delay_ns
                }
            }
            Primitive::Ramb { .. } => t.ram_clk_to_out_ns,
            Primitive::IoPad { .. } => 0.0,
        }
    }

    /// Setup requirement at a sequential sink in ns.
    fn sink_setup(&self, prim: &Primitive) -> f64 {
        let t = &self.device.timing;
        match prim {
            Primitive::Dff { .. } | Primitive::Dsp { pipelined: true, .. } => t.ff_setup_ns,
            Primitive::Ramb { .. } => t.ram_setup_ns,
            _ => 0.0,
        }
    }

    /// Analyze a design. If `route` is provided, per-net routed delays are
    /// used; otherwise a fanout-based pre-route estimate applies.
    ///
    /// The analysis propagates arrival times through the combinational
    /// subgraph (sequential outputs are launch points; sequential inputs and
    /// output pads are capture points).
    pub fn analyze(
        &self,
        prim: &PrimNetlist,
        route: Option<&RouteReport>,
        target_period_ns: f64,
    ) -> TimingReport {
        let t = &self.device.timing;
        let consumers = prim.consumer_map();
        let fanout_delay = |net: PNetId| -> f64 {
            match route {
                Some(r) => r.delay_of(net, &self.device),
                None => {
                    let fanout = consumers.get(&net).map(Vec::len).unwrap_or(0) as f64;
                    t.net_base_ns + t.net_per_fanout_ns * (fanout - 1.0).max(0.0)
                }
            }
        };

        // arrival time per net, plus the cell that set it (for path recovery)
        let mut arrival: HashMap<PNetId, (f64, Option<PCellId>)> = HashMap::new();

        // Launch points: sequential outputs and input pads.
        let mut comb_cells: Vec<PCellId> = Vec::new();
        for (cid, c) in prim.cells() {
            if c.prim.is_sequential() || matches!(c.prim, Primitive::IoPad { is_input: true }) {
                let launch = self.cell_delay(&c.prim);
                for &o in &c.outputs {
                    let a = launch + fanout_delay(o);
                    let e = arrival.entry(o).or_insert((a, Some(cid)));
                    if a > e.0 {
                        *e = (a, Some(cid));
                    }
                }
            } else if !matches!(c.prim, Primitive::IoPad { .. }) {
                comb_cells.push(cid);
            }
        }

        // Topological propagation via Kahn's algorithm over combinational cells.
        let driver = prim.driver_map();
        let mut indeg: HashMap<PCellId, usize> = HashMap::new();
        let mut succ: HashMap<PCellId, Vec<PCellId>> = HashMap::new();
        for &cid in &comb_cells {
            let c = prim.cell(cid);
            let mut deg = 0;
            for &i in &c.inputs {
                if let Some(&src) = driver.get(&i) {
                    let sp = &prim.cell(src).prim;
                    if !sp.is_sequential() && !matches!(sp, Primitive::IoPad { .. }) {
                        deg += 1;
                        succ.entry(src).or_default().push(cid);
                    }
                }
            }
            indeg.insert(cid, deg);
        }
        let mut queue: Vec<PCellId> = comb_cells
            .iter()
            .copied()
            .filter(|c| indeg[c] == 0)
            .collect();
        let mut pred_of: HashMap<PCellId, Option<PCellId>> = HashMap::new();
        while let Some(cid) = queue.pop() {
            let c = prim.cell(cid);
            let mut best = 0.0f64;
            let mut best_pred = None;
            for &i in &c.inputs {
                if let Some(&(a, src)) = arrival.get(&i) {
                    if a > best {
                        best = a;
                        best_pred = src;
                    }
                }
            }
            pred_of.insert(cid, best_pred);
            let d = self.cell_delay(&c.prim);
            // multicycle exception: cell and interconnect delay inside the
            // excepted cone are amortized over the allowed settle cycles
            let scale = self
                .multicycle
                .get(&c.source)
                .map(|&f| f64::from(f.max(1)))
                .unwrap_or(1.0);
            for &o in &c.outputs {
                let a = best + (d + fanout_delay(o)) / scale;
                let e = arrival.entry(o).or_insert((a, Some(cid)));
                if a >= e.0 {
                    *e = (a, Some(cid));
                }
            }
            if let Some(next) = succ.get(&cid) {
                for &n in next {
                    let deg = indeg.get_mut(&n).expect("tracked");
                    *deg -= 1;
                    if *deg == 0 {
                        queue.push(n);
                    }
                }
            }
        }

        // Capture: worst arrival + setup at sequential inputs / output pads.
        let mut critical = 0.0f64;
        let mut critical_end: Option<PCellId> = None;
        for (cid, c) in prim.cells() {
            let is_capture = c.prim.is_sequential()
                || matches!(c.prim, Primitive::IoPad { is_input: false });
            if !is_capture {
                continue;
            }
            let setup = self.sink_setup(&c.prim);
            for &i in &c.inputs {
                if let Some(&(a, _)) = arrival.get(&i) {
                    let total = a + setup;
                    if total > critical {
                        critical = total;
                        critical_end = Some(cid);
                    }
                }
            }
        }
        // Guard: a purely sequential design still pays clk-to-q + setup.
        let floor = t.ff_clk_to_q_ns + t.ff_setup_ns + t.net_base_ns;
        let critical = critical.max(floor);

        // Recover path.
        let mut critical_cells = Vec::new();
        let mut logic_levels = 0u32;
        let mut cur = critical_end;
        let mut guard = 0;
        while let Some(cid) = cur {
            let c = prim.cell(cid);
            critical_cells.push(c.name.clone());
            if matches!(c.prim, Primitive::Lut4 { .. } | Primitive::Carry) {
                logic_levels += 1;
            }
            // predecessor through worst input
            cur = pred_of.get(&cid).copied().flatten().or_else(|| {
                let mut best: Option<(f64, PCellId)> = None;
                for &i in &c.inputs {
                    if let Some(&(a, Some(src))) = arrival.get(&i) {
                        if best.map(|(b, _)| a > b).unwrap_or(true) {
                            best = Some((a, src));
                        }
                    }
                }
                best.map(|(_, s)| s)
            });
            guard += 1;
            if guard > prim.cell_count() {
                break;
            }
        }
        critical_cells.reverse();

        let fmax_mhz = 1000.0 / critical;
        TimingReport {
            critical_path_ns: critical,
            fmax_mhz,
            worst_slack_ns: target_period_ns - critical,
            target_period_ns,
            critical_cells,
            logic_levels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProfile;
    use crate::synth::Synthesizer;
    use hermes_rtl::netlist::{CellOp, Netlist};

    fn analyze(nl: &Netlist) -> TimingReport {
        let dev = DeviceProfile::ng_medium_like();
        let prim = Synthesizer::new(dev.clone()).synthesize(nl).unwrap().prim;
        Analyzer::new(dev).analyze(&prim, None, 10.0)
    }

    fn adder(w: u32) -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", w);
        let b = nl.add_input("b", w);
        let y = nl.add_net("y", w);
        nl.add_cell("add", CellOp::Add, &[a, b], &[y]).unwrap();
        nl.mark_output(y);
        nl
    }

    #[test]
    fn wider_adder_is_slower() {
        let t8 = analyze(&adder(8));
        let t32 = analyze(&adder(32));
        assert!(t32.critical_path_ns > t8.critical_path_ns);
        assert!(t32.fmax_mhz < t8.fmax_mhz);
    }

    #[test]
    fn divider_much_slower_than_adder() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 16);
        let b = nl.add_input("b", 16);
        let y = nl.add_net("y", 16);
        nl.add_cell("div", CellOp::Div, &[a, b], &[y]).unwrap();
        nl.mark_output(y);
        let td = analyze(&nl);
        let ta = analyze(&adder(16));
        assert!(td.critical_path_ns > 4.0 * ta.critical_path_ns);
    }

    #[test]
    fn slack_sign_tracks_target() {
        let r = analyze(&adder(16));
        assert!(r.met(), "16-bit add should close 100 MHz: {r:?}");
        let dev = DeviceProfile::ng_medium_like();
        let prim = Synthesizer::new(dev.clone())
            .synthesize(&adder(16))
            .unwrap()
            .prim;
        let tight = Analyzer::new(dev).analyze(&prim, None, 0.1);
        assert!(!tight.met());
        assert!(tight.worst_slack_ns < 0.0);
    }

    #[test]
    fn registered_design_has_floor_delay() {
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d", 8);
        let q = nl.add_net("q", 8);
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: false,
                has_reset: true,
            },
            &[d],
            &[q],
        )
        .unwrap();
        nl.mark_output(q);
        let r = analyze(&nl);
        assert!(r.critical_path_ns > 0.0);
        assert!(r.fmax_mhz.is_finite());
    }

    #[test]
    fn critical_path_nonempty_for_logic() {
        let r = analyze(&adder(16));
        assert!(!r.critical_cells.is_empty());
        assert!(r.logic_levels > 0);
    }

    #[test]
    fn legacy_device_halves_fmax() {
        let nl = adder(32);
        let m = DeviceProfile::ng_medium_like();
        let l = DeviceProfile::legacy_radhard_like();
        let pm = Synthesizer::new(m.clone()).synthesize(&nl).unwrap().prim;
        let pl = Synthesizer::new(l.clone()).synthesize(&nl).unwrap().prim;
        let tm = Analyzer::new(m).analyze(&pm, None, 10.0);
        let tl = Analyzer::new(l).analyze(&pl, None, 10.0);
        let ratio = tm.fmax_mhz / tl.fmax_mhz;
        assert!(
            (1.8..=2.2).contains(&ratio),
            "28nm should be ~2x faster, got {ratio:.2}"
        );
    }
}
