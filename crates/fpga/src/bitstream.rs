//! Synthetic configuration bitstream.
//!
//! NG-ULTRA bitstreams are proprietary, so this module defines an open
//! stand-in with the properties the rest of the ecosystem needs: a device
//! check, per-frame CRC-32 integrity (the memory-integrity checking the
//! paper highlights as transparent to developers), and deterministic
//! generation from a placed design. The BL1 boot loader (`hermes-boot`)
//! programs the eFPGA by verifying and "loading" these bitstreams, and the
//! radiation campaigns (`hermes-rad`) flip bits in them to exercise the
//! detection path.

use crate::device::DeviceProfile;
use crate::place::Placement;
use crate::primitives::{PrimNetlist, Primitive};
use crate::FpgaError;

/// Magic bytes identifying a HERMES bitstream.
pub const MAGIC: [u8; 4] = *b"NXB1";

/// Payload bytes per configuration frame.
pub const FRAME_BYTES: usize = 64;

/// Standard IEEE 802.3 CRC-32 (reflected, polynomial 0xEDB88320).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb == 1 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

/// One configuration frame: payload plus its CRC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Configuration payload.
    pub payload: [u8; FRAME_BYTES],
    /// CRC-32 of the payload.
    pub crc: u32,
}

impl Frame {
    /// Build a frame, computing its CRC.
    pub fn new(payload: [u8; FRAME_BYTES]) -> Self {
        Frame {
            crc: crc32(&payload),
            payload,
        }
    }

    /// Whether the stored CRC matches the payload.
    pub fn is_intact(&self) -> bool {
        crc32(&self.payload) == self.crc
    }
}

/// A complete device configuration image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitstream {
    /// Device the bitstream targets.
    pub device_name: String,
    /// Design name embedded in the header.
    pub design_name: String,
    /// Configuration frames.
    pub frames: Vec<Frame>,
}

impl Bitstream {
    /// Generate a bitstream from a mapped and placed design.
    ///
    /// Frame contents are a deterministic encoding of each primitive's
    /// configuration (kind, truth table) and site, so two runs of the same
    /// flow produce byte-identical bitstreams.
    pub fn generate(
        prim: &PrimNetlist,
        placement: &Placement,
        device: &DeviceProfile,
    ) -> Self {
        let mut payload_bytes: Vec<u8> = Vec::new();
        for (cid, cell) in prim.cells() {
            let (x, y) = placement.site(cid);
            payload_bytes.extend_from_slice(&x.to_le_bytes());
            payload_bytes.extend_from_slice(&y.to_le_bytes());
            match &cell.prim {
                Primitive::Lut4 { truth, used_inputs } => {
                    payload_bytes.push(0x01);
                    payload_bytes.extend_from_slice(&truth.to_le_bytes());
                    payload_bytes.push(*used_inputs);
                }
                Primitive::Carry => payload_bytes.push(0x02),
                Primitive::Dff { has_enable } => {
                    payload_bytes.push(0x03);
                    payload_bytes.push(u8::from(*has_enable));
                }
                Primitive::Dsp { width, pipelined } => {
                    payload_bytes.push(0x04);
                    payload_bytes.push(*width);
                    payload_bytes.push(u8::from(*pipelined));
                }
                Primitive::Ramb { depth, width } => {
                    payload_bytes.push(0x05);
                    payload_bytes.extend_from_slice(&depth.to_le_bytes());
                    payload_bytes.push(*width);
                }
                Primitive::IoPad { is_input } => {
                    payload_bytes.push(0x06);
                    payload_bytes.push(u8::from(*is_input));
                }
            }
        }
        let frames = payload_bytes
            .chunks(FRAME_BYTES)
            .map(|chunk| {
                let mut payload = [0u8; FRAME_BYTES];
                payload[..chunk.len()].copy_from_slice(chunk);
                Frame::new(payload)
            })
            .collect();
        Bitstream {
            device_name: device.name.clone(),
            design_name: prim.name.clone(),
            frames,
        }
    }

    /// Verify every frame's CRC.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BitstreamCorrupt`] with the index of the first
    /// failing frame.
    pub fn verify(&self) -> Result<(), FpgaError> {
        for (i, frame) in self.frames.iter().enumerate() {
            if !frame.is_intact() {
                return Err(FpgaError::BitstreamCorrupt { frame: i });
            }
        }
        Ok(())
    }

    /// Total size in bytes when serialized.
    pub fn size_bytes(&self) -> usize {
        // magic + name lengths + names + frame count + frames
        4 + 2
            + self.device_name.len()
            + 2
            + self.design_name.len()
            + 4
            + self.frames.len() * (FRAME_BYTES + 4)
    }

    /// Serialize to a byte vector (the format BL1 reads from flash).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.size_bytes());
        v.extend_from_slice(&MAGIC);
        v.extend_from_slice(&(self.device_name.len() as u16).to_le_bytes());
        v.extend_from_slice(self.device_name.as_bytes());
        v.extend_from_slice(&(self.design_name.len() as u16).to_le_bytes());
        v.extend_from_slice(self.design_name.as_bytes());
        v.extend_from_slice(&(self.frames.len() as u32).to_le_bytes());
        for f in &self.frames {
            v.extend_from_slice(&f.payload);
            v.extend_from_slice(&f.crc.to_le_bytes());
        }
        v
    }

    /// Parse a serialized bitstream.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BitstreamMalformed`] for truncated or
    /// wrong-magic input. CRC validation is *not* performed here — call
    /// [`Bitstream::verify`] so that callers (like BL1) can distinguish
    /// malformed from corrupted images.
    pub fn from_bytes(data: &[u8]) -> Result<Self, FpgaError> {
        let err = |detail: &str| FpgaError::BitstreamMalformed {
            detail: detail.into(),
        };
        if data.len() < 4 || data[..4] != MAGIC {
            return Err(err("bad magic"));
        }
        let mut pos = 4usize;
        let mut read = |n: usize, data: &[u8]| -> Result<usize, FpgaError> {
            if pos + n > data.len() {
                return Err(err("truncated"));
            }
            let start = pos;
            pos += n;
            Ok(start)
        };
        let s = read(2, data)?;
        let dn_len = u16::from_le_bytes([data[s], data[s + 1]]) as usize;
        let s = read(dn_len, data)?;
        let device_name = String::from_utf8_lossy(&data[s..s + dn_len]).into_owned();
        let s = read(2, data)?;
        let gn_len = u16::from_le_bytes([data[s], data[s + 1]]) as usize;
        let s = read(gn_len, data)?;
        let design_name = String::from_utf8_lossy(&data[s..s + gn_len]).into_owned();
        let s = read(4, data)?;
        let count =
            u32::from_le_bytes([data[s], data[s + 1], data[s + 2], data[s + 3]]) as usize;
        let mut frames = Vec::with_capacity(count);
        for _ in 0..count {
            let s = read(FRAME_BYTES, data)?;
            let mut payload = [0u8; FRAME_BYTES];
            payload.copy_from_slice(&data[s..s + FRAME_BYTES]);
            let s = read(4, data)?;
            let crc = u32::from_le_bytes([data[s], data[s + 1], data[s + 2], data[s + 3]]);
            frames.push(Frame { payload, crc });
        }
        Ok(Bitstream {
            device_name,
            design_name,
            frames,
        })
    }

    /// Flip a single payload bit (radiation-test hook). Returns `false` if
    /// the frame/bit coordinates are out of range.
    pub fn flip_bit(&mut self, frame: usize, bit: usize) -> bool {
        if let Some(f) = self.frames.get_mut(frame) {
            if bit < FRAME_BYTES * 8 {
                f.payload[bit / 8] ^= 1 << (bit % 8);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProfile;
    use crate::place::{Effort, Placer};
    use crate::synth::Synthesizer;
    use hermes_rtl::netlist::{CellOp, Netlist};

    fn sample() -> Bitstream {
        let mut nl = Netlist::new("bsdemo");
        let a = nl.add_input("a", 8);
        let b = nl.add_input("b", 8);
        let y = nl.add_net("y", 8);
        nl.add_cell("add", CellOp::Add, &[a, b], &[y]).unwrap();
        nl.mark_output(y);
        let dev = DeviceProfile::ng_medium_like();
        let prim = Synthesizer::new(dev.clone()).synthesize(&nl).unwrap().prim;
        let placement = Placer::new(dev.clone(), Effort::Zero, 1).place(&prim).unwrap();
        Bitstream::generate(&prim, &placement, &dev)
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn generated_bitstream_verifies() {
        let bs = sample();
        assert!(!bs.frames.is_empty());
        bs.verify().expect("fresh bitstream is intact");
    }

    #[test]
    fn roundtrip_serialization() {
        let bs = sample();
        let bytes = bs.to_bytes();
        assert_eq!(bytes.len(), bs.size_bytes());
        let back = Bitstream::from_bytes(&bytes).unwrap();
        assert_eq!(back, bs);
    }

    #[test]
    fn bit_flip_detected() {
        let mut bs = sample();
        assert!(bs.flip_bit(0, 13));
        let err = bs.verify().unwrap_err();
        assert!(matches!(err, FpgaError::BitstreamCorrupt { frame: 0 }));
    }

    #[test]
    fn double_flip_restores() {
        let mut bs = sample();
        bs.flip_bit(1, 7);
        bs.flip_bit(1, 7);
        bs.verify().expect("double flip restores the payload");
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(matches!(
            Bitstream::from_bytes(b"XXXX"),
            Err(FpgaError::BitstreamMalformed { .. })
        ));
        let bs = sample();
        let bytes = bs.to_bytes();
        let truncated = &bytes[..bytes.len() - 10];
        assert!(matches!(
            Bitstream::from_bytes(truncated),
            Err(FpgaError::BitstreamMalformed { .. })
        ));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = sample().to_bytes();
        let b = sample().to_bytes();
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_flip_is_noop() {
        let mut bs = sample();
        let n = bs.frames.len();
        assert!(!bs.flip_bit(n + 5, 0));
        assert!(!bs.flip_bit(0, FRAME_BYTES * 8));
        bs.verify().unwrap();
    }
}
