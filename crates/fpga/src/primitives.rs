//! Post-synthesis primitive netlist.
//!
//! Technology mapping lowers a coarse word-level netlist to the primitives a
//! NanoXplore-style fabric actually provides: 4-input LUTs, D flip-flops,
//! carry-chain elements, DSP blocks, and true dual-port block RAMs. Nets at
//! this level are single-bit (except DSP/RAM bus stubs, which stay bundled —
//! placement treats each bundle as one net).

use std::collections::HashMap;
use std::fmt;

/// Identifier of a primitive-level net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PNetId(pub u32);

/// Identifier of a primitive cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PCellId(pub u32);

impl fmt::Display for PNetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pn{}", self.0)
    }
}

impl fmt::Display for PCellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc{}", self.0)
    }
}

/// A fabric primitive.
#[derive(Debug, Clone, PartialEq)]
pub enum Primitive {
    /// 4-input lookup table. `truth` bit `i` gives the output for input
    /// pattern `i` (input 0 is the LSB of the pattern).
    Lut4 {
        /// 16-bit truth table.
        truth: u16,
        /// Number of used inputs (1..=4).
        used_inputs: u8,
    },
    /// Carry-chain element: one position of a hard ripple chain. Treated as
    /// a LUT site with a fast cascade path during timing analysis.
    Carry,
    /// D flip-flop (with synchronous reset and optional enable).
    Dff {
        /// Whether an enable input is connected.
        has_enable: bool,
    },
    /// DSP block configured as a `width x width` multiplier slice.
    Dsp {
        /// Operand width handled by this block.
        width: u8,
        /// Internal pipeline registers enabled.
        pipelined: bool,
    },
    /// Block RAM configured as true dual-port memory.
    Ramb {
        /// Words stored.
        depth: u32,
        /// Word width.
        width: u8,
    },
    /// I/O pad (one per top-level port bit).
    IoPad {
        /// True for an input pad.
        is_input: bool,
    },
}

impl Primitive {
    /// Short mnemonic for reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Primitive::Lut4 { .. } => "LUT4",
            Primitive::Carry => "CARRY",
            Primitive::Dff { .. } => "DFF",
            Primitive::Dsp { .. } => "DSP",
            Primitive::Ramb { .. } => "RAMB",
            Primitive::IoPad { .. } => "IOPAD",
        }
    }

    /// Whether the primitive holds clocked state.
    pub fn is_sequential(&self) -> bool {
        matches!(
            self,
            Primitive::Dff { .. } | Primitive::Ramb { .. } | Primitive::Dsp { pipelined: true, .. }
        )
    }
}

/// An instantiated primitive with its connectivity.
#[derive(Debug, Clone, PartialEq)]
pub struct PCell {
    /// Instance name (derived from the source coarse cell).
    pub name: String,
    /// The primitive kind and configuration.
    pub prim: Primitive,
    /// Input nets.
    pub inputs: Vec<PNetId>,
    /// Output nets.
    pub outputs: Vec<PNetId>,
    /// Name of the coarse cell this primitive was expanded from.
    pub source: String,
}

/// Resource totals of a primitive netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Utilization {
    /// LUT4 count (including carry elements, which occupy LUT sites).
    pub luts: u64,
    /// Flip-flop count.
    pub ffs: u64,
    /// Carry elements (subset of `luts`).
    pub carries: u64,
    /// DSP blocks.
    pub dsps: u64,
    /// Block RAMs.
    pub rams: u64,
    /// I/O pads.
    pub io_pads: u64,
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUTs ({} carry), {} FFs, {} DSPs, {} RAMBs, {} IOs",
            self.luts, self.carries, self.ffs, self.dsps, self.rams, self.io_pads
        )
    }
}

/// A netlist of fabric primitives.
#[derive(Debug, Clone, Default)]
pub struct PrimNetlist {
    /// Module name carried over from the coarse netlist.
    pub name: String,
    cells: Vec<PCell>,
    net_count: u32,
    net_names: HashMap<u32, String>,
}

impl PrimNetlist {
    /// Create an empty primitive netlist.
    pub fn new(name: impl Into<String>) -> Self {
        PrimNetlist {
            name: name.into(),
            ..PrimNetlist::default()
        }
    }

    /// Allocate a fresh net.
    pub fn new_net(&mut self) -> PNetId {
        let id = PNetId(self.net_count);
        self.net_count += 1;
        id
    }

    /// Allocate a fresh named net (names kept only for debugging).
    pub fn new_named_net(&mut self, name: impl Into<String>) -> PNetId {
        let id = self.new_net();
        self.net_names.insert(id.0, name.into());
        id
    }

    /// Add a primitive cell.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        prim: Primitive,
        inputs: Vec<PNetId>,
        outputs: Vec<PNetId>,
        source: impl Into<String>,
    ) -> PCellId {
        let id = PCellId(self.cells.len() as u32);
        self.cells.push(PCell {
            name: name.into(),
            prim,
            inputs,
            outputs,
            source: source.into(),
        });
        id
    }

    /// All cells with ids.
    pub fn cells(&self) -> impl Iterator<Item = (PCellId, &PCell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (PCellId(i as u32), c))
    }

    /// The cell behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this netlist.
    pub fn cell(&self, id: PCellId) -> &PCell {
        &self.cells[id.0 as usize]
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Total number of nets allocated.
    pub fn net_count(&self) -> u32 {
        self.net_count
    }

    /// Debug name of a net, if it was given one.
    pub fn net_name(&self, id: PNetId) -> Option<&str> {
        self.net_names.get(&id.0).map(String::as_str)
    }

    /// Compute resource totals.
    pub fn utilization(&self) -> Utilization {
        let mut u = Utilization::default();
        for c in &self.cells {
            match c.prim {
                Primitive::Lut4 { .. } => u.luts += 1,
                Primitive::Carry => {
                    u.luts += 1;
                    u.carries += 1;
                }
                Primitive::Dff { .. } => u.ffs += 1,
                Primitive::Dsp { .. } => u.dsps += 1,
                Primitive::Ramb { .. } => u.rams += 1,
                Primitive::IoPad { .. } => u.io_pads += 1,
            }
        }
        u
    }

    /// Map from net to the driving cell.
    pub fn driver_map(&self) -> HashMap<PNetId, PCellId> {
        let mut m = HashMap::new();
        for (cid, c) in self.cells() {
            for &o in &c.outputs {
                m.insert(o, cid);
            }
        }
        m
    }

    /// Map from net to all consuming cells.
    pub fn consumer_map(&self) -> HashMap<PNetId, Vec<PCellId>> {
        let mut m: HashMap<PNetId, Vec<PCellId>> = HashMap::new();
        for (cid, c) in self.cells() {
            for &i in &c.inputs {
                m.entry(i).or_default().push(cid);
            }
        }
        m
    }
}

/// Common LUT truth tables for 2-input functions placed in a LUT4
/// (inputs 0 and 1 used; the packing convention fixes unused inputs at 0).
pub mod truth {
    /// AND of inputs 0 and 1.
    pub const AND2: u16 = 0x8888;
    /// OR of inputs 0 and 1.
    pub const OR2: u16 = 0xEEEE;
    /// XOR of inputs 0 and 1.
    pub const XOR2: u16 = 0x6666;
    /// NOT of input 0.
    pub const NOT1: u16 = 0x5555;
    /// Buffer of input 0.
    pub const BUF1: u16 = 0xAAAA;
    /// Full-adder sum: in0 ^ in1 ^ in2.
    pub const SUM3: u16 = 0x9696;
    /// Full-adder carry: majority(in0, in1, in2).
    pub const MAJ3: u16 = 0xE8E8;
    /// 2:1 mux: in2 ? in1 : in0.
    pub const MUX21: u16 = 0xCACA;

    /// Evaluate a LUT4 truth table on up to 4 input bits.
    pub fn eval(truth: u16, bits: &[bool]) -> bool {
        let mut idx = 0usize;
        for (i, &b) in bits.iter().take(4).enumerate() {
            if b {
                idx |= 1 << i;
            }
        }
        (truth >> idx) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::truth::*;
    use super::*;

    #[test]
    fn truth_tables_are_correct() {
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(eval(AND2, &[a, b]), a && b);
                assert_eq!(eval(OR2, &[a, b]), a || b);
                assert_eq!(eval(XOR2, &[a, b]), a ^ b);
                for c in [false, true] {
                    assert_eq!(eval(SUM3, &[a, b, c]), a ^ b ^ c);
                    assert_eq!(
                        eval(MAJ3, &[a, b, c]),
                        (c || b) && a || (b && c),
                        "maj({a},{b},{c})"
                    );
                    assert_eq!(eval(MUX21, &[a, b, c]), if c { b } else { a });
                }
            }
            assert_eq!(eval(NOT1, &[a]), !a);
            assert_eq!(eval(BUF1, &[a]), a);
        }
    }

    #[test]
    fn utilization_counts_primitives() {
        let mut p = PrimNetlist::new("t");
        let n0 = p.new_net();
        let n1 = p.new_net();
        let n2 = p.new_net();
        p.add(
            "l0",
            Primitive::Lut4 {
                truth: AND2,
                used_inputs: 2,
            },
            vec![n0, n1],
            vec![n2],
            "src",
        );
        p.add("c0", Primitive::Carry, vec![n0, n1], vec![n2], "src");
        p.add(
            "f0",
            Primitive::Dff { has_enable: false },
            vec![n2],
            vec![n0],
            "src",
        );
        let u = p.utilization();
        assert_eq!(u.luts, 2);
        assert_eq!(u.carries, 1);
        assert_eq!(u.ffs, 1);
        assert!(u.to_string().contains("2 LUTs"));
    }

    #[test]
    fn driver_and_consumer_maps() {
        let mut p = PrimNetlist::new("t");
        let a = p.new_net();
        let y = p.new_net();
        let c = p.add(
            "l",
            Primitive::Lut4 {
                truth: NOT1,
                used_inputs: 1,
            },
            vec![a],
            vec![y],
            "s",
        );
        assert_eq!(p.driver_map().get(&y), Some(&c));
        assert_eq!(p.consumer_map().get(&a), Some(&vec![c]));
    }
}
