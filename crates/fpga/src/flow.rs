//! The NXmap-analogue implementation flow (Fig. 3 of the paper):
//! synthesis → placement → routing → static timing analysis → bitstream.

use crate::bitstream::Bitstream;
use crate::device::DeviceProfile;
use crate::place::{Effort, Placement, Placer};
use crate::primitives::{PrimNetlist, Utilization};
use crate::route::{RouteReport, Router};
use crate::synth::{SynthReport, Synthesizer};
use crate::timing::{Analyzer, MulticycleHints, TimingReport};
use crate::FpgaError;
use hermes_obs::{ClockDomain, Recorder};
use hermes_rtl::netlist::Netlist;
use std::time::Instant;

/// Options controlling a flow run.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Requested clock period in nanoseconds (the user-chosen constraint the
    /// paper notes FPGAs require).
    pub target_period_ns: f64,
    /// Placement effort.
    pub effort: Effort,
    /// Deterministic seed for placement.
    pub seed: u64,
    /// If true, a timing violation aborts the flow with
    /// [`FpgaError::TimingNotMet`]; if false it is only reported.
    pub fail_on_timing: bool,
    /// Multicycle path exceptions from the HLS schedule (coarse cell name
    /// → allowed settle cycles); see [`crate::timing::MulticycleHints`].
    pub multicycle: MulticycleHints,
    /// Number of independent annealing starts; the best (lowest-HPWL)
    /// result wins. Starts run in parallel across [`hermes_par::jobs`]
    /// workers; `1` keeps the classic single-anneal flow.
    pub place_starts: u32,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            target_period_ns: 10.0, // 100 MHz
            effort: Effort::Low,
            seed: 1,
            fail_on_timing: false,
            multicycle: MulticycleHints::new(),
            place_starts: 1,
        }
    }
}

/// Estimated power of the implemented design at the achieved frequency.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerEstimate {
    /// Static power, mW.
    pub static_mw: f64,
    /// Dynamic power at the target clock, mW.
    pub dynamic_mw: f64,
}

impl PowerEstimate {
    /// Total power, mW.
    pub fn total_mw(&self) -> f64 {
        self.static_mw + self.dynamic_mw
    }
}

/// Complete results of one flow run.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Design name.
    pub design: String,
    /// Device name.
    pub device: String,
    /// Synthesis metrics.
    pub synth: SynthReport,
    /// Resource utilization (copy of `synth.utilization` for convenience).
    pub utilization: Utilization,
    /// Placement result.
    pub placement: PlacementSummary,
    /// Routing result.
    pub route: RouteSummary,
    /// Timing result.
    pub timing: TimingReport,
    /// Power estimate.
    pub power: PowerEstimate,
    /// Bitstream size in bytes.
    pub bitstream_bytes: usize,
    /// Wall-clock time of each stage in microseconds:
    /// (synth, place, route, sta, bitgen).
    pub stage_us: [u128; 5],
}

/// Condensed placement metrics for the report.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlacementSummary {
    /// Final HPWL.
    pub hpwl: f64,
    /// Initial HPWL before annealing.
    pub initial_hpwl: f64,
    /// Accepted / tried move counts.
    pub moves: (u64, u64),
}

/// Condensed routing metrics for the report.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RouteSummary {
    /// Total wirelength in tile units.
    pub wirelength: f64,
    /// Peak channel utilization.
    pub peak_utilization: f64,
    /// Channels over capacity.
    pub overflowed: u32,
}

impl FlowReport {
    /// Render a human-readable multi-line report (the flow log a user of
    /// NXmap would read).
    pub fn render(&self) -> String {
        format!(
            "design {d} on {dev}\n\
             \x20 synth : {cc} coarse cells -> {pc} primitives ({util})\n\
             \x20 place : HPWL {hp:.0} (initial {ih:.0}), {acc}/{tried} moves\n\
             \x20 route : wirelength {wl:.0}, peak util {pu:.2}, {ov} overflow\n\
             \x20 timing: {cp:.2} ns critical ({lv} levels) -> {fm:.1} MHz, slack {sl:.2} ns\n\
             \x20 power : {pw:.1} mW\n\
             \x20 bitgen: {bb} bytes",
            d = self.design,
            dev = self.device,
            cc = self.synth.coarse_cells,
            pc = self.synth.prim_cells,
            util = self.utilization,
            hp = self.placement.hpwl,
            ih = self.placement.initial_hpwl,
            acc = self.placement.moves.0,
            tried = self.placement.moves.1,
            wl = self.route.wirelength,
            pu = self.route.peak_utilization,
            ov = self.route.overflowed,
            cp = self.timing.critical_path_ns,
            lv = self.timing.logic_levels,
            fm = self.timing.fmax_mhz,
            sl = self.timing.worst_slack_ns,
            pw = self.power.total_mw(),
            bb = self.bitstream_bytes,
        )
    }
}

/// Artifacts of a flow run that downstream stages consume.
#[derive(Debug, Clone)]
pub struct FlowArtifacts {
    /// The mapped primitive netlist.
    pub prim: PrimNetlist,
    /// The placement.
    pub placement: Placement,
    /// The routing report (with per-net delays).
    pub route: RouteReport,
    /// The configuration bitstream.
    pub bitstream: Bitstream,
}

/// The implementation flow driver.
#[derive(Debug, Clone)]
pub struct NxFlow {
    device: DeviceProfile,
    options: FlowOptions,
}

impl NxFlow {
    /// Create a flow for a device with the given options.
    pub fn new(device: DeviceProfile, options: FlowOptions) -> Self {
        NxFlow { device, options }
    }

    /// The target device.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// Run the full flow, returning only the report.
    ///
    /// # Errors
    ///
    /// Propagates any stage failure; see [`FpgaError`].
    pub fn run(&self, netlist: &Netlist) -> Result<FlowReport, FpgaError> {
        self.run_with_artifacts(netlist).map(|(r, _)| r)
    }

    /// [`run`](NxFlow::run) with flight-recorder output (see
    /// [`run_with_artifacts_traced`](NxFlow::run_with_artifacts_traced)).
    ///
    /// # Errors
    ///
    /// Propagates any stage failure; see [`FpgaError`].
    pub fn run_traced(&self, netlist: &Netlist, obs: &Recorder) -> Result<FlowReport, FpgaError> {
        self.run_with_artifacts_traced(netlist, obs).map(|(r, _)| r)
    }

    /// Run the full flow, returning the report plus reusable artifacts
    /// (primitive netlist, placement, routed delays, bitstream).
    ///
    /// # Errors
    ///
    /// Propagates any stage failure; see [`FpgaError`].
    pub fn run_with_artifacts(
        &self,
        netlist: &Netlist,
    ) -> Result<(FlowReport, FlowArtifacts), FpgaError> {
        self.run_with_artifacts_traced(netlist, &Recorder::disabled())
    }

    /// [`run_with_artifacts`](NxFlow::run_with_artifacts) with
    /// flight-recorder output: one `Seq`-clocked span per NXmap stage
    /// (synth → place → route → sta → bitgen, ts = stage index) with the
    /// stage's headline metric, plus per-annealing-epoch placer samples
    /// via [`Placer::place_multi_traced`].
    ///
    /// # Errors
    ///
    /// Propagates any stage failure; see [`FpgaError`].
    pub fn run_with_artifacts_traced(
        &self,
        netlist: &Netlist,
        obs: &Recorder,
    ) -> Result<(FlowReport, FlowArtifacts), FpgaError> {
        const SUB: &str = "fpga";
        let m0 = obs.mark();
        let t0 = Instant::now();
        let synth = Synthesizer::new(self.device.clone()).synthesize(netlist)?;
        obs.span(
            SUB,
            "synth",
            ClockDomain::Seq,
            0,
            1,
            &[
                ("coarse_cells", synth.report.coarse_cells.to_string()),
                ("prim_cells", synth.report.prim_cells.to_string()),
            ],
            m0,
        );
        let m1 = obs.mark();
        let t1 = Instant::now();
        let placement = Placer::new(self.device.clone(), self.options.effort, self.options.seed)
            .place_multi_traced(
                &synth.prim,
                self.options.place_starts,
                hermes_par::jobs(),
                obs,
            )?;
        obs.span(
            SUB,
            "place",
            ClockDomain::Seq,
            1,
            1,
            &[
                ("hpwl", format!("{:.1}", placement.hpwl)),
                ("starts", self.options.place_starts.max(1).to_string()),
            ],
            m1,
        );
        let m2 = obs.mark();
        let t2 = Instant::now();
        let route = Router::new(self.device.clone()).route(&synth.prim, &placement)?;
        obs.span(
            SUB,
            "route",
            ClockDomain::Seq,
            2,
            1,
            &[
                ("wirelength", format!("{:.1}", route.total_wirelength)),
                ("overflowed", route.overflowed_channels.to_string()),
            ],
            m2,
        );
        let m3 = obs.mark();
        let t3 = Instant::now();
        let timing = Analyzer::new(self.device.clone())
            .with_multicycle(self.options.multicycle.clone())
            .analyze(&synth.prim, Some(&route), self.options.target_period_ns);
        obs.span(
            SUB,
            "sta",
            ClockDomain::Seq,
            3,
            1,
            &[
                ("fmax_mhz", format!("{:.1}", timing.fmax_mhz)),
                ("met", timing.met().to_string()),
            ],
            m3,
        );
        let m4 = obs.mark();
        let t4 = Instant::now();
        if self.options.fail_on_timing && !timing.met() {
            return Err(FpgaError::TimingNotMet {
                achieved_mhz: timing.fmax_mhz,
                requested_mhz: 1000.0 / self.options.target_period_ns,
            });
        }
        let bitstream = Bitstream::generate(&synth.prim, &placement, &self.device);
        obs.span(
            SUB,
            "bitgen",
            ClockDomain::Seq,
            4,
            1,
            &[("bytes", bitstream.size_bytes().to_string())],
            m4,
        );
        obs.counter_add(SUB, "flows", 1);
        let t5 = Instant::now();

        let u = synth.report.utilization;
        let p = &self.device.power;
        let clock_mhz = 1000.0 / self.options.target_period_ns;
        let power = PowerEstimate {
            static_mw: (u.luts as f64 * p.lut_static_uw
                + u.dsps as f64 * p.dsp_static_uw
                + u.rams as f64 * p.ram_static_uw)
                / 1000.0,
            dynamic_mw: u.luts as f64 * p.lut_dynamic_uw_per_100mhz * (clock_mhz / 100.0)
                / 1000.0,
        };

        let report = FlowReport {
            design: netlist.name().to_string(),
            device: self.device.name.clone(),
            utilization: u,
            placement: PlacementSummary {
                hpwl: placement.hpwl,
                initial_hpwl: placement.initial_hpwl,
                moves: (placement.moves_accepted, placement.moves_tried),
            },
            route: RouteSummary {
                wirelength: route.total_wirelength,
                peak_utilization: route.peak_utilization,
                overflowed: route.overflowed_channels,
            },
            timing,
            power,
            bitstream_bytes: bitstream.size_bytes(),
            stage_us: [
                (t1 - t0).as_micros(),
                (t2 - t1).as_micros(),
                (t3 - t2).as_micros(),
                (t4 - t3).as_micros(),
                (t5 - t4).as_micros(),
            ],
            synth: synth.report,
        };
        let artifacts = FlowArtifacts {
            prim: synth.prim,
            placement,
            route,
            bitstream,
        };
        Ok((report, artifacts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_rtl::netlist::{CellOp, Netlist};

    fn mac_design() -> Netlist {
        let mut nl = Netlist::new("mac16");
        let a = nl.add_input("a", 16);
        let b = nl.add_input("b", 16);
        let p = nl.add_net("p", 16);
        let acc_in = nl.add_net("acc", 16);
        let sum = nl.add_net("sum", 16);
        nl.add_cell("mul", CellOp::Mul, &[a, b], &[p]).unwrap();
        nl.add_cell("add", CellOp::Add, &[p, acc_in], &[sum]).unwrap();
        nl.add_cell(
            "accreg",
            CellOp::Register {
                has_enable: false,
                has_reset: true,
            },
            &[sum],
            &[acc_in],
        )
        .unwrap();
        nl.mark_output(acc_in);
        nl
    }

    #[test]
    fn full_flow_on_mac() {
        let report = NxFlow::new(DeviceProfile::ng_medium_like(), FlowOptions::default())
            .run(&mac_design())
            .unwrap();
        assert!(report.utilization.dsps >= 1);
        assert!(report.utilization.ffs >= 16);
        assert!(report.timing.fmax_mhz > 10.0);
        assert!(report.bitstream_bytes > 0);
        assert!(report.power.total_mw() > 0.0);
        let text = report.render();
        assert!(text.contains("timing:"));
        assert!(text.contains("bitgen:"));
    }

    #[test]
    fn artifacts_bitstream_verifies() {
        let (_, art) = NxFlow::new(DeviceProfile::ng_medium_like(), FlowOptions::default())
            .run_with_artifacts(&mac_design())
            .unwrap();
        art.bitstream.verify().unwrap();
        assert_eq!(art.placement.locations.len(), art.prim.cell_count());
    }

    #[test]
    fn fail_on_timing_errors_out() {
        let opts = FlowOptions {
            target_period_ns: 0.01, // 100 GHz: impossible
            fail_on_timing: true,
            ..FlowOptions::default()
        };
        let err = NxFlow::new(DeviceProfile::ng_medium_like(), opts)
            .run(&mac_design())
            .unwrap_err();
        assert!(matches!(err, FpgaError::TimingNotMet { .. }));
    }

    #[test]
    fn flow_deterministic() {
        let f = NxFlow::new(DeviceProfile::ng_medium_like(), FlowOptions::default());
        let r1 = f.run(&mac_design()).unwrap();
        let r2 = f.run(&mac_design()).unwrap();
        assert_eq!(r1.placement.hpwl, r2.placement.hpwl);
        assert_eq!(r1.timing.critical_path_ns, r2.timing.critical_path_ns);
    }
}

/// Generate the NXmap-style backend synthesis script for a design — the
/// "seamless integration between Bambu and NXmap through the automatic
/// generation of backend synthesis scripts" of Section II. The script is
/// the Python dialect NXmap consumes; this flow executes the same steps
/// natively, and the text serves as the exchange artifact.
pub fn nxmap_script(design: &str, top_hdl_file: &str, device: &DeviceProfile, options: &FlowOptions) -> String {
    let mhz = 1000.0 / options.target_period_ns;
    let mut s = String::new();
    s.push_str("# Generated by hermes-fpga (NXmap backend script)\n");
    s.push_str("from nxmap import *\n\n");
    s.push_str(&format!("p = createProject('{design}_impl')\n"));
    s.push_str(&format!("p.setVariantName('{}')\n", device.name));
    s.push_str(&format!("p.addFile('rtl', '{top_hdl_file}')\n"));
    s.push_str(&format!("p.setTopCellName('{design}')\n"));
    s.push_str(&format!(
        "p.createClock(getClockNet('clk'), 'clk', {:.0})  # {:.1} MHz\n",
        options.target_period_ns * 1000.0,
        mhz
    ));
    for (cell, factor) in {
        let mut v: Vec<_> = options.multicycle.iter().collect();
        v.sort();
        v
    } {
        s.push_str(&format!(
            "p.addMulticyclePath('{cell}', {factor})\n"
        ));
    }
    s.push_str("\np.synthesize()\np.place()\np.route()\n");
    s.push_str(&format!(
        "p.reportInstances()\np.generateBitstream('{design}.nxb')\n"
    ));
    s.push_str("p.save()\n");
    s
}

#[cfg(test)]
mod script_tests {
    use super::*;

    #[test]
    fn script_contains_flow_steps() {
        let dev = DeviceProfile::ng_medium_like();
        let mut opts = FlowOptions::default();
        opts.multicycle.insert("b0_i3".into(), 28);
        let s = nxmap_script("sobel", "sobel.v", &dev, &opts);
        for needle in [
            "createProject('sobel_impl')",
            "setVariantName('NG-MEDIUM-like')",
            "createClock",
            "addMulticyclePath('b0_i3', 28)",
            "synthesize()",
            "place()",
            "route()",
            "generateBitstream('sobel.nxb')",
        ] {
            assert!(s.contains(needle), "missing `{needle}` in:\n{s}");
        }
    }
}
