//! # hermes-fpga
//!
//! NG-ULTRA device model and NXmap-analogue implementation flow for the
//! HERMES ecosystem: logic synthesis (technology mapping of coarse netlists
//! to LUT4/FF/DSP/RAMB primitives), simulated-annealing placement, routing
//! estimation, static timing analysis, and synthetic bitstream generation.
//!
//! The real NG-ULTRA fabric and the NXmap design suite are proprietary; this
//! crate reproduces their observable pipeline (Fig. 3 of the paper:
//! synthesis → place → route → STA → bitstream) against a parametric device
//! model whose headline numbers match the published NG-ULTRA figures
//! (28 nm FD-SOI, ~550k LUTs, DSP blocks, true dual-port block RAM).
//!
//! ## Example
//!
//! Run the full flow on a small netlist:
//!
//! ```
//! use hermes_rtl::netlist::{Netlist, CellOp};
//! use hermes_fpga::device::DeviceProfile;
//! use hermes_fpga::flow::{FlowOptions, NxFlow};
//!
//! # fn main() -> Result<(), hermes_fpga::FpgaError> {
//! let mut nl = Netlist::new("adder");
//! let a = nl.add_input("a", 8);
//! let b = nl.add_input("b", 8);
//! let y = nl.add_net("y", 8);
//! nl.add_cell("add", CellOp::Add, &[a, b], &[y])?;
//! nl.mark_output(y);
//!
//! let device = DeviceProfile::ng_medium_like();
//! let report = NxFlow::new(device, FlowOptions::default()).run(&nl)?;
//! assert!(report.timing.fmax_mhz > 0.0);
//! assert!(report.utilization.luts > 0);
//! # Ok(())
//! # }
//! ```

pub mod bitstream;
pub mod device;
pub mod flow;
pub mod place;
pub mod primitives;
pub mod route;
pub mod synth;
pub mod timing;

use std::fmt;

/// Errors produced by the FPGA implementation flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FpgaError {
    /// The design does not fit the selected device.
    ResourceOverflow {
        /// Which resource ran out.
        resource: String,
        /// How many the design needs.
        required: u64,
        /// How many the device offers.
        available: u64,
    },
    /// The input netlist is structurally invalid.
    Netlist(hermes_rtl::RtlError),
    /// A coarse cell kind could not be mapped to primitives.
    Unmappable {
        /// Cell name.
        cell: String,
        /// Reason mapping failed.
        reason: String,
    },
    /// Routing failed to converge below the congestion limit.
    Unroutable {
        /// Worst channel overflow.
        overflow: u32,
    },
    /// Bitstream integrity failure.
    BitstreamCorrupt {
        /// Index of the first corrupted frame.
        frame: usize,
    },
    /// Bitstream is malformed (bad magic, truncated, wrong device).
    BitstreamMalformed {
        /// Human-readable detail.
        detail: String,
    },
    /// Timing closure failed and the flow was asked to treat that as fatal.
    TimingNotMet {
        /// Achieved maximum frequency in MHz.
        achieved_mhz: f64,
        /// Requested frequency in MHz.
        requested_mhz: f64,
    },
    /// An internal engine failure (e.g. a parallel placement worker died).
    Internal {
        /// Human-readable detail.
        message: String,
    },
}

impl fmt::Display for FpgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaError::ResourceOverflow {
                resource,
                required,
                available,
            } => write!(
                f,
                "design needs {required} {resource} but device has {available}"
            ),
            FpgaError::Netlist(e) => write!(f, "invalid netlist: {e}"),
            FpgaError::Unmappable { cell, reason } => {
                write!(f, "cannot map cell `{cell}`: {reason}")
            }
            FpgaError::Unroutable { overflow } => {
                write!(f, "routing congestion overflow of {overflow} tracks")
            }
            FpgaError::BitstreamCorrupt { frame } => {
                write!(f, "bitstream frame {frame} failed its CRC check")
            }
            FpgaError::BitstreamMalformed { detail } => {
                write!(f, "malformed bitstream: {detail}")
            }
            FpgaError::TimingNotMet {
                achieved_mhz,
                requested_mhz,
            } => write!(
                f,
                "timing not met: achieved {achieved_mhz:.1} MHz < requested {requested_mhz:.1} MHz"
            ),
            FpgaError::Internal { message } => write!(f, "internal flow error: {message}"),
        }
    }
}

impl std::error::Error for FpgaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FpgaError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hermes_rtl::RtlError> for FpgaError {
    fn from(e: hermes_rtl::RtlError) -> Self {
        FpgaError::Netlist(e)
    }
}
