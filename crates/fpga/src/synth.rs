//! Logic synthesis: technology mapping of coarse netlists to fabric
//! primitives.
//!
//! Every word-level cell is expanded into the primitives a NanoXplore-style
//! fabric provides, with real per-bit connectivity so that placement and
//! timing operate on an honest graph:
//!
//! * add/sub/compare → hard carry chains (one [`Primitive::Carry`] per bit),
//! * bitwise logic and muxes → LUT4s,
//! * variable shifts → log-depth barrel-shifter stages of mux LUTs,
//! * multiply → DSP blocks (tiled when wider than the DSP operand width),
//! * divide/modulo → an unrolled restoring-divider array,
//! * registers → DFFs, memories → block RAMs sized by the device model.

use crate::device::DeviceProfile;
use crate::primitives::{truth, PNetId, PrimNetlist, Primitive, Utilization};
use crate::FpgaError;
use hermes_rtl::component::Comparison;
use hermes_rtl::netlist::{CellOp, Netlist, NetId};
use std::collections::HashMap;

/// Outcome of technology mapping.
#[derive(Debug, Clone)]
pub struct SynthResult {
    /// The mapped primitive netlist.
    pub prim: PrimNetlist,
    /// Synthesis report.
    pub report: SynthReport,
}

/// Per-design synthesis metrics (the "synthesis" row of an NXmap-style
/// flow report).
#[derive(Debug, Clone, Default)]
pub struct SynthReport {
    /// Resource totals after mapping.
    pub utilization: Utilization,
    /// Coarse cells mapped.
    pub coarse_cells: usize,
    /// Primitive cells emitted.
    pub prim_cells: usize,
    /// Per-coarse-cell primitive counts, for the hierarchy report.
    pub per_cell: Vec<(String, usize)>,
}

/// Technology mapper for a given device.
#[derive(Debug, Clone)]
pub struct Synthesizer {
    device: DeviceProfile,
}

struct MapCtx {
    prim: PrimNetlist,
    bits: HashMap<NetId, Vec<PNetId>>,
    zero: Option<PNetId>,
    one: Option<PNetId>,
}

impl MapCtx {
    fn bit(&self, net: NetId, i: usize) -> PNetId {
        self.bits[&net][i]
    }

    fn const_bit(&mut self, value: bool) -> PNetId {
        let cached = if value { self.one } else { self.zero };
        if let Some(n) = cached {
            return n;
        }
        let n = self.prim.new_named_net(if value { "const1" } else { "const0" });
        self.prim.add(
            format!("const_{}", u8::from(value)),
            Primitive::Lut4 {
                truth: if value { 0xFFFF } else { 0x0000 },
                used_inputs: 0,
            },
            vec![],
            vec![n],
            "<const>",
        );
        if value {
            self.one = Some(n);
        } else {
            self.zero = Some(n);
        }
        n
    }

    fn lut(
        &mut self,
        name: String,
        truth: u16,
        used: u8,
        inputs: Vec<PNetId>,
        source: &str,
    ) -> PNetId {
        let out = self.prim.new_net();
        self.prim.add(
            name,
            Primitive::Lut4 {
                truth,
                used_inputs: used,
            },
            inputs,
            vec![out],
            source,
        );
        out
    }

    /// Carry element: inputs `[a, b, cin]`, outputs `[sum, cout]`.
    fn carry(&mut self, name: String, a: PNetId, b: PNetId, cin: PNetId, source: &str) -> (PNetId, PNetId) {
        let sum = self.prim.new_net();
        let cout = self.prim.new_net();
        self.prim
            .add(name, Primitive::Carry, vec![a, b, cin], vec![sum, cout], source);
        (sum, cout)
    }

    /// Ripple add of two bit vectors; returns (sum bits, carry out).
    fn ripple_add(
        &mut self,
        name: &str,
        a: &[PNetId],
        b: &[PNetId],
        cin: PNetId,
        source: &str,
    ) -> (Vec<PNetId>, PNetId) {
        let mut carry = cin;
        let mut sums = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.carry(format!("{name}_c{i}"), a[i], b[i], carry, source);
            sums.push(s);
            carry = c;
        }
        (sums, carry)
    }

    fn invert_all(&mut self, name: &str, bits: &[PNetId], source: &str) -> Vec<PNetId> {
        bits.iter()
            .enumerate()
            .map(|(i, &b)| self.lut(format!("{name}_n{i}"), truth::NOT1, 1, vec![b], source))
            .collect()
    }

    /// OR-reduce a set of bits with a balanced LUT tree.
    fn or_reduce(&mut self, name: &str, bits: &[PNetId], source: &str) -> PNetId {
        assert!(!bits.is_empty());
        let mut layer: Vec<PNetId> = bits.to_vec();
        let mut depth = 0;
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for (i, pair) in layer.chunks(2).enumerate() {
                if pair.len() == 2 {
                    next.push(self.lut(
                        format!("{name}_or{depth}_{i}"),
                        truth::OR2,
                        2,
                        vec![pair[0], pair[1]],
                        source,
                    ));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
            depth += 1;
        }
        layer[0]
    }

    /// Unsigned `a >= b` via a borrow chain; returns the carry-out of
    /// `a + !b + 1`.
    fn geu(&mut self, name: &str, a: &[PNetId], b: &[PNetId], source: &str) -> PNetId {
        let nb = self.invert_all(&format!("{name}_nb"), b, source);
        let one = self.const_bit(true);
        let (_, cout) = self.ripple_add(&format!("{name}_sub"), a, &nb, one, source);
        cout
    }
}

impl Synthesizer {
    /// Create a mapper targeting `device`.
    pub fn new(device: DeviceProfile) -> Self {
        Synthesizer { device }
    }

    /// The target device.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// Map a validated coarse netlist to primitives.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::Netlist`] for structural problems in the input
    /// and [`FpgaError::ResourceOverflow`] if the mapped design exceeds the
    /// device capacity.
    pub fn synthesize(&self, netlist: &Netlist) -> Result<SynthResult, FpgaError> {
        netlist.validate()?;
        let mut ctx = MapCtx {
            prim: PrimNetlist::new(netlist.name()),
            bits: HashMap::new(),
            zero: None,
            one: None,
        };

        // Pre-allocate per-bit nets for every coarse net.
        for (nid, net) in netlist.nets() {
            let bits = (0..net.width)
                .map(|i| ctx.prim.new_named_net(format!("{}[{}]", net.name, i)))
                .collect();
            ctx.bits.insert(nid, bits);
        }

        // I/O pads.
        for &inp in netlist.inputs() {
            let w = netlist.net(inp).width;
            for i in 0..w as usize {
                let b = ctx.bit(inp, i);
                ctx.prim.add(
                    format!("{}_pad{}", netlist.net(inp).name, i),
                    Primitive::IoPad { is_input: true },
                    vec![],
                    vec![b],
                    "<io>",
                );
            }
        }
        for &out in netlist.outputs() {
            let w = netlist.net(out).width;
            for i in 0..w as usize {
                let b = ctx.bit(out, i);
                ctx.prim.add(
                    format!("{}_pad{}", netlist.net(out).name, i),
                    Primitive::IoPad { is_input: false },
                    vec![b],
                    vec![],
                    "<io>",
                );
            }
        }

        let mut per_cell = Vec::new();
        for (_, cell) in netlist.cells() {
            let before = ctx.prim.cell_count();
            self.map_cell(&mut ctx, netlist, cell)?;
            per_cell.push((cell.name.clone(), ctx.prim.cell_count() - before));
        }

        let utilization = ctx.prim.utilization();
        self.check_capacity(&utilization)?;
        let report = SynthReport {
            utilization,
            coarse_cells: netlist.cell_count(),
            prim_cells: ctx.prim.cell_count(),
            per_cell,
        };
        Ok(SynthResult {
            prim: ctx.prim,
            report,
        })
    }

    fn check_capacity(&self, u: &Utilization) -> Result<(), FpgaError> {
        let checks = [
            ("LUT4", u.luts, self.device.total_luts()),
            ("DFF", u.ffs, self.device.total_ffs()),
            ("DSP", u.dsps, self.device.total_dsps()),
            ("RAMB", u.rams, self.device.total_rams()),
        ];
        for (name, req, avail) in checks {
            if req > avail {
                return Err(FpgaError::ResourceOverflow {
                    resource: name.into(),
                    required: req,
                    available: avail,
                });
            }
        }
        Ok(())
    }

    fn map_cell(
        &self,
        ctx: &mut MapCtx,
        netlist: &Netlist,
        cell: &hermes_rtl::netlist::Cell,
    ) -> Result<(), FpgaError> {
        let name = cell.name.clone();
        let in_bits: Vec<Vec<PNetId>> = cell
            .inputs
            .iter()
            .map(|&n| ctx.bits[&n].clone())
            .collect();
        let out_w = cell
            .outputs
            .first()
            .map(|&n| netlist.net(n).width as usize)
            .unwrap_or(0);

        // Helper: alias computed bits onto the pre-allocated output bit nets
        // with buffer LUTs (keeps pre-allocation simple and uniform; buffers
        // model the fabric's output muxing and are counted as LUTs, which
        // slightly over-approximates area — acceptable and conservative).
        let drive_out = |ctx: &mut MapCtx, outs: &[PNetId], computed: &[PNetId], src: &str| {
            for (i, (&o, &c)) in outs.iter().zip(computed.iter()).enumerate() {
                ctx.prim.add(
                    format!("{src}_buf{i}"),
                    Primitive::Lut4 {
                        truth: truth::BUF1,
                        used_inputs: 1,
                    },
                    vec![c],
                    vec![o],
                    src,
                );
            }
        };

        match &cell.op {
            CellOp::Add | CellOp::Sub => {
                let a = &in_bits[0];
                let b0 = &in_bits[1];
                let (b, cin) = if matches!(cell.op, CellOp::Sub) {
                    let nb = ctx.invert_all(&format!("{name}_nb"), b0, &name);
                    (nb, ctx.const_bit(true))
                } else {
                    (b0.clone(), ctx.const_bit(false))
                };
                let n = a.len().min(b.len()).min(out_w);
                let (sums, _) = ctx.ripple_add(&name, &a[..n], &b[..n], cin, &name);
                let outs = ctx.bits[&cell.outputs[0]].clone();
                drive_out(ctx, &outs[..n], &sums, &name);
            }
            CellOp::And | CellOp::Or | CellOp::Xor => {
                let tt = match cell.op {
                    CellOp::And => truth::AND2,
                    CellOp::Or => truth::OR2,
                    _ => truth::XOR2,
                };
                let outs = ctx.bits[&cell.outputs[0]].clone();
                for i in 0..out_w.min(in_bits[0].len()).min(in_bits[1].len()) {
                    let (a, b) = (in_bits[0][i], in_bits[1][i]);
                    ctx.prim.add(
                        format!("{name}_l{i}"),
                        Primitive::Lut4 {
                            truth: tt,
                            used_inputs: 2,
                        },
                        vec![a, b],
                        vec![outs[i]],
                        &name,
                    );
                }
            }
            CellOp::Not => {
                let outs = ctx.bits[&cell.outputs[0]].clone();
                for i in 0..out_w.min(in_bits[0].len()) {
                    let a = in_bits[0][i];
                    ctx.prim.add(
                        format!("{name}_l{i}"),
                        Primitive::Lut4 {
                            truth: truth::NOT1,
                            used_inputs: 1,
                        },
                        vec![a],
                        vec![outs[i]],
                        &name,
                    );
                }
            }
            CellOp::Mux => {
                let sel = in_bits[0][0];
                let outs = ctx.bits[&cell.outputs[0]].clone();
                for (i, &out) in outs.iter().enumerate().take(out_w) {
                    let a = in_bits[1].get(i).copied().unwrap_or_else(|| ctx.const_bit(false));
                    let b = in_bits[2].get(i).copied().unwrap_or_else(|| ctx.const_bit(false));
                    ctx.prim.add(
                        format!("{name}_m{i}"),
                        Primitive::Lut4 {
                            truth: truth::MUX21,
                            used_inputs: 3,
                        },
                        vec![a, b, sel],
                        vec![out],
                        &name,
                    );
                }
            }
            CellOp::Cmp(c) => {
                let (a, b) = (in_bits[0].clone(), in_bits[1].clone());
                let result = match c {
                    Comparison::Eq | Comparison::Ne => {
                        let diffs: Vec<PNetId> = (0..a.len())
                            .map(|i| {
                                ctx.lut(
                                    format!("{name}_x{i}"),
                                    truth::XOR2,
                                    2,
                                    vec![a[i], b[i]],
                                    &name,
                                )
                            })
                            .collect();
                        let any = ctx.or_reduce(&name, &diffs, &name);
                        if matches!(c, Comparison::Eq) {
                            ctx.lut(format!("{name}_inv"), truth::NOT1, 1, vec![any], &name)
                        } else {
                            any
                        }
                    }
                    Comparison::GeU | Comparison::LtU => {
                        let ge = ctx.geu(&name, &a, &b, &name);
                        if matches!(c, Comparison::GeU) {
                            ge
                        } else {
                            ctx.lut(format!("{name}_inv"), truth::NOT1, 1, vec![ge], &name)
                        }
                    }
                    Comparison::GeS | Comparison::LtS => {
                        // Bias trick: flip both MSBs, then compare unsigned.
                        let mut ab = a.clone();
                        let mut bb = b.clone();
                        let msb = a.len() - 1;
                        ab[msb] =
                            ctx.lut(format!("{name}_fa"), truth::NOT1, 1, vec![a[msb]], &name);
                        bb[msb] =
                            ctx.lut(format!("{name}_fb"), truth::NOT1, 1, vec![b[msb]], &name);
                        let ge = ctx.geu(&name, &ab, &bb, &name);
                        if matches!(c, Comparison::GeS) {
                            ge
                        } else {
                            ctx.lut(format!("{name}_inv"), truth::NOT1, 1, vec![ge], &name)
                        }
                    }
                };
                let outs = ctx.bits[&cell.outputs[0]].clone();
                drive_out(ctx, &outs[..1], &[result], &name);
            }
            CellOp::Shl | CellOp::ShrL | CellOp::ShrA => {
                let a = in_bits[0].clone();
                let sh = in_bits[1].clone();
                let w = a.len();
                let stages = (usize::BITS - (w.max(2) - 1).leading_zeros()) as usize;
                let fill = match cell.op {
                    CellOp::ShrA => a[w - 1],
                    _ => ctx.const_bit(false),
                };
                let mut cur = a;
                for s in 0..stages {
                    let amount = 1usize << s;
                    let sel = sh.get(s).copied().unwrap_or_else(|| ctx.const_bit(false));
                    let mut next = Vec::with_capacity(w);
                    for i in 0..w {
                        let shifted = match cell.op {
                            CellOp::Shl => {
                                if i >= amount {
                                    cur[i - amount]
                                } else {
                                    fill
                                }
                            }
                            _ => {
                                if i + amount < w {
                                    cur[i + amount]
                                } else {
                                    fill
                                }
                            }
                        };
                        next.push(ctx.lut(
                            format!("{name}_s{s}_{i}"),
                            truth::MUX21,
                            3,
                            vec![cur[i], shifted, sel],
                            &name,
                        ));
                    }
                    cur = next;
                }
                let outs = ctx.bits[&cell.outputs[0]].clone();
                let n = out_w.min(cur.len());
                drive_out(ctx, &outs[..n], &cur[..n], &name);
            }
            CellOp::Mul => {
                let w = in_bits[0].len() as u32;
                let dsps = self.device.dsps_for_multiplier(w);
                let outs = ctx.bits[&cell.outputs[0]].clone();
                if dsps == 1 {
                    let inputs: Vec<PNetId> = in_bits[0]
                        .iter()
                        .chain(in_bits[1].iter())
                        .copied()
                        .collect();
                    ctx.prim.add(
                        format!("{name}_dsp"),
                        Primitive::Dsp {
                            width: w as u8,
                            pipelined: false,
                        },
                        inputs,
                        outs,
                        &name,
                    );
                } else {
                    // Tile into dsp_width x dsp_width partial products and
                    // combine with carry-chain adders.
                    let dw = self.device.dsp_width as usize;
                    let n = (w as usize).div_ceil(dw);
                    let mut partials: Vec<Vec<PNetId>> = Vec::new();
                    for ia in 0..n {
                        for ib in 0..n {
                            let a_sl: Vec<PNetId> = in_bits[0]
                                [ia * dw..((ia + 1) * dw).min(w as usize)]
                                .to_vec();
                            let b_sl: Vec<PNetId> = in_bits[1]
                                [ib * dw..((ib + 1) * dw).min(w as usize)]
                                .to_vec();
                            let p: Vec<PNetId> =
                                (0..out_w).map(|_| ctx.prim.new_net()).collect();
                            let inputs: Vec<PNetId> =
                                a_sl.iter().chain(b_sl.iter()).copied().collect();
                            ctx.prim.add(
                                format!("{name}_dsp{ia}_{ib}"),
                                Primitive::Dsp {
                                    width: dw as u8,
                                    pipelined: false,
                                },
                                inputs,
                                p.clone(),
                                &name,
                            );
                            partials.push(p);
                        }
                    }
                    let mut acc = partials[0].clone();
                    for (k, p) in partials.iter().enumerate().skip(1) {
                        let cin = ctx.const_bit(false);
                        let (sum, _) =
                            ctx.ripple_add(&format!("{name}_acc{k}"), &acc, p, cin, &name);
                        acc = sum;
                    }
                    drive_out(ctx, &outs[..acc.len().min(out_w)], &acc, &name);
                }
            }
            CellOp::Div | CellOp::Mod => {
                // Unrolled restoring divider: `w` stages, each a conditional
                // subtract (carry chain + mux row).
                let w = in_bits[0].len();
                let a = in_bits[0].clone();
                let b = in_bits[1].clone();
                let zero = ctx.const_bit(false);
                let one = ctx.const_bit(true);
                let mut rem: Vec<PNetId> = vec![zero; w];
                let mut quot: Vec<PNetId> = Vec::with_capacity(w);
                for s in (0..w).rev() {
                    // shift remainder left, bring in bit a[s]
                    let mut shifted = Vec::with_capacity(w);
                    shifted.push(a[s]);
                    shifted.extend_from_slice(&rem[..w - 1]);
                    // trial subtract: shifted - b
                    let nb = ctx.invert_all(&format!("{name}_st{s}_nb"), &b, &name);
                    let (diff, cout) =
                        ctx.ripple_add(&format!("{name}_st{s}"), &shifted, &nb, one, &name);
                    // if cout==1 (no borrow) keep diff, else keep shifted
                    let mut nrem = Vec::with_capacity(w);
                    for i in 0..w {
                        nrem.push(ctx.lut(
                            format!("{name}_st{s}_m{i}"),
                            truth::MUX21,
                            3,
                            vec![shifted[i], diff[i], cout],
                            &name,
                        ));
                    }
                    rem = nrem;
                    quot.push(cout);
                }
                quot.reverse();
                let outs = ctx.bits[&cell.outputs[0]].clone();
                let chosen = if matches!(cell.op, CellOp::Div) {
                    quot
                } else {
                    rem
                };
                let n = out_w.min(chosen.len());
                drive_out(ctx, &outs[..n], &chosen[..n], &name);
            }
            CellOp::Const { value } => {
                let outs = ctx.bits[&cell.outputs[0]].clone();
                for (i, &o) in outs.iter().enumerate() {
                    let bit = (*value >> i) & 1 == 1;
                    ctx.prim.add(
                        format!("{name}_c{i}"),
                        Primitive::Lut4 {
                            truth: if bit { 0xFFFF } else { 0x0000 },
                            used_inputs: 0,
                        },
                        vec![],
                        vec![o],
                        &name,
                    );
                }
            }
            CellOp::Slice { lo, .. } => {
                let outs = ctx.bits[&cell.outputs[0]].clone();
                for (i, &o) in outs.iter().enumerate() {
                    let src_i = *lo as usize + i;
                    let src = in_bits[0]
                        .get(src_i)
                        .copied()
                        .unwrap_or_else(|| ctx.const_bit(false));
                    ctx.prim.add(
                        format!("{name}_b{i}"),
                        Primitive::Lut4 {
                            truth: truth::BUF1,
                            used_inputs: 1,
                        },
                        vec![src],
                        vec![o],
                        &name,
                    );
                }
            }
            CellOp::ZeroExtend | CellOp::SignExtend => {
                let outs = ctx.bits[&cell.outputs[0]].clone();
                let iw = in_bits[0].len();
                let fill = if matches!(cell.op, CellOp::SignExtend) {
                    in_bits[0][iw - 1]
                } else {
                    ctx.const_bit(false)
                };
                for (i, &o) in outs.iter().enumerate() {
                    let src = if i < iw { in_bits[0][i] } else { fill };
                    ctx.prim.add(
                        format!("{name}_b{i}"),
                        Primitive::Lut4 {
                            truth: truth::BUF1,
                            used_inputs: 1,
                        },
                        vec![src],
                        vec![o],
                        &name,
                    );
                }
            }
            CellOp::Register { has_enable, .. } => {
                let outs = ctx.bits[&cell.outputs[0]].clone();
                let en = if *has_enable {
                    Some(in_bits[1][0])
                } else {
                    None
                };
                for (i, &o) in outs.iter().enumerate() {
                    let d = in_bits[0]
                        .get(i)
                        .copied()
                        .unwrap_or_else(|| ctx.const_bit(false));
                    let mut inputs = vec![d];
                    if let Some(e) = en {
                        inputs.push(e);
                    }
                    ctx.prim.add(
                        format!("{name}_ff{i}"),
                        Primitive::Dff {
                            has_enable: en.is_some(),
                        },
                        inputs,
                        vec![o],
                        &name,
                    );
                }
            }
            CellOp::RamTdp { depth, .. } => {
                let w = netlist.net(cell.outputs[0]).width;
                let count = self.device.rams_for(*depth, w);
                let all_inputs: Vec<PNetId> = in_bits.iter().flatten().copied().collect();
                let ra = ctx.bits[&cell.outputs[0]].clone();
                let rb = ctx.bits[&cell.outputs[1]].clone();
                for k in 0..count {
                    let outs: Vec<PNetId> = if k == 0 {
                        ra.iter().chain(rb.iter()).copied().collect()
                    } else {
                        (0..ra.len() + rb.len())
                            .map(|_| ctx.prim.new_net())
                            .collect()
                    };
                    ctx.prim.add(
                        format!("{name}_ramb{k}"),
                        Primitive::Ramb {
                            depth: *depth,
                            width: w.min(64) as u8,
                        },
                        all_inputs.clone(),
                        outs,
                        &name,
                    );
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_rtl::netlist::{CellOp, Netlist};

    fn synth(nl: &Netlist) -> SynthResult {
        Synthesizer::new(DeviceProfile::ng_medium_like())
            .synthesize(nl)
            .expect("synthesis succeeds")
    }

    fn two_op(op: CellOp, w: u32) -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", w);
        let b = nl.add_input("b", w);
        let y = nl.add_net("y", w);
        nl.add_cell("op", op, &[a, b], &[y]).unwrap();
        nl.mark_output(y);
        nl
    }

    #[test]
    fn adder_uses_carry_chain() {
        let r = synth(&two_op(CellOp::Add, 16));
        assert_eq!(r.report.utilization.carries, 16);
        // buffers + carries + io pads
        assert!(r.report.utilization.luts >= 32);
    }

    #[test]
    fn sub_adds_inverters() {
        let add = synth(&two_op(CellOp::Add, 16));
        let sub = synth(&two_op(CellOp::Sub, 16));
        assert!(sub.report.utilization.luts > add.report.utilization.luts);
        assert_eq!(sub.report.utilization.carries, 16);
    }

    #[test]
    fn narrow_multiplier_is_one_dsp() {
        let r = synth(&two_op(CellOp::Mul, 16));
        assert_eq!(r.report.utilization.dsps, 1);
    }

    #[test]
    fn wide_multiplier_tiles_dsps() {
        let r = synth(&two_op(CellOp::Mul, 32));
        assert_eq!(r.report.utilization.dsps, 4);
        // combiner adders appear
        assert!(r.report.utilization.carries > 0);
    }

    #[test]
    fn divider_is_quadratic_ish() {
        let d8 = synth(&two_op(CellOp::Div, 8)).report.utilization.luts;
        let d16 = synth(&two_op(CellOp::Div, 16)).report.utilization.luts;
        assert!(
            d16 as f64 > 3.0 * d8 as f64,
            "divider area should grow super-linearly: {d8} -> {d16}"
        );
    }

    #[test]
    fn barrel_shifter_log_stages() {
        let r = synth(&two_op(CellOp::Shl, 32));
        // 5 stages x 32 muxes = 160 LUTs + 32 buffers + pads
        let u = r.report.utilization;
        assert!(u.luts >= 160 && u.luts <= 320, "got {}", u.luts);
    }

    #[test]
    fn register_maps_to_ffs() {
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d", 24);
        let q = nl.add_net("q", 24);
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: false,
                has_reset: true,
            },
            &[d],
            &[q],
        )
        .unwrap();
        nl.mark_output(q);
        let r = synth(&nl);
        assert_eq!(r.report.utilization.ffs, 24);
    }

    #[test]
    fn ram_maps_to_ramb() {
        let mut nl = Netlist::new("t");
        let aa = nl.add_input("aa", 10);
        let da = nl.add_input("da", 32);
        let wa = nl.add_input("wa", 1);
        let ab = nl.add_input("ab", 10);
        let db = nl.add_input("db", 32);
        let wb = nl.add_input("wb", 1);
        let ra = nl.add_net("ra", 32);
        let rb = nl.add_net("rb", 32);
        nl.add_cell(
            "m",
            CellOp::RamTdp {
                depth: 1024,
                init: vec![],
            },
            &[aa, da, wa, ab, db, wb],
            &[ra, rb],
        )
        .unwrap();
        nl.mark_output(ra);
        nl.mark_output(rb);
        let r = synth(&nl);
        assert_eq!(r.report.utilization.rams, 1);
    }

    #[test]
    fn capacity_overflow_detected() {
        // A multiplier too wide for the medium device's DSP budget would be
        // hard to build; instead synthesize a huge register file.
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d", 64);
        let mut prev = d;
        for i in 0..200 {
            let q = nl.add_net(format!("q{i}"), 64);
            nl.add_cell(
                format!("r{i}"),
                CellOp::Register {
                    has_enable: false,
                    has_reset: true,
                },
                &[prev],
                &[q],
            )
            .unwrap();
            prev = q;
        }
        nl.mark_output(prev);
        // 200 x 64 = 12800 FFs fits NG-MEDIUM (28k); force a tiny device.
        let mut tiny = DeviceProfile::ng_medium_like();
        tiny.grid_cols = 8;
        tiny.grid_rows = 8;
        tiny.dsp_columns = vec![1];
        tiny.ram_columns = vec![2];
        let err = Synthesizer::new(tiny).synthesize(&nl).unwrap_err();
        assert!(matches!(err, FpgaError::ResourceOverflow { .. }));
    }

    #[test]
    fn comparator_produces_single_bit() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 16);
        let b = nl.add_input("b", 16);
        let y = nl.add_net("y", 1);
        nl.add_cell("c", CellOp::Cmp(Comparison::LtS), &[a, b], &[y])
            .unwrap();
        nl.mark_output(y);
        let r = synth(&nl);
        assert_eq!(r.report.utilization.carries, 16);
        assert!(r.report.utilization.luts > 16);
    }

    #[test]
    fn per_cell_report_covers_all_cells() {
        let nl = two_op(CellOp::Add, 8);
        let r = synth(&nl);
        assert_eq!(r.report.per_cell.len(), 1);
        assert_eq!(r.report.per_cell[0].0, "op");
        assert!(r.report.per_cell[0].1 > 0);
    }
}
