//! Simulated-annealing placement.
//!
//! Assigns every primitive cell to a fabric site: logic primitives (LUTs,
//! carries, flip-flops) to logic tiles, DSP blocks to DSP columns, block
//! RAMs to RAM columns, and I/O pads to the device perimeter. The annealer
//! minimizes total half-perimeter wirelength (HPWL), the classic placement
//! objective; the result drives routing estimation and timing analysis.

use crate::device::DeviceProfile;
use crate::primitives::{PCellId, PNetId, PrimNetlist, Primitive};
use crate::FpgaError;
use hermes_obs::{ClockDomain, Recorder};
use hermes_rtl::rng::DetRng;
use std::collections::HashMap;

/// Flight-recorder subsystem name used by the placer.
const OBS_SUB: &str = "fpga.place";

/// A placed design: one `(x, y)` site per primitive cell.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Site of each cell, indexed by [`PCellId`].
    pub locations: Vec<(u16, u16)>,
    /// Final total half-perimeter wirelength, in tile units.
    pub hpwl: f64,
    /// HPWL of the initial (pre-annealing) placement, for reporting.
    pub initial_hpwl: f64,
    /// Annealing moves attempted.
    pub moves_tried: u64,
    /// Annealing moves accepted.
    pub moves_accepted: u64,
}

impl Placement {
    /// Site of a cell.
    pub fn site(&self, cell: PCellId) -> (u16, u16) {
        self.locations[cell.0 as usize]
    }

    /// Manhattan distance between two cells, in tiles.
    pub fn distance(&self, a: PCellId, b: PCellId) -> u32 {
        let (ax, ay) = self.site(a);
        let (bx, by) = self.site(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
    }
}

/// Annealing effort level, trading runtime for quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Effort {
    /// Initial placement only (fastest, for smoke tests).
    Zero,
    /// Short anneal.
    Low,
    /// Balanced anneal (default).
    #[default]
    Medium,
    /// Long anneal for quality-critical runs.
    High,
}

impl Effort {
    fn moves_per_cell(self) -> u64 {
        match self {
            Effort::Zero => 0,
            Effort::Low => 8,
            Effort::Medium => 32,
            Effort::High => 128,
        }
    }
}

/// The placement engine.
#[derive(Debug, Clone)]
pub struct Placer {
    device: DeviceProfile,
    effort: Effort,
    seed: u64,
}

/// Cached bounding box of one net's pins, the unit of the incremental
/// HPWL bookkeeping: coordinates are tile indices, so HPWL values are
/// exact small integers in `f64` and incremental updates reproduce a full
/// recompute bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NetBox {
    min_x: u16,
    max_x: u16,
    min_y: u16,
    max_y: u16,
}

impl NetBox {
    /// Bounding box of a pin list under `locations`.
    fn of(locations: &[(u16, u16)], pins: &[PCellId]) -> Self {
        let mut b = NetBox {
            min_x: u16::MAX,
            max_x: 0,
            min_y: u16::MAX,
            max_y: 0,
        };
        for &p in pins {
            b = b.expand(locations[p.0 as usize]);
        }
        b
    }

    /// Bounding box with `moved`'s pins relocated to `to` (the candidate
    /// recompute path for boundary pins, without mutating `locations`).
    fn of_moved(locations: &[(u16, u16)], pins: &[PCellId], moved: u32, to: (u16, u16)) -> Self {
        let mut b = NetBox {
            min_x: u16::MAX,
            max_x: 0,
            min_y: u16::MAX,
            max_y: 0,
        };
        for &p in pins {
            b = b.expand(if p.0 == moved {
                to
            } else {
                locations[p.0 as usize]
            });
        }
        b
    }

    /// Grow to include `p`.
    fn expand(self, p: (u16, u16)) -> Self {
        NetBox {
            min_x: self.min_x.min(p.0),
            max_x: self.max_x.max(p.0),
            min_y: self.min_y.min(p.1),
            max_y: self.max_y.max(p.1),
        }
    }

    /// Whether `p` lies strictly inside the box on both axes — removing
    /// such a pin cannot shrink the box, so a move from `p` only expands.
    fn strictly_inside(self, p: (u16, u16)) -> bool {
        p.0 > self.min_x && p.0 < self.max_x && p.1 > self.min_y && p.1 < self.max_y
    }

    /// Half-perimeter wirelength of the box.
    fn hpwl(&self) -> f64 {
        f64::from(self.max_x - self.min_x) + f64::from(self.max_y - self.min_y)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteClass {
    Logic,
    Dsp,
    Ram,
    Io,
}

impl Placer {
    /// Create a placer for a device with a deterministic seed.
    pub fn new(device: DeviceProfile, effort: Effort, seed: u64) -> Self {
        Placer {
            device,
            effort,
            seed,
        }
    }

    /// Place the primitive netlist.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::ResourceOverflow`] if any site class runs out of
    /// candidate locations.
    pub fn place(&self, prim: &PrimNetlist) -> Result<Placement, FpgaError> {
        self.place_traced(prim, &Recorder::disabled())
    }

    /// [`place`](Placer::place) with flight-recorder output: one instant
    /// event per annealing epoch (`Seq` clock, ts = epoch index) sampling
    /// temperature and cost, plus move counters — the per-epoch cost curve
    /// an NXmap placement log would show.
    ///
    /// # Errors
    ///
    /// See [`place`](Placer::place).
    pub fn place_traced(&self, prim: &PrimNetlist, obs: &Recorder) -> Result<Placement, FpgaError> {
        let mut rng = DetRng::new(self.seed);
        let classes: Vec<SiteClass> = prim
            .cells()
            .map(|(_, c)| match c.prim {
                Primitive::Dsp { .. } => SiteClass::Dsp,
                Primitive::Ramb { .. } => SiteClass::Ram,
                Primitive::IoPad { .. } => SiteClass::Io,
                _ => SiteClass::Logic,
            })
            .collect();

        let logic_sites = self.logic_sites();
        let dsp_sites = self.dsp_sites();
        let ram_sites = self.ram_sites();
        let io_sites = self.io_sites();

        // Greedy initial placement: round-robin cells into sites of their
        // class, clustering cells from the same source coarse cell.
        let mut locations = vec![(0u16, 0u16); prim.cell_count()];
        let mut counters = [0usize; 4];
        // each logic tile packs luts_per_tile LUT sites + as many FF sites
        let logic_cap = (self.device.luts_per_tile as usize * 2).max(1);
        let mut site_of = |class: SiteClass| -> Result<(u16, u16), FpgaError> {
            let (sites, idx, cap, name): (&[(u16, u16)], &mut usize, usize, &str) = match class {
                SiteClass::Logic => (&logic_sites, &mut counters[0], logic_cap, "logic site"),
                SiteClass::Dsp => (&dsp_sites, &mut counters[1], 1, "DSP site"),
                SiteClass::Ram => (&ram_sites, &mut counters[2], 1, "RAM site"),
                SiteClass::Io => (&io_sites, &mut counters[3], 1, "IO site"),
            };
            if *idx / cap >= sites.len() {
                return Err(FpgaError::ResourceOverflow {
                    resource: name.into(),
                    required: (*idx / cap + 1) as u64,
                    available: sites.len() as u64,
                });
            }
            let s = sites[*idx / cap];
            *idx += 1;
            Ok(s)
        };
        for (cid, _) in prim.cells() {
            locations[cid.0 as usize] = site_of(classes[cid.0 as usize])?;
        }

        // Build net -> pins map for HPWL.
        let mut net_pins: HashMap<PNetId, Vec<PCellId>> = HashMap::new();
        for (cid, c) in prim.cells() {
            for &n in c.inputs.iter().chain(c.outputs.iter()) {
                net_pins.entry(n).or_default().push(cid);
            }
        }
        // sort for determinism: HashMap iteration order would otherwise
        // pick the anneal's f64 accumulation order (and thus the accepted
        // trajectory) per Placer instance
        let mut nets: Vec<(PNetId, Vec<PCellId>)> = net_pins
            .into_iter()
            .filter(|(_, pins)| pins.len() > 1)
            .collect();
        nets.sort_unstable_by_key(|(n, _)| n.0);
        // cell -> nets containing it
        let mut cell_nets: Vec<Vec<usize>> = vec![Vec::new(); prim.cell_count()];
        for (i, (_, pins)) in nets.iter().enumerate() {
            for &p in pins {
                cell_nets[p.0 as usize].push(i);
            }
        }

        // Cached per-net bounding boxes: a move's cost delta touches only
        // the boxes of nets on the moved cell (O(pins-touched)), instead of
        // recomputing every affected net's pin list twice per move.
        let mut boxes: Vec<NetBox> = nets
            .iter()
            .map(|(_, pins)| NetBox::of(&locations, pins))
            .collect();
        let total = |locations: &[(u16, u16)]| -> f64 {
            nets.iter()
                .map(|(_, p)| NetBox::of(locations, p).hpwl())
                .sum()
        };

        let initial_hpwl: f64 = boxes.iter().map(NetBox::hpwl).sum();
        let mut cost = initial_hpwl;

        // Movable cells: logic class only (DSP/RAM/IO stay at legal sites;
        // swapping within class would also be legal but matters little for
        // HPWL at these design sizes).
        let movable: Vec<u32> = (0..prim.cell_count() as u32)
            .filter(|&i| classes[i as usize] == SiteClass::Logic)
            .collect();

        let mut moves_tried = 0u64;
        let mut moves_accepted = 0u64;
        if !movable.is_empty() && !logic_sites.is_empty() && self.effort != Effort::Zero {
            let total_moves = self.effort.moves_per_cell() * movable.len() as u64;
            let temp0 = (cost / nets.len().max(1) as f64).max(1.0) * 2.0;
            let mut temp = temp0;
            let cooling = 0.92f64;
            let moves_per_temp = (movable.len() as u64 * 4).max(64);
            let mut done = 0u64;
            let max_dim = self.device.grid_cols.max(self.device.grid_rows) as f64;
            let mut best_cost = cost;
            let mut best_locations = locations.clone();
            // Scratch for candidate boxes of the nets touched by one move,
            // reused across moves to stay allocation-free in steady state.
            let mut candidate: Vec<(usize, NetBox)> = Vec::new();
            let mut epoch = 0u64;
            while done < total_moves {
                // Move window shrinks with temperature (VPR-style range limit).
                let win = ((max_dim * (temp / temp0).min(1.0)) as i32).max(2);
                for _ in 0..moves_per_temp.min(total_moves - done) {
                    moves_tried += 1;
                    let cell = movable[rng.below(movable.len() as u64) as usize];
                    let old_site = locations[cell as usize];
                    let new_site = self.windowed_site(&mut rng, old_site, win, &logic_sites);
                    if new_site == old_site {
                        continue;
                    }
                    // Delta over affected nets, from cached bounding boxes:
                    // a pin strictly inside its net's box only expands it
                    // (O(1)); a boundary pin forces an O(pins) recompute of
                    // that net alone. Summation order mirrors the direct
                    // recompute, keeping seeded trajectories bit-identical.
                    let affected = &cell_nets[cell as usize];
                    candidate.clear();
                    let mut before = 0.0f64;
                    let mut after = 0.0f64;
                    for &i in affected {
                        before += boxes[i].hpwl();
                        let cached = candidate.iter().find(|(j, _)| *j == i).map(|(_, b)| *b);
                        let new_box = cached.unwrap_or_else(|| {
                            let b = if boxes[i].strictly_inside(old_site) {
                                boxes[i].expand(new_site)
                            } else {
                                NetBox::of_moved(&locations, &nets[i].1, cell, new_site)
                            };
                            candidate.push((i, b));
                            b
                        });
                        after += new_box.hpwl();
                    }
                    let delta = after - before;
                    let accept = delta <= 0.0 || rng.next_f64() < (-delta / temp).exp();
                    if accept {
                        locations[cell as usize] = new_site;
                        for &(i, b) in &candidate {
                            boxes[i] = b;
                        }
                        cost += delta;
                        moves_accepted += 1;
                    }
                }
                done += moves_per_temp;
                obs.instant(
                    OBS_SUB,
                    "anneal-epoch",
                    ClockDomain::Seq,
                    epoch,
                    &[
                        ("seed", self.seed.to_string()),
                        ("temp", format!("{temp:.4}")),
                        ("cost", format!("{cost:.1}")),
                    ],
                );
                epoch += 1;
                temp *= cooling;
                if cost < best_cost {
                    best_cost = cost;
                    best_locations.copy_from_slice(&locations);
                }
                if temp < 0.01 {
                    break;
                }
            }
            if best_cost < cost {
                locations.copy_from_slice(&best_locations);
            }
            // note: capacity is relaxed during annealing (multiple logic
            // cells may share a tile up to luts_per_tile); a final
            // legalization pass redistributes overfull tiles.
            self.legalize(&mut locations, &classes, &logic_sites);
            cost = total(&locations);
        }

        obs.counter_add(OBS_SUB, "moves_tried", moves_tried);
        obs.counter_add(OBS_SUB, "moves_accepted", moves_accepted);

        Ok(Placement {
            locations,
            hpwl: cost,
            initial_hpwl,
            moves_tried,
            moves_accepted,
        })
    }

    /// Multi-start placement: run `starts` independent anneals (seeds
    /// `seed, seed+1, …`) across `jobs` workers and keep the lowest-HPWL
    /// result, ties broken by lowest start index.
    ///
    /// Each anneal is seed-deterministic and the winner is selected by
    /// value, so the outcome is identical regardless of worker count or
    /// scheduling; `starts = 1` degrades to [`Self::place`] exactly.
    ///
    /// # Errors
    ///
    /// Propagates the first failing start ([`FpgaError::ResourceOverflow`]).
    pub fn place_multi(
        &self,
        prim: &PrimNetlist,
        starts: u32,
        jobs: usize,
    ) -> Result<Placement, FpgaError> {
        self.place_multi_traced(prim, starts, jobs, &Recorder::disabled())
    }

    /// [`place_multi`](Placer::place_multi) with flight-recorder output.
    ///
    /// Each start anneals into its own [`Recorder::child`]; the children
    /// are absorbed back **in seed order** after the parallel map, so the
    /// merged trace is bit-identical regardless of worker count.
    ///
    /// # Errors
    ///
    /// See [`place_multi`](Placer::place_multi).
    pub fn place_multi_traced(
        &self,
        prim: &PrimNetlist,
        starts: u32,
        jobs: usize,
        obs: &Recorder,
    ) -> Result<Placement, FpgaError> {
        let starts = starts.max(1);
        if starts == 1 {
            return self.place_traced(prim, obs);
        }
        let seeds: Vec<u64> = (0..u64::from(starts))
            .map(|i| self.seed.wrapping_add(i))
            .collect();
        let results = hermes_par::par_map_jobs(jobs, &seeds, |&seed| {
            let child = obs.child();
            let placed = Placer {
                device: self.device.clone(),
                effort: self.effort,
                seed,
            }
            .place_traced(prim, &child);
            (placed, child)
        })
        .map_err(|e| FpgaError::Internal {
            message: format!("parallel placement worker failed: {e}"),
        })?;
        let mut best: Option<Placement> = None;
        for (p, child) in results {
            obs.absorb(&child);
            let p = p?;
            let better = best.as_ref().is_none_or(|b| p.hpwl < b.hpwl);
            if better {
                best = Some(p);
            }
        }
        let best = best.expect("starts >= 1 yields a result");
        obs.gauge_set(OBS_SUB, "best_hpwl_x10", (best.hpwl * 10.0) as i64);
        Ok(best)
    }

    /// Pick a legal logic site within `win` tiles of `from` (falling back to
    /// a uniformly random logic site when the window holds none).
    fn windowed_site(
        &self,
        rng: &mut DetRng,
        from: (u16, u16),
        win: i32,
        logic_sites: &[(u16, u16)],
    ) -> (u16, u16) {
        let cols = self.device.grid_cols as i32;
        let rows = self.device.grid_rows as i32;
        for _ in 0..8 {
            let x = (i32::from(from.0) + rng.range_i64(-i64::from(win), i64::from(win)) as i32).clamp(1, cols - 2);
            let y = (i32::from(from.1) + rng.range_i64(-i64::from(win), i64::from(win)) as i32).clamp(1, rows - 2);
            if !self.device.is_dsp_column(x as u32) && !self.device.is_ram_column(x as u32) {
                return (x as u16, y as u16);
            }
        }
        logic_sites[rng.below(logic_sites.len() as u64) as usize]
    }

    /// Spread logic cells so no tile exceeds its LUT capacity.
    fn legalize(
        &self,
        locations: &mut [(u16, u16)],
        classes: &[SiteClass],
        logic_sites: &[(u16, u16)],
    ) {
        let cap = self.device.luts_per_tile as usize * 2; // LUT + FF sites
        let mut occupancy: HashMap<(u16, u16), usize> = HashMap::new();
        for (i, &loc) in locations.iter().enumerate() {
            if classes[i] == SiteClass::Logic {
                *occupancy.entry(loc).or_default() += 1;
            }
        }
        let mut free: Vec<(u16, u16)> = logic_sites
            .iter()
            .filter(|s| occupancy.get(s).copied().unwrap_or(0) < cap)
            .copied()
            .collect();
        for i in 0..locations.len() {
            if classes[i] != SiteClass::Logic {
                continue;
            }
            let loc = locations[i];
            let occ = occupancy.get_mut(&loc).expect("tracked");
            if *occ > cap {
                *occ -= 1;
                // move to nearest free tile
                if let Some((best_idx, _)) = free
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.0.abs_diff(loc.0) as u32 + s.1.abs_diff(loc.1) as u32)
                {
                    let target = free[best_idx];
                    locations[i] = target;
                    let t = occupancy.entry(target).or_default();
                    *t += 1;
                    if *t >= cap {
                        free.swap_remove(best_idx);
                    }
                }
            }
        }
    }

    fn logic_sites(&self) -> Vec<(u16, u16)> {
        let mut v = Vec::new();
        for x in 1..self.device.grid_cols.saturating_sub(1) {
            if self.device.is_dsp_column(x) || self.device.is_ram_column(x) {
                continue;
            }
            for y in 1..self.device.grid_rows.saturating_sub(1) {
                v.push((x as u16, y as u16));
            }
        }
        v
    }

    fn dsp_sites(&self) -> Vec<(u16, u16)> {
        let mut v = Vec::new();
        for &x in &self.device.dsp_columns {
            let step = (self.device.grid_rows / self.device.dsps_per_column.max(1)).max(1);
            for i in 0..self.device.dsps_per_column {
                let y = (i * step).min(self.device.grid_rows - 1);
                v.push((x as u16, y as u16));
            }
        }
        v
    }

    fn ram_sites(&self) -> Vec<(u16, u16)> {
        let mut v = Vec::new();
        for &x in &self.device.ram_columns {
            let step = (self.device.grid_rows / self.device.rams_per_column.max(1)).max(1);
            for i in 0..self.device.rams_per_column {
                let y = (i * step).min(self.device.grid_rows - 1);
                v.push((x as u16, y as u16));
            }
        }
        v
    }

    fn io_sites(&self) -> Vec<(u16, u16)> {
        let mut v = Vec::new();
        let (w, h) = (self.device.grid_cols as u16, self.device.grid_rows as u16);
        for x in 0..w {
            v.push((x, 0));
            v.push((x, h - 1));
        }
        for y in 1..h - 1 {
            v.push((0, y));
            v.push((w - 1, y));
        }
        // each perimeter tile hosts several pads
        let mut all = Vec::with_capacity(v.len() * 4);
        for _ in 0..4 {
            all.extend_from_slice(&v);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Synthesizer;
    use hermes_rtl::netlist::{CellOp, Netlist};

    fn sample_prim() -> PrimNetlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 16);
        let b = nl.add_input("b", 16);
        let p = nl.add_net("p", 16);
        let y = nl.add_net("y", 16);
        nl.add_cell("mul", CellOp::Mul, &[a, b], &[p]).unwrap();
        nl.add_cell("add", CellOp::Add, &[p, a], &[y]).unwrap();
        nl.mark_output(y);
        Synthesizer::new(DeviceProfile::ng_medium_like())
            .synthesize(&nl)
            .unwrap()
            .prim
    }

    #[test]
    fn placement_assigns_all_cells() {
        let prim = sample_prim();
        let p = Placer::new(DeviceProfile::ng_medium_like(), Effort::Low, 42)
            .place(&prim)
            .unwrap();
        assert_eq!(p.locations.len(), prim.cell_count());
    }

    #[test]
    fn annealing_improves_or_matches_hpwl() {
        let prim = sample_prim();
        let p = Placer::new(DeviceProfile::ng_medium_like(), Effort::Medium, 7)
            .place(&prim)
            .unwrap();
        assert!(
            p.hpwl <= p.initial_hpwl * 1.05,
            "anneal should not badly regress: {} -> {}",
            p.initial_hpwl,
            p.hpwl
        );
        assert!(p.moves_accepted > 0);
    }

    #[test]
    fn dsp_cells_land_on_dsp_columns() {
        let prim = sample_prim();
        let dev = DeviceProfile::ng_medium_like();
        let p = Placer::new(dev.clone(), Effort::Zero, 1).place(&prim).unwrap();
        for (cid, c) in prim.cells() {
            if matches!(c.prim, Primitive::Dsp { .. }) {
                let (x, _) = p.site(cid);
                assert!(dev.is_dsp_column(u32::from(x)), "DSP at col {x}");
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let prim = sample_prim();
        let dev = DeviceProfile::ng_medium_like();
        let p1 = Placer::new(dev.clone(), Effort::Low, 99).place(&prim).unwrap();
        let p2 = Placer::new(dev, Effort::Low, 99).place(&prim).unwrap();
        assert_eq!(p1.locations, p2.locations);
        assert_eq!(p1.hpwl, p2.hpwl);
    }

    #[test]
    fn multi_start_deterministic_and_no_worse() {
        let prim = sample_prim();
        let dev = DeviceProfile::ng_medium_like();
        let placer = Placer::new(dev, Effort::Low, 5);
        let serial = placer.place_multi(&prim, 4, 1).unwrap();
        let parallel = placer.place_multi(&prim, 4, 4).unwrap();
        assert_eq!(serial.locations, parallel.locations, "worker count changed result");
        assert_eq!(serial.hpwl, parallel.hpwl);
        let single = placer.place(&prim).unwrap();
        assert!(
            serial.hpwl <= single.hpwl,
            "best-of-4 ({}) worse than single start ({})",
            serial.hpwl,
            single.hpwl
        );
    }

    #[test]
    fn single_start_multi_matches_place() {
        let prim = sample_prim();
        let placer = Placer::new(DeviceProfile::ng_medium_like(), Effort::Low, 11);
        let a = placer.place(&prim).unwrap();
        let b = placer.place_multi(&prim, 1, 4).unwrap();
        assert_eq!(a.locations, b.locations);
    }

    #[test]
    fn overflow_on_tiny_device() {
        let prim = sample_prim();
        let mut tiny = DeviceProfile::ng_medium_like();
        tiny.grid_cols = 4;
        tiny.grid_rows = 4;
        tiny.dsp_columns = vec![];
        tiny.ram_columns = vec![];
        let err = Placer::new(tiny, Effort::Zero, 1).place(&prim).unwrap_err();
        assert!(matches!(err, FpgaError::ResourceOverflow { .. }));
    }
}
