//! Routing estimation.
//!
//! A fast bounding-box router model: each multi-pin net demands wiring
//! tracks uniformly over its bounding box; per-tile channel capacity comes
//! from the device model. The router reports total wirelength, congestion,
//! and a per-net delay that timing analysis consumes. Nets crossing
//! congested regions are penalized, reproducing the congestion/timing
//! feedback loop of a real flow.

use crate::device::DeviceProfile;
use crate::place::Placement;
use crate::primitives::{PCellId, PNetId, PrimNetlist};
use crate::FpgaError;
use std::collections::HashMap;

/// Wiring tracks available per tile boundary.
pub const TRACKS_PER_CHANNEL: u32 = 512;

/// Nets with more pins than this are promoted to the dedicated global
/// routing network (clock spines / control broadcast lines), as on real
/// fabrics; they contribute wirelength and delay but not channel demand.
pub const GLOBAL_NET_FANOUT: usize = 64;

/// Per-design routing results.
#[derive(Debug, Clone)]
pub struct RouteReport {
    /// Total estimated wirelength in tile units.
    pub total_wirelength: f64,
    /// Peak channel utilization (demand / capacity).
    pub peak_utilization: f64,
    /// Number of channels whose demand exceeds capacity.
    pub overflowed_channels: u32,
    /// Per-net routed delay in nanoseconds, keyed by net.
    pub net_delay_ns: HashMap<PNetId, f64>,
    /// Number of routed (multi-pin) nets.
    pub routed_nets: usize,
}

impl RouteReport {
    /// Delay of a net, defaulting to the base net delay for single-pin or
    /// unrouted nets.
    pub fn delay_of(&self, net: PNetId, device: &DeviceProfile) -> f64 {
        self.net_delay_ns
            .get(&net)
            .copied()
            .unwrap_or(device.timing.net_base_ns)
    }
}

/// The routing estimator.
#[derive(Debug, Clone)]
pub struct Router {
    device: DeviceProfile,
    /// Maximum tolerated channel overflow before the route is rejected.
    pub max_overflow: u32,
}

impl Router {
    /// Create a router for the device with the default overflow tolerance.
    pub fn new(device: DeviceProfile) -> Self {
        Router {
            device,
            max_overflow: 192,
        }
    }

    /// Estimate routing for a placed design.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::Unroutable`] if channel overflow exceeds the
    /// router's tolerance.
    pub fn route(
        &self,
        prim: &PrimNetlist,
        placement: &Placement,
    ) -> Result<RouteReport, FpgaError> {
        // Collect multi-pin nets with their pin sites.
        let mut net_pins: HashMap<PNetId, Vec<PCellId>> = HashMap::new();
        for (cid, c) in prim.cells() {
            for &n in c.inputs.iter().chain(c.outputs.iter()) {
                net_pins.entry(n).or_default().push(cid);
            }
        }
        // sort for determinism: wirelength and channel demand are f64
        // accumulations, so the net order must not depend on HashMap state
        let mut sorted_nets: Vec<(PNetId, Vec<PCellId>)> = net_pins.into_iter().collect();
        sorted_nets.sort_unstable_by_key(|(n, _)| n.0);

        let cols = self.device.grid_cols as usize;
        let rows = self.device.grid_rows as usize;
        let mut demand = vec![0.0f64; cols * rows];

        let mut total_wl = 0.0;
        type NetBbox = (PNetId, usize, (u16, u16, u16, u16));
        let mut bboxes: Vec<NetBbox> = Vec::new();
        for (net, pins) in &sorted_nets {
            if pins.len() < 2 {
                continue;
            }
            let mut min_x = u16::MAX;
            let mut max_x = 0;
            let mut min_y = u16::MAX;
            let mut max_y = 0;
            for &p in pins {
                let (x, y) = placement.site(p);
                min_x = min_x.min(x);
                max_x = max_x.max(x);
                min_y = min_y.min(y);
                max_y = max_y.max(y);
            }
            let hpwl = f64::from(max_x - min_x) + f64::from(max_y - min_y);
            // RSMT correction factor for multi-pin nets (Cheng's estimate).
            let k = pins.len() as f64;
            let wl = hpwl * (1.0 + 0.14 * (k - 2.0).max(0.0).sqrt());
            total_wl += wl;
            // spread demand over the bbox; very-high-fanout nets ride the
            // global network instead of consuming channel tracks
            if pins.len() <= GLOBAL_NET_FANOUT {
                let area = ((max_x - min_x + 1) as f64) * ((max_y - min_y + 1) as f64);
                let per_tile = wl / area;
                for x in min_x..=max_x {
                    for y in min_y..=max_y {
                        demand[y as usize * cols + x as usize] += per_tile;
                    }
                }
            }
            bboxes.push((*net, pins.len(), (min_x, max_x, min_y, max_y)));
        }

        let cap = f64::from(TRACKS_PER_CHANNEL);
        let mut peak = 0.0f64;
        let mut overflowed = 0u32;
        for &d in &demand {
            let util = d / cap;
            peak = peak.max(util);
            if d > cap {
                overflowed += 1;
            }
        }
        if overflowed > self.max_overflow {
            return Err(FpgaError::Unroutable {
                overflow: overflowed,
            });
        }

        // Per-net delay: distance + fanout + congestion penalty.
        let t = &self.device.timing;
        let mut net_delay_ns = HashMap::with_capacity(bboxes.len());
        for (net, fanout, (min_x, max_x, min_y, max_y)) in &bboxes {
            let hpwl = f64::from(max_x - min_x) + f64::from(max_y - min_y);
            // congestion along the bbox
            let mut worst = 0.0f64;
            for x in *min_x..=*max_x {
                for y in *min_y..=*max_y {
                    worst = worst.max(demand[y as usize * cols + x as usize] / cap);
                }
            }
            let congestion_penalty = if worst > 0.8 { 1.0 + (worst - 0.8) * 2.0 } else { 1.0 };
            let delay = (t.net_base_ns
                + t.net_per_tile_ns * hpwl
                + t.net_per_fanout_ns * (*fanout as f64 - 1.0))
                * congestion_penalty;
            net_delay_ns.insert(*net, delay);
        }

        Ok(RouteReport {
            total_wirelength: total_wl,
            peak_utilization: peak,
            overflowed_channels: overflowed,
            routed_nets: bboxes.len(),
            net_delay_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProfile;
    use crate::place::{Effort, Placer};
    use crate::synth::Synthesizer;
    use hermes_rtl::netlist::{CellOp, Netlist};

    fn routed() -> RouteReport {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 16);
        let b = nl.add_input("b", 16);
        let y = nl.add_net("y", 16);
        nl.add_cell("add", CellOp::Add, &[a, b], &[y]).unwrap();
        nl.mark_output(y);
        let dev = DeviceProfile::ng_medium_like();
        let prim = Synthesizer::new(dev.clone()).synthesize(&nl).unwrap().prim;
        let placement = Placer::new(dev.clone(), Effort::Low, 3).place(&prim).unwrap();
        Router::new(dev).route(&prim, &placement).unwrap()
    }

    #[test]
    fn reports_positive_wirelength() {
        let r = routed();
        assert!(r.total_wirelength > 0.0);
        assert!(r.routed_nets > 0);
        assert!(r.peak_utilization >= 0.0);
    }

    #[test]
    fn net_delays_exceed_base() {
        let r = routed();
        let dev = DeviceProfile::ng_medium_like();
        for &d in r.net_delay_ns.values() {
            assert!(d >= dev.timing.net_base_ns);
        }
    }

    #[test]
    fn delay_of_unknown_net_is_base() {
        let r = routed();
        let dev = DeviceProfile::ng_medium_like();
        let d = r.delay_of(crate::primitives::PNetId(u32::MAX), &dev);
        assert_eq!(d, dev.timing.net_base_ns);
    }
}
