//! # hermes-par
//!
//! The std-only parallel execution engine of the HERMES workspace.
//!
//! Every layer of the flow — the per-kernel HLS→FPGA pipeline, the
//! Eucalyptus characterization sweep, the multi-start annealing placer,
//! and the chaos campaigns — consists of *independent, deterministic*
//! units of work. [`par_map`] runs such units across a scoped thread pool
//! (`std::thread::scope`, zero external dependencies, no leaked threads)
//! while preserving three invariants the rest of the workspace relies on:
//!
//! 1. **Deterministic ordering** — results come back in input order, so a
//!    parallel run renders bit-identical tables to a serial run.
//! 2. **Panic containment** — a panicking task becomes an [`Err`] on the
//!    calling thread instead of aborting the whole process; the remaining
//!    tasks still complete.
//! 3. **Self-scheduling** — workers claim chunks of the index space from a
//!    shared atomic cursor (chunked work stealing), so one slow unit does
//!    not idle the other lanes.
//!
//! Worker count resolves, in order: an explicit `jobs` argument
//! ([`par_map_jobs`]), a process-wide programmatic override
//! ([`set_jobs_override`], how the experiments binary's `--jobs` flag is
//! implemented), the `HERMES_JOBS` environment variable, and finally
//! [`std::thread::available_parallelism`]. `jobs = 1` (or a single-item
//! input) takes a fast path that never enters `std::thread::scope`: a
//! plain serial loop on the *calling thread* with identical results and
//! panic→`Err` semantics — E11c showed thread-spawn overhead inverting
//! speedup on small workloads, so the degenerate cases must not pay it.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A worker task panicked; the panic was captured and converted into an
/// error instead of aborting the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParError {
    /// Index of the input item whose task panicked (lowest index wins when
    /// several tasks fail).
    pub task: usize,
    /// Panic payload rendered as text (`&str`/`String` payloads verbatim).
    pub message: String,
}

impl fmt::Display for ParError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parallel task {} panicked: {}", self.task, self.message)
    }
}

impl std::error::Error for ParError {}

/// Parse a raw `HERMES_JOBS` value.
///
/// `Ok(None)` — variable unset (use the machine default). `Ok(Some(n))` —
/// a positive integer. `Err(_)` — set but unusable (not a number, or `0`,
/// which would deadlock a pool); callers must fall back to the machine
/// default and warn exactly once, never panic or silently serialize.
///
/// # Errors
///
/// Returns a description of why the value is unusable.
pub fn parse_jobs(raw: Option<&str>) -> Result<Option<usize>, String> {
    // the shared strict parser supplies the vocabulary and message; the
    // lenient fallback-with-warning lives in `jobs()`, where resolution
    // (not parsing) decides what a bad value means
    hermes_obs::env::usize_positive("HERMES_JOBS", raw).map_err(|e| e.to_string())
}

fn machine_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Process-wide worker-count override (0 = no override). Set by CLI
/// flags; consulted by [`jobs`] before the environment.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pin the default worker count for the whole process, taking precedence
/// over `HERMES_JOBS`. `Some(n)` (n ≥ 1) pins; `None` restores env/auto
/// resolution. This is how the experiments binary implements `--jobs`
/// without mutating the environment.
pub fn set_jobs_override(jobs: Option<usize>) {
    JOBS_OVERRIDE.store(jobs.unwrap_or(0), Ordering::Relaxed);
}

/// Resolve the default worker count: the [`set_jobs_override`] value if
/// pinned, then `HERMES_JOBS` if set to a positive integer, otherwise the
/// machine's available parallelism (1 on failure).
///
/// An unparsable or zero `HERMES_JOBS` falls back to the machine default
/// with a single process-wide warning (recorded in
/// [`hermes_obs::warnings`] and mirrored to stderr once).
pub fn jobs() -> usize {
    let pinned = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if pinned > 0 {
        return pinned;
    }
    let raw = std::env::var("HERMES_JOBS").ok();
    match parse_jobs(raw.as_deref()) {
        Ok(Some(n)) => n,
        Ok(None) => machine_parallelism(),
        Err(why) => {
            let fallback = machine_parallelism();
            let msg = format!("{why}; falling back to available parallelism ({fallback})");
            if hermes_obs::warnings::warn_once("HERMES_JOBS", &msg) {
                eprintln!("warning: {msg}");
            }
            fallback
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`par_map`] with an explicit worker count (`jobs >= 1`).
///
/// Results are returned in input order regardless of completion order.
///
/// # Errors
///
/// Returns a [`ParError`] for the lowest-indexed task that panicked. All
/// claimed tasks run to completion (or containment) before this returns;
/// no thread outlives the call.
pub fn par_map_jobs<T, R, F>(jobs: usize, items: &[T], f: F) -> Result<Vec<R>, ParError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // Default chunking: small enough to balance uneven task costs, large
    // enough to keep cursor contention negligible.
    let n = items.len();
    let chunk = (n / (jobs.max(1) * 4)).max(1);
    par_map_pool(jobs, chunk, items, f)
}

/// Core pool: `jobs` workers claiming `chunk` consecutive indices at a time
/// from a shared cursor. Shared by [`par_map_jobs`] (throughput chunking),
/// [`par_map_bounded_jobs`] (single-item claims, worker count clamped to
/// the in-flight bound), and [`par_map_indexed_jobs`] (index-space maps
/// with no backing slice).
#[allow(clippy::needless_range_loop)] // `i` indexes the logical 0..count space, not just `slots`
fn par_pool_indexed<R, F>(jobs: usize, chunk: usize, count: usize, f: F) -> Result<Vec<R>, ParError>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let n = count;
    let jobs = jobs.max(1).min(n.max(1));
    if jobs == 1 {
        // Serial fast path: same panic containment, no thread overhead.
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(r) => out.push(r),
                Err(p) => {
                    return Err(ParError {
                        task: i,
                        message: panic_message(p),
                    })
                }
            }
        }
        return Ok(out);
    }

    // Chunked self-scheduling: workers claim `chunk` consecutive indices at
    // a time from a shared cursor.
    let chunk = chunk.max(1);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, ParError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for i in start..(start + chunk).min(n) {
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|p| ParError {
                        task: i,
                        message: panic_message(p),
                    });
                    *slots[i].lock().expect("result slot poisoned") = Some(outcome);
                }
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().expect("result slot poisoned") {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            None => {
                return Err(ParError {
                    task: i,
                    message: "task was never executed".into(),
                })
            }
        }
    }
    Ok(out)
}

/// Slice adapter over [`par_pool_indexed`].
fn par_map_pool<T, R, F>(jobs: usize, chunk: usize, items: &[T], f: F) -> Result<Vec<R>, ParError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_pool_indexed(jobs, chunk, items.len(), |i| f(&items[i]))
}

/// [`par_map_indexed`] with an explicit worker count (`jobs >= 1`).
///
/// Maps `f` over the index space `0..count` and returns the results in
/// index order — no backing slice to build, no per-call `Vec` of items.
/// This is the partition-fan-out primitive: the caller names how many
/// pieces of work exist and `f` resolves each one from shared state.
///
/// Two guarantees beyond [`par_map_jobs`]:
///
/// 1. `jobs == 1` or `count <= 1` runs the same calling-thread serial fast
///    path (never enters `std::thread::scope`).
/// 2. When `count <= jobs`, every index gets its own dedicated worker
///    thread (no shared cursor), so `f(i)` bodies may *cooperate* —
///    synchronize through barriers or atomics with the other indices —
///    without risking two indices landing on one thread. The partitioned
///    RTL settle relies on this to run one barrier-stepped worker per lane.
///
/// # Errors
///
/// Returns a [`ParError`] for the lowest index that panicked; all other
/// tasks still run to completion before this returns.
pub fn par_map_indexed_jobs<R, F>(jobs: usize, count: usize, f: F) -> Result<Vec<R>, ParError>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let jobs = jobs.max(1).min(count.max(1));
    if jobs == 1 || count <= 1 {
        return par_pool_indexed(1, 1, count, f);
    }
    if count <= jobs {
        // Dedicated-thread path: exactly one OS thread per index, results
        // collected from the join handles in index order (no Mutex slots).
        let mut joined: Vec<Result<R, ParError>> = Vec::with_capacity(count);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..count)
                .map(|i| {
                    let f = &f;
                    scope.spawn(move || f(i))
                })
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                joined.push(h.join().map_err(|p| ParError {
                    task: i,
                    message: panic_message(p),
                }));
            }
        });
        return joined.into_iter().collect();
    }
    let chunk = (count / (jobs * 4)).max(1);
    par_pool_indexed(jobs, chunk, count, f)
}

/// Map `f` over the index space `0..count` on the default worker count
/// ([`jobs`]), preserving index order in the result. See
/// [`par_map_indexed_jobs`] for the fast-path and cooperation guarantees.
///
/// # Errors
///
/// See [`par_map_indexed_jobs`].
pub fn par_map_indexed<R, F>(count: usize, f: F) -> Result<Vec<R>, ParError>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed_jobs(jobs(), count, f)
}

/// Map `f` over `items` on the default worker count ([`jobs`]), preserving
/// input order in the result.
///
/// # Errors
///
/// See [`par_map_jobs`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Result<Vec<R>, ParError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_jobs(jobs(), items, f)
}

/// [`par_map_bounded`] with an explicit worker count.
///
/// At most `min(jobs, bound)` items are in flight at any instant: each
/// worker claims exactly one index at a time (no chunk batching), and the
/// worker count itself is clamped to `bound`. `bound = 0` is treated as 1.
///
/// # Errors
///
/// See [`par_map_jobs`].
pub fn par_map_bounded_jobs<T, R, F>(
    jobs: usize,
    bound: usize,
    items: &[T],
    f: F,
) -> Result<Vec<R>, ParError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_pool(jobs.min(bound.max(1)), 1, items, f)
}

/// Map `f` over `items` with at most `bound` items concurrently in flight,
/// independent of the resolved worker count ([`jobs`]) — the backpressure
/// primitive: a serving pool with `bound` accelerator slots must never
/// evaluate more than `bound` requests at once no matter how wide the
/// machine is. Results preserve input order; a `bound` of 1 (or a
/// single-item input) takes the same calling-thread fast path as
/// `par_map_jobs(1, ..)`.
///
/// # Errors
///
/// See [`par_map_jobs`].
pub fn par_map_bounded<T, R, F>(bound: usize, items: &[T], f: F) -> Result<Vec<R>, ParError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_bounded_jobs(jobs(), bound, items, f)
}

/// [`par_for_each`] with an explicit worker count.
///
/// # Errors
///
/// See [`par_map_jobs`].
pub fn par_for_each_jobs<T, F>(jobs: usize, items: &[T], f: F) -> Result<(), ParError>
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    par_map_jobs(jobs, items, |item| f(item)).map(|_| ())
}

/// Run `f` for every item on the default worker count, discarding results.
///
/// # Errors
///
/// See [`par_map_jobs`].
pub fn par_for_each<T, F>(items: &[T], f: F) -> Result<(), ParError>
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    par_for_each_jobs(jobs(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for jobs in [1, 2, 4, 7] {
            let out = par_map_jobs(jobs, &items, |&x| x * 3 + 1).unwrap();
            let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(out, expect, "order broken at jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = vec![];
        assert_eq!(par_map_jobs(4, &none, |&x| x).unwrap(), Vec::<u32>::new());
        assert_eq!(par_map_jobs(4, &[9u32], |&x| x + 1).unwrap(), vec![10]);
    }

    #[test]
    fn panic_becomes_err_not_abort() {
        let items: Vec<u32> = (0..64).collect();
        for jobs in [1, 4] {
            let err = par_map_jobs(jobs, &items, |&x| {
                assert!(x != 13, "boom at {x}");
                x
            })
            .unwrap_err();
            assert_eq!(err.task, 13, "lowest failing index reported");
            assert!(err.message.contains("boom at 13"), "payload kept: {err}");
        }
    }

    #[test]
    fn all_tasks_execute_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        par_for_each_jobs(8, &items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(x, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn parallel_equals_serial() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map_jobs(1, &items, |&x| x.wrapping_mul(0x9E3779B9).rotate_left(7)).unwrap();
        let parallel =
            par_map_jobs(4, &items, |&x| x.wrapping_mul(0x9E3779B9).rotate_left(7)).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn jobs_resolves_positive() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn parse_jobs_accepts_positive_and_unset() {
        assert_eq!(parse_jobs(None), Ok(None));
        assert_eq!(parse_jobs(Some("4")), Ok(Some(4)));
        assert_eq!(parse_jobs(Some("  16 ")), Ok(Some(16)));
    }

    #[test]
    fn parse_jobs_rejects_zero() {
        let err = parse_jobs(Some("0")).unwrap_err();
        assert!(err.contains("zero workers"), "got: {err}");
    }

    #[test]
    fn parse_jobs_rejects_unparsable() {
        for bad in ["abc", "-2", "4.5", ""] {
            let err = parse_jobs(Some(bad)).unwrap_err();
            assert!(err.contains("a positive integer"), "{bad:?} -> {err}");
        }
    }

    /// Serializes the tests that touch process-global resolution state
    /// (`HERMES_JOBS`, the jobs override) under the parallel test runner.
    static RESOLUTION_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn fast_path_stays_on_calling_thread() {
        let caller = std::thread::current().id();
        // jobs == 1: serial loop regardless of item count.
        let tids = par_map_jobs(1, &[1u32, 2, 3], |_| std::thread::current().id()).unwrap();
        assert!(tids.iter().all(|&t| t == caller), "jobs=1 must not spawn");
        // single item: serial loop regardless of requested jobs.
        let tids = par_map_jobs(8, &[42u32], |_| std::thread::current().id()).unwrap();
        assert_eq!(tids, vec![caller], "one item must not spawn");
        // and the fast path still returns identical results...
        let items: Vec<u64> = (0..33).collect();
        let fast = par_map_jobs(1, &items, |&x| x ^ 0xA5).unwrap();
        let pooled = par_map_jobs(4, &items, |&x| x ^ 0xA5).unwrap();
        assert_eq!(fast, pooled);
        // ...and the same panic -> Err semantics as the pool.
        let err = par_map_jobs(8, &[7u32], |_| -> u32 { panic!("lone boom") }).unwrap_err();
        assert_eq!(err.task, 0);
        assert!(err.message.contains("lone boom"), "got: {err}");
    }

    #[test]
    fn indexed_preserves_index_order() {
        for jobs in [1, 2, 4, 7] {
            let out = par_map_indexed_jobs(jobs, 257, |i| i * 3 + 1).unwrap();
            let expect: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
            assert_eq!(out, expect, "order broken at jobs={jobs}");
        }
    }

    #[test]
    fn indexed_empty_single_and_fast_path() {
        let caller = std::thread::current().id();
        assert_eq!(par_map_indexed_jobs(4, 0, |i| i).unwrap(), Vec::<usize>::new());
        assert_eq!(par_map_indexed_jobs(4, 1, |i| i + 9).unwrap(), vec![9]);
        // jobs == 1: serial loop on the calling thread regardless of count.
        let tids = par_map_indexed_jobs(1, 3, |_| std::thread::current().id()).unwrap();
        assert!(tids.iter().all(|&t| t == caller), "jobs=1 must not spawn");
        // count == 1: serial loop regardless of requested jobs.
        let tids = par_map_indexed_jobs(8, 1, |_| std::thread::current().id()).unwrap();
        assert_eq!(tids, vec![caller], "one index must not spawn");
        // default-jobs wrapper agrees with the explicit form.
        let a = par_map_indexed(100, |i| i ^ 0xA5).unwrap();
        let b = par_map_indexed_jobs(1, 100, |i| i ^ 0xA5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn indexed_dedicated_threads_when_count_le_jobs() {
        // count <= jobs: every index must land on its own thread, so the
        // bodies may synchronize with each other (the partitioned settle
        // contract). Prove it with a barrier that would deadlock if any
        // thread ran two indices.
        let count = 4;
        let barrier = std::sync::Barrier::new(count);
        let out = par_map_indexed_jobs(8, count, |i| {
            barrier.wait();
            i * 10
        })
        .unwrap();
        assert_eq!(out, vec![0, 10, 20, 30]);
        // distinct thread per index
        let tids = par_map_indexed_jobs(8, count, |_| std::thread::current().id()).unwrap();
        let unique: std::collections::HashSet<_> = tids.iter().collect();
        assert_eq!(unique.len(), count, "each index gets a dedicated thread");
    }

    #[test]
    fn indexed_panic_becomes_err_not_abort() {
        for (jobs, count) in [(1, 64), (4, 64), (8, 4)] {
            let err = par_map_indexed_jobs(jobs, count, |i| {
                assert!(i != 3, "indexed boom at {i}");
                i
            })
            .unwrap_err();
            assert_eq!(err.task, 3, "lowest failing index, jobs={jobs} count={count}");
            assert!(err.message.contains("indexed boom at 3"), "got: {err}");
        }
    }

    #[test]
    fn indexed_matches_slice_map() {
        let items: Vec<u64> = (0..100).collect();
        let by_slice = par_map_jobs(4, &items, |&x| x.wrapping_mul(31)).unwrap();
        let by_index = par_map_indexed_jobs(4, items.len(), |i| items[i].wrapping_mul(31)).unwrap();
        assert_eq!(by_slice, by_index);
    }

    #[test]
    fn bounded_never_exceeds_bound_and_keeps_order() {
        let items: Vec<u64> = (0..96).collect();
        let in_flight = AtomicU64::new(0);
        let high_water = AtomicU64::new(0);
        let bound = 3u64;
        let out = par_map_bounded_jobs(8, bound as usize, &items, |&x| {
            let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            high_water.fetch_max(now, Ordering::SeqCst);
            // a little work so claims genuinely overlap
            let mut acc = x;
            for i in 0..500u64 {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            in_flight.fetch_sub(1, Ordering::SeqCst);
            (x, acc)
        })
        .unwrap();
        assert!(
            high_water.load(Ordering::SeqCst) <= bound,
            "in-flight exceeded bound: {}",
            high_water.load(Ordering::SeqCst)
        );
        let got: Vec<u64> = out.iter().map(|&(x, _)| x).collect();
        assert_eq!(got, items, "input order preserved");
    }

    #[test]
    fn bounded_matches_unbounded_results() {
        let items: Vec<u64> = (0..64).collect();
        let plain = par_map_jobs(4, &items, |&x| x.wrapping_mul(0x9E3779B9)).unwrap();
        for bound in [1, 2, 5, 64, 1000] {
            let bounded =
                par_map_bounded_jobs(4, bound, &items, |&x| x.wrapping_mul(0x9E3779B9)).unwrap();
            assert_eq!(bounded, plain, "bound={bound}");
        }
    }

    #[test]
    fn bounded_fast_path_and_zero_bound() {
        let caller = std::thread::current().id();
        // bound 1 clamps to the serial fast path: no threads spawned
        let tids = par_map_bounded_jobs(8, 1, &[1u32, 2, 3], |_| std::thread::current().id())
            .unwrap();
        assert!(tids.iter().all(|&t| t == caller), "bound=1 must not spawn");
        // bound 0 is treated as 1, not a deadlocked empty pool
        let out = par_map_bounded_jobs(8, 0, &[5u32, 6], |&x| x * 2).unwrap();
        assert_eq!(out, vec![10, 12]);
    }

    #[test]
    fn bounded_panic_becomes_err() {
        let items: Vec<u32> = (0..32).collect();
        for bound in [1, 3] {
            let err = par_map_bounded_jobs(4, bound, &items, |&x| {
                assert!(x != 7, "bounded boom at {x}");
                x
            })
            .unwrap_err();
            assert_eq!(err.task, 7, "lowest failing index, bound={bound}");
            assert!(err.message.contains("bounded boom at 7"), "got: {err}");
        }
    }

    #[test]
    fn jobs_override_beats_env_and_clears() {
        let _guard = RESOLUTION_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let saved = std::env::var("HERMES_JOBS").ok();
        std::env::set_var("HERMES_JOBS", "2");
        set_jobs_override(Some(5));
        let pinned = jobs();
        set_jobs_override(None);
        let unpinned = jobs();
        match saved {
            Some(v) => std::env::set_var("HERMES_JOBS", v),
            None => std::env::remove_var("HERMES_JOBS"),
        }
        assert_eq!(pinned, 5, "override wins over HERMES_JOBS");
        assert_eq!(unpinned, 2, "clearing restores env resolution");
    }

    #[test]
    fn bad_hermes_jobs_falls_back_with_single_warning() {
        // Other tests in this binary only assert `jobs() >= 1`, so briefly
        // poisoning the variable is safe even under the parallel test
        // runner; restore it before returning either way.
        let _guard = RESOLUTION_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let saved = std::env::var("HERMES_JOBS").ok();
        std::env::set_var("HERMES_JOBS", "banana");
        let resolved = jobs();
        let again = jobs();
        match saved {
            Some(v) => std::env::set_var("HERMES_JOBS", v),
            None => std::env::remove_var("HERMES_JOBS"),
        }
        assert!(resolved >= 1, "fallback must still be usable");
        assert_eq!(resolved, again, "fallback is stable");
        let warned: Vec<_> = hermes_obs::warnings::snapshot()
            .into_iter()
            .filter(|(k, _)| k == "HERMES_JOBS")
            .collect();
        assert_eq!(warned.len(), 1, "exactly one warning recorded");
        assert!(warned[0].1.contains("falling back"), "got: {}", warned[0].1);
    }
}
