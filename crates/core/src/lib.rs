//! # hermes-core
//!
//! The HERMES ecosystem façade: one API spanning the full design flow the
//! paper describes — C-subset source through HLS (`hermes-hls`), FPGA
//! implementation (`hermes-fpga`), flash image packing and the BL0/BL1 boot
//! chain (`hermes-boot`), up to a time-and-space-partitioned software
//! configuration on the quad-core processor subsystem (`hermes-xng`).
//!
//! * [`accelerator::AcceleratorFlow`] — "C to bitstream" in one call, with
//!   all intermediate artifacts exposed;
//! * [`mission::MissionBuilder`] — packages accelerator bitstreams and
//!   application software into a boot flash and runs the boot sequence.
//!
//! ## Example
//!
//! ```
//! use hermes_core::accelerator::AcceleratorFlow;
//!
//! # fn main() -> Result<(), hermes_core::CoreError> {
//! let artifact = AcceleratorFlow::new()
//!     .clock_ns(10.0)
//!     .build("int scale(int a) { return a * 3; }")?;
//! assert!(artifact.flow_report.timing.fmax_mhz > 0.0);
//! assert!(artifact.verilog.contains("module scale"));
//! artifact.bitstream.verify().map_err(hermes_core::CoreError::Fpga)?;
//! # Ok(())
//! # }
//! ```

pub mod accelerator;
pub mod mission;

use std::fmt;

/// Errors spanning the whole ecosystem flow.
#[derive(Debug)]
pub enum CoreError {
    /// HLS failure.
    Hls(hermes_hls::HlsError),
    /// FPGA implementation failure.
    Fpga(hermes_fpga::FpgaError),
    /// Boot chain failure.
    Boot(hermes_boot::BootError),
    /// Hypervisor failure.
    Xng(hermes_xng::XngError),
    /// CPU substrate failure.
    Cpu(hermes_cpu::CpuError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Hls(e) => write!(f, "hls: {e}"),
            CoreError::Fpga(e) => write!(f, "fpga: {e}"),
            CoreError::Boot(e) => write!(f, "boot: {e}"),
            CoreError::Xng(e) => write!(f, "hypervisor: {e}"),
            CoreError::Cpu(e) => write!(f, "cpu: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Hls(e) => Some(e),
            CoreError::Fpga(e) => Some(e),
            CoreError::Boot(e) => Some(e),
            CoreError::Xng(e) => Some(e),
            CoreError::Cpu(e) => Some(e),
        }
    }
}

impl From<hermes_hls::HlsError> for CoreError {
    fn from(e: hermes_hls::HlsError) -> Self {
        CoreError::Hls(e)
    }
}

impl From<hermes_fpga::FpgaError> for CoreError {
    fn from(e: hermes_fpga::FpgaError) -> Self {
        CoreError::Fpga(e)
    }
}

impl From<hermes_boot::BootError> for CoreError {
    fn from(e: hermes_boot::BootError) -> Self {
        CoreError::Boot(e)
    }
}

impl From<hermes_xng::XngError> for CoreError {
    fn from(e: hermes_xng::XngError) -> Self {
        CoreError::Xng(e)
    }
}

impl From<hermes_cpu::CpuError> for CoreError {
    fn from(e: hermes_cpu::CpuError) -> Self {
        CoreError::Cpu(e)
    }
}
