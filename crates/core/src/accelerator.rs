//! The C-to-bitstream accelerator flow (Bambu + NXmap integration,
//! Section II): HLS, logic synthesis, place & route, timing, bitstream,
//! and HDL emission in one call.

use crate::CoreError;
use hermes_fpga::bitstream::Bitstream;
use hermes_fpga::device::DeviceProfile;
use hermes_fpga::flow::{FlowOptions, FlowReport, NxFlow};
use hermes_fpga::place::Effort;
use hermes_hls::interface::InterfaceSpec;
use hermes_hls::{Design, HlsFlow};

/// Everything the flow produced for one accelerator.
#[derive(Debug)]
pub struct AcceleratorArtifact {
    /// The synthesized HLS design (simulatable).
    pub design: Design,
    /// FPGA implementation report (utilization / timing / power).
    pub flow_report: FlowReport,
    /// The configuration bitstream.
    pub bitstream: Bitstream,
    /// Generated Verilog.
    pub verilog: String,
    /// Generated VHDL.
    pub vhdl: String,
    /// AXI interface description of the accelerator.
    pub interface: InterfaceSpec,
}

impl AcceleratorArtifact {
    /// The NXmap backend synthesis script for this accelerator (the script
    /// hand-off artifact of the paper's Bambu/NXmap integration).
    pub fn nxmap_script(&self, device: &DeviceProfile) -> String {
        let options = FlowOptions {
            target_period_ns: self.design.clock_ns(),
            multicycle: self.design.multicycle_hints(),
            ..FlowOptions::default()
        };
        hermes_fpga::flow::nxmap_script(
            self.design.name(),
            &format!("{}.v", self.design.name()),
            device,
            &options,
        )
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} states, {} LUTs, {} DSPs, {:.1} MHz, {} bitstream bytes",
            self.design.name(),
            self.design.fsm.state_count(),
            self.flow_report.utilization.luts,
            self.flow_report.utilization.dsps,
            self.flow_report.timing.fmax_mhz,
            self.bitstream.size_bytes()
        )
    }
}

/// The combined HLS + implementation flow.
#[derive(Debug, Clone)]
pub struct AcceleratorFlow {
    hls: HlsFlow,
    device: DeviceProfile,
    fpga_options: FlowOptions,
}

impl Default for AcceleratorFlow {
    fn default() -> Self {
        AcceleratorFlow::new()
    }
}

impl AcceleratorFlow {
    /// Default flow: 10 ns clock, NG-MEDIUM-like device, low placement
    /// effort.
    pub fn new() -> Self {
        AcceleratorFlow {
            hls: HlsFlow::new(),
            device: DeviceProfile::ng_medium_like(),
            fpga_options: FlowOptions {
                effort: Effort::Zero,
                ..FlowOptions::default()
            },
        }
    }

    /// Set the clock constraint (applied to both HLS and implementation).
    pub fn clock_ns(mut self, ns: f64) -> Self {
        self.hls = self.hls.clock_ns(ns);
        self.fpga_options.target_period_ns = ns;
        self
    }

    /// Target a different device.
    pub fn device(mut self, device: DeviceProfile) -> Self {
        self.hls = self.hls.device(device.clone());
        self.device = device;
        self
    }

    /// Customize the HLS front half.
    pub fn hls(mut self, hls: HlsFlow) -> Self {
        self.hls = hls;
        self
    }

    /// Set placement effort for the implementation half.
    pub fn effort(mut self, effort: Effort) -> Self {
        self.fpga_options.effort = effort;
        self
    }

    /// Run the full flow on C-subset source.
    ///
    /// # Errors
    ///
    /// Propagates HLS and implementation failures.
    pub fn build(&self, source: &str) -> Result<AcceleratorArtifact, CoreError> {
        let design = self.hls.compile(source)?;
        let mut options = self.fpga_options.clone();
        options.multicycle = design.multicycle_hints();
        let (flow_report, artifacts) =
            NxFlow::new(self.device.clone(), options).run_with_artifacts(design.netlist())?;
        Ok(AcceleratorArtifact {
            verilog: design.emit_verilog(),
            vhdl: design.emit_vhdl(),
            interface: design.interface_spec(),
            design,
            flow_report,
            bitstream: artifacts.bitstream,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_to_bitstream_roundtrip() {
        let artifact = AcceleratorFlow::new()
            .build("int mac(int a, int b, int c) { return a * b + c; }")
            .unwrap();
        artifact.bitstream.verify().unwrap();
        assert!(artifact.flow_report.utilization.dsps >= 1);
        assert!(artifact.verilog.contains("module mac"));
        assert!(artifact.vhdl.contains("entity mac"));
        assert_eq!(
            artifact.design.simulate(&[3, 4, 5]).unwrap().return_value,
            Some(17)
        );
        assert!(artifact.summary().contains("mac"));
    }

    #[test]
    fn clock_propagates_to_both_halves() {
        let fast = AcceleratorFlow::new()
            .clock_ns(2.5)
            .build("int f(int a, int b) { return a / (b + 1); }")
            .unwrap();
        let slow = AcceleratorFlow::new()
            .clock_ns(40.0)
            .build("int f(int a, int b) { return a / (b + 1); }")
            .unwrap();
        assert!(fast.design.fsm.state_count() > slow.design.fsm.state_count());
        assert!((fast.flow_report.timing.target_period_ns - 2.5).abs() < 1e-9);
    }
}
