//! Mission packaging: bitstreams + application software → boot flash →
//! booted system, optionally with a partitioned software configuration.
//!
//! This is the deployment path a HERMES end user follows: accelerators from
//! the Bambu/NXmap flow and compiled application images are placed in the
//! load list, BL0/BL1 bring the system up, and the XtratuM-NG analogue
//! hosts the partitioned mission software.

use crate::CoreError;
use hermes_boot::bl1::{Bl1, BootOutcome, BootSource};
use hermes_boot::flash::{Flash, FlashImageBuilder, RedundancyMode};
use hermes_boot::loadlist::LoadList;
use hermes_cpu::isa::assemble;
use hermes_fpga::bitstream::Bitstream;

/// Builds a bootable mission image.
#[derive(Debug)]
pub struct MissionBuilder {
    builder: FlashImageBuilder,
    entries: Vec<hermes_boot::loadlist::LoadEntry>,
    redundancy: RedundancyMode,
}

impl Default for MissionBuilder {
    fn default() -> Self {
        MissionBuilder::new()
    }
}

impl MissionBuilder {
    /// An empty mission with TMR flash redundancy.
    pub fn new() -> Self {
        MissionBuilder {
            builder: FlashImageBuilder::new(),
            entries: Vec::new(),
            redundancy: RedundancyMode::Tmr,
        }
    }

    /// Choose the flash redundancy policy.
    pub fn redundancy(mut self, mode: RedundancyMode) -> Self {
        self.redundancy = mode;
        self
    }

    /// Add an eFPGA bitstream to program at boot.
    pub fn with_bitstream(mut self, bitstream: &Bitstream) -> Self {
        self.entries.push(self.builder.add_bitstream(bitstream));
        self
    }

    /// Add an application from assembly source, loaded and started at
    /// `addr` on `core`.
    ///
    /// # Errors
    ///
    /// Propagates assembler failures.
    pub fn with_application_asm(
        mut self,
        addr: u32,
        core: u8,
        asm: &str,
    ) -> Result<Self, CoreError> {
        let words = assemble(asm)?;
        self.entries
            .push(self.builder.add_software_on_core(addr, addr, core, &words));
        Ok(self)
    }

    /// Add pre-assembled machine words, loaded and started at `addr`.
    pub fn with_application_words(mut self, addr: u32, core: u8, words: &[u32]) -> Self {
        self.entries
            .push(self.builder.add_software_on_core(addr, addr, core, words));
        self
    }

    /// Add a data image (loaded, not executed).
    pub fn with_data(mut self, addr: u32, bytes: &[u8]) -> Self {
        self.entries.push(self.builder.add_data(addr, bytes));
        self
    }

    /// Build the boot flash.
    pub fn build_flash(self) -> (Flash, LoadList) {
        let list = LoadList {
            entries: self.entries,
        };
        let flash = self.builder.build(&list, self.redundancy);
        (flash, list)
    }

    /// Build and boot in one step.
    ///
    /// # Errors
    ///
    /// Propagates boot failures.
    pub fn boot(self) -> Result<BootOutcome, CoreError> {
        let (flash, _) = self.build_flash();
        let mut bl1 = Bl1::new(BootSource::Flash(flash));
        Ok(bl1.boot()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::AcceleratorFlow;
    use hermes_cpu::memmap::layout;

    #[test]
    fn full_mission_boot() {
        let artifact = AcceleratorFlow::new()
            .build("int twice(int a) { return a + a; }")
            .unwrap();
        let outcome = MissionBuilder::new()
            .with_bitstream(&artifact.bitstream)
            .with_application_asm(
                layout::DDR_BASE,
                0,
                "addi r1, r0, 123\nhalt",
            )
            .unwrap()
            .boot()
            .unwrap();
        assert!(outcome.report.success);
        assert_eq!(outcome.report.bitstreams_programmed, 1);
        assert_eq!(outcome.bitstreams[0].design_name, "twice");
        assert_eq!(outcome.cluster.core(0).reg(1), 123);
    }

    #[test]
    fn multicore_mission() {
        let mut builder = MissionBuilder::new();
        for core in 0..4u8 {
            builder = builder
                .with_application_asm(
                    layout::DDR_BASE + u32::from(core) * 0x1000,
                    core,
                    &format!("addi r1, r0, {}\nhalt", 10 + core),
                )
                .unwrap();
        }
        let outcome = builder.boot().unwrap();
        for core in 0..4usize {
            assert_eq!(outcome.cluster.core(core).reg(1), 10 + core as u32);
        }
    }

    #[test]
    fn data_images_deploy_without_execution() {
        let outcome = MissionBuilder::new()
            .with_data(layout::SRAM_BASE + 0x100, b"CONFIG")
            .boot()
            .unwrap();
        let bytes = outcome
            .cluster
            .bus
            .read_bytes(layout::SRAM_BASE + 0x100, 6)
            .unwrap();
        assert_eq!(&bytes, b"CONFIG");
    }
}
