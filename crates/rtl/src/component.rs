//! Parameterizable RTL component templates.
//!
//! Each [`ComponentTemplate`] describes a generic library unit (an adder, a
//! multiplier, a true dual-port RAM, …) specialized by operand bit-widths and
//! pipeline depth — exactly the specialization axes the paper's Eucalyptus
//! characterizer sweeps. Templates carry a behavioural model
//! ([`ComponentTemplate::evaluate`]) used by the cycle simulator and a
//! structural footprint used by downstream logic synthesis.

use crate::{mask, sign_extend, RtlError};
use std::fmt;

/// The kind of a library component, before specialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComponentKind {
    /// Two's-complement adder.
    Adder,
    /// Two's-complement subtractor.
    Subtractor,
    /// Unsigned/two's-complement multiplier (low half of the product).
    Multiplier,
    /// Unsigned divider (quotient).
    Divider,
    /// Unsigned remainder unit.
    Modulo,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT (single operand).
    Not,
    /// Logical left shift.
    ShiftLeft,
    /// Logical right shift.
    ShiftRightLogical,
    /// Arithmetic right shift.
    ShiftRightArith,
    /// Comparator producing a 1-bit result.
    Comparator(Comparison),
    /// Two-input multiplexer (select, a, b).
    Mux,
    /// Clocked register with optional enable/reset.
    Register,
    /// True dual-port synchronous RAM (as on the NG-ULTRA fabric).
    RamTdp,
    /// Single-port synchronous ROM.
    Rom,
    /// Constant driver.
    Constant,
    /// Zero- or sign-extension / truncation unit.
    Resize,
}

impl ComponentKind {
    /// All specializable kinds, in a stable order (used by characterization sweeps).
    pub fn all() -> &'static [ComponentKind] {
        use ComponentKind::*;
        &[
            Adder,
            Subtractor,
            Multiplier,
            Divider,
            Modulo,
            And,
            Or,
            Xor,
            Not,
            ShiftLeft,
            ShiftRightLogical,
            ShiftRightArith,
            Comparator(Comparison::Eq),
            Comparator(Comparison::Ne),
            Comparator(Comparison::LtU),
            Comparator(Comparison::LtS),
            Comparator(Comparison::GeU),
            Comparator(Comparison::GeS),
            Mux,
            Register,
            RamTdp,
            Rom,
            Constant,
            Resize,
        ]
    }

    /// Whether the component is purely combinational when unpipelined.
    pub fn is_combinational(self) -> bool {
        !matches!(
            self,
            ComponentKind::Register | ComponentKind::RamTdp | ComponentKind::Rom
        )
    }

    /// Short lowercase mnemonic used in generated HDL identifiers.
    pub fn mnemonic(self) -> &'static str {
        use ComponentKind::*;
        match self {
            Adder => "add",
            Subtractor => "sub",
            Multiplier => "mul",
            Divider => "div",
            Modulo => "mod",
            And => "and",
            Or => "or",
            Xor => "xor",
            Not => "not",
            ShiftLeft => "shl",
            ShiftRightLogical => "shrl",
            ShiftRightArith => "shra",
            Comparator(Comparison::Eq) => "cmpeq",
            Comparator(Comparison::Ne) => "cmpne",
            Comparator(Comparison::LtU) => "cmpltu",
            Comparator(Comparison::LtS) => "cmplts",
            Comparator(Comparison::GeU) => "cmpgeu",
            Comparator(Comparison::GeS) => "cmpges",
            Mux => "mux",
            Register => "reg",
            RamTdp => "ram_tdp",
            Rom => "rom",
            Constant => "const",
            Resize => "resize",
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Comparison predicate of a [`ComponentKind::Comparator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Comparison {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    LtU,
    /// Signed less-than.
    LtS,
    /// Unsigned greater-or-equal.
    GeU,
    /// Signed greater-or-equal.
    GeS,
}

impl Comparison {
    /// Apply the predicate to two operands of the given width.
    pub fn apply(self, a: u64, b: u64, width: u32) -> bool {
        let (a, b) = (mask(a, width), mask(b, width));
        match self {
            Comparison::Eq => a == b,
            Comparison::Ne => a != b,
            Comparison::LtU => a < b,
            Comparison::GeU => a >= b,
            Comparison::LtS => sign_extend(a, width) < sign_extend(b, width),
            Comparison::GeS => sign_extend(a, width) >= sign_extend(b, width),
        }
    }

    /// The predicate as a bitwise expression over words of *1-bit lanes*:
    /// bit `i` of the result is `apply(bit i of a, bit i of b, 1)`. This is
    /// what lets the word-parallel settle evaluate 64 packed single-bit
    /// comparators in one ALU op. Signed forms read a set bit as `-1`
    /// (the two's-complement value of a 1-bit signal), so e.g. `LtS` is
    /// true only for `a=1, b=0`.
    pub fn bit_apply(self, a: u64, b: u64) -> u64 {
        match self {
            Comparison::Eq => !(a ^ b),
            Comparison::Ne => a ^ b,
            Comparison::LtU => !a & b,
            Comparison::GeU => a | !b,
            Comparison::LtS => a & !b,
            Comparison::GeS => !a | b,
        }
    }
}

/// A library component specialized by operand widths and pipeline stages.
///
/// This is the unit of characterization: the paper's Eucalyptus tool
/// synthesizes "different configurations of library components … obtained by
/// specializing a generic template … according to the bit widths of its input
/// and output arguments, and to the number of pipeline stages".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ComponentTemplate {
    /// The generic kind being specialized.
    pub kind: ComponentKind,
    /// Input operand width in bits (1..=64).
    pub input_width: u32,
    /// Output width in bits (1..=64).
    pub output_width: u32,
    /// Number of internal pipeline register stages (0 = combinational).
    pub pipeline_stages: u32,
}

impl ComponentTemplate {
    /// Create a template with equal input/output widths and no pipelining.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnsupportedWidth`] for widths of 0 or above 64.
    pub fn new(kind: ComponentKind, width: u32) -> Result<Self, RtlError> {
        Self::with_widths(kind, width, width, 0)
    }

    /// Create a fully specialized template.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnsupportedWidth`] for widths of 0 or above 64.
    pub fn with_widths(
        kind: ComponentKind,
        input_width: u32,
        output_width: u32,
        pipeline_stages: u32,
    ) -> Result<Self, RtlError> {
        for &w in &[input_width, output_width] {
            if w == 0 || w > 64 {
                return Err(RtlError::UnsupportedWidth { width: w });
            }
        }
        Ok(ComponentTemplate {
            kind,
            input_width,
            output_width,
            pipeline_stages,
        })
    }

    /// A stable unique name for this specialization, e.g. `mul_32_32_p2`.
    pub fn instance_name(&self) -> String {
        format!(
            "{}_{}_{}_p{}",
            self.kind.mnemonic(),
            self.input_width,
            self.output_width,
            self.pipeline_stages
        )
    }

    /// Number of data input operands the component consumes.
    pub fn input_arity(&self) -> usize {
        use ComponentKind::*;
        match self.kind {
            Not | Resize | Register | Rom => 1,
            Mux => 3,
            Constant => 0,
            RamTdp => 6, // addr_a, data_a, we_a, addr_b, data_b, we_b
            _ => 2,
        }
    }

    /// Evaluate the combinational function of the component.
    ///
    /// Storage components ([`ComponentKind::Register`], RAM, ROM) are handled
    /// by the simulator's sequential phase, not here.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`Self::input_arity`]. Divide by
    /// zero yields an all-ones result (matching typical hardware dividers).
    pub fn evaluate(&self, inputs: &[u64]) -> u64 {
        assert_eq!(
            inputs.len(),
            self.input_arity(),
            "component {} expects {} inputs",
            self.instance_name(),
            self.input_arity()
        );
        let w = self.input_width;
        let ow = self.output_width;
        let m = |v| mask(v, w);
        use ComponentKind::*;
        let raw = match self.kind {
            Adder => m(inputs[0]).wrapping_add(m(inputs[1])),
            Subtractor => m(inputs[0]).wrapping_sub(m(inputs[1])),
            Multiplier => m(inputs[0]).wrapping_mul(m(inputs[1])),
            Divider => {
                // division by zero yields all-ones, matching the RTL model
                m(inputs[0]).checked_div(m(inputs[1])).unwrap_or(u64::MAX)
            }
            Modulo => {
                let d = m(inputs[1]);
                if d == 0 {
                    m(inputs[0])
                } else {
                    m(inputs[0]) % d
                }
            }
            And => inputs[0] & inputs[1],
            Or => inputs[0] | inputs[1],
            Xor => inputs[0] ^ inputs[1],
            Not => !m(inputs[0]),
            ShiftLeft => {
                let sh = mask(inputs[1], w).min(63) as u32;
                m(inputs[0]) << sh
            }
            ShiftRightLogical => {
                let sh = mask(inputs[1], w).min(63) as u32;
                m(inputs[0]) >> sh
            }
            ShiftRightArith => {
                let sh = mask(inputs[1], w).min(63) as u32;
                (sign_extend(inputs[0], w) >> sh) as u64
            }
            Comparator(c) => c.apply(inputs[0], inputs[1], w) as u64,
            Mux => {
                if mask(inputs[0], 1) != 0 {
                    m(inputs[2])
                } else {
                    m(inputs[1])
                }
            }
            Resize => sign_extend(inputs[0], w) as u64,
            Register | RamTdp | Rom | Constant => inputs.first().copied().unwrap_or(0),
        };
        mask(raw, ow)
    }
}

impl fmt::Display for ComponentTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.instance_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(kind: ComponentKind, w: u32) -> ComponentTemplate {
        ComponentTemplate::new(kind, w).expect("valid width")
    }

    #[test]
    fn bit_apply_matches_scalar_apply_per_lane() {
        let all = [
            Comparison::Eq,
            Comparison::Ne,
            Comparison::LtU,
            Comparison::LtS,
            Comparison::GeU,
            Comparison::GeS,
        ];
        for cmp in all {
            // exhaustive over the 4 single-bit operand combinations, placed
            // on a non-trivial lane to catch shift mistakes
            for a in 0..2u64 {
                for b in 0..2u64 {
                    let lane = 17;
                    let word = cmp.bit_apply(a << lane, b << lane);
                    let expect = u64::from(cmp.apply(a, b, 1));
                    assert_eq!(
                        (word >> lane) & 1,
                        expect,
                        "{cmp:?} lane form diverges from apply() at a={a} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn adder_wraps_at_width() {
        let add = t(ComponentKind::Adder, 8);
        assert_eq!(add.evaluate(&[250, 10]), 4);
        assert_eq!(add.evaluate(&[1, 2]), 3);
    }

    #[test]
    fn subtractor_wraps() {
        let sub = t(ComponentKind::Subtractor, 8);
        assert_eq!(sub.evaluate(&[3, 5]), 254);
    }

    #[test]
    fn multiplier_truncates() {
        let mul = t(ComponentKind::Multiplier, 8);
        assert_eq!(mul.evaluate(&[16, 16]), 0); // 256 truncated to 8 bits
        assert_eq!(mul.evaluate(&[15, 15]), 225);
    }

    #[test]
    fn divider_by_zero_is_all_ones() {
        let div = t(ComponentKind::Divider, 8);
        assert_eq!(div.evaluate(&[5, 0]), 0xFF);
        assert_eq!(div.evaluate(&[100, 7]), 14);
    }

    #[test]
    fn modulo_by_zero_is_dividend() {
        let md = t(ComponentKind::Modulo, 8);
        assert_eq!(md.evaluate(&[5, 0]), 5);
        assert_eq!(md.evaluate(&[100, 7]), 2);
    }

    #[test]
    fn signed_comparison() {
        let lt = t(ComponentKind::Comparator(Comparison::LtS), 8);
        // -1 < 1 signed
        assert_eq!(lt.evaluate(&[0xFF, 1]), 1);
        let ltu = t(ComponentKind::Comparator(Comparison::LtU), 8);
        assert_eq!(ltu.evaluate(&[0xFF, 1]), 0);
    }

    #[test]
    fn arithmetic_shift_preserves_sign() {
        let shra = t(ComponentKind::ShiftRightArith, 8);
        assert_eq!(shra.evaluate(&[0x80, 1]), 0xC0);
        let shrl = t(ComponentKind::ShiftRightLogical, 8);
        assert_eq!(shrl.evaluate(&[0x80, 1]), 0x40);
    }

    #[test]
    fn mux_selects() {
        let mux = t(ComponentKind::Mux, 8);
        assert_eq!(mux.evaluate(&[0, 11, 22]), 11);
        assert_eq!(mux.evaluate(&[1, 11, 22]), 22);
    }

    #[test]
    fn shift_amount_saturates() {
        let shl = t(ComponentKind::ShiftLeft, 8);
        // shift by 200 masked to width then clamped; must not panic
        let _ = shl.evaluate(&[1, 200]);
    }

    #[test]
    fn width_validation() {
        assert!(ComponentTemplate::new(ComponentKind::Adder, 0).is_err());
        assert!(ComponentTemplate::new(ComponentKind::Adder, 65).is_err());
        assert!(ComponentTemplate::new(ComponentKind::Adder, 64).is_ok());
    }

    #[test]
    fn instance_names_are_unique_per_specialization() {
        use std::collections::HashSet;
        let mut names = HashSet::new();
        for &k in ComponentKind::all() {
            for w in [1u32, 8, 16, 32, 64] {
                for p in 0..3 {
                    let c = ComponentTemplate::with_widths(k, w, w, p).expect("valid");
                    assert!(names.insert(c.instance_name()), "duplicate {}", c);
                }
            }
        }
    }

    #[test]
    fn resize_sign_extends() {
        let r = ComponentTemplate::with_widths(ComponentKind::Resize, 4, 8, 0).expect("valid");
        assert_eq!(r.evaluate(&[0xF]), 0xFF);
        assert_eq!(r.evaluate(&[0x7]), 0x07);
    }
}
