//! Deterministic seeded pseudo-random number generator.
//!
//! The whole ecosystem draws stimuli, fault schedules, and annealing moves
//! from this one generator so that every run is exactly reproducible from a
//! seed — the repo builds offline with no external `rand` dependency, and a
//! chaos campaign or placement result can be replayed bit-for-bit.
//!
//! The core is xorshift64* seeded through a splitmix64 scrambler (so that
//! small consecutive seeds produce uncorrelated streams).

/// A deterministic 64-bit PRNG (xorshift64* with splitmix64 seeding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// A generator seeded with `seed` (any value, including 0, is valid).
    pub fn new(seed: u64) -> Self {
        // splitmix64 finalizer: spreads low-entropy seeds over the state
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DetRng {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next value as `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` (`bound` 0 is treated as 1).
    pub fn below(&mut self, bound: u64) -> u64 {
        let bound = bound.max(1);
        // multiply-shift rejection-free mapping (Lemire); bias is < 2^-64
        // per draw, irrelevant for simulation workloads
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `i64` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let off = (self.next_u64() as u128 * span) >> 64;
        (lo as i128 + off as i128) as i64
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A vector of `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_u64() as u8).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = DetRng::new(0);
        let v: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }

    #[test]
    fn below_stays_in_bound() {
        let mut r = DetRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(r.below(bound) < bound);
            }
        }
        assert_eq!(r.below(0), 0, "bound 0 treated as 1");
    }

    #[test]
    fn range_i64_inclusive_and_covering() {
        let mut r = DetRng::new(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = r.range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            seen[(v + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..100 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
