//! Cycle-accurate two-phase netlist simulator.
//!
//! Each [`Simulator::step`] performs one clock cycle:
//!
//! 1. **Settle** — propagate values through the combinational cells in
//!    topological order.
//! 2. **Clock edge** — every sequential cell (register, RAM) samples its
//!    inputs simultaneously and updates its state.
//!
//! This is the discipline a synchronous single-clock design obeys on real
//! hardware and is sufficient to validate HLS-generated FSM + datapath
//! structures cycle-by-cycle against a software reference.

use crate::component::Comparison;
use crate::netlist::{CellId, CellOp, Netlist, NetId};
use crate::{mask, sign_extend, RtlError};
use std::collections::HashMap;

/// Cycle-accurate simulator over a validated [`Netlist`].
#[derive(Debug, Clone)]
pub struct Simulator<'n> {
    netlist: &'n Netlist,
    values: Vec<u64>,
    reg_state: HashMap<CellId, u64>,
    ram_state: HashMap<CellId, Vec<u64>>,
    order: Vec<CellId>,
    cycle: u64,
    trace: Option<Trace>,
}

/// A recorded value-change trace (VCD-lite) of selected nets.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    nets: Vec<NetId>,
    /// One sample row `(cycle, values)` per simulated cycle.
    pub rows: Vec<(u64, Vec<u64>)>,
}

impl Trace {
    /// Render the trace as a VCD-style text dump.
    pub fn render(&self, netlist: &Netlist) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1ns $end\n");
        for &nid in &self.nets {
            let n = netlist.net(nid);
            out.push_str(&format!("$var wire {} {} {} $end\n", n.width, nid, n.name));
        }
        out.push_str("$enddefinitions $end\n");
        for (cycle, vals) in &self.rows {
            out.push_str(&format!("#{cycle}\n"));
            for (i, &nid) in self.nets.iter().enumerate() {
                out.push_str(&format!("b{:b} {}\n", vals[i], nid));
            }
        }
        out
    }
}

impl<'n> Simulator<'n> {
    /// Build a simulator after validating the netlist.
    ///
    /// All registers start at 0 and RAMs at their declared init contents.
    ///
    /// # Errors
    ///
    /// Propagates any structural error from [`Netlist::validate`].
    pub fn new(netlist: &'n Netlist) -> Result<Self, RtlError> {
        netlist.validate()?;
        let order = netlist.combinational_order()?;
        let mut reg_state = HashMap::new();
        let mut ram_state = HashMap::new();
        for (cid, cell) in netlist.cells() {
            match &cell.op {
                CellOp::Register { .. } => {
                    reg_state.insert(cid, 0);
                }
                CellOp::RamTdp { depth, init } => {
                    let mut mem = init.clone();
                    mem.resize(*depth as usize, 0);
                    ram_state.insert(cid, mem);
                }
                _ => {}
            }
        }
        let mut sim = Simulator {
            netlist,
            values: vec![0; netlist.net_count()],
            reg_state,
            ram_state,
            order,
            cycle: 0,
            trace: None,
        };
        sim.settle();
        Ok(sim)
    }

    /// Enable tracing of the given nets; samples are appended on every step.
    pub fn enable_trace(&mut self, nets: &[NetId]) {
        self.trace = Some(Trace {
            nets: nets.to_vec(),
            rows: Vec::new(),
        });
    }

    /// Take the recorded trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Current cycle count (number of completed [`Self::step`] calls).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Drive a primary input by name.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownName`] if no such input exists.
    pub fn poke(&mut self, name: &str, value: u64) -> Result<(), RtlError> {
        let id = self
            .netlist
            .net_by_name(name)
            .filter(|id| self.netlist.inputs().contains(id))
            .ok_or_else(|| RtlError::UnknownName { name: name.into() })?;
        self.values[id.0 as usize] = mask(value, self.netlist.net(id).width);
        self.settle();
        Ok(())
    }

    /// Read any net's settled value by name.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownName`] if no such net exists.
    pub fn peek(&self, name: &str) -> Result<u64, RtlError> {
        let id = self
            .netlist
            .net_by_name(name)
            .ok_or_else(|| RtlError::UnknownName { name: name.into() })?;
        Ok(self.values[id.0 as usize])
    }

    /// Read a net's settled value by id.
    pub fn peek_net(&self, id: NetId) -> u64 {
        self.values[id.0 as usize]
    }

    /// Drive a primary input by id.
    pub fn poke_net(&mut self, id: NetId, value: u64) {
        self.values[id.0 as usize] = mask(value, self.netlist.net(id).width);
        self.settle();
    }

    /// Synchronously reset: clears all registers (those declared with reset)
    /// and re-settles. RAM contents are preserved, as on real block RAM.
    pub fn reset(&mut self) {
        for (cid, cell) in self.netlist.cells() {
            if let CellOp::Register { has_reset: true, .. } = cell.op {
                self.reg_state.insert(cid, 0);
            }
        }
        self.settle();
    }

    /// Advance one clock cycle: sample all sequential elements, then settle.
    ///
    /// # Errors
    ///
    /// Currently infallible but kept fallible for forward compatibility with
    /// X-propagation checks.
    pub fn step(&mut self) -> Result<(), RtlError> {
        // Phase 1: compute next state for every sequential cell from the
        // *currently settled* values (simultaneous sampling).
        let mut next_regs: Vec<(CellId, u64)> = Vec::new();
        let mut ram_writes: Vec<(CellId, Vec<(usize, u64)>)> = Vec::new();
        let mut ram_reads: Vec<(CellId, u64, u64)> = Vec::new();
        for (cid, cell) in self.netlist.cells() {
            match &cell.op {
                CellOp::Register { has_enable, .. } => {
                    let d = self.values[cell.inputs[0].0 as usize];
                    let load = if *has_enable {
                        self.values[cell.inputs[1].0 as usize] & 1 == 1
                    } else {
                        true
                    };
                    if load {
                        let w = self.netlist.net(cell.outputs[0]).width;
                        next_regs.push((cid, mask(d, w)));
                    }
                }
                CellOp::RamTdp { depth, .. } => {
                    let depth = *depth as usize;
                    let addr_a = self.values[cell.inputs[0].0 as usize] as usize % depth.max(1);
                    let wd_a = self.values[cell.inputs[1].0 as usize];
                    let we_a = self.values[cell.inputs[2].0 as usize] & 1 == 1;
                    let addr_b = self.values[cell.inputs[3].0 as usize] as usize % depth.max(1);
                    let wd_b = self.values[cell.inputs[4].0 as usize];
                    let we_b = self.values[cell.inputs[5].0 as usize] & 1 == 1;
                    let mem = &self.ram_state[&cid];
                    // read-first semantics on both ports
                    ram_reads.push((cid, mem[addr_a], mem[addr_b]));
                    let mut writes = Vec::new();
                    if we_a {
                        writes.push((addr_a, wd_a));
                    }
                    if we_b {
                        writes.push((addr_b, wd_b));
                    }
                    if !writes.is_empty() {
                        ram_writes.push((cid, writes));
                    }
                }
                _ => {}
            }
        }
        // Phase 2: commit state and drive sequential outputs.
        for (cid, v) in next_regs {
            self.reg_state.insert(cid, v);
        }
        for (cid, writes) in ram_writes {
            let w = self
                .netlist
                .net(self.netlist.cell(cid).outputs[0])
                .width;
            let mem = self.ram_state.get_mut(&cid).expect("ram state exists");
            for (addr, val) in writes {
                mem[addr] = mask(val, w);
            }
        }
        for (cid, ra, rb) in ram_reads {
            let cell = self.netlist.cell(cid);
            self.values[cell.outputs[0].0 as usize] = ra;
            self.values[cell.outputs[1].0 as usize] = rb;
        }
        self.settle();
        self.cycle += 1;
        if let Some(trace) = &mut self.trace {
            let row = trace
                .nets
                .iter()
                .map(|&n| self.values[n.0 as usize])
                .collect();
            trace.rows.push((self.cycle, row));
        }
        Ok(())
    }

    /// Run `n` cycles.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Self::step`].
    pub fn run(&mut self, n: u64) -> Result<(), RtlError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Step until `predicate` returns true or `max_cycles` elapse; returns
    /// the number of cycles consumed, or `None` on timeout.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Self::step`].
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut predicate: impl FnMut(&Self) -> bool,
    ) -> Result<Option<u64>, RtlError> {
        for i in 0..max_cycles {
            if predicate(self) {
                return Ok(Some(i));
            }
            self.step()?;
        }
        Ok(if predicate(self) { Some(max_cycles) } else { None })
    }

    /// Direct read of a register cell's stored state (testing/debug hook).
    pub fn register_state(&self, cell: CellId) -> Option<u64> {
        self.reg_state.get(&cell).copied()
    }

    /// Direct read of a RAM word (testing/debug hook).
    pub fn ram_word(&self, cell: CellId, addr: usize) -> Option<u64> {
        self.ram_state.get(&cell).and_then(|m| m.get(addr)).copied()
    }

    /// Overwrite a RAM word directly (testbench backdoor load).
    pub fn load_ram_word(&mut self, cell: CellId, addr: usize, value: u64) {
        if let Some(mem) = self.ram_state.get_mut(&cell) {
            if let Some(slot) = mem.get_mut(addr) {
                *slot = value;
            }
        }
    }

    fn settle(&mut self) {
        // Sequential outputs first: registers continuously drive their state.
        for (cid, cell) in self.netlist.cells() {
            if let CellOp::Register { .. } = cell.op {
                self.values[cell.outputs[0].0 as usize] = self.reg_state[&cid];
            }
        }
        for &cid in &self.order {
            let cell = self.netlist.cell(cid);
            let get = |i: usize| self.values[cell.inputs[i].0 as usize];
            let out_net = cell.outputs[0];
            let ow = self.netlist.net(out_net).width;
            let iw = cell
                .inputs
                .first()
                .map(|&n| self.netlist.net(n).width)
                .unwrap_or(ow);
            let v = match &cell.op {
                CellOp::Add => get(0).wrapping_add(get(1)),
                CellOp::Sub => get(0).wrapping_sub(get(1)),
                CellOp::Mul => get(0).wrapping_mul(get(1)),
                // division by zero yields all-ones, matching the component model
                CellOp::Div => get(0).checked_div(get(1)).unwrap_or(u64::MAX),
                CellOp::Mod => {
                    let d = get(1);
                    if d == 0 {
                        get(0)
                    } else {
                        get(0) % d
                    }
                }
                CellOp::And => get(0) & get(1),
                CellOp::Or => get(0) | get(1),
                CellOp::Xor => get(0) ^ get(1),
                CellOp::Not => !get(0),
                CellOp::Shl => get(0) << get(1).min(63),
                CellOp::ShrL => get(0) >> get(1).min(63),
                CellOp::ShrA => {
                    (sign_extend(get(0), iw) >> get(1).min(63)) as u64
                }
                CellOp::Cmp(c) => {
                    let w = self.netlist.net(cell.inputs[0]).width;
                    c.apply(get(0), get(1), w) as u64
                }
                CellOp::Mux => {
                    if get(0) & 1 == 1 {
                        get(2)
                    } else {
                        get(1)
                    }
                }
                CellOp::Const { value } => *value,
                CellOp::Slice { lo, hi } => {
                    let width = hi - lo + 1;
                    mask(get(0) >> lo, width)
                }
                CellOp::ZeroExtend => get(0),
                CellOp::SignExtend => {
                    let w = self.netlist.net(cell.inputs[0]).width;
                    sign_extend(get(0), w) as u64
                }
                CellOp::Register { .. } | CellOp::RamTdp { .. } => continue,
            };
            self.values[out_net.0 as usize] = mask(v, ow);
        }
    }
}

/// Convenience helper implementing [`Comparison`] lookup for simulator users.
pub fn comparison_result(c: Comparison, a: u64, b: u64, width: u32) -> bool {
    c.apply(a, b, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{CellOp, Netlist};

    #[test]
    fn counter_counts() {
        // q' = q + 1
        let mut nl = Netlist::new("counter");
        let one = nl.add_net("one", 8);
        let q = nl.add_net("q", 8);
        let next = nl.add_net("next", 8);
        nl.add_cell("c1", CellOp::Const { value: 1 }, &[], &[one])
            .unwrap();
        nl.add_cell("add", CellOp::Add, &[q, one], &[next]).unwrap();
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: false,
                has_reset: true,
            },
            &[next],
            &[q],
        )
        .unwrap();
        nl.mark_output(q);
        let mut sim = Simulator::new(&nl).unwrap();
        assert_eq!(sim.peek("q").unwrap(), 0);
        sim.run(5).unwrap();
        assert_eq!(sim.peek("q").unwrap(), 5);
        sim.run(300).unwrap();
        assert_eq!(sim.peek("q").unwrap(), (305u64) & 0xFF);
        sim.reset();
        assert_eq!(sim.peek("q").unwrap(), 0);
    }

    #[test]
    fn enable_gates_register() {
        let mut nl = Netlist::new("en");
        let d = nl.add_input("d", 8);
        let en = nl.add_input("en", 1);
        let q = nl.add_net("q", 8);
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: true,
                has_reset: true,
            },
            &[d, en],
            &[q],
        )
        .unwrap();
        nl.mark_output(q);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.poke("d", 42).unwrap();
        sim.poke("en", 0).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("q").unwrap(), 0, "disabled register holds");
        sim.poke("en", 1).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("q").unwrap(), 42);
    }

    #[test]
    fn ram_read_write_ports() {
        let mut nl = Netlist::new("ram");
        let addr_a = nl.add_input("addr_a", 4);
        let wdata_a = nl.add_input("wdata_a", 16);
        let we_a = nl.add_input("we_a", 1);
        let addr_b = nl.add_input("addr_b", 4);
        let wdata_b = nl.add_input("wdata_b", 16);
        let we_b = nl.add_input("we_b", 1);
        let ra = nl.add_net("rdata_a", 16);
        let rb = nl.add_net("rdata_b", 16);
        nl.add_cell(
            "m",
            CellOp::RamTdp {
                depth: 16,
                init: vec![],
            },
            &[addr_a, wdata_a, we_a, addr_b, wdata_b, we_b],
            &[ra, rb],
        )
        .unwrap();
        nl.mark_output(ra);
        nl.mark_output(rb);
        let mut sim = Simulator::new(&nl).unwrap();
        // write 0xBEEF at 3 via port A
        sim.poke("addr_a", 3).unwrap();
        sim.poke("wdata_a", 0xBEEF).unwrap();
        sim.poke("we_a", 1).unwrap();
        sim.step().unwrap();
        sim.poke("we_a", 0).unwrap();
        // read back via port B
        sim.poke("addr_b", 3).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("rdata_b").unwrap(), 0xBEEF);
    }

    #[test]
    fn ram_read_first_semantics() {
        let mut nl = Netlist::new("ram");
        let addr_a = nl.add_input("addr_a", 4);
        let wdata_a = nl.add_input("wdata_a", 8);
        let we_a = nl.add_input("we_a", 1);
        let addr_b = nl.add_input("addr_b", 4);
        let wdata_b = nl.add_input("wdata_b", 8);
        let we_b = nl.add_input("we_b", 1);
        let ra = nl.add_net("rdata_a", 8);
        let rb = nl.add_net("rdata_b", 8);
        nl.add_cell(
            "m",
            CellOp::RamTdp {
                depth: 16,
                init: vec![7; 16],
            },
            &[addr_a, wdata_a, we_a, addr_b, wdata_b, we_b],
            &[ra, rb],
        )
        .unwrap();
        nl.mark_output(ra);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.poke("addr_a", 1).unwrap();
        sim.poke("wdata_a", 99).unwrap();
        sim.poke("we_a", 1).unwrap();
        sim.step().unwrap();
        // read-first: the read result is the OLD value
        assert_eq!(sim.peek("rdata_a").unwrap(), 7);
        sim.poke("we_a", 0).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("rdata_a").unwrap(), 99);
    }

    #[test]
    fn run_until_detects_condition() {
        let mut nl = Netlist::new("counter");
        let one = nl.add_net("one", 8);
        let q = nl.add_net("q", 8);
        let next = nl.add_net("next", 8);
        nl.add_cell("c1", CellOp::Const { value: 1 }, &[], &[one])
            .unwrap();
        nl.add_cell("add", CellOp::Add, &[q, one], &[next]).unwrap();
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: false,
                has_reset: true,
            },
            &[next],
            &[q],
        )
        .unwrap();
        nl.mark_output(q);
        let mut sim = Simulator::new(&nl).unwrap();
        let cycles = sim
            .run_until(100, |s| s.peek("q").unwrap() == 10)
            .unwrap();
        assert_eq!(cycles, Some(10));
        let timeout = sim.run_until(5, |s| s.peek("q").unwrap() == 200).unwrap();
        assert_eq!(timeout, None);
    }

    #[test]
    fn trace_records_rows() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 8);
        let y = nl.add_net("y", 8);
        nl.add_cell("n", CellOp::Not, &[a], &[y]).unwrap();
        nl.mark_output(y);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.enable_trace(&[y]);
        sim.poke("a", 0x0F).unwrap();
        sim.step().unwrap();
        sim.step().unwrap();
        let trace = sim.take_trace().unwrap();
        assert_eq!(trace.rows.len(), 2);
        assert_eq!(trace.rows[0].1[0], 0xF0);
        let text = trace.render(&nl);
        assert!(text.contains("$var wire 8"));
    }

    #[test]
    fn slice_and_extend() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 16);
        let hi = nl.add_net("hi", 8);
        let sx = nl.add_net("sx", 16);
        nl.add_cell("s", CellOp::Slice { lo: 8, hi: 15 }, &[a], &[hi])
            .unwrap();
        nl.add_cell("x", CellOp::SignExtend, &[hi], &[sx]).unwrap();
        nl.mark_output(sx);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.poke("a", 0x8034).unwrap();
        assert_eq!(sim.peek("hi").unwrap(), 0x80);
        assert_eq!(sim.peek("sx").unwrap(), 0xFF80);
    }
}
