//! Cycle-accurate two-phase netlist simulator.
//!
//! Each [`Simulator::step`] performs one clock cycle:
//!
//! 1. **Settle** — propagate values through the combinational cells in
//!    topological order.
//! 2. **Clock edge** — every sequential cell (register, RAM) samples its
//!    inputs simultaneously and updates its state.
//!
//! This is the discipline a synchronous single-clock design obeys on real
//! hardware and is sufficient to validate HLS-generated FSM + datapath
//! structures cycle-by-cycle against a software reference.

use crate::component::Comparison;
use crate::netlist::{CellId, CellOp, Netlist, NetId};
use crate::{mask, sign_extend, RtlError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Groups smaller than this stay scalar: packing pays a gather/scatter
/// tax per word, which only amortizes across enough lanes.
const MIN_PACK_LANES: usize = 8;

/// Target op count per partition of the rank-partitioned settle plan.
const PART_TARGET: usize = 256;

/// Default minimum scheduled op count before a settle pass takes the
/// partitioned path. Deliberately jobs-independent: whether a pass is
/// partitioned must never depend on the worker count, or counters and
/// traces would diverge between `--jobs 1` and `--jobs 4`.
const PAR_SETTLE_GRAIN: usize = 4096;

/// Cycle-accurate simulator over a validated [`Netlist`].
///
/// State is kept in dense vectors indexed by cell id (`reg_state`,
/// `ram_state` via `seq_slot`) rather than hash maps, and the settle loop
/// runs over a precompiled program of [`SettleOp`]s with all net widths
/// and indices resolved up front — the per-cycle hot path performs no
/// hashing, no allocation, and no netlist traversal.
///
/// Settling is **activity-gated (event-driven)**: per-net fanout lists are
/// precomputed into the compiled program at construction, a dirty bitmap
/// is seeded from the sequential outputs (and pokes) whose value actually
/// changed, and the bitmap is scanned in topological-rank order across a
/// `[lo, hi]` watermark window so each op is evaluated at most once per
/// pass and quiescent logic is skipped entirely (fanout edges only point
/// to higher ranks, so the scan never revisits an index). The first
/// settle after construction (and every settle after
/// [`Self::reset`]) falls back to a full-program evaluation, and
/// [`Self::set_event_driven`] / the `HERMES_EVENT_SETTLE` environment
/// variable (`off`/`0` disables) force the full path for A/B comparisons.
/// Both paths produce bit-identical `values`, register state, and traces.
///
/// Two further engines layer on top of the event-driven scan (E16):
///
/// * **Word-parallel lanes** — at build time, independent 1-bit ops of
///   identical boolean form at the same topological rank are bit-packed
///   up to 64 to a `u64` word and evaluated as one bitwise instruction
///   (classic compiled-code simulation). The scalar `values` array stays
///   authoritative — lanes scatter on change — so peeks, traces,
///   registers, and scalar consumers are untouched. `HERMES_PACKED_SETTLE`
///   (strict `on`/`off`) or [`Self::new_with_packing`] select the engine.
/// * **Rank-partitioned parallel settle** — the program is sorted
///   rank-major and cut into contiguous partitions per rank; passes big
///   enough to amortize coordination fan the partitions of each rank out
///   through `hermes-par` workers separated by a spin barrier per rank.
///   Same-rank ops never depend on each other, marks only travel to
///   higher ranks, and the plan plus the engagement decision are
///   jobs-independent, so any worker count is bit-identical to serial.
#[derive(Debug)]
pub struct Simulator<'n> {
    netlist: &'n Netlist,
    /// Settled net values. Relaxed atomics so partitioned settle workers
    /// can share the array without locks (same-rank ops write disjoint
    /// nets and read only lower ranks); plain load/store on the serial
    /// paths, compiled to ordinary moves.
    values: Vec<AtomicU64>,
    /// Dense register state, one slot per `Register` cell (see `seq_slot`).
    reg_state: Vec<u64>,
    /// Dense RAM state, one memory per `RamTdp` cell (see `seq_slot`).
    ram_state: Vec<Vec<u64>>,
    /// Cell id → slot in `reg_state`/`ram_state`; `u32::MAX` for
    /// combinational cells.
    seq_slot: Vec<u32>,
    /// Precomputed register descriptors, in cell order.
    regs: Vec<RegInfo>,
    /// Precomputed RAM descriptors, in cell order.
    rams: Vec<RamInfo>,
    /// Precompiled settle program in rank-major topological order (stable
    /// by compile order within a rank). Packed words sit at the rank of
    /// their lanes.
    ops: Vec<SettleOp>,
    /// Op-index boundary of each topological rank: rank `r` spans
    /// `ops[rank_start[r]..rank_start[r + 1]]`.
    rank_start: Vec<u32>,
    /// Partition plan: contiguous `(start, end)` op ranges, rank-major.
    /// Built once at compile time, independent of the worker count.
    parts: Vec<(u32, u32)>,
    /// Partition-index range `(first, end)` of each rank in `parts`.
    rank_parts: Vec<(u32, u32)>,
    /// Packed-word table; `packed_nets` holds each word's lane input net
    /// ids (slot-major) followed by its lane output net ids, and
    /// `packed_vals` mirrors the last computed output word so aligned
    /// consumers read one word instead of gathering 64 bits.
    packed: Vec<PackedWord>,
    packed_nets: Vec<u32>,
    packed_vals: Vec<AtomicU64>,
    /// Scalar-equivalent program weight: a packed word counts one per
    /// lane, so work metrics stay comparable across packing modes.
    program_weight: u64,
    /// Total lanes across all packed words (occupancy numerator).
    packed_lanes: u32,
    /// Whether the word-parallel engine was applied at compile time.
    packed_enabled: bool,
    /// CSR fanout index: ops reading net `n` are
    /// `fanout_ops[fanout_start[n]..fanout_start[n + 1]]` (ascending).
    fanout_start: Vec<u32>,
    fanout_ops: Vec<u32>,
    /// Per-op "queued this pass" bitmap, one bit per op in 64-op words
    /// (`dirty[op / 64]` bit `op % 64`): the event scan skips 64 clean
    /// ops per load instead of one. Atomic so partitioned workers can
    /// mark fanout directly; marking is idempotent, and partitions
    /// sharing a boundary word stay correct through `fetch_or`/
    /// `fetch_and` on disjoint bits.
    dirty: Vec<AtomicU64>,
    /// Watermark window of queued op indices: the next event-driven pass
    /// scans `dirty[dirty_lo..=dirty_hi]`. Empty when `lo > hi`
    /// (`u32::MAX`/`0` sentinels).
    dirty_lo: u32,
    dirty_hi: u32,
    /// Number of currently queued ops (partition-engagement signal).
    dirty_count: u32,
    /// Next settle must evaluate the full program (construction, reset).
    needs_full: bool,
    /// Event-driven settling enabled (see `HERMES_EVENT_SETTLE`).
    event_driven: bool,
    /// Worker count for engaged partitioned passes. A pure throughput
    /// knob: results, counters, and traces are identical at any value.
    settle_jobs: usize,
    /// Minimum scheduled op count before a pass engages the partitioned
    /// path (see [`PAR_SETTLE_GRAIN`]; tests lower it via
    /// [`Self::set_partition_grain`] to exercise the path on small nets).
    par_grain: usize,
    /// Reusable per-step buffer of next register values.
    next_regs: Vec<u64>,
    cycle: u64,
    /// Total settle passes executed (steps, pokes, resets).
    settle_passes: u64,
    /// Total settle ops *evaluated* across all passes (lane-weighted).
    settle_ops: u64,
    /// Lane-weighted ops evaluated by partitioned passes.
    settle_parallel_ops: u64,
    /// Settle passes that took the partitioned path.
    settle_parallel_passes: u64,
    trace: Option<Trace>,
}

impl Clone for Simulator<'_> {
    fn clone(&self) -> Self {
        let copy_u64 = |v: &[AtomicU64]| -> Vec<AtomicU64> {
            v.iter().map(|x| AtomicU64::new(x.load(Ordering::Relaxed))).collect()
        };
        Simulator {
            netlist: self.netlist,
            values: copy_u64(&self.values),
            reg_state: self.reg_state.clone(),
            ram_state: self.ram_state.clone(),
            seq_slot: self.seq_slot.clone(),
            regs: self.regs.clone(),
            rams: self.rams.clone(),
            ops: self.ops.clone(),
            rank_start: self.rank_start.clone(),
            parts: self.parts.clone(),
            rank_parts: self.rank_parts.clone(),
            packed: self.packed.clone(),
            packed_nets: self.packed_nets.clone(),
            packed_vals: copy_u64(&self.packed_vals),
            program_weight: self.program_weight,
            packed_lanes: self.packed_lanes,
            packed_enabled: self.packed_enabled,
            fanout_start: self.fanout_start.clone(),
            fanout_ops: self.fanout_ops.clone(),
            dirty: copy_u64(&self.dirty),
            dirty_lo: self.dirty_lo,
            dirty_hi: self.dirty_hi,
            dirty_count: self.dirty_count,
            needs_full: self.needs_full,
            event_driven: self.event_driven,
            settle_jobs: self.settle_jobs,
            par_grain: self.par_grain,
            next_regs: self.next_regs.clone(),
            cycle: self.cycle,
            settle_passes: self.settle_passes,
            settle_ops: self.settle_ops,
            settle_parallel_ops: self.settle_parallel_ops,
            settle_parallel_passes: self.settle_parallel_passes,
            trace: self.trace.clone(),
        }
    }
}

/// Precomputed per-register data for the clock-edge phase.
#[derive(Debug, Clone, Copy)]
struct RegInfo {
    /// Slot in `reg_state`.
    slot: u32,
    /// Net index of the data input.
    d: u32,
    /// Net index of the enable input, or `u32::MAX` when always enabled.
    en: u32,
    /// Net index of the output.
    q: u32,
    /// Output width mask.
    mask: u64,
    /// Whether [`Simulator::reset`] clears this register.
    has_reset: bool,
}

/// Precomputed per-RAM data for the clock-edge phase.
#[derive(Debug, Clone, Copy)]
struct RamInfo {
    /// Slot in `ram_state`.
    slot: u32,
    /// Net indices: `[addr_a, wdata_a, we_a, addr_b, wdata_b, we_b]`.
    inputs: [u32; 6],
    /// Net indices of the read-data outputs.
    ra: u32,
    rb: u32,
    /// Word count.
    depth: u32,
    /// Data width mask.
    mask: u64,
}

/// One precompiled combinational evaluation: operation tag plus resolved
/// net indices and widths, so the settle loop touches nothing else.
#[derive(Debug, Clone, Copy)]
struct SettleOp {
    kind: SettleKind,
    /// Input net indices (unused slots are 0).
    a: u32,
    b: u32,
    c: u32,
    /// Output net index.
    out: u32,
    /// Output width mask.
    mask: u64,
    /// Operation payload: constant value, slice low bit, or input width.
    aux: u64,
}

/// Operation tag of a [`SettleOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SettleKind {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    Xor,
    Not,
    Shl,
    ShrL,
    /// `aux` holds the input width for sign extension.
    ShrA,
    /// `aux` holds the comparison input width.
    Cmp(Comparison),
    Mux,
    /// `aux` holds the constant value.
    Const,
    /// `aux` holds the low bit index; `mask` is already the slice mask.
    Slice,
    ZeroExtend,
    /// `aux` holds the input width.
    SignExtend,
    /// A word-parallel evaluation of up to 64 packed 1-bit lanes: `a`
    /// holds the [`PackedWord`] index, `aux` the lane count. Fanout edges
    /// come from the lane input nets, not the `a`/`b`/`c` slots.
    Packed,
}

impl SettleOp {
    /// How many of the `a`/`b`/`c` slots are live inputs (unused slots
    /// hold 0 and must not contribute fanout edges).
    fn input_count(&self) -> usize {
        match self.kind {
            SettleKind::Const | SettleKind::Packed => 0,
            SettleKind::Not
            | SettleKind::Slice
            | SettleKind::ZeroExtend
            | SettleKind::SignExtend => 1,
            SettleKind::Mux => 3,
            _ => 2,
        }
    }
}

/// Boolean form of a [`PackedWord`]: every lane evaluates this op. Only
/// forms whose 1-bit semantics equal a word-wide bitwise expression are
/// packable; comparisons lower through [`Comparison::bit_apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PackKind {
    And,
    Or,
    Xor,
    Not,
    Mux,
    Cmp(Comparison),
}

impl PackKind {
    /// Live input slots per lane (sel/else/then for `Mux`).
    fn slots(self) -> usize {
        match self {
            PackKind::Not => 1,
            PackKind::Mux => 3,
            _ => 2,
        }
    }
}

/// One word of up to 64 bit-packed lanes, all evaluating the same
/// [`PackKind`] at the same topological rank. Lane `l` of input slot `s`
/// reads net `packed_nets[ins + s*lanes + l]`; lane `l` writes net
/// `packed_nets[outs + l]`. When a slot's lanes are exactly the output
/// lanes of one earlier word at matching bit positions (`src[s]`), the
/// evaluator reads that word's cached output directly — the aligned fast
/// path that makes a replicated design cost one ALU op per 64 instances.
#[derive(Debug, Clone, Copy)]
struct PackedWord {
    kind: PackKind,
    /// Lane count (1..=64).
    lanes: u32,
    /// Base of the slot-major lane input net ids in `packed_nets`.
    ins: u32,
    /// Base of the lane output net ids in `packed_nets`.
    outs: u32,
    /// Per-slot aligned source word index, or `u32::MAX` to gather.
    src: [u32; 3],
    /// Low `lanes` bits set.
    lane_mask: u64,
}

/// Output of [`Simulator::compile_program`]: the rank-major settle
/// program plus its packing tables and partition plan.
struct CompiledProgram {
    ops: Vec<SettleOp>,
    rank_start: Vec<u32>,
    parts: Vec<(u32, u32)>,
    rank_parts: Vec<(u32, u32)>,
    packed: Vec<PackedWord>,
    packed_nets: Vec<u32>,
    program_weight: u64,
    packed_lanes: u32,
}

/// A recorded value-change trace (VCD-lite) of selected nets.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    nets: Vec<NetId>,
    /// One sample row `(cycle, values)` per simulated cycle.
    pub rows: Vec<(u64, Vec<u64>)>,
}

impl Trace {
    /// Render the trace as a VCD-style text dump.
    pub fn render(&self, netlist: &Netlist) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1ns $end\n");
        for &nid in &self.nets {
            let n = netlist.net(nid);
            out.push_str(&format!("$var wire {} {} {} $end\n", n.width, nid, n.name));
        }
        out.push_str("$enddefinitions $end\n");
        for (cycle, vals) in &self.rows {
            out.push_str(&format!("#{cycle}\n"));
            for (i, &nid) in self.nets.iter().enumerate() {
                out.push_str(&format!("b{:b} {}\n", vals[i], nid));
            }
        }
        out
    }
}

impl<'n> Simulator<'n> {
    /// Build a simulator after validating the netlist.
    ///
    /// All registers start at 0 and RAMs at their declared init contents.
    /// The word-parallel engine is selected by `HERMES_PACKED_SETTLE`
    /// (default on); use [`Self::new_with_packing`] to pin it explicitly.
    ///
    /// # Errors
    ///
    /// Propagates any structural error from [`Netlist::validate`], and
    /// [`RtlError::BadEnvKnob`] if `HERMES_PACKED_SETTLE` is set to
    /// something other than `on`/`1`/`true`/`off`/`0`/`false`.
    pub fn new(netlist: &'n Netlist) -> Result<Self, RtlError> {
        Self::new_with_packing(netlist, packed_settle_env()?)
    }

    /// Build a simulator with the word-parallel engine pinned on or off,
    /// ignoring the environment — the A/B hook for differential tests and
    /// experiments whose output must not depend on ambient knobs.
    ///
    /// # Errors
    ///
    /// Propagates any structural error from [`Netlist::validate`].
    pub fn new_with_packing(netlist: &'n Netlist, packed: bool) -> Result<Self, RtlError> {
        netlist.validate()?;
        let order = netlist.combinational_order()?;
        let mut reg_state = Vec::new();
        let mut ram_state: Vec<Vec<u64>> = Vec::new();
        let mut seq_slot = vec![u32::MAX; netlist.cell_count()];
        let mut regs = Vec::new();
        let mut rams = Vec::new();
        for (cid, cell) in netlist.cells() {
            match &cell.op {
                CellOp::Register {
                    has_enable,
                    has_reset,
                } => {
                    let slot = reg_state.len() as u32;
                    seq_slot[cid.0 as usize] = slot;
                    reg_state.push(0);
                    regs.push(RegInfo {
                        slot,
                        d: cell.inputs[0].0,
                        en: if *has_enable {
                            cell.inputs[1].0
                        } else {
                            u32::MAX
                        },
                        q: cell.outputs[0].0,
                        mask: mask(u64::MAX, netlist.net(cell.outputs[0]).width),
                        has_reset: *has_reset,
                    });
                }
                CellOp::RamTdp { depth, init } => {
                    let slot = ram_state.len() as u32;
                    seq_slot[cid.0 as usize] = slot;
                    let mut mem = init.clone();
                    mem.resize(*depth as usize, 0);
                    ram_state.push(mem);
                    rams.push(RamInfo {
                        slot,
                        inputs: [
                            cell.inputs[0].0,
                            cell.inputs[1].0,
                            cell.inputs[2].0,
                            cell.inputs[3].0,
                            cell.inputs[4].0,
                            cell.inputs[5].0,
                        ],
                        ra: cell.outputs[0].0,
                        rb: cell.outputs[1].0,
                        depth: (*depth).max(1),
                        mask: mask(u64::MAX, netlist.net(cell.outputs[0]).width),
                    });
                }
                _ => {}
            }
        }
        let scalar_ops = Self::compile_settle_ops(netlist, &order);
        let prog = Self::compile_program(netlist, scalar_ops, packed);
        let (fanout_start, fanout_ops) =
            Self::compile_fanout(netlist.net_count(), &prog.ops, &prog.packed, &prog.packed_nets);
        let next_regs = vec![0; regs.len()];
        let dirty = (0..prog.ops.len().div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        let packed_vals = (0..prog.packed.len()).map(|_| AtomicU64::new(0)).collect();
        let mut sim = Simulator {
            netlist,
            values: (0..netlist.net_count()).map(|_| AtomicU64::new(0)).collect(),
            reg_state,
            ram_state,
            seq_slot,
            regs,
            rams,
            ops: prog.ops,
            rank_start: prog.rank_start,
            parts: prog.parts,
            rank_parts: prog.rank_parts,
            packed: prog.packed,
            packed_nets: prog.packed_nets,
            packed_vals,
            program_weight: prog.program_weight,
            packed_lanes: prog.packed_lanes,
            packed_enabled: packed,
            fanout_start,
            fanout_ops,
            dirty,
            dirty_lo: u32::MAX,
            dirty_hi: 0,
            dirty_count: 0,
            needs_full: true,
            event_driven: env_event_driven(),
            settle_jobs: hermes_par::jobs(),
            par_grain: PAR_SETTLE_GRAIN,
            next_regs,
            cycle: 0,
            settle_passes: 0,
            settle_ops: 0,
            settle_parallel_ops: 0,
            settle_parallel_passes: 0,
            trace: None,
        };
        sim.settle();
        Ok(sim)
    }

    /// Build the CSR net→op fanout index over the compiled program: for
    /// every live input slot of every op, one edge from the input net to
    /// the op. A packed op contributes one edge per lane input net.
    fn compile_fanout(
        net_count: usize,
        ops: &[SettleOp],
        packed: &[PackedWord],
        packed_nets: &[u32],
    ) -> (Vec<u32>, Vec<u32>) {
        let op_inputs = |op: &SettleOp| -> Vec<u32> {
            if op.kind == SettleKind::Packed {
                let pw = &packed[op.a as usize];
                let n = pw.kind.slots() * pw.lanes as usize;
                packed_nets[pw.ins as usize..pw.ins as usize + n].to_vec()
            } else {
                [op.a, op.b, op.c][..op.input_count()].to_vec()
            }
        };
        let mut counts = vec![0u32; net_count + 1];
        for op in ops {
            for net in op_inputs(op) {
                counts[net as usize + 1] += 1;
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let fanout_start = counts.clone();
        let mut cursor = counts;
        let mut fanout_ops = vec![0u32; *fanout_start.last().unwrap_or(&0) as usize];
        for (idx, op) in ops.iter().enumerate() {
            for net in op_inputs(op) {
                fanout_ops[cursor[net as usize] as usize] = idx as u32;
                cursor[net as usize] += 1;
            }
        }
        (fanout_start, fanout_ops)
    }

    /// Whether `op` may join a packed word, and under which group tag.
    /// Bitwise forms commute with the 1-bit output mask, so only the
    /// output must be 1 bit wide; comparisons additionally need 1-bit
    /// inputs (`aux == 1`) for [`Comparison::bit_apply`] to be exact.
    fn packable_tag(op: &SettleOp) -> Option<u8> {
        if op.mask != 1 {
            return None;
        }
        match op.kind {
            SettleKind::And => Some(0),
            SettleKind::Or => Some(1),
            SettleKind::Xor => Some(2),
            SettleKind::Not => Some(3),
            SettleKind::Mux => Some(4),
            SettleKind::Cmp(c) if op.aux == 1 => Some(match c {
                Comparison::Eq => 5,
                Comparison::Ne => 6,
                Comparison::LtU => 7,
                Comparison::LtS => 8,
                Comparison::GeU => 9,
                Comparison::GeS => 10,
            }),
            _ => None,
        }
    }

    /// Lower the topologically ordered scalar program into the final
    /// settle program: compute per-op ranks, bit-pack same-form 1-bit ops
    /// at equal rank into 64-lane words (when `pack`), re-sort rank-major,
    /// and cut the rank-major program into the partition plan.
    fn compile_program(netlist: &Netlist, ops: Vec<SettleOp>, pack: bool) -> CompiledProgram {
        let program_weight = ops.len() as u64;
        // Rank of every op: 1 + max rank of its producers. `ops` is in
        // topological order, so producers always resolve first.
        let mut net_rank = vec![0u32; netlist.net_count()];
        let mut rank = vec![0u32; ops.len()];
        for (i, op) in ops.iter().enumerate() {
            let mut r = 0;
            for &net in &[op.a, op.b, op.c][..op.input_count()] {
                r = r.max(net_rank[net as usize]);
            }
            rank[i] = r;
            net_rank[op.out as usize] = r + 1;
        }

        // Group packable ops by (rank, boolean form) and carve 64-lane
        // words. BTreeMap iteration ascends by rank, so a word's input
        // words are always created first (inputs live at lower ranks) and
        // `lane_of` can resolve aligned slots.
        let mut packed: Vec<PackedWord> = Vec::new();
        let mut packed_nets: Vec<u32> = Vec::new();
        let mut packed_lanes = 0u32;
        let mut in_word = vec![false; ops.len()];
        // (rank, order key, op) triples to sort rank-major
        let mut emitted: Vec<(u32, u32, SettleOp)> = Vec::new();
        if pack {
            let mut groups: BTreeMap<(u32, u8), Vec<u32>> = BTreeMap::new();
            for (i, op) in ops.iter().enumerate() {
                if let Some(tag) = Self::packable_tag(op) {
                    groups.entry((rank[i], tag)).or_default().push(i as u32);
                }
            }
            // net id -> (word index << 6) | lane bit, for output lanes
            let mut lane_of = vec![u64::MAX; netlist.net_count()];
            for ((r, _tag), members) in &groups {
                if members.len() < MIN_PACK_LANES {
                    continue;
                }
                for chunk in members.chunks(64) {
                    let lanes = chunk.len();
                    let kind = match ops[chunk[0] as usize].kind {
                        SettleKind::And => PackKind::And,
                        SettleKind::Or => PackKind::Or,
                        SettleKind::Xor => PackKind::Xor,
                        SettleKind::Not => PackKind::Not,
                        SettleKind::Mux => PackKind::Mux,
                        SettleKind::Cmp(c) => PackKind::Cmp(c),
                        _ => unreachable!("packable_tag admits only boolean forms"),
                    };
                    let slots = kind.slots();
                    let ins = packed_nets.len() as u32;
                    let mut src = [u32::MAX; 3];
                    for (s, slot_src) in src.iter_mut().enumerate().take(slots) {
                        let slot_net = |oi: u32| {
                            let op = &ops[oi as usize];
                            [op.a, op.b, op.c][s]
                        };
                        for &oi in chunk {
                            packed_nets.push(slot_net(oi));
                        }
                        // aligned iff every lane reads bit `l` of one word
                        let mut aligned = None;
                        for (l, &oi) in chunk.iter().enumerate() {
                            let lo = lane_of[slot_net(oi) as usize];
                            if lo == u64::MAX || (lo & 63) != l as u64 {
                                aligned = None;
                                break;
                            }
                            let word = (lo >> 6) as u32;
                            match aligned {
                                None if l == 0 => aligned = Some(word),
                                Some(w) if w == word => {}
                                _ => {
                                    aligned = None;
                                    break;
                                }
                            }
                        }
                        *slot_src = aligned.unwrap_or(u32::MAX);
                    }
                    let outs = packed_nets.len() as u32;
                    let widx = packed.len() as u32;
                    for (l, &oi) in chunk.iter().enumerate() {
                        let out = ops[oi as usize].out;
                        packed_nets.push(out);
                        lane_of[out as usize] = (u64::from(widx) << 6) | l as u64;
                        in_word[oi as usize] = true;
                    }
                    let lane_mask = mask(u64::MAX, lanes as u32);
                    packed.push(PackedWord {
                        kind,
                        lanes: lanes as u32,
                        ins,
                        outs,
                        src,
                        lane_mask,
                    });
                    packed_lanes += lanes as u32;
                    emitted.push((
                        *r,
                        chunk[0],
                        SettleOp {
                            kind: SettleKind::Packed,
                            a: widx,
                            b: 0,
                            c: 0,
                            out: ops[chunk[0] as usize].out,
                            mask: lane_mask,
                            aux: lanes as u64,
                        },
                    ));
                }
            }
        }
        for (i, op) in ops.into_iter().enumerate() {
            if !in_word[i] {
                emitted.push((rank[i], i as u32, op));
            }
        }
        emitted.sort_by_key(|&(r, key, _)| (r, key));

        // Rank boundaries over the sorted program, then fixed-size
        // contiguous partitions within each rank.
        let nranks = emitted.last().map_or(0, |&(r, _, _)| r as usize + 1);
        let mut rank_start = vec![0u32; nranks + 1];
        for &(r, _, _) in &emitted {
            rank_start[r as usize + 1] += 1;
        }
        for i in 1..rank_start.len() {
            rank_start[i] += rank_start[i - 1];
        }
        let mut parts: Vec<(u32, u32)> = Vec::new();
        let mut rank_parts: Vec<(u32, u32)> = Vec::with_capacity(nranks);
        for r in 0..nranks {
            let (s, e) = (rank_start[r] as usize, rank_start[r + 1] as usize);
            let first = parts.len() as u32;
            let mut p = s;
            while p < e {
                let q = (p + PART_TARGET).min(e);
                parts.push((p as u32, q as u32));
                p = q;
            }
            rank_parts.push((first, parts.len() as u32));
        }

        CompiledProgram {
            ops: emitted.into_iter().map(|(_, _, op)| op).collect(),
            rank_start,
            parts,
            rank_parts,
            packed,
            packed_nets,
            program_weight,
            packed_lanes,
        }
    }

    /// Lower the topologically ordered combinational cells into the compact
    /// settle program (resolved net indices, widths, and payloads).
    fn compile_settle_ops(netlist: &Netlist, order: &[CellId]) -> Vec<SettleOp> {
        let mut ops = Vec::with_capacity(order.len());
        for &cid in order {
            let cell = netlist.cell(cid);
            let input = |i: usize| cell.inputs.get(i).map_or(0, |n| n.0);
            let out_net = cell.outputs[0];
            let ow = netlist.net(out_net).width;
            let iw = cell
                .inputs
                .first()
                .map(|&n| netlist.net(n).width)
                .unwrap_or(ow);
            let (kind, m, aux) = match &cell.op {
                CellOp::Add => (SettleKind::Add, mask(u64::MAX, ow), 0),
                CellOp::Sub => (SettleKind::Sub, mask(u64::MAX, ow), 0),
                CellOp::Mul => (SettleKind::Mul, mask(u64::MAX, ow), 0),
                CellOp::Div => (SettleKind::Div, mask(u64::MAX, ow), 0),
                CellOp::Mod => (SettleKind::Mod, mask(u64::MAX, ow), 0),
                CellOp::And => (SettleKind::And, mask(u64::MAX, ow), 0),
                CellOp::Or => (SettleKind::Or, mask(u64::MAX, ow), 0),
                CellOp::Xor => (SettleKind::Xor, mask(u64::MAX, ow), 0),
                CellOp::Not => (SettleKind::Not, mask(u64::MAX, ow), 0),
                CellOp::Shl => (SettleKind::Shl, mask(u64::MAX, ow), 0),
                CellOp::ShrL => (SettleKind::ShrL, mask(u64::MAX, ow), 0),
                CellOp::ShrA => (SettleKind::ShrA, mask(u64::MAX, ow), u64::from(iw)),
                CellOp::Cmp(c) => (
                    SettleKind::Cmp(*c),
                    mask(u64::MAX, ow),
                    u64::from(netlist.net(cell.inputs[0]).width),
                ),
                CellOp::Mux => (SettleKind::Mux, mask(u64::MAX, ow), 0),
                CellOp::Const { value } => (SettleKind::Const, mask(u64::MAX, ow), *value),
                CellOp::Slice { lo, hi } => (
                    SettleKind::Slice,
                    // slice width and output net width both bound the result
                    mask(mask(u64::MAX, hi - lo + 1), ow),
                    u64::from(*lo),
                ),
                CellOp::ZeroExtend => (SettleKind::ZeroExtend, mask(u64::MAX, ow), 0),
                CellOp::SignExtend => (
                    SettleKind::SignExtend,
                    mask(u64::MAX, ow),
                    u64::from(netlist.net(cell.inputs[0]).width),
                ),
                CellOp::Register { .. } | CellOp::RamTdp { .. } => continue,
            };
            ops.push(SettleOp {
                kind,
                a: input(0),
                b: input(1),
                c: input(2),
                out: out_net.0,
                mask: m,
                aux,
            });
        }
        ops
    }

    /// Enable tracing of the given nets; samples are appended on every step.
    pub fn enable_trace(&mut self, nets: &[NetId]) {
        self.trace = Some(Trace {
            nets: nets.to_vec(),
            rows: Vec::new(),
        });
    }

    /// Take the recorded trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Current cycle count (number of completed [`Self::step`] calls).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total settle passes executed so far (steps, pokes, resets).
    pub fn settle_passes(&self) -> u64 {
        self.settle_passes
    }

    /// Total settle ops *evaluated* across all passes (the simulator's
    /// true work metric). With event-driven settling this is usually far
    /// below the full-evaluation baseline
    /// [`settle_passes`](Self::settle_passes) ×
    /// [`settle_program_len`](Self::settle_program_len); the quotient is
    /// the workload's activity factor.
    pub fn settle_ops(&self) -> u64 {
        self.settle_ops
    }

    /// Length of the compiled combinational settle program in *scalar*
    /// ops (the per-pass op count a full, non-event-driven evaluation
    /// pays). Bit-packing folds lanes into shared words but each lane
    /// still counts as one op here, so this figure — and every
    /// `settle_ops` identity built on it — is packing-invariant.
    pub fn settle_program_len(&self) -> usize {
        self.program_weight as usize
    }

    /// Number of program *words* actually walked per full pass: scalar
    /// ops plus one entry per packed 64-lane word.
    pub fn settle_words(&self) -> usize {
        self.ops.len()
    }

    /// Number of packed 64-lane words in the compiled program.
    pub fn packed_words(&self) -> usize {
        self.packed.len()
    }

    /// Total 1-bit lanes folded into packed words.
    pub fn packed_lanes(&self) -> usize {
        self.packed_lanes as usize
    }

    /// Mean packed-word lane occupancy in permille (0 when nothing
    /// packed): 1000 means every packed word carries a full 64 lanes.
    pub fn lane_occupancy_permille(&self) -> u64 {
        if self.packed.is_empty() {
            0
        } else {
            self.packed_lanes as u64 * 1000 / (self.packed.len() as u64 * 64)
        }
    }

    /// Number of partitions in the rank-partitioned settle plan.
    pub fn settle_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Number of topological ranks in the compiled program.
    pub fn settle_ranks(&self) -> usize {
        self.rank_parts.len()
    }

    /// Lane-weighted ops evaluated by partitioned (parallel-capable)
    /// passes. A subset of [`settle_ops`](Self::settle_ops), and — like
    /// every counter — identical at any worker count.
    pub fn settle_parallel_ops(&self) -> u64 {
        self.settle_parallel_ops
    }

    /// Settle passes that engaged the partitioned path.
    pub fn settle_parallel_passes(&self) -> u64 {
        self.settle_parallel_passes
    }

    /// Whether word-parallel bit-packing was applied at compile time.
    pub fn packed(&self) -> bool {
        self.packed_enabled
    }

    /// Worker count used by partitioned settle passes.
    pub fn settle_jobs(&self) -> usize {
        self.settle_jobs
    }

    /// Set the worker count for partitioned settle passes. A pure
    /// throughput knob: values, traces, and counters are identical for
    /// any setting.
    pub fn set_settle_jobs(&mut self, jobs: usize) {
        self.settle_jobs = jobs.max(1);
    }

    /// Lower the scheduled-op threshold at which a pass engages the
    /// partitioned path (default tuned for real workloads; tests drop it
    /// to 1 to force engagement on small netlists).
    pub fn set_partition_grain(&mut self, min_ops: usize) {
        self.par_grain = min_ops.max(1);
    }

    /// Whether event-driven (activity-gated) settling is enabled.
    pub fn event_driven(&self) -> bool {
        self.event_driven
    }

    /// Force full-program settling (`false`) or activity-gated settling
    /// (`true`). Both produce bit-identical values and traces; the full
    /// path is kept for A/B measurement and differential testing.
    pub fn set_event_driven(&mut self, on: bool) {
        self.event_driven = on;
    }

    /// Export the simulator's work counters into a flight recorder under
    /// subsystem `sub` (RTL clock domain). `settle_ops` counts evaluated
    /// ops; `settle_ops_full` is the full-evaluation baseline, so the
    /// activity factor is their quotient.
    pub fn obs_export(&self, obs: &hermes_obs::Recorder, sub: &str) {
        obs.counter_add(sub, "cycles", self.cycle);
        obs.counter_add(sub, "settle_passes", self.settle_passes);
        obs.counter_add(sub, "settle_ops", self.settle_ops);
        obs.counter_add(sub, "settle_ops_full", self.settle_passes * self.program_weight);
        obs.counter_add(sub, "settle_parallel_ops", self.settle_parallel_ops);
        obs.counter_add(sub, "settle_parallel_passes", self.settle_parallel_passes);
        obs.gauge_set(sub, "settle_program_len", self.program_weight as i64);
        obs.gauge_set(sub, "settle_partitions", self.parts.len() as i64);
        obs.gauge_set(sub, "settle_packed_words", self.packed.len() as i64);
        obs.gauge_set(sub, "settle_packed_lanes", self.packed_lanes as i64);
        obs.gauge_set(sub, "settle_lane_occupancy", self.lane_occupancy_permille() as i64);
        obs.gauge_set(sub, "nets", self.netlist.net_count() as i64);
        obs.instant(
            sub,
            "sim-state",
            hermes_obs::ClockDomain::Rtl,
            self.cycle,
            &[("settle_passes", self.settle_passes.to_string())],
        );
    }

    /// Drive a primary input by name.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownName`] if no such input exists.
    pub fn poke(&mut self, name: &str, value: u64) -> Result<(), RtlError> {
        let id = self
            .netlist
            .net_by_name(name)
            .filter(|id| self.netlist.inputs().contains(id))
            .ok_or_else(|| RtlError::UnknownName { name: name.into() })?;
        self.poke_net(id, value);
        Ok(())
    }

    /// Read any net's settled value by name.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownName`] if no such net exists.
    pub fn peek(&self, name: &str) -> Result<u64, RtlError> {
        let id = self
            .netlist
            .net_by_name(name)
            .ok_or_else(|| RtlError::UnknownName { name: name.into() })?;
        Ok(self.values[id.0 as usize].load(Ordering::Relaxed))
    }

    /// Read a net's settled value by id.
    pub fn peek_net(&self, id: NetId) -> u64 {
        self.values[id.0 as usize].load(Ordering::Relaxed)
    }

    /// Drive a primary input by id.
    pub fn poke_net(&mut self, id: NetId, value: u64) {
        let new = mask(value, self.netlist.net(id).width);
        if self.values[id.0 as usize].load(Ordering::Relaxed) != new {
            self.values[id.0 as usize].store(new, Ordering::Relaxed);
            self.mark_net(id.0);
        }
        self.settle();
    }

    /// Synchronously reset: clears all registers (those declared with reset)
    /// and re-settles. RAM contents are preserved, as on real block RAM.
    /// The settle after a reset is always a full-program pass.
    pub fn reset(&mut self) {
        for r in &self.regs {
            if r.has_reset {
                self.reg_state[r.slot as usize] = 0;
            }
        }
        self.needs_full = true;
        self.settle();
    }

    /// Advance one clock cycle: sample all sequential elements, then settle.
    ///
    /// # Errors
    ///
    /// Currently infallible but kept fallible for forward compatibility with
    /// X-propagation checks.
    pub fn step(&mut self) -> Result<(), RtlError> {
        // Phase 1: compute next state for every sequential cell from the
        // *currently settled* values (simultaneous sampling). Register
        // next-values go into the persistent scratch buffer — the hot path
        // allocates nothing.
        for r in &self.regs {
            let load = r.en == u32::MAX
                || self.values[r.en as usize].load(Ordering::Relaxed) & 1 == 1;
            self.next_regs[r.slot as usize] = if load {
                self.values[r.d as usize].load(Ordering::Relaxed) & r.mask
            } else {
                self.reg_state[r.slot as usize]
            };
        }
        // Phase 2: commit register state, seeding the event worklist from
        // every register output whose sampled value actually changed.
        self.reg_state.copy_from_slice(&self.next_regs);
        for i in 0..self.regs.len() {
            let r = self.regs[i];
            let q = self.reg_state[r.slot as usize];
            if self.values[r.q as usize].load(Ordering::Relaxed) != q {
                self.values[r.q as usize].store(q, Ordering::Relaxed);
                self.mark_net(r.q);
            }
        }
        // RAMs: ports sample `values`, which no commit above touches, and
        // each memory is private to its cell — so read-first reads, the
        // write commit, and the output drive can be fused per RAM. Output
        // changes seed the worklist like register outputs.
        for i in 0..self.rams.len() {
            let r = self.rams[i];
            let depth = r.depth as usize;
            let port = |n: u32| self.values[n as usize].load(Ordering::Relaxed);
            let addr_a = port(r.inputs[0]) as usize % depth;
            let wd_a = port(r.inputs[1]);
            let we_a = port(r.inputs[2]) & 1 == 1;
            let addr_b = port(r.inputs[3]) as usize % depth;
            let wd_b = port(r.inputs[4]);
            let we_b = port(r.inputs[5]) & 1 == 1;
            let mem = &mut self.ram_state[r.slot as usize];
            // read-first semantics on both ports
            let (ra, rb) = (mem[addr_a], mem[addr_b]);
            if we_a {
                mem[addr_a] = wd_a & r.mask;
            }
            if we_b {
                mem[addr_b] = wd_b & r.mask;
            }
            if self.values[r.ra as usize].load(Ordering::Relaxed) != ra {
                self.values[r.ra as usize].store(ra, Ordering::Relaxed);
                self.mark_net(r.ra);
            }
            if self.values[r.rb as usize].load(Ordering::Relaxed) != rb {
                self.values[r.rb as usize].store(rb, Ordering::Relaxed);
                self.mark_net(r.rb);
            }
        }
        self.settle();
        self.cycle += 1;
        if let Some(trace) = &mut self.trace {
            let row = trace
                .nets
                .iter()
                .map(|&n| self.values[n.0 as usize].load(Ordering::Relaxed))
                .collect();
            trace.rows.push((self.cycle, row));
        }
        Ok(())
    }

    /// Run `n` cycles.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Self::step`].
    pub fn run(&mut self, n: u64) -> Result<(), RtlError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Step until `predicate` returns true or `max_cycles` elapse; returns
    /// the number of cycles consumed, or `None` on timeout.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Self::step`].
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut predicate: impl FnMut(&Self) -> bool,
    ) -> Result<Option<u64>, RtlError> {
        for i in 0..max_cycles {
            if predicate(self) {
                return Ok(Some(i));
            }
            self.step()?;
        }
        Ok(if predicate(self) { Some(max_cycles) } else { None })
    }

    /// Direct read of a register cell's stored state (testing/debug hook).
    pub fn register_state(&self, cell: CellId) -> Option<u64> {
        let slot = *self.seq_slot.get(cell.0 as usize)?;
        if slot == u32::MAX
            || !matches!(self.netlist.cell(cell).op, CellOp::Register { .. })
        {
            return None;
        }
        self.reg_state.get(slot as usize).copied()
    }

    /// Direct read of a RAM word (testing/debug hook).
    pub fn ram_word(&self, cell: CellId, addr: usize) -> Option<u64> {
        let slot = *self.seq_slot.get(cell.0 as usize)?;
        if slot == u32::MAX || !matches!(self.netlist.cell(cell).op, CellOp::RamTdp { .. }) {
            return None;
        }
        self.ram_state
            .get(slot as usize)
            .and_then(|m| m.get(addr))
            .copied()
    }

    /// Overwrite a RAM word directly (testbench backdoor load).
    pub fn load_ram_word(&mut self, cell: CellId, addr: usize, value: u64) {
        let Some(&slot) = self.seq_slot.get(cell.0 as usize) else {
            return;
        };
        if slot == u32::MAX || !matches!(self.netlist.cell(cell).op, CellOp::RamTdp { .. }) {
            return;
        }
        if let Some(mem) = self.ram_state.get_mut(slot as usize) {
            if let Some(word) = mem.get_mut(addr) {
                *word = value;
            }
        }
    }

    /// Queue every op reading `net` for the next event-driven settle pass.
    #[inline]
    fn mark_net(&mut self, net: u32) {
        let lo = self.fanout_start[net as usize] as usize;
        let hi = self.fanout_start[net as usize + 1] as usize;
        for k in lo..hi {
            let op = self.fanout_ops[k];
            let (w, bit) = (op as usize / 64, 1u64 << (op % 64));
            let word = self.dirty[w].load(Ordering::Relaxed);
            if word & bit == 0 {
                self.dirty[w].store(word | bit, Ordering::Relaxed);
                self.dirty_count += 1;
                self.dirty_lo = self.dirty_lo.min(op);
                self.dirty_hi = self.dirty_hi.max(op);
            }
        }
    }

    /// One settle pass. Full-program evaluation on the first pass after
    /// construction/reset (and always when event-driven settling is
    /// disabled), otherwise an event-driven scan of the dirty window.
    /// Either shape engages the rank-partitioned path when it schedules
    /// enough ops to amortize coordination — a decision made from the
    /// scheduled op count alone, never from the worker count, so every
    /// counter and trace is identical at any `--jobs` value.
    fn settle(&mut self) {
        self.settle_passes += 1;
        let full = self.needs_full || !self.event_driven;
        if full {
            self.needs_full = false;
            // a full pass covers every queued op — drop the marks
            if self.dirty_lo <= self.dirty_hi {
                for w in self.dirty_lo as usize / 64..=self.dirty_hi as usize / 64 {
                    self.dirty[w].store(0, Ordering::Relaxed);
                }
                self.dirty_lo = u32::MAX;
                self.dirty_hi = 0;
                self.dirty_count = 0;
            }
        }
        let scheduled = if full { self.ops.len() } else { self.dirty_count as usize };
        if self.parts.len() > 1 && scheduled >= self.par_grain {
            self.settle_partitioned(full);
        } else if full {
            self.settle_full();
        } else {
            self.settle_event();
        }
    }

    /// Evaluate the entire compiled program in rank-major order.
    fn settle_full(&mut self) {
        self.settle_ops += self.program_weight;
        // Sequential outputs first: registers continuously drive their state.
        for r in &self.regs {
            self.values[r.q as usize].store(self.reg_state[r.slot as usize], Ordering::Relaxed);
        }
        for op in &self.ops {
            if op.kind == SettleKind::Packed {
                let (pw, new, mut changed) = eval_packed(
                    op.a as usize,
                    &self.packed,
                    &self.packed_nets,
                    &self.packed_vals,
                    &self.values,
                );
                // scatter changed lanes; the full path never marks
                while changed != 0 {
                    let l = changed.trailing_zeros();
                    let net = self.packed_nets[(pw.outs + l) as usize];
                    self.values[net as usize].store((new >> l) & 1, Ordering::Relaxed);
                    changed &= changed - 1;
                }
            } else {
                let v = eval_op_with(|n| self.values[n as usize].load(Ordering::Relaxed), op);
                self.values[op.out as usize].store(v, Ordering::Relaxed);
            }
        }
    }

    /// Scan the dirty window in topological-rank order. Ranks only grow
    /// along fanout edges (the program is rank-major sorted), so a mark
    /// made during the scan always lands ahead of the cursor — raising
    /// `dirty_hi` at most — and each queued op is reached after all of its
    /// dirty predecessors. Every op is evaluated at most once per pass,
    /// and an op whose output does not change never wakes its fanout. A
    /// linear bitmap scan beats a priority queue here: the window is
    /// usually a small slice of the program, and the per-visited-op cost
    /// is one branch instead of heap maintenance.
    fn settle_event(&mut self) {
        let mut wi = self.dirty_lo as usize / 64;
        // `dirty_hi` is re-read every iteration: evaluated ops may extend
        // the window forward (never backward) by marking their fanout —
        // into higher bits of the current word or into later words.
        loop {
            if wi > self.dirty_hi as usize / 64 {
                break;
            }
            let word = self.dirty[wi].load(Ordering::Relaxed);
            if word == 0 {
                wi += 1;
                continue;
            }
            let b = word.trailing_zeros();
            self.dirty[wi].store(word & !(1u64 << b), Ordering::Relaxed);
            let i = wi * 64 + b as usize;
            let op = self.ops[i];
            if op.kind == SettleKind::Packed {
                let (pw, new, mut changed) = eval_packed(
                    op.a as usize,
                    &self.packed,
                    &self.packed_nets,
                    &self.packed_vals,
                    &self.values,
                );
                self.settle_ops += u64::from(pw.lanes);
                while changed != 0 {
                    let l = changed.trailing_zeros();
                    let net = self.packed_nets[(pw.outs + l) as usize];
                    self.values[net as usize].store((new >> l) & 1, Ordering::Relaxed);
                    self.mark_net(net);
                    changed &= changed - 1;
                }
            } else {
                let v = eval_op_with(|n| self.values[n as usize].load(Ordering::Relaxed), &op);
                self.settle_ops += 1;
                if self.values[op.out as usize].load(Ordering::Relaxed) != v {
                    self.values[op.out as usize].store(v, Ordering::Relaxed);
                    self.mark_net(op.out);
                }
            }
        }
        self.dirty_lo = u32::MAX;
        self.dirty_hi = 0;
        self.dirty_count = 0;
    }

    /// Engaged pass: walk the partition plan rank by rank, fanning each
    /// rank's partitions out across `settle_jobs` cooperating workers
    /// (one dedicated thread per worker via
    /// [`hermes_par::par_map_indexed_jobs`]). `jobs == 1` runs the very
    /// same walk inline — identical evaluated set, identical counters —
    /// so the worker count stays a pure throughput knob. The evaluated
    /// set itself is worker-invariant: marks travel only to higher ranks,
    /// every dirty op of a rank is claimed exactly once through the
    /// shared partition cursor, and the per-rank barrier orders all
    /// cross-rank reads after their writes.
    fn settle_partitioned(&mut self, full: bool) {
        self.settle_parallel_passes += 1;
        if full {
            for r in &self.regs {
                self.values[r.q as usize]
                    .store(self.reg_state[r.slot as usize], Ordering::Relaxed);
            }
        }
        let jobs = self.settle_jobs.max(1);
        let shared = PassShared {
            ops: &self.ops,
            packed: &self.packed,
            packed_nets: &self.packed_nets,
            packed_vals: &self.packed_vals,
            values: &self.values,
            fanout_start: &self.fanout_start,
            fanout_ops: &self.fanout_ops,
            dirty: &self.dirty,
            rank_start: &self.rank_start,
            parts: &self.parts,
            rank_parts: &self.rank_parts,
            full,
            lo_init: self.dirty_lo,
            pass_hi: AtomicU32::new(if full { 0 } else { self.dirty_hi }),
            cur_rank: AtomicUsize::new(0),
            part_cursor: AtomicUsize::new(0),
            barrier: SpinBarrier::new(jobs),
        };
        // The evaluated *set* is deterministic, so its lane-weighted sum
        // is too, regardless of how workers split the partitions.
        let evaluated: u64 = if jobs == 1 {
            shared.worker(0)
        } else {
            hermes_par::par_map_indexed_jobs(jobs, jobs, |w| shared.worker(w))
                .expect("partitioned settle worker panicked")
                .into_iter()
                .sum()
        };
        self.settle_ops += evaluated;
        self.settle_parallel_ops += evaluated;
        if !full {
            self.dirty_lo = u32::MAX;
            self.dirty_hi = 0;
            self.dirty_count = 0;
        }
    }
}

/// Shared state of one partitioned settle pass (see
/// [`Simulator::settle_partitioned`] for the protocol and its
/// determinism argument).
struct PassShared<'a> {
    ops: &'a [SettleOp],
    packed: &'a [PackedWord],
    packed_nets: &'a [u32],
    packed_vals: &'a [AtomicU64],
    values: &'a [AtomicU64],
    fanout_start: &'a [u32],
    fanout_ops: &'a [u32],
    dirty: &'a [AtomicU64],
    rank_start: &'a [u32],
    parts: &'a [(u32, u32)],
    rank_parts: &'a [(u32, u32)],
    /// Full-program pass (no dirty filtering, no marking).
    full: bool,
    /// Event pass: initial low watermark (ops below it cannot be dirty).
    lo_init: u32,
    /// Event pass: high watermark, raised by marks as ranks evaluate.
    pass_hi: AtomicU32,
    /// Rank currently being evaluated (`usize::MAX` ends the pass).
    cur_rank: AtomicUsize,
    /// Shared claim cursor over the current rank's partition indices.
    part_cursor: AtomicUsize,
    barrier: SpinBarrier,
}

impl PassShared<'_> {
    /// One cooperating worker. Worker 0 is the leader: between barriers it
    /// publishes the next rank that can hold queued work and resets the
    /// partition cursor; everyone (leader included) then claims
    /// partitions until the rank drains.
    fn worker(&self, w: usize) -> u64 {
        let nranks = self.rank_parts.len();
        let mut evaluated = 0u64;
        let mut next = 0usize;
        loop {
            if w == 0 {
                if !self.full {
                    // skip ranks fully below the initial dirty window, and
                    // stop once no mark at or past this rank can exist
                    while next < nranks && self.rank_start[next + 1] <= self.lo_init {
                        next += 1;
                    }
                    if next < nranks
                        && self.rank_start[next] > self.pass_hi.load(Ordering::Relaxed)
                    {
                        next = nranks;
                    }
                }
                let r = if next < nranks { next } else { usize::MAX };
                if r != usize::MAX {
                    self.part_cursor
                        .store(self.rank_parts[r].0 as usize, Ordering::Relaxed);
                }
                self.cur_rank.store(r, Ordering::Release);
            }
            self.barrier.wait();
            let r = self.cur_rank.load(Ordering::Acquire);
            if r == usize::MAX {
                break;
            }
            let pend = self.rank_parts[r].1 as usize;
            loop {
                let p = self.part_cursor.fetch_add(1, Ordering::Relaxed);
                if p >= pend {
                    break;
                }
                evaluated += self.eval_partition(p);
            }
            self.barrier.wait();
            next = r + 1;
        }
        evaluated
    }

    /// Evaluate one partition (a contiguous op range within one rank).
    fn eval_partition(&self, p: usize) -> u64 {
        let (s, e) = self.parts[p];
        let mut evaluated = 0u64;
        for i in s as usize..e as usize {
            if !self.full {
                if (i as u32) < self.lo_init {
                    continue;
                }
                let (w, bit) = (i / 64, 1u64 << (i % 64));
                if self.dirty[w].load(Ordering::Relaxed) & bit == 0 {
                    continue;
                }
                // this partition was claimed by exactly one worker and
                // marks never target the rank being evaluated, but a
                // boundary *word* can span partitions/ranks — clear only
                // our bit, atomically
                self.dirty[w].fetch_and(!bit, Ordering::Relaxed);
            }
            let op = &self.ops[i];
            if op.kind == SettleKind::Packed {
                let (pw, new, mut changed) = eval_packed(
                    op.a as usize,
                    self.packed,
                    self.packed_nets,
                    self.packed_vals,
                    self.values,
                );
                evaluated += u64::from(pw.lanes);
                while changed != 0 {
                    let l = changed.trailing_zeros();
                    let net = self.packed_nets[(pw.outs + l) as usize];
                    self.values[net as usize].store((new >> l) & 1, Ordering::Relaxed);
                    if !self.full {
                        self.mark(net);
                    }
                    changed &= changed - 1;
                }
            } else {
                let v = eval_op_with(|n| self.values[n as usize].load(Ordering::Relaxed), op);
                evaluated += 1;
                if self.values[op.out as usize].load(Ordering::Relaxed) != v {
                    self.values[op.out as usize].store(v, Ordering::Relaxed);
                    if !self.full {
                        self.mark(op.out);
                    }
                }
            }
        }
        evaluated
    }

    /// Mark `net`'s fanout dirty and raise the pass watermark. Idempotent
    /// `fetch_or`s: two workers marking the same op agree on the bit.
    fn mark(&self, net: u32) {
        let lo = self.fanout_start[net as usize] as usize;
        let hi = self.fanout_start[net as usize + 1] as usize;
        for k in lo..hi {
            let op = self.fanout_ops[k];
            self.dirty[op as usize / 64].fetch_or(1u64 << (op % 64), Ordering::Relaxed);
            self.pass_hi.fetch_max(op, Ordering::Relaxed);
        }
    }
}

/// Read the `HERMES_PACKED_SETTLE` environment knob. Unset means packed
/// (`true`); `on`/`1`/`true` and `off`/`0`/`false` (case-insensitive,
/// trimmed) select explicitly. Unlike the lenient `HERMES_EVENT_SETTLE`
/// knob this one is strict — any other value is
/// [`RtlError::BadEnvKnob`], because a typo silently selecting the wrong
/// engine would invalidate a benchmark run.
///
/// # Errors
///
/// Returns [`RtlError::BadEnvKnob`] for values outside the vocabulary.
pub fn packed_settle_env() -> Result<bool, RtlError> {
    parse_packed_knob(std::env::var("HERMES_PACKED_SETTLE").ok().as_deref())
}

/// Parse a `HERMES_PACKED_SETTLE` value (`None` = unset = packed).
/// Split out from [`packed_settle_env`] so the vocabulary is testable
/// without mutating process-global environment state.
pub fn parse_packed_knob(raw: Option<&str>) -> Result<bool, RtlError> {
    hermes_obs::env::bool_strict("HERMES_PACKED_SETTLE", raw, true)
        .map_err(|e| RtlError::BadEnvKnob { name: e.name, value: e.value })
}

/// Sense-reversing spin barrier for the per-rank synchronization of
/// partitioned settle workers. Engaged passes are large by construction
/// (thousands of scheduled ops per rank round), so spinning beats parking
/// and the barrier crossing stays in the nanosecond range.
struct SpinBarrier {
    total: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        SpinBarrier {
            total,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        if self.total <= 1 {
            return;
        }
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // last arriver: reset the count *before* releasing the
            // generation, so early risers of the next round see zero
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(generation.wrapping_add(1), Ordering::Release);
        } else {
            // bounded spin, then yield: on a fully-loaded or single-core
            // host a pure spin burns whole scheduler quanta per crossing
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                if spins < 64 {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Evaluate one packed word: read each input slot (aligned word read or
/// bit gather), apply the boolean form once across all lanes, and publish
/// the new output word. Returns the word descriptor, the new value, and
/// the changed-lane bitmask; the caller scatters changed lanes into
/// `values` (and marks fanout on event-driven paths).
#[inline]
fn eval_packed(
    w: usize,
    packed: &[PackedWord],
    packed_nets: &[u32],
    packed_vals: &[AtomicU64],
    values: &[AtomicU64],
) -> (PackedWord, u64, u64) {
    let pw = packed[w];
    let lanes = pw.lanes as usize;
    let slot = |s: usize| -> u64 {
        if pw.src[s] != u32::MAX {
            // aligned fast path: the slot's lanes are bit 0..lanes of one
            // earlier word, whose cached output is always current
            packed_vals[pw.src[s] as usize].load(Ordering::Relaxed)
        } else {
            let base = pw.ins as usize + s * lanes;
            let mut word = 0u64;
            for l in 0..lanes {
                word |=
                    (values[packed_nets[base + l] as usize].load(Ordering::Relaxed) & 1) << l;
            }
            word
        }
    };
    let v = match pw.kind {
        PackKind::And => slot(0) & slot(1),
        PackKind::Or => slot(0) | slot(1),
        PackKind::Xor => slot(0) ^ slot(1),
        PackKind::Not => !slot(0),
        PackKind::Mux => {
            let sel = slot(0);
            (sel & slot(2)) | (!sel & slot(1))
        }
        PackKind::Cmp(c) => c.bit_apply(slot(0), slot(1)),
    };
    let new = v & pw.lane_mask;
    let old = packed_vals[w].load(Ordering::Relaxed);
    packed_vals[w].store(new, Ordering::Relaxed);
    (pw, new, old ^ new)
}

/// Evaluate one compiled scalar settle op, reading inputs through `read`
/// (a plain indexed load serially; the same relaxed atomic load inside
/// partitioned workers).
#[inline]
fn eval_op_with<R: Fn(u32) -> u64>(read: R, op: &SettleOp) -> u64 {
    let a = read(op.a);
    let v = match op.kind {
        SettleKind::Add => a.wrapping_add(read(op.b)),
        SettleKind::Sub => a.wrapping_sub(read(op.b)),
        SettleKind::Mul => a.wrapping_mul(read(op.b)),
        // division by zero yields all-ones, matching the component model
        SettleKind::Div => a.checked_div(read(op.b)).unwrap_or(u64::MAX),
        SettleKind::Mod => {
            let d = read(op.b);
            if d == 0 {
                a
            } else {
                a % d
            }
        }
        SettleKind::And => a & read(op.b),
        SettleKind::Or => a | read(op.b),
        SettleKind::Xor => a ^ read(op.b),
        SettleKind::Not => !a,
        SettleKind::Shl => a << read(op.b).min(63),
        SettleKind::ShrL => a >> read(op.b).min(63),
        SettleKind::ShrA => (sign_extend(a, op.aux as u32) >> read(op.b).min(63)) as u64,
        SettleKind::Cmp(c) => c.apply(a, read(op.b), op.aux as u32) as u64,
        SettleKind::Mux => {
            if a & 1 == 1 {
                read(op.c)
            } else {
                read(op.b)
            }
        }
        SettleKind::Const => op.aux,
        SettleKind::Slice => a >> op.aux,
        SettleKind::ZeroExtend => a,
        SettleKind::SignExtend => sign_extend(a, op.aux as u32) as u64,
        SettleKind::Packed => unreachable!("packed ops route through eval_packed"),
    };
    v & op.mask
}

/// Resolve the `HERMES_EVENT_SETTLE` knob: `off`/`0`/`false` (any case)
/// disables event-driven settling; unset (or, leniently, anything
/// unrecognized — surfaced once through the warning sink) enables it.
fn env_event_driven() -> bool {
    let raw = std::env::var("HERMES_EVENT_SETTLE").ok();
    hermes_obs::env::bool_lenient("HERMES_EVENT_SETTLE", raw.as_deref(), true)
}

/// Convenience helper implementing [`Comparison`] lookup for simulator users.
pub fn comparison_result(c: Comparison, a: u64, b: u64, width: u32) -> bool {
    c.apply(a, b, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{CellOp, Netlist};

    #[test]
    fn counter_counts() {
        // q' = q + 1
        let mut nl = Netlist::new("counter");
        let one = nl.add_net("one", 8);
        let q = nl.add_net("q", 8);
        let next = nl.add_net("next", 8);
        nl.add_cell("c1", CellOp::Const { value: 1 }, &[], &[one])
            .unwrap();
        nl.add_cell("add", CellOp::Add, &[q, one], &[next]).unwrap();
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: false,
                has_reset: true,
            },
            &[next],
            &[q],
        )
        .unwrap();
        nl.mark_output(q);
        let mut sim = Simulator::new(&nl).unwrap();
        assert_eq!(sim.peek("q").unwrap(), 0);
        sim.run(5).unwrap();
        assert_eq!(sim.peek("q").unwrap(), 5);
        sim.run(300).unwrap();
        assert_eq!(sim.peek("q").unwrap(), (305u64) & 0xFF);
        sim.reset();
        assert_eq!(sim.peek("q").unwrap(), 0);
    }

    #[test]
    fn enable_gates_register() {
        let mut nl = Netlist::new("en");
        let d = nl.add_input("d", 8);
        let en = nl.add_input("en", 1);
        let q = nl.add_net("q", 8);
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: true,
                has_reset: true,
            },
            &[d, en],
            &[q],
        )
        .unwrap();
        nl.mark_output(q);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.poke("d", 42).unwrap();
        sim.poke("en", 0).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("q").unwrap(), 0, "disabled register holds");
        sim.poke("en", 1).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("q").unwrap(), 42);
    }

    #[test]
    fn ram_read_write_ports() {
        let mut nl = Netlist::new("ram");
        let addr_a = nl.add_input("addr_a", 4);
        let wdata_a = nl.add_input("wdata_a", 16);
        let we_a = nl.add_input("we_a", 1);
        let addr_b = nl.add_input("addr_b", 4);
        let wdata_b = nl.add_input("wdata_b", 16);
        let we_b = nl.add_input("we_b", 1);
        let ra = nl.add_net("rdata_a", 16);
        let rb = nl.add_net("rdata_b", 16);
        nl.add_cell(
            "m",
            CellOp::RamTdp {
                depth: 16,
                init: vec![],
            },
            &[addr_a, wdata_a, we_a, addr_b, wdata_b, we_b],
            &[ra, rb],
        )
        .unwrap();
        nl.mark_output(ra);
        nl.mark_output(rb);
        let mut sim = Simulator::new(&nl).unwrap();
        // write 0xBEEF at 3 via port A
        sim.poke("addr_a", 3).unwrap();
        sim.poke("wdata_a", 0xBEEF).unwrap();
        sim.poke("we_a", 1).unwrap();
        sim.step().unwrap();
        sim.poke("we_a", 0).unwrap();
        // read back via port B
        sim.poke("addr_b", 3).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("rdata_b").unwrap(), 0xBEEF);
    }

    #[test]
    fn ram_read_first_semantics() {
        let mut nl = Netlist::new("ram");
        let addr_a = nl.add_input("addr_a", 4);
        let wdata_a = nl.add_input("wdata_a", 8);
        let we_a = nl.add_input("we_a", 1);
        let addr_b = nl.add_input("addr_b", 4);
        let wdata_b = nl.add_input("wdata_b", 8);
        let we_b = nl.add_input("we_b", 1);
        let ra = nl.add_net("rdata_a", 8);
        let rb = nl.add_net("rdata_b", 8);
        nl.add_cell(
            "m",
            CellOp::RamTdp {
                depth: 16,
                init: vec![7; 16],
            },
            &[addr_a, wdata_a, we_a, addr_b, wdata_b, we_b],
            &[ra, rb],
        )
        .unwrap();
        nl.mark_output(ra);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.poke("addr_a", 1).unwrap();
        sim.poke("wdata_a", 99).unwrap();
        sim.poke("we_a", 1).unwrap();
        sim.step().unwrap();
        // read-first: the read result is the OLD value
        assert_eq!(sim.peek("rdata_a").unwrap(), 7);
        sim.poke("we_a", 0).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("rdata_a").unwrap(), 99);
    }

    #[test]
    fn run_until_detects_condition() {
        let mut nl = Netlist::new("counter");
        let one = nl.add_net("one", 8);
        let q = nl.add_net("q", 8);
        let next = nl.add_net("next", 8);
        nl.add_cell("c1", CellOp::Const { value: 1 }, &[], &[one])
            .unwrap();
        nl.add_cell("add", CellOp::Add, &[q, one], &[next]).unwrap();
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: false,
                has_reset: true,
            },
            &[next],
            &[q],
        )
        .unwrap();
        nl.mark_output(q);
        let mut sim = Simulator::new(&nl).unwrap();
        let cycles = sim
            .run_until(100, |s| s.peek("q").unwrap() == 10)
            .unwrap();
        assert_eq!(cycles, Some(10));
        let timeout = sim.run_until(5, |s| s.peek("q").unwrap() == 200).unwrap();
        assert_eq!(timeout, None);
    }

    #[test]
    fn trace_records_rows() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 8);
        let y = nl.add_net("y", 8);
        nl.add_cell("n", CellOp::Not, &[a], &[y]).unwrap();
        nl.mark_output(y);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.enable_trace(&[y]);
        sim.poke("a", 0x0F).unwrap();
        sim.step().unwrap();
        sim.step().unwrap();
        let trace = sim.take_trace().unwrap();
        assert_eq!(trace.rows.len(), 2);
        assert_eq!(trace.rows[0].1[0], 0xF0);
        let text = trace.render(&nl);
        assert!(text.contains("$var wire 8"));
    }

    /// A counter next to a quiescent constant-fed subtree: event-driven
    /// settling must produce bit-identical values while evaluating far
    /// fewer ops (the quiescent chain settles once and never again).
    #[test]
    fn event_driven_skips_quiescent_logic() {
        let build = || {
            let mut nl = Netlist::new("mix");
            let one = nl.add_net("one", 8);
            let q = nl.add_net("q", 8);
            let next = nl.add_net("next", 8);
            nl.add_cell("c1", CellOp::Const { value: 1 }, &[], &[one])
                .unwrap();
            nl.add_cell("add", CellOp::Add, &[q, one], &[next]).unwrap();
            nl.add_cell(
                "r",
                CellOp::Register {
                    has_enable: false,
                    has_reset: true,
                },
                &[next],
                &[q],
            )
            .unwrap();
            // quiescent: a chain of NOTs hanging off the constant
            let mut cur = one;
            for i in 0..16 {
                let y = nl.add_net(format!("n{i}"), 8);
                nl.add_cell(format!("not{i}"), CellOp::Not, &[cur], &[y])
                    .unwrap();
                cur = y;
            }
            nl.mark_output(q);
            nl.mark_output(cur);
            nl
        };
        let nl_e = build();
        let nl_f = build();
        let mut ev = Simulator::new(&nl_e).unwrap();
        let mut full = Simulator::new(&nl_f).unwrap();
        full.set_event_driven(false);
        assert!(ev.event_driven());
        assert!(!full.event_driven());
        for _ in 0..50 {
            ev.step().unwrap();
            full.step().unwrap();
            for (nid, _) in nl_e.nets() {
                assert_eq!(ev.peek_net(nid), full.peek_net(nid), "net {nid}");
            }
        }
        assert_eq!(ev.settle_passes(), full.settle_passes());
        assert_eq!(
            full.settle_ops(),
            full.settle_passes() * full.settle_program_len() as u64,
            "full path evaluates the whole program every pass"
        );
        assert!(
            ev.settle_ops() < full.settle_ops() / 2,
            "event-driven must skip the quiescent chain: {} vs {}",
            ev.settle_ops(),
            full.settle_ops()
        );
    }

    /// Reset falls back to a full pass and stays bit-identical.
    #[test]
    fn event_driven_reset_matches_full() {
        let mut nl = Netlist::new("counter");
        let one = nl.add_net("one", 8);
        let q = nl.add_net("q", 8);
        let next = nl.add_net("next", 8);
        nl.add_cell("c1", CellOp::Const { value: 1 }, &[], &[one])
            .unwrap();
        nl.add_cell("add", CellOp::Add, &[q, one], &[next]).unwrap();
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: false,
                has_reset: true,
            },
            &[next],
            &[q],
        )
        .unwrap();
        nl.mark_output(q);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.run(7).unwrap();
        assert_eq!(sim.peek("q").unwrap(), 7);
        sim.reset();
        assert_eq!(sim.peek("q").unwrap(), 0);
        assert_eq!(sim.peek("next").unwrap(), 1, "comb logic re-settled");
        sim.run(3).unwrap();
        assert_eq!(sim.peek("q").unwrap(), 3);
    }

    /// Poking the same value twice must not change anything and must not
    /// re-evaluate the input's fanout.
    #[test]
    fn event_driven_identical_poke_is_free() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 8);
        let y = nl.add_net("y", 8);
        nl.add_cell("n", CellOp::Not, &[a], &[y]).unwrap();
        nl.mark_output(y);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.poke("a", 5).unwrap();
        let ops_after_first = sim.settle_ops();
        sim.poke("a", 5).unwrap();
        assert_eq!(sim.settle_ops(), ops_after_first, "no-change poke is free");
        assert_eq!(sim.peek("y").unwrap(), 0xFA);
    }

    #[test]
    fn slice_and_extend() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 16);
        let hi = nl.add_net("hi", 8);
        let sx = nl.add_net("sx", 16);
        nl.add_cell("s", CellOp::Slice { lo: 8, hi: 15 }, &[a], &[hi])
            .unwrap();
        nl.add_cell("x", CellOp::SignExtend, &[hi], &[sx]).unwrap();
        nl.mark_output(sx);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.poke("a", 0x8034).unwrap();
        assert_eq!(sim.peek("hi").unwrap(), 0x80);
        assert_eq!(sim.peek("sx").unwrap(), 0xFF80);
    }

    #[test]
    fn packed_knob_vocabulary() {
        for ok_on in ["on", "1", "true", " ON ", "True"] {
            assert_eq!(parse_packed_knob(Some(ok_on)), Ok(true), "{ok_on}");
        }
        for ok_off in ["off", "0", "false", " OFF ", "False"] {
            assert_eq!(parse_packed_knob(Some(ok_off)), Ok(false), "{ok_off}");
        }
        assert_eq!(parse_packed_knob(None), Ok(true));
        for bad in ["banana", "", "2", "yes", "no"] {
            match parse_packed_knob(Some(bad)) {
                Err(RtlError::BadEnvKnob { name, value }) => {
                    assert_eq!(name, "HERMES_PACKED_SETTLE");
                    assert_eq!(value, bad);
                }
                other => panic!("{bad:?} must be rejected, got {other:?}"),
            }
        }
    }

    /// A bit-blasted fabric: `lanes` independent 1-bit slices, each with
    /// an identical mix of packable forms (Xor, Not, Mux, Cmp) plus a
    /// per-lane register. With `lanes >= 64` each form fills at least one
    /// full packed word.
    fn bit_fabric(lanes: usize) -> Netlist {
        let mut nl = Netlist::new("bits");
        for i in 0..lanes {
            let a = nl.add_input(format!("a{i}"), 1);
            let b = nl.add_input(format!("b{i}"), 1);
            let x = nl.add_net(format!("x{i}"), 1);
            let y = nl.add_net(format!("y{i}"), 1);
            let m = nl.add_net(format!("m{i}"), 1);
            let c = nl.add_net(format!("c{i}"), 1);
            let q = nl.add_net(format!("q{i}"), 1);
            nl.add_cell(format!("xor{i}"), CellOp::Xor, &[a, b], &[x])
                .unwrap();
            nl.add_cell(format!("not{i}"), CellOp::Not, &[x], &[y])
                .unwrap();
            nl.add_cell(format!("mux{i}"), CellOp::Mux, &[a, x, y], &[m])
                .unwrap();
            nl.add_cell(
                format!("cmp{i}"),
                CellOp::Cmp(Comparison::LtU),
                &[a, b],
                &[c],
            )
            .unwrap();
            nl.add_cell(
                format!("reg{i}"),
                CellOp::Register {
                    has_enable: false,
                    has_reset: true,
                },
                &[m],
                &[q],
            )
            .unwrap();
            nl.mark_output(q);
            nl.mark_output(c);
        }
        nl
    }

    /// Packing folds groups of identical 1-bit ops into 64-lane words:
    /// the walked program shrinks while the scalar-op weight (and every
    /// counter identity built on it) is preserved.
    #[test]
    fn packing_compiles_wide_one_bit_groups() {
        let nl = bit_fabric(80);
        let packed = Simulator::new_with_packing(&nl, true).unwrap();
        let scalar = Simulator::new_with_packing(&nl, false).unwrap();
        assert!(packed.packed());
        assert!(!scalar.packed());
        assert_eq!(packed.settle_program_len(), scalar.settle_program_len());
        assert_eq!(packed.settle_program_len(), 80 * 4);
        // 4 forms × 80 lanes → 4 full words + 4 remainder words of 16
        assert_eq!(packed.packed_words(), 8);
        assert_eq!(packed.packed_lanes(), 80 * 4);
        assert_eq!(packed.settle_words(), 8);
        assert_eq!(scalar.packed_words(), 0);
        assert_eq!(scalar.settle_words(), 80 * 4);
        // occupancy: 320 lanes over 8 words = 62.5%
        assert_eq!(packed.lane_occupancy_permille(), 625);
    }

    /// Packed, scalar, and full-settle evaluation stay bit-identical
    /// through pokes, steps, and resets; the full path's op counter keeps
    /// the packing-invariant `passes × program_len` identity.
    #[test]
    fn packed_matches_scalar_and_full() {
        let nl = bit_fabric(70);
        let mut packed = Simulator::new_with_packing(&nl, true).unwrap();
        let mut scalar = Simulator::new_with_packing(&nl, false).unwrap();
        let mut full = Simulator::new_with_packing(&nl, true).unwrap();
        full.set_event_driven(false);
        let mut rng = crate::rng::DetRng::new(0xE16);
        for cycle in 0..200u32 {
            if cycle % 3 == 0 {
                let i = (rng.next_u64() % 70) as usize;
                let v = rng.next_u64() & 1;
                for s in [&mut packed, &mut scalar, &mut full] {
                    s.poke(&format!("a{i}"), v).unwrap();
                    s.poke(&format!("b{i}"), v ^ 1).unwrap();
                }
            }
            if cycle == 97 {
                for s in [&mut packed, &mut scalar, &mut full] {
                    s.reset();
                }
            }
            for s in [&mut packed, &mut scalar, &mut full] {
                s.step().unwrap();
            }
            for (nid, _) in nl.nets() {
                let v = packed.peek_net(nid);
                assert_eq!(v, scalar.peek_net(nid), "net {nid} vs scalar");
                assert_eq!(v, full.peek_net(nid), "net {nid} vs full");
            }
        }
        assert_eq!(packed.settle_passes(), scalar.settle_passes());
        assert_eq!(
            full.settle_ops(),
            full.settle_passes() * full.settle_program_len() as u64,
            "lane-weighted counting keeps the full-pass identity"
        );
    }

    /// The partitioned path is a pure throughput knob: forcing engagement
    /// at any worker count reproduces the serial simulator's values and
    /// counters exactly.
    #[test]
    fn partitioned_settle_matches_serial_at_any_jobs() {
        let nl = bit_fabric(96);
        let mut serial = Simulator::new_with_packing(&nl, true).unwrap();
        let mut sims: Vec<Simulator> = [1usize, 2, 4]
            .iter()
            .map(|&jobs| {
                let mut s = Simulator::new_with_packing(&nl, true).unwrap();
                s.set_partition_grain(1);
                s.set_settle_jobs(jobs);
                s
            })
            .collect();
        assert!(sims[0].settle_partitions() > 1);
        let mut rng = crate::rng::DetRng::new(0xBEEF);
        for cycle in 0..120u32 {
            let i = (rng.next_u64() % 96) as usize;
            let v = rng.next_u64() & 1;
            serial.poke(&format!("a{i}"), v).unwrap();
            for s in &mut sims {
                s.poke(&format!("a{i}"), v).unwrap();
            }
            if cycle == 60 {
                serial.reset();
                for s in &mut sims {
                    s.reset();
                }
            }
            serial.step().unwrap();
            for s in &mut sims {
                s.step().unwrap();
            }
            for (nid, _) in nl.nets() {
                let want = serial.peek_net(nid);
                for s in &sims {
                    assert_eq!(s.peek_net(nid), want, "net {nid} jobs {}", s.settle_jobs());
                }
            }
        }
        for s in &sims {
            assert!(s.settle_parallel_passes() > 0, "grain 1 must engage");
            assert_eq!(s.settle_passes(), serial.settle_passes());
            assert_eq!(s.settle_ops(), serial.settle_ops(), "jobs {}", s.settle_jobs());
            assert_eq!(s.settle_parallel_ops(), sims[0].settle_parallel_ops());
        }
    }

    /// Deep scalar chains partition by rank without deadlock or
    /// reordering even when every rank holds a single op.
    #[test]
    fn partitioned_deep_chain_is_correct() {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a", 8);
        let mut cur = a;
        for i in 0..300 {
            let y = nl.add_net(format!("n{i}"), 8);
            nl.add_cell(format!("not{i}"), CellOp::Not, &[cur], &[y])
                .unwrap();
            cur = y;
        }
        nl.mark_output(cur);
        let mut sim = Simulator::new_with_packing(&nl, true).unwrap();
        sim.set_partition_grain(1);
        sim.set_settle_jobs(4);
        assert!(sim.settle_ranks() >= 300);
        sim.poke("a", 0x5A).unwrap();
        // even number of NOTs → identity
        assert_eq!(sim.peek_net(cur), 0x5A);
        sim.poke("a", 0x00).unwrap();
        assert_eq!(sim.peek_net(cur), 0x00);
        assert!(sim.settle_parallel_passes() > 0);
    }

    /// Simulator::clone preserves all state, including packed words and
    /// dirty bookkeeping.
    #[test]
    fn clone_preserves_packed_state() {
        let nl = bit_fabric(64);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.poke("a3", 1).unwrap();
        sim.step().unwrap();
        let mut twin = sim.clone();
        sim.poke("b7", 1).unwrap();
        twin.poke("b7", 1).unwrap();
        sim.step().unwrap();
        twin.step().unwrap();
        for (nid, _) in nl.nets() {
            assert_eq!(sim.peek_net(nid), twin.peek_net(nid), "net {nid}");
        }
        assert_eq!(sim.settle_ops(), twin.settle_ops());
    }
}
