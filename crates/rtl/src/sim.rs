//! Cycle-accurate two-phase netlist simulator.
//!
//! Each [`Simulator::step`] performs one clock cycle:
//!
//! 1. **Settle** — propagate values through the combinational cells in
//!    topological order.
//! 2. **Clock edge** — every sequential cell (register, RAM) samples its
//!    inputs simultaneously and updates its state.
//!
//! This is the discipline a synchronous single-clock design obeys on real
//! hardware and is sufficient to validate HLS-generated FSM + datapath
//! structures cycle-by-cycle against a software reference.

use crate::component::Comparison;
use crate::netlist::{CellId, CellOp, Netlist, NetId};
use crate::{mask, sign_extend, RtlError};

/// Cycle-accurate simulator over a validated [`Netlist`].
///
/// State is kept in dense vectors indexed by cell id (`reg_state`,
/// `ram_state` via `seq_slot`) rather than hash maps, and the settle loop
/// runs over a precompiled program of [`SettleOp`]s with all net widths
/// and indices resolved up front — the per-cycle hot path performs no
/// hashing, no allocation, and no netlist traversal.
#[derive(Debug, Clone)]
pub struct Simulator<'n> {
    netlist: &'n Netlist,
    values: Vec<u64>,
    /// Dense register state, one slot per `Register` cell (see `seq_slot`).
    reg_state: Vec<u64>,
    /// Dense RAM state, one memory per `RamTdp` cell (see `seq_slot`).
    ram_state: Vec<Vec<u64>>,
    /// Cell id → slot in `reg_state`/`ram_state`; `u32::MAX` for
    /// combinational cells.
    seq_slot: Vec<u32>,
    /// Precomputed register descriptors, in cell order.
    regs: Vec<RegInfo>,
    /// Precomputed RAM descriptors, in cell order.
    rams: Vec<RamInfo>,
    /// Precompiled settle program in topological order.
    ops: Vec<SettleOp>,
    /// Reusable per-step buffer of next register values.
    next_regs: Vec<u64>,
    cycle: u64,
    /// Total settle passes executed (steps, pokes, resets).
    settle_passes: u64,
    /// Total settle ops evaluated across all passes.
    settle_ops: u64,
    trace: Option<Trace>,
}

/// Precomputed per-register data for the clock-edge phase.
#[derive(Debug, Clone, Copy)]
struct RegInfo {
    /// Slot in `reg_state`.
    slot: u32,
    /// Net index of the data input.
    d: u32,
    /// Net index of the enable input, or `u32::MAX` when always enabled.
    en: u32,
    /// Net index of the output.
    q: u32,
    /// Output width mask.
    mask: u64,
    /// Whether [`Simulator::reset`] clears this register.
    has_reset: bool,
}

/// Precomputed per-RAM data for the clock-edge phase.
#[derive(Debug, Clone, Copy)]
struct RamInfo {
    /// Slot in `ram_state`.
    slot: u32,
    /// Net indices: `[addr_a, wdata_a, we_a, addr_b, wdata_b, we_b]`.
    inputs: [u32; 6],
    /// Net indices of the read-data outputs.
    ra: u32,
    rb: u32,
    /// Word count.
    depth: u32,
    /// Data width mask.
    mask: u64,
}

/// One precompiled combinational evaluation: operation tag plus resolved
/// net indices and widths, so the settle loop touches nothing else.
#[derive(Debug, Clone, Copy)]
struct SettleOp {
    kind: SettleKind,
    /// Input net indices (unused slots are 0).
    a: u32,
    b: u32,
    c: u32,
    /// Output net index.
    out: u32,
    /// Output width mask.
    mask: u64,
    /// Operation payload: constant value, slice low bit, or input width.
    aux: u64,
}

/// Operation tag of a [`SettleOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SettleKind {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    Xor,
    Not,
    Shl,
    ShrL,
    /// `aux` holds the input width for sign extension.
    ShrA,
    /// `aux` holds the comparison input width.
    Cmp(Comparison),
    Mux,
    /// `aux` holds the constant value.
    Const,
    /// `aux` holds the low bit index; `mask` is already the slice mask.
    Slice,
    ZeroExtend,
    /// `aux` holds the input width.
    SignExtend,
}

/// A recorded value-change trace (VCD-lite) of selected nets.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    nets: Vec<NetId>,
    /// One sample row `(cycle, values)` per simulated cycle.
    pub rows: Vec<(u64, Vec<u64>)>,
}

impl Trace {
    /// Render the trace as a VCD-style text dump.
    pub fn render(&self, netlist: &Netlist) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1ns $end\n");
        for &nid in &self.nets {
            let n = netlist.net(nid);
            out.push_str(&format!("$var wire {} {} {} $end\n", n.width, nid, n.name));
        }
        out.push_str("$enddefinitions $end\n");
        for (cycle, vals) in &self.rows {
            out.push_str(&format!("#{cycle}\n"));
            for (i, &nid) in self.nets.iter().enumerate() {
                out.push_str(&format!("b{:b} {}\n", vals[i], nid));
            }
        }
        out
    }
}

impl<'n> Simulator<'n> {
    /// Build a simulator after validating the netlist.
    ///
    /// All registers start at 0 and RAMs at their declared init contents.
    ///
    /// # Errors
    ///
    /// Propagates any structural error from [`Netlist::validate`].
    pub fn new(netlist: &'n Netlist) -> Result<Self, RtlError> {
        netlist.validate()?;
        let order = netlist.combinational_order()?;
        let mut reg_state = Vec::new();
        let mut ram_state: Vec<Vec<u64>> = Vec::new();
        let mut seq_slot = vec![u32::MAX; netlist.cell_count()];
        let mut regs = Vec::new();
        let mut rams = Vec::new();
        for (cid, cell) in netlist.cells() {
            match &cell.op {
                CellOp::Register {
                    has_enable,
                    has_reset,
                } => {
                    let slot = reg_state.len() as u32;
                    seq_slot[cid.0 as usize] = slot;
                    reg_state.push(0);
                    regs.push(RegInfo {
                        slot,
                        d: cell.inputs[0].0,
                        en: if *has_enable {
                            cell.inputs[1].0
                        } else {
                            u32::MAX
                        },
                        q: cell.outputs[0].0,
                        mask: mask(u64::MAX, netlist.net(cell.outputs[0]).width),
                        has_reset: *has_reset,
                    });
                }
                CellOp::RamTdp { depth, init } => {
                    let slot = ram_state.len() as u32;
                    seq_slot[cid.0 as usize] = slot;
                    let mut mem = init.clone();
                    mem.resize(*depth as usize, 0);
                    ram_state.push(mem);
                    rams.push(RamInfo {
                        slot,
                        inputs: [
                            cell.inputs[0].0,
                            cell.inputs[1].0,
                            cell.inputs[2].0,
                            cell.inputs[3].0,
                            cell.inputs[4].0,
                            cell.inputs[5].0,
                        ],
                        ra: cell.outputs[0].0,
                        rb: cell.outputs[1].0,
                        depth: (*depth).max(1),
                        mask: mask(u64::MAX, netlist.net(cell.outputs[0]).width),
                    });
                }
                _ => {}
            }
        }
        let ops = Self::compile_settle_ops(netlist, &order);
        let next_regs = vec![0; regs.len()];
        let mut sim = Simulator {
            netlist,
            values: vec![0; netlist.net_count()],
            reg_state,
            ram_state,
            seq_slot,
            regs,
            rams,
            ops,
            next_regs,
            cycle: 0,
            settle_passes: 0,
            settle_ops: 0,
            trace: None,
        };
        sim.settle();
        Ok(sim)
    }

    /// Lower the topologically ordered combinational cells into the compact
    /// settle program (resolved net indices, widths, and payloads).
    fn compile_settle_ops(netlist: &Netlist, order: &[CellId]) -> Vec<SettleOp> {
        let mut ops = Vec::with_capacity(order.len());
        for &cid in order {
            let cell = netlist.cell(cid);
            let input = |i: usize| cell.inputs.get(i).map_or(0, |n| n.0);
            let out_net = cell.outputs[0];
            let ow = netlist.net(out_net).width;
            let iw = cell
                .inputs
                .first()
                .map(|&n| netlist.net(n).width)
                .unwrap_or(ow);
            let (kind, m, aux) = match &cell.op {
                CellOp::Add => (SettleKind::Add, mask(u64::MAX, ow), 0),
                CellOp::Sub => (SettleKind::Sub, mask(u64::MAX, ow), 0),
                CellOp::Mul => (SettleKind::Mul, mask(u64::MAX, ow), 0),
                CellOp::Div => (SettleKind::Div, mask(u64::MAX, ow), 0),
                CellOp::Mod => (SettleKind::Mod, mask(u64::MAX, ow), 0),
                CellOp::And => (SettleKind::And, mask(u64::MAX, ow), 0),
                CellOp::Or => (SettleKind::Or, mask(u64::MAX, ow), 0),
                CellOp::Xor => (SettleKind::Xor, mask(u64::MAX, ow), 0),
                CellOp::Not => (SettleKind::Not, mask(u64::MAX, ow), 0),
                CellOp::Shl => (SettleKind::Shl, mask(u64::MAX, ow), 0),
                CellOp::ShrL => (SettleKind::ShrL, mask(u64::MAX, ow), 0),
                CellOp::ShrA => (SettleKind::ShrA, mask(u64::MAX, ow), u64::from(iw)),
                CellOp::Cmp(c) => (
                    SettleKind::Cmp(*c),
                    mask(u64::MAX, ow),
                    u64::from(netlist.net(cell.inputs[0]).width),
                ),
                CellOp::Mux => (SettleKind::Mux, mask(u64::MAX, ow), 0),
                CellOp::Const { value } => (SettleKind::Const, mask(u64::MAX, ow), *value),
                CellOp::Slice { lo, hi } => (
                    SettleKind::Slice,
                    // slice width and output net width both bound the result
                    mask(mask(u64::MAX, hi - lo + 1), ow),
                    u64::from(*lo),
                ),
                CellOp::ZeroExtend => (SettleKind::ZeroExtend, mask(u64::MAX, ow), 0),
                CellOp::SignExtend => (
                    SettleKind::SignExtend,
                    mask(u64::MAX, ow),
                    u64::from(netlist.net(cell.inputs[0]).width),
                ),
                CellOp::Register { .. } | CellOp::RamTdp { .. } => continue,
            };
            ops.push(SettleOp {
                kind,
                a: input(0),
                b: input(1),
                c: input(2),
                out: out_net.0,
                mask: m,
                aux,
            });
        }
        ops
    }

    /// Enable tracing of the given nets; samples are appended on every step.
    pub fn enable_trace(&mut self, nets: &[NetId]) {
        self.trace = Some(Trace {
            nets: nets.to_vec(),
            rows: Vec::new(),
        });
    }

    /// Take the recorded trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Current cycle count (number of completed [`Self::step`] calls).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total settle passes executed so far (steps, pokes, resets).
    pub fn settle_passes(&self) -> u64 {
        self.settle_passes
    }

    /// Total settle ops evaluated across all passes (the simulator's true
    /// work metric: passes × compiled program length).
    pub fn settle_ops(&self) -> u64 {
        self.settle_ops
    }

    /// Export the simulator's work counters into a flight recorder under
    /// subsystem `sub` (RTL clock domain).
    pub fn obs_export(&self, obs: &hermes_obs::Recorder, sub: &str) {
        obs.counter_add(sub, "cycles", self.cycle);
        obs.counter_add(sub, "settle_passes", self.settle_passes);
        obs.counter_add(sub, "settle_ops", self.settle_ops);
        obs.gauge_set(sub, "nets", self.netlist.net_count() as i64);
        obs.instant(
            sub,
            "sim-state",
            hermes_obs::ClockDomain::Rtl,
            self.cycle,
            &[("settle_passes", self.settle_passes.to_string())],
        );
    }

    /// Drive a primary input by name.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownName`] if no such input exists.
    pub fn poke(&mut self, name: &str, value: u64) -> Result<(), RtlError> {
        let id = self
            .netlist
            .net_by_name(name)
            .filter(|id| self.netlist.inputs().contains(id))
            .ok_or_else(|| RtlError::UnknownName { name: name.into() })?;
        self.values[id.0 as usize] = mask(value, self.netlist.net(id).width);
        self.settle();
        Ok(())
    }

    /// Read any net's settled value by name.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownName`] if no such net exists.
    pub fn peek(&self, name: &str) -> Result<u64, RtlError> {
        let id = self
            .netlist
            .net_by_name(name)
            .ok_or_else(|| RtlError::UnknownName { name: name.into() })?;
        Ok(self.values[id.0 as usize])
    }

    /// Read a net's settled value by id.
    pub fn peek_net(&self, id: NetId) -> u64 {
        self.values[id.0 as usize]
    }

    /// Drive a primary input by id.
    pub fn poke_net(&mut self, id: NetId, value: u64) {
        self.values[id.0 as usize] = mask(value, self.netlist.net(id).width);
        self.settle();
    }

    /// Synchronously reset: clears all registers (those declared with reset)
    /// and re-settles. RAM contents are preserved, as on real block RAM.
    pub fn reset(&mut self) {
        for r in &self.regs {
            if r.has_reset {
                self.reg_state[r.slot as usize] = 0;
            }
        }
        self.settle();
    }

    /// Advance one clock cycle: sample all sequential elements, then settle.
    ///
    /// # Errors
    ///
    /// Currently infallible but kept fallible for forward compatibility with
    /// X-propagation checks.
    pub fn step(&mut self) -> Result<(), RtlError> {
        // Phase 1: compute next state for every sequential cell from the
        // *currently settled* values (simultaneous sampling). Register
        // next-values go into the persistent scratch buffer — the hot path
        // allocates nothing.
        for r in &self.regs {
            let load = r.en == u32::MAX || self.values[r.en as usize] & 1 == 1;
            self.next_regs[r.slot as usize] = if load {
                self.values[r.d as usize] & r.mask
            } else {
                self.reg_state[r.slot as usize]
            };
        }
        // Phase 2: commit register state.
        self.reg_state.copy_from_slice(&self.next_regs);
        // RAMs: ports sample `values`, which no commit above touches, and
        // each memory is private to its cell — so read-first reads, the
        // write commit, and the output drive can be fused per RAM.
        for r in &self.rams {
            let depth = r.depth as usize;
            let addr_a = self.values[r.inputs[0] as usize] as usize % depth;
            let wd_a = self.values[r.inputs[1] as usize];
            let we_a = self.values[r.inputs[2] as usize] & 1 == 1;
            let addr_b = self.values[r.inputs[3] as usize] as usize % depth;
            let wd_b = self.values[r.inputs[4] as usize];
            let we_b = self.values[r.inputs[5] as usize] & 1 == 1;
            let mem = &mut self.ram_state[r.slot as usize];
            // read-first semantics on both ports
            let (ra, rb) = (mem[addr_a], mem[addr_b]);
            if we_a {
                mem[addr_a] = wd_a & r.mask;
            }
            if we_b {
                mem[addr_b] = wd_b & r.mask;
            }
            self.values[r.ra as usize] = ra;
            self.values[r.rb as usize] = rb;
        }
        self.settle();
        self.cycle += 1;
        if let Some(trace) = &mut self.trace {
            let row = trace
                .nets
                .iter()
                .map(|&n| self.values[n.0 as usize])
                .collect();
            trace.rows.push((self.cycle, row));
        }
        Ok(())
    }

    /// Run `n` cycles.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Self::step`].
    pub fn run(&mut self, n: u64) -> Result<(), RtlError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Step until `predicate` returns true or `max_cycles` elapse; returns
    /// the number of cycles consumed, or `None` on timeout.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Self::step`].
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut predicate: impl FnMut(&Self) -> bool,
    ) -> Result<Option<u64>, RtlError> {
        for i in 0..max_cycles {
            if predicate(self) {
                return Ok(Some(i));
            }
            self.step()?;
        }
        Ok(if predicate(self) { Some(max_cycles) } else { None })
    }

    /// Direct read of a register cell's stored state (testing/debug hook).
    pub fn register_state(&self, cell: CellId) -> Option<u64> {
        let slot = *self.seq_slot.get(cell.0 as usize)?;
        if slot == u32::MAX
            || !matches!(self.netlist.cell(cell).op, CellOp::Register { .. })
        {
            return None;
        }
        self.reg_state.get(slot as usize).copied()
    }

    /// Direct read of a RAM word (testing/debug hook).
    pub fn ram_word(&self, cell: CellId, addr: usize) -> Option<u64> {
        let slot = *self.seq_slot.get(cell.0 as usize)?;
        if slot == u32::MAX || !matches!(self.netlist.cell(cell).op, CellOp::RamTdp { .. }) {
            return None;
        }
        self.ram_state
            .get(slot as usize)
            .and_then(|m| m.get(addr))
            .copied()
    }

    /// Overwrite a RAM word directly (testbench backdoor load).
    pub fn load_ram_word(&mut self, cell: CellId, addr: usize, value: u64) {
        let Some(&slot) = self.seq_slot.get(cell.0 as usize) else {
            return;
        };
        if slot == u32::MAX || !matches!(self.netlist.cell(cell).op, CellOp::RamTdp { .. }) {
            return;
        }
        if let Some(mem) = self.ram_state.get_mut(slot as usize) {
            if let Some(word) = mem.get_mut(addr) {
                *word = value;
            }
        }
    }

    fn settle(&mut self) {
        self.settle_passes += 1;
        self.settle_ops += self.ops.len() as u64;
        // Sequential outputs first: registers continuously drive their state.
        for r in &self.regs {
            self.values[r.q as usize] = self.reg_state[r.slot as usize];
        }
        let values = &mut self.values;
        for op in &self.ops {
            let a = values[op.a as usize];
            let v = match op.kind {
                SettleKind::Add => a.wrapping_add(values[op.b as usize]),
                SettleKind::Sub => a.wrapping_sub(values[op.b as usize]),
                SettleKind::Mul => a.wrapping_mul(values[op.b as usize]),
                // division by zero yields all-ones, matching the component model
                SettleKind::Div => a.checked_div(values[op.b as usize]).unwrap_or(u64::MAX),
                SettleKind::Mod => {
                    let d = values[op.b as usize];
                    if d == 0 {
                        a
                    } else {
                        a % d
                    }
                }
                SettleKind::And => a & values[op.b as usize],
                SettleKind::Or => a | values[op.b as usize],
                SettleKind::Xor => a ^ values[op.b as usize],
                SettleKind::Not => !a,
                SettleKind::Shl => a << values[op.b as usize].min(63),
                SettleKind::ShrL => a >> values[op.b as usize].min(63),
                SettleKind::ShrA => {
                    (sign_extend(a, op.aux as u32) >> values[op.b as usize].min(63)) as u64
                }
                SettleKind::Cmp(c) => {
                    c.apply(a, values[op.b as usize], op.aux as u32) as u64
                }
                SettleKind::Mux => {
                    if a & 1 == 1 {
                        values[op.c as usize]
                    } else {
                        values[op.b as usize]
                    }
                }
                SettleKind::Const => op.aux,
                SettleKind::Slice => a >> op.aux,
                SettleKind::ZeroExtend => a,
                SettleKind::SignExtend => sign_extend(a, op.aux as u32) as u64,
            };
            values[op.out as usize] = v & op.mask;
        }
    }
}

/// Convenience helper implementing [`Comparison`] lookup for simulator users.
pub fn comparison_result(c: Comparison, a: u64, b: u64, width: u32) -> bool {
    c.apply(a, b, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{CellOp, Netlist};

    #[test]
    fn counter_counts() {
        // q' = q + 1
        let mut nl = Netlist::new("counter");
        let one = nl.add_net("one", 8);
        let q = nl.add_net("q", 8);
        let next = nl.add_net("next", 8);
        nl.add_cell("c1", CellOp::Const { value: 1 }, &[], &[one])
            .unwrap();
        nl.add_cell("add", CellOp::Add, &[q, one], &[next]).unwrap();
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: false,
                has_reset: true,
            },
            &[next],
            &[q],
        )
        .unwrap();
        nl.mark_output(q);
        let mut sim = Simulator::new(&nl).unwrap();
        assert_eq!(sim.peek("q").unwrap(), 0);
        sim.run(5).unwrap();
        assert_eq!(sim.peek("q").unwrap(), 5);
        sim.run(300).unwrap();
        assert_eq!(sim.peek("q").unwrap(), (305u64) & 0xFF);
        sim.reset();
        assert_eq!(sim.peek("q").unwrap(), 0);
    }

    #[test]
    fn enable_gates_register() {
        let mut nl = Netlist::new("en");
        let d = nl.add_input("d", 8);
        let en = nl.add_input("en", 1);
        let q = nl.add_net("q", 8);
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: true,
                has_reset: true,
            },
            &[d, en],
            &[q],
        )
        .unwrap();
        nl.mark_output(q);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.poke("d", 42).unwrap();
        sim.poke("en", 0).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("q").unwrap(), 0, "disabled register holds");
        sim.poke("en", 1).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("q").unwrap(), 42);
    }

    #[test]
    fn ram_read_write_ports() {
        let mut nl = Netlist::new("ram");
        let addr_a = nl.add_input("addr_a", 4);
        let wdata_a = nl.add_input("wdata_a", 16);
        let we_a = nl.add_input("we_a", 1);
        let addr_b = nl.add_input("addr_b", 4);
        let wdata_b = nl.add_input("wdata_b", 16);
        let we_b = nl.add_input("we_b", 1);
        let ra = nl.add_net("rdata_a", 16);
        let rb = nl.add_net("rdata_b", 16);
        nl.add_cell(
            "m",
            CellOp::RamTdp {
                depth: 16,
                init: vec![],
            },
            &[addr_a, wdata_a, we_a, addr_b, wdata_b, we_b],
            &[ra, rb],
        )
        .unwrap();
        nl.mark_output(ra);
        nl.mark_output(rb);
        let mut sim = Simulator::new(&nl).unwrap();
        // write 0xBEEF at 3 via port A
        sim.poke("addr_a", 3).unwrap();
        sim.poke("wdata_a", 0xBEEF).unwrap();
        sim.poke("we_a", 1).unwrap();
        sim.step().unwrap();
        sim.poke("we_a", 0).unwrap();
        // read back via port B
        sim.poke("addr_b", 3).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("rdata_b").unwrap(), 0xBEEF);
    }

    #[test]
    fn ram_read_first_semantics() {
        let mut nl = Netlist::new("ram");
        let addr_a = nl.add_input("addr_a", 4);
        let wdata_a = nl.add_input("wdata_a", 8);
        let we_a = nl.add_input("we_a", 1);
        let addr_b = nl.add_input("addr_b", 4);
        let wdata_b = nl.add_input("wdata_b", 8);
        let we_b = nl.add_input("we_b", 1);
        let ra = nl.add_net("rdata_a", 8);
        let rb = nl.add_net("rdata_b", 8);
        nl.add_cell(
            "m",
            CellOp::RamTdp {
                depth: 16,
                init: vec![7; 16],
            },
            &[addr_a, wdata_a, we_a, addr_b, wdata_b, we_b],
            &[ra, rb],
        )
        .unwrap();
        nl.mark_output(ra);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.poke("addr_a", 1).unwrap();
        sim.poke("wdata_a", 99).unwrap();
        sim.poke("we_a", 1).unwrap();
        sim.step().unwrap();
        // read-first: the read result is the OLD value
        assert_eq!(sim.peek("rdata_a").unwrap(), 7);
        sim.poke("we_a", 0).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("rdata_a").unwrap(), 99);
    }

    #[test]
    fn run_until_detects_condition() {
        let mut nl = Netlist::new("counter");
        let one = nl.add_net("one", 8);
        let q = nl.add_net("q", 8);
        let next = nl.add_net("next", 8);
        nl.add_cell("c1", CellOp::Const { value: 1 }, &[], &[one])
            .unwrap();
        nl.add_cell("add", CellOp::Add, &[q, one], &[next]).unwrap();
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: false,
                has_reset: true,
            },
            &[next],
            &[q],
        )
        .unwrap();
        nl.mark_output(q);
        let mut sim = Simulator::new(&nl).unwrap();
        let cycles = sim
            .run_until(100, |s| s.peek("q").unwrap() == 10)
            .unwrap();
        assert_eq!(cycles, Some(10));
        let timeout = sim.run_until(5, |s| s.peek("q").unwrap() == 200).unwrap();
        assert_eq!(timeout, None);
    }

    #[test]
    fn trace_records_rows() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 8);
        let y = nl.add_net("y", 8);
        nl.add_cell("n", CellOp::Not, &[a], &[y]).unwrap();
        nl.mark_output(y);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.enable_trace(&[y]);
        sim.poke("a", 0x0F).unwrap();
        sim.step().unwrap();
        sim.step().unwrap();
        let trace = sim.take_trace().unwrap();
        assert_eq!(trace.rows.len(), 2);
        assert_eq!(trace.rows[0].1[0], 0xF0);
        let text = trace.render(&nl);
        assert!(text.contains("$var wire 8"));
    }

    #[test]
    fn slice_and_extend() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 16);
        let hi = nl.add_net("hi", 8);
        let sx = nl.add_net("sx", 16);
        nl.add_cell("s", CellOp::Slice { lo: 8, hi: 15 }, &[a], &[hi])
            .unwrap();
        nl.add_cell("x", CellOp::SignExtend, &[hi], &[sx]).unwrap();
        nl.mark_output(sx);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.poke("a", 0x8034).unwrap();
        assert_eq!(sim.peek("hi").unwrap(), 0x80);
        assert_eq!(sim.peek("sx").unwrap(), 0xFF80);
    }
}
