//! Cycle-accurate two-phase netlist simulator.
//!
//! Each [`Simulator::step`] performs one clock cycle:
//!
//! 1. **Settle** — propagate values through the combinational cells in
//!    topological order.
//! 2. **Clock edge** — every sequential cell (register, RAM) samples its
//!    inputs simultaneously and updates its state.
//!
//! This is the discipline a synchronous single-clock design obeys on real
//! hardware and is sufficient to validate HLS-generated FSM + datapath
//! structures cycle-by-cycle against a software reference.

use crate::component::Comparison;
use crate::netlist::{CellId, CellOp, Netlist, NetId};
use crate::{mask, sign_extend, RtlError};

/// Cycle-accurate simulator over a validated [`Netlist`].
///
/// State is kept in dense vectors indexed by cell id (`reg_state`,
/// `ram_state` via `seq_slot`) rather than hash maps, and the settle loop
/// runs over a precompiled program of [`SettleOp`]s with all net widths
/// and indices resolved up front — the per-cycle hot path performs no
/// hashing, no allocation, and no netlist traversal.
///
/// Settling is **activity-gated (event-driven)**: per-net fanout lists are
/// precomputed into the compiled program at construction, a dirty bitmap
/// is seeded from the sequential outputs (and pokes) whose value actually
/// changed, and the bitmap is scanned in topological-rank order across a
/// `[lo, hi]` watermark window so each op is evaluated at most once per
/// pass and quiescent logic is skipped entirely (fanout edges only point
/// to higher ranks, so the scan never revisits an index). The first
/// settle after construction (and every settle after
/// [`Self::reset`]) falls back to a full-program evaluation, and
/// [`Self::set_event_driven`] / the `HERMES_EVENT_SETTLE` environment
/// variable (`off`/`0` disables) force the full path for A/B comparisons.
/// Both paths produce bit-identical `values`, register state, and traces.
#[derive(Debug, Clone)]
pub struct Simulator<'n> {
    netlist: &'n Netlist,
    values: Vec<u64>,
    /// Dense register state, one slot per `Register` cell (see `seq_slot`).
    reg_state: Vec<u64>,
    /// Dense RAM state, one memory per `RamTdp` cell (see `seq_slot`).
    ram_state: Vec<Vec<u64>>,
    /// Cell id → slot in `reg_state`/`ram_state`; `u32::MAX` for
    /// combinational cells.
    seq_slot: Vec<u32>,
    /// Precomputed register descriptors, in cell order.
    regs: Vec<RegInfo>,
    /// Precomputed RAM descriptors, in cell order.
    rams: Vec<RamInfo>,
    /// Precompiled settle program in topological order.
    ops: Vec<SettleOp>,
    /// CSR fanout index: ops reading net `n` are
    /// `fanout_ops[fanout_start[n]..fanout_start[n + 1]]` (ascending).
    fanout_start: Vec<u32>,
    fanout_ops: Vec<u32>,
    /// Per-op "queued this pass" flag (guards at-most-once evaluation).
    dirty: Vec<bool>,
    /// Watermark window of queued op indices: the next event-driven pass
    /// scans `dirty[dirty_lo..=dirty_hi]`. Empty when `lo > hi`
    /// (`u32::MAX`/`0` sentinels).
    dirty_lo: u32,
    dirty_hi: u32,
    /// Next settle must evaluate the full program (construction, reset).
    needs_full: bool,
    /// Event-driven settling enabled (see `HERMES_EVENT_SETTLE`).
    event_driven: bool,
    /// Reusable per-step buffer of next register values.
    next_regs: Vec<u64>,
    cycle: u64,
    /// Total settle passes executed (steps, pokes, resets).
    settle_passes: u64,
    /// Total settle ops *evaluated* across all passes.
    settle_ops: u64,
    trace: Option<Trace>,
}

/// Precomputed per-register data for the clock-edge phase.
#[derive(Debug, Clone, Copy)]
struct RegInfo {
    /// Slot in `reg_state`.
    slot: u32,
    /// Net index of the data input.
    d: u32,
    /// Net index of the enable input, or `u32::MAX` when always enabled.
    en: u32,
    /// Net index of the output.
    q: u32,
    /// Output width mask.
    mask: u64,
    /// Whether [`Simulator::reset`] clears this register.
    has_reset: bool,
}

/// Precomputed per-RAM data for the clock-edge phase.
#[derive(Debug, Clone, Copy)]
struct RamInfo {
    /// Slot in `ram_state`.
    slot: u32,
    /// Net indices: `[addr_a, wdata_a, we_a, addr_b, wdata_b, we_b]`.
    inputs: [u32; 6],
    /// Net indices of the read-data outputs.
    ra: u32,
    rb: u32,
    /// Word count.
    depth: u32,
    /// Data width mask.
    mask: u64,
}

/// One precompiled combinational evaluation: operation tag plus resolved
/// net indices and widths, so the settle loop touches nothing else.
#[derive(Debug, Clone, Copy)]
struct SettleOp {
    kind: SettleKind,
    /// Input net indices (unused slots are 0).
    a: u32,
    b: u32,
    c: u32,
    /// Output net index.
    out: u32,
    /// Output width mask.
    mask: u64,
    /// Operation payload: constant value, slice low bit, or input width.
    aux: u64,
}

/// Operation tag of a [`SettleOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SettleKind {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    Xor,
    Not,
    Shl,
    ShrL,
    /// `aux` holds the input width for sign extension.
    ShrA,
    /// `aux` holds the comparison input width.
    Cmp(Comparison),
    Mux,
    /// `aux` holds the constant value.
    Const,
    /// `aux` holds the low bit index; `mask` is already the slice mask.
    Slice,
    ZeroExtend,
    /// `aux` holds the input width.
    SignExtend,
}

impl SettleOp {
    /// How many of the `a`/`b`/`c` slots are live inputs (unused slots
    /// hold 0 and must not contribute fanout edges).
    fn input_count(&self) -> usize {
        match self.kind {
            SettleKind::Const => 0,
            SettleKind::Not
            | SettleKind::Slice
            | SettleKind::ZeroExtend
            | SettleKind::SignExtend => 1,
            SettleKind::Mux => 3,
            _ => 2,
        }
    }
}

/// A recorded value-change trace (VCD-lite) of selected nets.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    nets: Vec<NetId>,
    /// One sample row `(cycle, values)` per simulated cycle.
    pub rows: Vec<(u64, Vec<u64>)>,
}

impl Trace {
    /// Render the trace as a VCD-style text dump.
    pub fn render(&self, netlist: &Netlist) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1ns $end\n");
        for &nid in &self.nets {
            let n = netlist.net(nid);
            out.push_str(&format!("$var wire {} {} {} $end\n", n.width, nid, n.name));
        }
        out.push_str("$enddefinitions $end\n");
        for (cycle, vals) in &self.rows {
            out.push_str(&format!("#{cycle}\n"));
            for (i, &nid) in self.nets.iter().enumerate() {
                out.push_str(&format!("b{:b} {}\n", vals[i], nid));
            }
        }
        out
    }
}

impl<'n> Simulator<'n> {
    /// Build a simulator after validating the netlist.
    ///
    /// All registers start at 0 and RAMs at their declared init contents.
    ///
    /// # Errors
    ///
    /// Propagates any structural error from [`Netlist::validate`].
    pub fn new(netlist: &'n Netlist) -> Result<Self, RtlError> {
        netlist.validate()?;
        let order = netlist.combinational_order()?;
        let mut reg_state = Vec::new();
        let mut ram_state: Vec<Vec<u64>> = Vec::new();
        let mut seq_slot = vec![u32::MAX; netlist.cell_count()];
        let mut regs = Vec::new();
        let mut rams = Vec::new();
        for (cid, cell) in netlist.cells() {
            match &cell.op {
                CellOp::Register {
                    has_enable,
                    has_reset,
                } => {
                    let slot = reg_state.len() as u32;
                    seq_slot[cid.0 as usize] = slot;
                    reg_state.push(0);
                    regs.push(RegInfo {
                        slot,
                        d: cell.inputs[0].0,
                        en: if *has_enable {
                            cell.inputs[1].0
                        } else {
                            u32::MAX
                        },
                        q: cell.outputs[0].0,
                        mask: mask(u64::MAX, netlist.net(cell.outputs[0]).width),
                        has_reset: *has_reset,
                    });
                }
                CellOp::RamTdp { depth, init } => {
                    let slot = ram_state.len() as u32;
                    seq_slot[cid.0 as usize] = slot;
                    let mut mem = init.clone();
                    mem.resize(*depth as usize, 0);
                    ram_state.push(mem);
                    rams.push(RamInfo {
                        slot,
                        inputs: [
                            cell.inputs[0].0,
                            cell.inputs[1].0,
                            cell.inputs[2].0,
                            cell.inputs[3].0,
                            cell.inputs[4].0,
                            cell.inputs[5].0,
                        ],
                        ra: cell.outputs[0].0,
                        rb: cell.outputs[1].0,
                        depth: (*depth).max(1),
                        mask: mask(u64::MAX, netlist.net(cell.outputs[0]).width),
                    });
                }
                _ => {}
            }
        }
        let ops = Self::compile_settle_ops(netlist, &order);
        let (fanout_start, fanout_ops) = Self::compile_fanout(netlist.net_count(), &ops);
        let next_regs = vec![0; regs.len()];
        let dirty = vec![false; ops.len()];
        let mut sim = Simulator {
            netlist,
            values: vec![0; netlist.net_count()],
            reg_state,
            ram_state,
            seq_slot,
            regs,
            rams,
            ops,
            fanout_start,
            fanout_ops,
            dirty,
            dirty_lo: u32::MAX,
            dirty_hi: 0,
            needs_full: true,
            event_driven: env_event_driven(),
            next_regs,
            cycle: 0,
            settle_passes: 0,
            settle_ops: 0,
            trace: None,
        };
        sim.settle();
        Ok(sim)
    }

    /// Build the CSR net→op fanout index over the compiled program: for
    /// every live input slot of every op, one edge from the input net to
    /// the op. Op indices within a net's list ascend (topological rank).
    fn compile_fanout(net_count: usize, ops: &[SettleOp]) -> (Vec<u32>, Vec<u32>) {
        let mut counts = vec![0u32; net_count + 1];
        for op in ops {
            for &net in &[op.a, op.b, op.c][..op.input_count()] {
                counts[net as usize + 1] += 1;
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let fanout_start = counts.clone();
        let mut cursor = counts;
        let mut fanout_ops = vec![0u32; *fanout_start.last().unwrap_or(&0) as usize];
        for (idx, op) in ops.iter().enumerate() {
            for &net in &[op.a, op.b, op.c][..op.input_count()] {
                fanout_ops[cursor[net as usize] as usize] = idx as u32;
                cursor[net as usize] += 1;
            }
        }
        (fanout_start, fanout_ops)
    }

    /// Lower the topologically ordered combinational cells into the compact
    /// settle program (resolved net indices, widths, and payloads).
    fn compile_settle_ops(netlist: &Netlist, order: &[CellId]) -> Vec<SettleOp> {
        let mut ops = Vec::with_capacity(order.len());
        for &cid in order {
            let cell = netlist.cell(cid);
            let input = |i: usize| cell.inputs.get(i).map_or(0, |n| n.0);
            let out_net = cell.outputs[0];
            let ow = netlist.net(out_net).width;
            let iw = cell
                .inputs
                .first()
                .map(|&n| netlist.net(n).width)
                .unwrap_or(ow);
            let (kind, m, aux) = match &cell.op {
                CellOp::Add => (SettleKind::Add, mask(u64::MAX, ow), 0),
                CellOp::Sub => (SettleKind::Sub, mask(u64::MAX, ow), 0),
                CellOp::Mul => (SettleKind::Mul, mask(u64::MAX, ow), 0),
                CellOp::Div => (SettleKind::Div, mask(u64::MAX, ow), 0),
                CellOp::Mod => (SettleKind::Mod, mask(u64::MAX, ow), 0),
                CellOp::And => (SettleKind::And, mask(u64::MAX, ow), 0),
                CellOp::Or => (SettleKind::Or, mask(u64::MAX, ow), 0),
                CellOp::Xor => (SettleKind::Xor, mask(u64::MAX, ow), 0),
                CellOp::Not => (SettleKind::Not, mask(u64::MAX, ow), 0),
                CellOp::Shl => (SettleKind::Shl, mask(u64::MAX, ow), 0),
                CellOp::ShrL => (SettleKind::ShrL, mask(u64::MAX, ow), 0),
                CellOp::ShrA => (SettleKind::ShrA, mask(u64::MAX, ow), u64::from(iw)),
                CellOp::Cmp(c) => (
                    SettleKind::Cmp(*c),
                    mask(u64::MAX, ow),
                    u64::from(netlist.net(cell.inputs[0]).width),
                ),
                CellOp::Mux => (SettleKind::Mux, mask(u64::MAX, ow), 0),
                CellOp::Const { value } => (SettleKind::Const, mask(u64::MAX, ow), *value),
                CellOp::Slice { lo, hi } => (
                    SettleKind::Slice,
                    // slice width and output net width both bound the result
                    mask(mask(u64::MAX, hi - lo + 1), ow),
                    u64::from(*lo),
                ),
                CellOp::ZeroExtend => (SettleKind::ZeroExtend, mask(u64::MAX, ow), 0),
                CellOp::SignExtend => (
                    SettleKind::SignExtend,
                    mask(u64::MAX, ow),
                    u64::from(netlist.net(cell.inputs[0]).width),
                ),
                CellOp::Register { .. } | CellOp::RamTdp { .. } => continue,
            };
            ops.push(SettleOp {
                kind,
                a: input(0),
                b: input(1),
                c: input(2),
                out: out_net.0,
                mask: m,
                aux,
            });
        }
        ops
    }

    /// Enable tracing of the given nets; samples are appended on every step.
    pub fn enable_trace(&mut self, nets: &[NetId]) {
        self.trace = Some(Trace {
            nets: nets.to_vec(),
            rows: Vec::new(),
        });
    }

    /// Take the recorded trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Current cycle count (number of completed [`Self::step`] calls).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total settle passes executed so far (steps, pokes, resets).
    pub fn settle_passes(&self) -> u64 {
        self.settle_passes
    }

    /// Total settle ops *evaluated* across all passes (the simulator's
    /// true work metric). With event-driven settling this is usually far
    /// below the full-evaluation baseline
    /// [`settle_passes`](Self::settle_passes) ×
    /// [`settle_program_len`](Self::settle_program_len); the quotient is
    /// the workload's activity factor.
    pub fn settle_ops(&self) -> u64 {
        self.settle_ops
    }

    /// Length of the compiled combinational settle program (the per-pass
    /// op count a full, non-event-driven evaluation pays).
    pub fn settle_program_len(&self) -> usize {
        self.ops.len()
    }

    /// Whether event-driven (activity-gated) settling is enabled.
    pub fn event_driven(&self) -> bool {
        self.event_driven
    }

    /// Force full-program settling (`false`) or activity-gated settling
    /// (`true`). Both produce bit-identical values and traces; the full
    /// path is kept for A/B measurement and differential testing.
    pub fn set_event_driven(&mut self, on: bool) {
        self.event_driven = on;
    }

    /// Export the simulator's work counters into a flight recorder under
    /// subsystem `sub` (RTL clock domain). `settle_ops` counts evaluated
    /// ops; `settle_ops_full` is the full-evaluation baseline, so the
    /// activity factor is their quotient.
    pub fn obs_export(&self, obs: &hermes_obs::Recorder, sub: &str) {
        obs.counter_add(sub, "cycles", self.cycle);
        obs.counter_add(sub, "settle_passes", self.settle_passes);
        obs.counter_add(sub, "settle_ops", self.settle_ops);
        obs.counter_add(
            sub,
            "settle_ops_full",
            self.settle_passes * self.ops.len() as u64,
        );
        obs.gauge_set(sub, "settle_program_len", self.ops.len() as i64);
        obs.gauge_set(sub, "nets", self.netlist.net_count() as i64);
        obs.instant(
            sub,
            "sim-state",
            hermes_obs::ClockDomain::Rtl,
            self.cycle,
            &[("settle_passes", self.settle_passes.to_string())],
        );
    }

    /// Drive a primary input by name.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownName`] if no such input exists.
    pub fn poke(&mut self, name: &str, value: u64) -> Result<(), RtlError> {
        let id = self
            .netlist
            .net_by_name(name)
            .filter(|id| self.netlist.inputs().contains(id))
            .ok_or_else(|| RtlError::UnknownName { name: name.into() })?;
        self.poke_net(id, value);
        Ok(())
    }

    /// Read any net's settled value by name.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::UnknownName`] if no such net exists.
    pub fn peek(&self, name: &str) -> Result<u64, RtlError> {
        let id = self
            .netlist
            .net_by_name(name)
            .ok_or_else(|| RtlError::UnknownName { name: name.into() })?;
        Ok(self.values[id.0 as usize])
    }

    /// Read a net's settled value by id.
    pub fn peek_net(&self, id: NetId) -> u64 {
        self.values[id.0 as usize]
    }

    /// Drive a primary input by id.
    pub fn poke_net(&mut self, id: NetId, value: u64) {
        let new = mask(value, self.netlist.net(id).width);
        if self.values[id.0 as usize] != new {
            self.values[id.0 as usize] = new;
            self.mark_net(id.0);
        }
        self.settle();
    }

    /// Synchronously reset: clears all registers (those declared with reset)
    /// and re-settles. RAM contents are preserved, as on real block RAM.
    /// The settle after a reset is always a full-program pass.
    pub fn reset(&mut self) {
        for r in &self.regs {
            if r.has_reset {
                self.reg_state[r.slot as usize] = 0;
            }
        }
        self.needs_full = true;
        self.settle();
    }

    /// Advance one clock cycle: sample all sequential elements, then settle.
    ///
    /// # Errors
    ///
    /// Currently infallible but kept fallible for forward compatibility with
    /// X-propagation checks.
    pub fn step(&mut self) -> Result<(), RtlError> {
        // Phase 1: compute next state for every sequential cell from the
        // *currently settled* values (simultaneous sampling). Register
        // next-values go into the persistent scratch buffer — the hot path
        // allocates nothing.
        for r in &self.regs {
            let load = r.en == u32::MAX || self.values[r.en as usize] & 1 == 1;
            self.next_regs[r.slot as usize] = if load {
                self.values[r.d as usize] & r.mask
            } else {
                self.reg_state[r.slot as usize]
            };
        }
        // Phase 2: commit register state, seeding the event worklist from
        // every register output whose sampled value actually changed.
        self.reg_state.copy_from_slice(&self.next_regs);
        for i in 0..self.regs.len() {
            let r = self.regs[i];
            let q = self.reg_state[r.slot as usize];
            if self.values[r.q as usize] != q {
                self.values[r.q as usize] = q;
                self.mark_net(r.q);
            }
        }
        // RAMs: ports sample `values`, which no commit above touches, and
        // each memory is private to its cell — so read-first reads, the
        // write commit, and the output drive can be fused per RAM. Output
        // changes seed the worklist like register outputs.
        for i in 0..self.rams.len() {
            let r = self.rams[i];
            let depth = r.depth as usize;
            let addr_a = self.values[r.inputs[0] as usize] as usize % depth;
            let wd_a = self.values[r.inputs[1] as usize];
            let we_a = self.values[r.inputs[2] as usize] & 1 == 1;
            let addr_b = self.values[r.inputs[3] as usize] as usize % depth;
            let wd_b = self.values[r.inputs[4] as usize];
            let we_b = self.values[r.inputs[5] as usize] & 1 == 1;
            let mem = &mut self.ram_state[r.slot as usize];
            // read-first semantics on both ports
            let (ra, rb) = (mem[addr_a], mem[addr_b]);
            if we_a {
                mem[addr_a] = wd_a & r.mask;
            }
            if we_b {
                mem[addr_b] = wd_b & r.mask;
            }
            if self.values[r.ra as usize] != ra {
                self.values[r.ra as usize] = ra;
                self.mark_net(r.ra);
            }
            if self.values[r.rb as usize] != rb {
                self.values[r.rb as usize] = rb;
                self.mark_net(r.rb);
            }
        }
        self.settle();
        self.cycle += 1;
        if let Some(trace) = &mut self.trace {
            let row = trace
                .nets
                .iter()
                .map(|&n| self.values[n.0 as usize])
                .collect();
            trace.rows.push((self.cycle, row));
        }
        Ok(())
    }

    /// Run `n` cycles.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Self::step`].
    pub fn run(&mut self, n: u64) -> Result<(), RtlError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Step until `predicate` returns true or `max_cycles` elapse; returns
    /// the number of cycles consumed, or `None` on timeout.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Self::step`].
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut predicate: impl FnMut(&Self) -> bool,
    ) -> Result<Option<u64>, RtlError> {
        for i in 0..max_cycles {
            if predicate(self) {
                return Ok(Some(i));
            }
            self.step()?;
        }
        Ok(if predicate(self) { Some(max_cycles) } else { None })
    }

    /// Direct read of a register cell's stored state (testing/debug hook).
    pub fn register_state(&self, cell: CellId) -> Option<u64> {
        let slot = *self.seq_slot.get(cell.0 as usize)?;
        if slot == u32::MAX
            || !matches!(self.netlist.cell(cell).op, CellOp::Register { .. })
        {
            return None;
        }
        self.reg_state.get(slot as usize).copied()
    }

    /// Direct read of a RAM word (testing/debug hook).
    pub fn ram_word(&self, cell: CellId, addr: usize) -> Option<u64> {
        let slot = *self.seq_slot.get(cell.0 as usize)?;
        if slot == u32::MAX || !matches!(self.netlist.cell(cell).op, CellOp::RamTdp { .. }) {
            return None;
        }
        self.ram_state
            .get(slot as usize)
            .and_then(|m| m.get(addr))
            .copied()
    }

    /// Overwrite a RAM word directly (testbench backdoor load).
    pub fn load_ram_word(&mut self, cell: CellId, addr: usize, value: u64) {
        let Some(&slot) = self.seq_slot.get(cell.0 as usize) else {
            return;
        };
        if slot == u32::MAX || !matches!(self.netlist.cell(cell).op, CellOp::RamTdp { .. }) {
            return;
        }
        if let Some(mem) = self.ram_state.get_mut(slot as usize) {
            if let Some(word) = mem.get_mut(addr) {
                *word = value;
            }
        }
    }

    /// Queue every op reading `net` for the next event-driven settle pass.
    #[inline]
    fn mark_net(&mut self, net: u32) {
        let lo = self.fanout_start[net as usize] as usize;
        let hi = self.fanout_start[net as usize + 1] as usize;
        for k in lo..hi {
            let op = self.fanout_ops[k];
            self.dirty[op as usize] = true;
            self.dirty_lo = self.dirty_lo.min(op);
            self.dirty_hi = self.dirty_hi.max(op);
        }
    }

    /// One settle pass: event-driven scan of the dirty window, or a
    /// full-program evaluation on the first pass after construction/reset
    /// (and always when event-driven settling is disabled).
    fn settle(&mut self) {
        self.settle_passes += 1;
        if self.needs_full || !self.event_driven {
            self.needs_full = false;
            // a full pass covers every queued op — drop the marks
            if self.dirty_lo <= self.dirty_hi {
                for i in self.dirty_lo as usize..=self.dirty_hi as usize {
                    self.dirty[i] = false;
                }
                self.dirty_lo = u32::MAX;
                self.dirty_hi = 0;
            }
            self.settle_full();
        } else {
            self.settle_event();
        }
    }

    /// Evaluate the entire compiled program in topological order.
    fn settle_full(&mut self) {
        self.settle_ops += self.ops.len() as u64;
        // Sequential outputs first: registers continuously drive their state.
        for r in &self.regs {
            self.values[r.q as usize] = self.reg_state[r.slot as usize];
        }
        let values = &mut self.values;
        for op in &self.ops {
            values[op.out as usize] = eval_op(values, op);
        }
    }

    /// Scan the dirty window in topological-rank order. Ranks only grow
    /// along fanout edges (the program is topologically sorted), so a mark
    /// made during the scan always lands ahead of the cursor — raising
    /// `dirty_hi` at most — and each queued op is reached after all of its
    /// dirty predecessors. Every op is evaluated at most once per pass,
    /// and an op whose output does not change never wakes its fanout. A
    /// linear bitmap scan beats a priority queue here: the window is
    /// usually a small slice of the program, and the per-visited-op cost
    /// is one branch instead of heap maintenance.
    fn settle_event(&mut self) {
        let mut i = self.dirty_lo as usize;
        // `dirty_hi` is re-read every iteration: evaluated ops may extend
        // the window forward (never backward) by marking their fanout.
        while i as u32 <= self.dirty_hi {
            if self.dirty[i] {
                self.dirty[i] = false;
                let op = self.ops[i];
                let v = eval_op(&self.values, &op);
                self.settle_ops += 1;
                if self.values[op.out as usize] != v {
                    self.values[op.out as usize] = v;
                    self.mark_net(op.out);
                }
            }
            i += 1;
        }
        self.dirty_lo = u32::MAX;
        self.dirty_hi = 0;
    }
}

/// Evaluate one compiled settle op against the current net values.
#[inline]
fn eval_op(values: &[u64], op: &SettleOp) -> u64 {
    let a = values[op.a as usize];
    let v = match op.kind {
        SettleKind::Add => a.wrapping_add(values[op.b as usize]),
        SettleKind::Sub => a.wrapping_sub(values[op.b as usize]),
        SettleKind::Mul => a.wrapping_mul(values[op.b as usize]),
        // division by zero yields all-ones, matching the component model
        SettleKind::Div => a.checked_div(values[op.b as usize]).unwrap_or(u64::MAX),
        SettleKind::Mod => {
            let d = values[op.b as usize];
            if d == 0 {
                a
            } else {
                a % d
            }
        }
        SettleKind::And => a & values[op.b as usize],
        SettleKind::Or => a | values[op.b as usize],
        SettleKind::Xor => a ^ values[op.b as usize],
        SettleKind::Not => !a,
        SettleKind::Shl => a << values[op.b as usize].min(63),
        SettleKind::ShrL => a >> values[op.b as usize].min(63),
        SettleKind::ShrA => {
            (sign_extend(a, op.aux as u32) >> values[op.b as usize].min(63)) as u64
        }
        SettleKind::Cmp(c) => c.apply(a, values[op.b as usize], op.aux as u32) as u64,
        SettleKind::Mux => {
            if a & 1 == 1 {
                values[op.c as usize]
            } else {
                values[op.b as usize]
            }
        }
        SettleKind::Const => op.aux,
        SettleKind::Slice => a >> op.aux,
        SettleKind::ZeroExtend => a,
        SettleKind::SignExtend => sign_extend(a, op.aux as u32) as u64,
    };
    v & op.mask
}

/// Resolve the `HERMES_EVENT_SETTLE` knob: `off`/`0`/`false` (any case)
/// disables event-driven settling; anything else (or unset) enables it.
fn env_event_driven() -> bool {
    match std::env::var("HERMES_EVENT_SETTLE") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false"
        ),
        Err(_) => true,
    }
}

/// Convenience helper implementing [`Comparison`] lookup for simulator users.
pub fn comparison_result(c: Comparison, a: u64, b: u64, width: u32) -> bool {
    c.apply(a, b, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{CellOp, Netlist};

    #[test]
    fn counter_counts() {
        // q' = q + 1
        let mut nl = Netlist::new("counter");
        let one = nl.add_net("one", 8);
        let q = nl.add_net("q", 8);
        let next = nl.add_net("next", 8);
        nl.add_cell("c1", CellOp::Const { value: 1 }, &[], &[one])
            .unwrap();
        nl.add_cell("add", CellOp::Add, &[q, one], &[next]).unwrap();
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: false,
                has_reset: true,
            },
            &[next],
            &[q],
        )
        .unwrap();
        nl.mark_output(q);
        let mut sim = Simulator::new(&nl).unwrap();
        assert_eq!(sim.peek("q").unwrap(), 0);
        sim.run(5).unwrap();
        assert_eq!(sim.peek("q").unwrap(), 5);
        sim.run(300).unwrap();
        assert_eq!(sim.peek("q").unwrap(), (305u64) & 0xFF);
        sim.reset();
        assert_eq!(sim.peek("q").unwrap(), 0);
    }

    #[test]
    fn enable_gates_register() {
        let mut nl = Netlist::new("en");
        let d = nl.add_input("d", 8);
        let en = nl.add_input("en", 1);
        let q = nl.add_net("q", 8);
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: true,
                has_reset: true,
            },
            &[d, en],
            &[q],
        )
        .unwrap();
        nl.mark_output(q);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.poke("d", 42).unwrap();
        sim.poke("en", 0).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("q").unwrap(), 0, "disabled register holds");
        sim.poke("en", 1).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("q").unwrap(), 42);
    }

    #[test]
    fn ram_read_write_ports() {
        let mut nl = Netlist::new("ram");
        let addr_a = nl.add_input("addr_a", 4);
        let wdata_a = nl.add_input("wdata_a", 16);
        let we_a = nl.add_input("we_a", 1);
        let addr_b = nl.add_input("addr_b", 4);
        let wdata_b = nl.add_input("wdata_b", 16);
        let we_b = nl.add_input("we_b", 1);
        let ra = nl.add_net("rdata_a", 16);
        let rb = nl.add_net("rdata_b", 16);
        nl.add_cell(
            "m",
            CellOp::RamTdp {
                depth: 16,
                init: vec![],
            },
            &[addr_a, wdata_a, we_a, addr_b, wdata_b, we_b],
            &[ra, rb],
        )
        .unwrap();
        nl.mark_output(ra);
        nl.mark_output(rb);
        let mut sim = Simulator::new(&nl).unwrap();
        // write 0xBEEF at 3 via port A
        sim.poke("addr_a", 3).unwrap();
        sim.poke("wdata_a", 0xBEEF).unwrap();
        sim.poke("we_a", 1).unwrap();
        sim.step().unwrap();
        sim.poke("we_a", 0).unwrap();
        // read back via port B
        sim.poke("addr_b", 3).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("rdata_b").unwrap(), 0xBEEF);
    }

    #[test]
    fn ram_read_first_semantics() {
        let mut nl = Netlist::new("ram");
        let addr_a = nl.add_input("addr_a", 4);
        let wdata_a = nl.add_input("wdata_a", 8);
        let we_a = nl.add_input("we_a", 1);
        let addr_b = nl.add_input("addr_b", 4);
        let wdata_b = nl.add_input("wdata_b", 8);
        let we_b = nl.add_input("we_b", 1);
        let ra = nl.add_net("rdata_a", 8);
        let rb = nl.add_net("rdata_b", 8);
        nl.add_cell(
            "m",
            CellOp::RamTdp {
                depth: 16,
                init: vec![7; 16],
            },
            &[addr_a, wdata_a, we_a, addr_b, wdata_b, we_b],
            &[ra, rb],
        )
        .unwrap();
        nl.mark_output(ra);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.poke("addr_a", 1).unwrap();
        sim.poke("wdata_a", 99).unwrap();
        sim.poke("we_a", 1).unwrap();
        sim.step().unwrap();
        // read-first: the read result is the OLD value
        assert_eq!(sim.peek("rdata_a").unwrap(), 7);
        sim.poke("we_a", 0).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek("rdata_a").unwrap(), 99);
    }

    #[test]
    fn run_until_detects_condition() {
        let mut nl = Netlist::new("counter");
        let one = nl.add_net("one", 8);
        let q = nl.add_net("q", 8);
        let next = nl.add_net("next", 8);
        nl.add_cell("c1", CellOp::Const { value: 1 }, &[], &[one])
            .unwrap();
        nl.add_cell("add", CellOp::Add, &[q, one], &[next]).unwrap();
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: false,
                has_reset: true,
            },
            &[next],
            &[q],
        )
        .unwrap();
        nl.mark_output(q);
        let mut sim = Simulator::new(&nl).unwrap();
        let cycles = sim
            .run_until(100, |s| s.peek("q").unwrap() == 10)
            .unwrap();
        assert_eq!(cycles, Some(10));
        let timeout = sim.run_until(5, |s| s.peek("q").unwrap() == 200).unwrap();
        assert_eq!(timeout, None);
    }

    #[test]
    fn trace_records_rows() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 8);
        let y = nl.add_net("y", 8);
        nl.add_cell("n", CellOp::Not, &[a], &[y]).unwrap();
        nl.mark_output(y);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.enable_trace(&[y]);
        sim.poke("a", 0x0F).unwrap();
        sim.step().unwrap();
        sim.step().unwrap();
        let trace = sim.take_trace().unwrap();
        assert_eq!(trace.rows.len(), 2);
        assert_eq!(trace.rows[0].1[0], 0xF0);
        let text = trace.render(&nl);
        assert!(text.contains("$var wire 8"));
    }

    /// A counter next to a quiescent constant-fed subtree: event-driven
    /// settling must produce bit-identical values while evaluating far
    /// fewer ops (the quiescent chain settles once and never again).
    #[test]
    fn event_driven_skips_quiescent_logic() {
        let build = || {
            let mut nl = Netlist::new("mix");
            let one = nl.add_net("one", 8);
            let q = nl.add_net("q", 8);
            let next = nl.add_net("next", 8);
            nl.add_cell("c1", CellOp::Const { value: 1 }, &[], &[one])
                .unwrap();
            nl.add_cell("add", CellOp::Add, &[q, one], &[next]).unwrap();
            nl.add_cell(
                "r",
                CellOp::Register {
                    has_enable: false,
                    has_reset: true,
                },
                &[next],
                &[q],
            )
            .unwrap();
            // quiescent: a chain of NOTs hanging off the constant
            let mut cur = one;
            for i in 0..16 {
                let y = nl.add_net(format!("n{i}"), 8);
                nl.add_cell(format!("not{i}"), CellOp::Not, &[cur], &[y])
                    .unwrap();
                cur = y;
            }
            nl.mark_output(q);
            nl.mark_output(cur);
            nl
        };
        let nl_e = build();
        let nl_f = build();
        let mut ev = Simulator::new(&nl_e).unwrap();
        let mut full = Simulator::new(&nl_f).unwrap();
        full.set_event_driven(false);
        assert!(ev.event_driven());
        assert!(!full.event_driven());
        for _ in 0..50 {
            ev.step().unwrap();
            full.step().unwrap();
            for (nid, _) in nl_e.nets() {
                assert_eq!(ev.peek_net(nid), full.peek_net(nid), "net {nid}");
            }
        }
        assert_eq!(ev.settle_passes(), full.settle_passes());
        assert_eq!(
            full.settle_ops(),
            full.settle_passes() * full.settle_program_len() as u64,
            "full path evaluates the whole program every pass"
        );
        assert!(
            ev.settle_ops() < full.settle_ops() / 2,
            "event-driven must skip the quiescent chain: {} vs {}",
            ev.settle_ops(),
            full.settle_ops()
        );
    }

    /// Reset falls back to a full pass and stays bit-identical.
    #[test]
    fn event_driven_reset_matches_full() {
        let mut nl = Netlist::new("counter");
        let one = nl.add_net("one", 8);
        let q = nl.add_net("q", 8);
        let next = nl.add_net("next", 8);
        nl.add_cell("c1", CellOp::Const { value: 1 }, &[], &[one])
            .unwrap();
        nl.add_cell("add", CellOp::Add, &[q, one], &[next]).unwrap();
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: false,
                has_reset: true,
            },
            &[next],
            &[q],
        )
        .unwrap();
        nl.mark_output(q);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.run(7).unwrap();
        assert_eq!(sim.peek("q").unwrap(), 7);
        sim.reset();
        assert_eq!(sim.peek("q").unwrap(), 0);
        assert_eq!(sim.peek("next").unwrap(), 1, "comb logic re-settled");
        sim.run(3).unwrap();
        assert_eq!(sim.peek("q").unwrap(), 3);
    }

    /// Poking the same value twice must not change anything and must not
    /// re-evaluate the input's fanout.
    #[test]
    fn event_driven_identical_poke_is_free() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 8);
        let y = nl.add_net("y", 8);
        nl.add_cell("n", CellOp::Not, &[a], &[y]).unwrap();
        nl.mark_output(y);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.poke("a", 5).unwrap();
        let ops_after_first = sim.settle_ops();
        sim.poke("a", 5).unwrap();
        assert_eq!(sim.settle_ops(), ops_after_first, "no-change poke is free");
        assert_eq!(sim.peek("y").unwrap(), 0xFA);
    }

    #[test]
    fn slice_and_extend() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 16);
        let hi = nl.add_net("hi", 8);
        let sx = nl.add_net("sx", 16);
        nl.add_cell("s", CellOp::Slice { lo: 8, hi: 15 }, &[a], &[hi])
            .unwrap();
        nl.add_cell("x", CellOp::SignExtend, &[hi], &[sx]).unwrap();
        nl.mark_output(sx);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.poke("a", 0x8034).unwrap();
        assert_eq!(sim.peek("hi").unwrap(), 0x80);
        assert_eq!(sim.peek("sx").unwrap(), 0xFF80);
    }
}
