//! Coarse-cell netlist representation.
//!
//! A [`Netlist`] is a directed graph of [`Cell`]s connected by [`Net`]s. Cells
//! are word-level ("coarse") operators — the granularity at which the HLS
//! back-end assembles datapaths — rather than gates; logic synthesis in
//! `hermes-fpga` later decomposes them into device primitives.

use crate::component::Comparison;
use crate::RtlError;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a net within its owning [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Identifier of a cell within its owning [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A single wire bundle carrying a value of a fixed bit width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Human-readable name (unique within the netlist).
    pub name: String,
    /// Bit width (1..=64).
    pub width: u32,
}

/// The operation performed by a [`Cell`].
#[derive(Debug, Clone, PartialEq)]
pub enum CellOp {
    /// Two's-complement addition: `[a, b] -> [y]`.
    Add,
    /// Two's-complement subtraction: `[a, b] -> [y]`.
    Sub,
    /// Multiplication, low word: `[a, b] -> [y]`.
    Mul,
    /// Unsigned division (x/0 = all-ones): `[a, b] -> [y]`.
    Div,
    /// Unsigned remainder (x%0 = x): `[a, b] -> [y]`.
    Mod,
    /// Bitwise AND: `[a, b] -> [y]`.
    And,
    /// Bitwise OR: `[a, b] -> [y]`.
    Or,
    /// Bitwise XOR: `[a, b] -> [y]`.
    Xor,
    /// Bitwise NOT: `[a] -> [y]`.
    Not,
    /// Logical shift left: `[a, sh] -> [y]`.
    Shl,
    /// Logical shift right: `[a, sh] -> [y]`.
    ShrL,
    /// Arithmetic shift right: `[a, sh] -> [y]`.
    ShrA,
    /// Comparison producing a 1-bit net: `[a, b] -> [y]`.
    Cmp(Comparison),
    /// Two-way multiplexer: `[sel, a, b] -> [y]` (`sel=1` picks `b`).
    Mux,
    /// Constant driver: `[] -> [y]`.
    Const {
        /// Value driven (masked to the output width).
        value: u64,
    },
    /// Bit slice `[hi:lo]` of the input: `[a] -> [y]`.
    Slice {
        /// Low bit index (inclusive).
        lo: u32,
        /// High bit index (inclusive).
        hi: u32,
    },
    /// Zero-extension: `[a] -> [y]`.
    ZeroExtend,
    /// Sign-extension: `[a] -> [y]`.
    SignExtend,
    /// Clocked D register: `[d]` or `[d, en]` `-> [q]`.
    Register {
        /// If true, a second input net gates the load.
        has_enable: bool,
        /// If true, the simulator's reset clears the register to zero.
        has_reset: bool,
    },
    /// Synchronous true dual-port RAM:
    /// `[addr_a, wdata_a, we_a, addr_b, wdata_b, we_b] -> [rdata_a, rdata_b]`.
    ///
    /// Reads are synchronous (data valid the cycle after the address is
    /// presented), matching the NG-ULTRA block RAM discipline.
    RamTdp {
        /// Number of words.
        depth: u32,
        /// Optional initial contents (shorter than `depth` is zero-padded).
        init: Vec<u64>,
    },
}

impl CellOp {
    /// `(inputs, outputs)` arity of the operation.
    pub fn arity(&self) -> (usize, usize) {
        use CellOp::*;
        match self {
            Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | ShrL | ShrA | Cmp(_) => (2, 1),
            Not | Slice { .. } | ZeroExtend | SignExtend => (1, 1),
            Mux => (3, 1),
            Const { .. } => (0, 1),
            Register { has_enable, .. } => (if *has_enable { 2 } else { 1 }, 1),
            RamTdp { .. } => (6, 2),
        }
    }

    /// Whether the cell has state updated on the clock edge.
    pub fn is_sequential(&self) -> bool {
        matches!(self, CellOp::Register { .. } | CellOp::RamTdp { .. })
    }

    /// Short mnemonic used in reports and generated HDL.
    pub fn mnemonic(&self) -> &'static str {
        use CellOp::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Mod => "mod",
            And => "and",
            Or => "or",
            Xor => "xor",
            Not => "not",
            Shl => "shl",
            ShrL => "shrl",
            ShrA => "shra",
            Cmp(_) => "cmp",
            Mux => "mux",
            Const { .. } => "const",
            Slice { .. } => "slice",
            ZeroExtend => "zext",
            SignExtend => "sext",
            Register { .. } => "reg",
            RamTdp { .. } => "ram",
        }
    }
}

/// An instantiated operator in the netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Instance name (unique within the netlist).
    pub name: String,
    /// The operation performed.
    pub op: CellOp,
    /// Input nets, in operation-defined order.
    pub inputs: Vec<NetId>,
    /// Output nets, in operation-defined order.
    pub outputs: Vec<NetId>,
}

/// Summary statistics of a netlist, used in flow reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Total cell count.
    pub cells: usize,
    /// Total net count.
    pub nets: usize,
    /// Number of sequential cells (registers + memories).
    pub sequential: usize,
    /// Number of multiplier/divider cells (DSP candidates).
    pub dsp_candidates: usize,
    /// Number of memory cells (block-RAM candidates).
    pub memories: usize,
    /// Sum of all register bit widths.
    pub register_bits: u64,
}

/// A named module-level netlist of coarse cells.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    cells: Vec<Cell>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    net_names: HashMap<String, NetId>,
}

impl Netlist {
    /// Create an empty netlist with the given module name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add an internal net. Duplicate names are disambiguated with a suffix.
    pub fn add_net(&mut self, name: impl Into<String>, width: u32) -> NetId {
        let mut name = name.into();
        if self.net_names.contains_key(&name) {
            let mut i = 1;
            while self.net_names.contains_key(&format!("{name}_{i}")) {
                i += 1;
            }
            name = format!("{name}_{i}");
        }
        let id = NetId(self.nets.len() as u32);
        self.net_names.insert(name.clone(), id);
        self.nets.push(Net { name, width });
        id
    }

    /// Add a primary input net.
    pub fn add_input(&mut self, name: impl Into<String>, width: u32) -> NetId {
        let id = self.add_net(name, width);
        self.inputs.push(id);
        id
    }

    /// Mark an existing net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        if !self.outputs.contains(&net) {
            self.outputs.push(net);
        }
    }

    /// Instantiate a cell.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::ArityMismatch`] if the connection counts do not
    /// match [`CellOp::arity`].
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        op: CellOp,
        inputs: &[NetId],
        outputs: &[NetId],
    ) -> Result<CellId, RtlError> {
        let name = name.into();
        let (ni, no) = op.arity();
        if inputs.len() != ni || outputs.len() != no {
            return Err(RtlError::ArityMismatch {
                cell: name,
                expected: format!("{ni} in / {no} out"),
                got: format!("{} in / {} out", inputs.len(), outputs.len()),
            });
        }
        let id = CellId(self.cells.len() as u32);
        self.cells.push(Cell {
            name,
            op,
            inputs: inputs.to_vec(),
            outputs: outputs.to_vec(),
        });
        Ok(id)
    }

    /// Build a netlist containing `copies` independent instances of this
    /// module side by side, every net and cell of copy `k` prefixed
    /// `u<k>_`. Each copy's primary inputs and outputs stay primary, so a
    /// single simulator steps all instances in lock-step. This is how E16
    /// builds its convolution-scale workloads: replicated kernel netlists
    /// large enough to exercise the word-parallel and rank-partitioned
    /// settle paths beyond what any single HLS kernel reaches.
    pub fn tiled(&self, copies: usize) -> Netlist {
        let mut out = Netlist::new(format!("{}_x{copies}", self.name));
        let mut is_input = vec![false; self.nets.len()];
        for id in &self.inputs {
            is_input[id.0 as usize] = true;
        }
        for k in 0..copies {
            let map: Vec<NetId> = self
                .nets
                .iter()
                .enumerate()
                .map(|(i, net)| {
                    let name = format!("u{k}_{}", net.name);
                    if is_input[i] {
                        out.add_input(name, net.width)
                    } else {
                        out.add_net(name, net.width)
                    }
                })
                .collect();
            for cell in &self.cells {
                let ins: Vec<NetId> = cell.inputs.iter().map(|n| map[n.0 as usize]).collect();
                let outs: Vec<NetId> = cell.outputs.iter().map(|n| map[n.0 as usize]).collect();
                out.add_cell(format!("u{k}_{}", cell.name), cell.op.clone(), &ins, &outs)
                    .expect("tiled cell mirrors an already-validated arity");
            }
            for n in &self.outputs {
                out.mark_output(map[n.0 as usize]);
            }
        }
        out
    }

    /// Look up a net by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    /// The net record behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this netlist.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// The cell record behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this netlist.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0 as usize]
    }

    /// Iterate over all nets with their ids.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n))
    }

    /// Iterate over all cells with their ids.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// Primary input nets in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Compute summary statistics.
    pub fn stats(&self) -> NetlistStats {
        let mut s = NetlistStats {
            cells: self.cells.len(),
            nets: self.nets.len(),
            ..NetlistStats::default()
        };
        for c in &self.cells {
            if c.op.is_sequential() {
                s.sequential += 1;
            }
            match &c.op {
                CellOp::Mul | CellOp::Div | CellOp::Mod => s.dsp_candidates += 1,
                CellOp::RamTdp { .. } => s.memories += 1,
                CellOp::Register { .. } => {
                    s.register_bits += u64::from(self.net(c.outputs[0]).width);
                }
                _ => {}
            }
        }
        s
    }

    /// Map from each net to the cell driving it (if any).
    pub fn driver_map(&self) -> Result<HashMap<NetId, CellId>, RtlError> {
        let mut drivers = HashMap::new();
        for (cid, cell) in self.cells() {
            for &out in &cell.outputs {
                if drivers.insert(out, cid).is_some() {
                    return Err(RtlError::MultipleDrivers {
                        net: self.net(out).name.clone(),
                    });
                }
            }
        }
        for &inp in &self.inputs {
            if drivers.contains_key(&inp) {
                return Err(RtlError::MultipleDrivers {
                    net: self.net(inp).name.clone(),
                });
            }
        }
        Ok(drivers)
    }

    /// Validate structural sanity: single drivers, no floating nets read by
    /// cells, and no combinational cycles.
    ///
    /// # Errors
    ///
    /// Returns the first [`RtlError`] found.
    pub fn validate(&self) -> Result<(), RtlError> {
        let drivers = self.driver_map()?;
        for cell in &self.cells {
            for &inp in &cell.inputs {
                if !drivers.contains_key(&inp) && !self.inputs.contains(&inp) {
                    return Err(RtlError::UndrivenNet {
                        net: self.net(inp).name.clone(),
                    });
                }
            }
        }
        self.combinational_order()?;
        Ok(())
    }

    /// Topological order of the combinational cells (sequential cell outputs
    /// are treated as sources).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::CombinationalLoop`] if a cycle exists.
    pub fn combinational_order(&self) -> Result<Vec<CellId>, RtlError> {
        let drivers = self.driver_map()?;
        // in-degree over combinational cells only
        let mut indeg: Vec<usize> = vec![0; self.cells.len()];
        let mut consumers: HashMap<CellId, Vec<CellId>> = HashMap::new();
        for (cid, cell) in self.cells() {
            if cell.op.is_sequential() {
                continue;
            }
            for &inp in &cell.inputs {
                if let Some(&src) = drivers.get(&inp) {
                    if !self.cell(src).op.is_sequential() {
                        indeg[cid.0 as usize] += 1;
                        consumers.entry(src).or_default().push(cid);
                    }
                }
            }
        }
        let mut queue: Vec<CellId> = self
            .cells()
            .filter(|(cid, c)| !c.op.is_sequential() && indeg[cid.0 as usize] == 0)
            .map(|(cid, _)| cid)
            .collect();
        let mut order = Vec::new();
        while let Some(cid) = queue.pop() {
            order.push(cid);
            if let Some(next) = consumers.get(&cid) {
                for &n in next {
                    indeg[n.0 as usize] -= 1;
                    if indeg[n.0 as usize] == 0 {
                        queue.push(n);
                    }
                }
            }
        }
        let comb_total = self.cells.iter().filter(|c| !c.op.is_sequential()).count();
        if order.len() != comb_total {
            // find a net on the cycle for the error message
            let on_cycle = self
                .cells()
                .find(|(cid, c)| !c.op.is_sequential() && indeg[cid.0 as usize] > 0)
                .map(|(_, c)| self.net(c.outputs[0]).name.clone())
                .unwrap_or_default();
            return Err(RtlError::CombinationalLoop { net: on_cycle });
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder_reg() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 8);
        let b = nl.add_input("b", 8);
        let s = nl.add_net("s", 8);
        let q = nl.add_net("q", 8);
        nl.add_cell("add", CellOp::Add, &[a, b], &[s]).unwrap();
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: false,
                has_reset: true,
            },
            &[s],
            &[q],
        )
        .unwrap();
        nl.mark_output(q);
        nl
    }

    #[test]
    fn validates_clean_netlist() {
        adder_reg().validate().expect("clean netlist validates");
    }

    #[test]
    fn tiled_replicates_structure() {
        let base = adder_reg();
        let tiled = base.tiled(5);
        assert_eq!(tiled.net_count(), 5 * base.net_count());
        assert_eq!(tiled.cell_count(), 5 * base.cell_count());
        assert_eq!(tiled.inputs().len(), 5 * base.inputs().len());
        assert_eq!(tiled.outputs().len(), 5 * base.outputs().len());
        tiled.validate().expect("tiled netlist stays structurally valid");
        // instance prefixes resolve to distinct nets
        let a0 = tiled.net_by_name("u0_a").expect("copy 0 input exists");
        let a4 = tiled.net_by_name("u4_a").expect("copy 4 input exists");
        assert_ne!(a0, a4);
        assert_eq!(tiled.net(a0).width, 8);
    }

    #[test]
    fn tiled_zero_copies_is_empty() {
        let tiled = adder_reg().tiled(0);
        assert_eq!(tiled.net_count(), 0);
        assert_eq!(tiled.cell_count(), 0);
    }

    #[test]
    fn detects_multiple_drivers() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 8);
        let y = nl.add_net("y", 8);
        nl.add_cell("c1", CellOp::Not, &[a], &[y]).unwrap();
        nl.add_cell("c2", CellOp::Not, &[a], &[y]).unwrap();
        assert!(matches!(
            nl.validate(),
            Err(RtlError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn detects_undriven_net() {
        let mut nl = Netlist::new("t");
        let ghost = nl.add_net("ghost", 8);
        let y = nl.add_net("y", 8);
        nl.add_cell("c", CellOp::Not, &[ghost], &[y]).unwrap();
        assert!(matches!(nl.validate(), Err(RtlError::UndrivenNet { .. })));
    }

    #[test]
    fn detects_combinational_loop() {
        let mut nl = Netlist::new("t");
        let x = nl.add_net("x", 8);
        let y = nl.add_net("y", 8);
        nl.add_cell("c1", CellOp::Not, &[x], &[y]).unwrap();
        nl.add_cell("c2", CellOp::Not, &[y], &[x]).unwrap();
        assert!(matches!(
            nl.validate(),
            Err(RtlError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn register_breaks_loop() {
        // x -> not -> y -> reg -> x is a legal sequential loop
        let mut nl = Netlist::new("t");
        let x = nl.add_net("x", 8);
        let y = nl.add_net("y", 8);
        nl.add_cell("c1", CellOp::Not, &[x], &[y]).unwrap();
        nl.add_cell(
            "r",
            CellOp::Register {
                has_enable: false,
                has_reset: true,
            },
            &[y],
            &[x],
        )
        .unwrap();
        nl.validate().expect("sequential loop is legal");
    }

    #[test]
    fn arity_checked() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 8);
        let y = nl.add_net("y", 8);
        let r = nl.add_cell("bad", CellOp::Add, &[a], &[y]);
        assert!(matches!(r, Err(RtlError::ArityMismatch { .. })));
    }

    #[test]
    fn duplicate_net_names_disambiguated() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("x", 8);
        let b = nl.add_net("x", 8);
        assert_ne!(a, b);
        assert_ne!(nl.net(a).name, nl.net(b).name);
    }

    #[test]
    fn stats_counts() {
        let nl = adder_reg();
        let s = nl.stats();
        assert_eq!(s.cells, 2);
        assert_eq!(s.sequential, 1);
        assert_eq!(s.register_bits, 8);
        assert_eq!(s.dsp_candidates, 0);
    }

    #[test]
    fn topo_order_respects_deps() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a", 8);
        let m1 = nl.add_net("m1", 8);
        let m2 = nl.add_net("m2", 8);
        nl.add_cell("c1", CellOp::Not, &[a], &[m1]).unwrap();
        nl.add_cell("c2", CellOp::Not, &[m1], &[m2]).unwrap();
        let order = nl.combinational_order().unwrap();
        let pos = |cid: CellId| order.iter().position(|&c| c == cid).unwrap();
        assert!(pos(CellId(0)) < pos(CellId(1)));
    }
}
