//! # hermes-rtl
//!
//! Register-transfer-level substrate for the HERMES ecosystem: a library of
//! parameterizable hardware component templates, a coarse-cell netlist
//! representation, a cycle-accurate two-phase simulator, and Verilog/VHDL
//! text-emission helpers.
//!
//! This crate plays the role of the RTL component library that the paper's
//! Bambu HLS flow draws its functional, storage, and communication units
//! from, and of the RTL simulation environment used to validate generated
//! designs before logic synthesis.
//!
//! ## Example
//!
//! Build a 2-cell netlist (an adder feeding a register) and simulate it:
//!
//! ```
//! use hermes_rtl::netlist::{Netlist, CellOp};
//! use hermes_rtl::sim::Simulator;
//!
//! # fn main() -> Result<(), hermes_rtl::RtlError> {
//! let mut nl = Netlist::new("accumulate");
//! let a = nl.add_input("a", 8);
//! let b = nl.add_input("b", 8);
//! let sum = nl.add_net("sum", 8);
//! let q = nl.add_net("q", 8);
//! nl.add_cell("add0", CellOp::Add, &[a, b], &[sum])?;
//! nl.add_cell("reg0", CellOp::Register { has_enable: false, has_reset: true },
//!             &[sum], &[q])?;
//! nl.mark_output(q);
//! let mut sim = Simulator::new(&nl)?;
//! sim.poke("a", 3)?;
//! sim.poke("b", 4)?;
//! sim.step()?; // clock edge: register captures 7
//! assert_eq!(sim.peek("q")?, 7);
//! # Ok(())
//! # }
//! ```

pub mod component;
pub mod netlist;
pub mod rng;
pub mod sim;
pub mod verilog;
pub mod vhdl;

use std::fmt;

/// Errors produced by netlist construction, validation, and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlError {
    /// A cell was connected to the wrong number of input or output nets.
    ArityMismatch {
        /// Name of the offending cell.
        cell: String,
        /// What the cell operation expected.
        expected: String,
        /// What was provided.
        got: String,
    },
    /// Two cells (or a cell and a primary input) drive the same net.
    MultipleDrivers {
        /// Name of the multiply-driven net.
        net: String,
    },
    /// A net is read but never driven.
    UndrivenNet {
        /// Name of the floating net.
        net: String,
    },
    /// The combinational portion of the netlist contains a cycle.
    CombinationalLoop {
        /// Name of a net on the cycle.
        net: String,
    },
    /// A name lookup failed.
    UnknownName {
        /// The name that could not be resolved.
        name: String,
    },
    /// A width constraint was violated.
    WidthMismatch {
        /// Context of the violation.
        context: String,
    },
    /// An operand width above 64 bits was requested.
    UnsupportedWidth {
        /// The requested width.
        width: u32,
    },
    /// An environment knob held a value outside its accepted vocabulary.
    /// Strict knobs (e.g. `HERMES_PACKED_SETTLE`) refuse to guess: a typo
    /// must not silently change which engine runs.
    BadEnvKnob {
        /// The environment variable name.
        name: String,
        /// The rejected value.
        value: String,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::ArityMismatch { cell, expected, got } => {
                write!(f, "cell `{cell}` arity mismatch: expected {expected}, got {got}")
            }
            RtlError::MultipleDrivers { net } => write!(f, "net `{net}` has multiple drivers"),
            RtlError::UndrivenNet { net } => write!(f, "net `{net}` is read but never driven"),
            RtlError::CombinationalLoop { net } => {
                write!(f, "combinational loop through net `{net}`")
            }
            RtlError::UnknownName { name } => write!(f, "unknown name `{name}`"),
            RtlError::WidthMismatch { context } => write!(f, "width mismatch: {context}"),
            RtlError::UnsupportedWidth { width } => {
                write!(f, "unsupported width {width} (maximum is 64)")
            }
            RtlError::BadEnvKnob { name, value } => {
                write!(f, "{name}={value:?} is not a recognized setting (use on/1/true or off/0/false)")
            }
        }
    }
}

impl std::error::Error for RtlError {}

/// Mask `value` to the low `width` bits.
///
/// Widths of 64 and above return the value unchanged; width 0 returns 0.
#[inline]
pub fn mask(value: u64, width: u32) -> u64 {
    match width {
        0 => 0,
        w if w >= 64 => value,
        w => value & ((1u64 << w) - 1),
    }
}

/// Sign-extend the low `width` bits of `value` to an `i64`.
#[inline]
pub fn sign_extend(value: u64, width: u32) -> i64 {
    if width == 0 {
        return 0;
    }
    if width >= 64 {
        return value as i64;
    }
    let shift = 64 - width;
    ((value << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_basic() {
        assert_eq!(mask(0xFF, 4), 0xF);
        assert_eq!(mask(0x1234, 8), 0x34);
        assert_eq!(mask(u64::MAX, 64), u64::MAX);
        assert_eq!(mask(5, 0), 0);
    }

    #[test]
    fn sign_extend_basic() {
        assert_eq!(sign_extend(0xF, 4), -1);
        assert_eq!(sign_extend(0x7, 4), 7);
        assert_eq!(sign_extend(0x80, 8), -128);
        assert_eq!(sign_extend(u64::MAX, 64), -1);
        assert_eq!(sign_extend(0, 0), 0);
    }

    #[test]
    fn error_display_is_nonempty() {
        let errs = [
            RtlError::MultipleDrivers { net: "x".into() },
            RtlError::UndrivenNet { net: "y".into() },
            RtlError::UnknownName { name: "z".into() },
            RtlError::UnsupportedWidth { width: 128 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
