//! Property tests: the cycle simulator's combinational evaluation must
//! agree with the component library's behavioural models for every
//! operation, width, and operand value (deterministic `DetRng` loops —
//! no external dependencies).

use hermes_rtl::component::{ComponentKind, ComponentTemplate, Comparison};
use hermes_rtl::netlist::{CellOp, Netlist};
use hermes_rtl::rng::DetRng;
use hermes_rtl::sim::Simulator;

fn single_cell_netlist(op: CellOp, width: u32, out_width: u32) -> Netlist {
    let mut nl = Netlist::new("prop");
    let a = nl.add_input("a", width);
    let b = nl.add_input("b", width);
    let y = nl.add_net("y", out_width);
    let (ni, _) = op.arity();
    match ni {
        1 => nl.add_cell("c", op, &[a], &[y]).expect("arity"),
        2 => nl.add_cell("c", op, &[a, b], &[y]).expect("arity"),
        _ => unreachable!("only 1/2-input ops tested here"),
    };
    nl.mark_output(y);
    nl
}

#[test]
fn simulator_matches_component_models() {
    let mut rng = DetRng::new(0x5131);
    for case in 0..128usize {
        let a = rng.next_u64();
        let b = rng.next_u64();
        let width = rng.range_u64(1, 65) as u32;
        let op_sel = case % 12;
        let (cell_op, kind): (CellOp, ComponentKind) = match op_sel {
            0 => (CellOp::Add, ComponentKind::Adder),
            1 => (CellOp::Sub, ComponentKind::Subtractor),
            2 => (CellOp::Mul, ComponentKind::Multiplier),
            3 => (CellOp::Div, ComponentKind::Divider),
            4 => (CellOp::Mod, ComponentKind::Modulo),
            5 => (CellOp::And, ComponentKind::And),
            6 => (CellOp::Or, ComponentKind::Or),
            7 => (CellOp::Xor, ComponentKind::Xor),
            8 => (
                CellOp::Cmp(Comparison::LtS),
                ComponentKind::Comparator(Comparison::LtS),
            ),
            9 => (
                CellOp::Cmp(Comparison::GeU),
                ComponentKind::Comparator(Comparison::GeU),
            ),
            10 => (
                CellOp::Cmp(Comparison::Eq),
                ComponentKind::Comparator(Comparison::Eq),
            ),
            _ => (CellOp::Not, ComponentKind::Not),
        };
        let out_width = match cell_op {
            CellOp::Cmp(_) => 1,
            _ => width,
        };
        let template =
            ComponentTemplate::with_widths(kind, width, out_width, 0).expect("valid widths");
        let nl = single_cell_netlist(cell_op.clone(), width, out_width);
        let mut sim = Simulator::new(&nl).expect("valid netlist");
        sim.poke("a", a).expect("input a");
        let expected = if template.input_arity() == 1 {
            template.evaluate(&[hermes_rtl::mask(a, width)])
        } else {
            sim.poke("b", b).expect("input b");
            template.evaluate(&[hermes_rtl::mask(a, width), hermes_rtl::mask(b, width)])
        };
        assert_eq!(
            sim.peek("y").expect("output"),
            expected,
            "op {cell_op:?} width {width} a={a:#x} b={b:#x}"
        );
    }
}

/// Registers are transparent pipelines: a chain of N registers delays a
/// value by exactly N cycles.
#[test]
fn register_chain_is_a_delay_line() {
    let mut rng = DetRng::new(0x5132);
    for _ in 0..64 {
        let value = rng.next_u64();
        let width = rng.range_u64(1, 65) as u32;
        let depth = rng.range_u64(1, 6) as usize;
        let mut nl = Netlist::new("chain");
        let mut cur = nl.add_input("d", width);
        for i in 0..depth {
            let q = nl.add_net(format!("q{i}"), width);
            nl.add_cell(
                format!("r{i}"),
                CellOp::Register {
                    has_enable: false,
                    has_reset: true,
                },
                &[cur],
                &[q],
            )
            .expect("arity");
            cur = q;
        }
        nl.mark_output(cur);
        let last = format!("q{}", depth - 1);
        let mut sim = Simulator::new(&nl).expect("valid");
        sim.poke("d", value).expect("input");
        for _ in 0..depth - 1 {
            sim.step().expect("step");
        }
        // value not yet at the end after depth-1 edges (unless it was 0)
        let early = sim.peek(&last).expect("out");
        sim.step().expect("step");
        let arrived = sim.peek(&last).expect("out");
        assert_eq!(arrived, hermes_rtl::mask(value, width));
        if hermes_rtl::mask(value, width) != 0 {
            assert_eq!(early, 0, "value must not arrive early");
        }
    }
}
