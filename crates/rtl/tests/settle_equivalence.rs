//! Differential property test for activity-gated settling: on randomly
//! generated small netlists, the event-driven simulator must agree with a
//! forced full-program simulator on every net value, every register's
//! stored state, and every trace row, across 1000 cycles of random pokes
//! and occasional resets (deterministic `DetRng` loops — no external
//! dependencies).

use hermes_rtl::component::Comparison;
use hermes_rtl::netlist::{CellId, CellOp, NetId, Netlist};
use hermes_rtl::rng::DetRng;
use hermes_rtl::sim::Simulator;

/// Build a random, structurally valid netlist: combinational cells only
/// read already-created nets (so the graph is acyclic by construction),
/// registers and RAMs may read anything and source fresh nets.
fn random_netlist(rng: &mut DetRng) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mut pool: Vec<NetId> = Vec::new();
    for i in 0..rng.range_u64(1, 5) {
        pool.push(nl.add_input(format!("in{i}"), rng.range_u64(1, 33) as u32));
    }
    let cells = rng.range_u64(5, 40);
    for c in 0..cells {
        let pick = |rng: &mut DetRng, pool: &[NetId]| pool[rng.below(pool.len() as u64) as usize];
        let w = |rng: &mut DetRng| rng.range_u64(1, 33) as u32;
        let kind = rng.below(20);
        let a = pick(rng, &pool);
        let b = pick(rng, &pool);
        let sel = pick(rng, &pool);
        let out = match kind {
            0 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Add, &[a, b], &[y]).unwrap();
                y
            }
            1 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Sub, &[a, b], &[y]).unwrap();
                y
            }
            2 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Mul, &[a, b], &[y]).unwrap();
                y
            }
            3 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Div, &[a, b], &[y]).unwrap();
                y
            }
            4 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Mod, &[a, b], &[y]).unwrap();
                y
            }
            5 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::And, &[a, b], &[y]).unwrap();
                y
            }
            6 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Or, &[a, b], &[y]).unwrap();
                y
            }
            7 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Xor, &[a, b], &[y]).unwrap();
                y
            }
            8 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Not, &[a], &[y]).unwrap();
                y
            }
            9 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Shl, &[a, b], &[y]).unwrap();
                y
            }
            10 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::ShrL, &[a, b], &[y]).unwrap();
                y
            }
            11 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::ShrA, &[a, b], &[y]).unwrap();
                y
            }
            12 => {
                let cmp = match rng.below(4) {
                    0 => Comparison::Eq,
                    1 => Comparison::LtS,
                    2 => Comparison::GeU,
                    _ => Comparison::Ne,
                };
                let y = nl.add_net(format!("y{c}"), 1);
                nl.add_cell(format!("c{c}"), CellOp::Cmp(cmp), &[a, b], &[y]).unwrap();
                y
            }
            13 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Mux, &[sel, a, b], &[y]).unwrap();
                y
            }
            14 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(
                    format!("c{c}"),
                    CellOp::Const { value: rng.next_u64() },
                    &[],
                    &[y],
                )
                .unwrap();
                y
            }
            15 => {
                let aw = nl.net(a).width;
                let lo = rng.below(u64::from(aw)) as u32;
                let hi = lo + rng.below(u64::from(aw - lo)) as u32;
                let y = nl.add_net(format!("y{c}"), hi - lo + 1);
                nl.add_cell(format!("c{c}"), CellOp::Slice { lo, hi }, &[a], &[y]).unwrap();
                y
            }
            16 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::ZeroExtend, &[a], &[y]).unwrap();
                y
            }
            17 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::SignExtend, &[a], &[y]).unwrap();
                y
            }
            18 => {
                let has_enable = rng.chance(0.5);
                let q = nl.add_net(format!("q{c}"), w(rng));
                let ins: Vec<NetId> = if has_enable { vec![a, sel] } else { vec![a] };
                nl.add_cell(
                    format!("c{c}"),
                    CellOp::Register {
                        has_enable,
                        has_reset: rng.chance(0.7),
                    },
                    &ins,
                    &[q],
                )
                .unwrap();
                q
            }
            _ => {
                let depth = rng.range_u64(4, 17) as u32;
                let dw = w(rng);
                let init: Vec<u64> = (0..depth).map(|_| rng.next_u64()).collect();
                let ra = nl.add_net(format!("ra{c}"), dw);
                let rb = nl.add_net(format!("rb{c}"), dw);
                let (wa, wb) = (pick(rng, &pool), pick(rng, &pool));
                let (ea, eb) = (pick(rng, &pool), pick(rng, &pool));
                nl.add_cell(
                    format!("c{c}"),
                    CellOp::RamTdp { depth, init },
                    &[a, wa, ea, b, wb, eb],
                    &[ra, rb],
                )
                .unwrap();
                pool.push(ra);
                rb
            }
        };
        pool.push(out);
    }
    // mark a few nets as outputs so the netlist resembles a real module
    for _ in 0..3 {
        let n = pool[rng.below(pool.len() as u64) as usize];
        nl.mark_output(n);
    }
    nl
}

#[test]
fn event_driven_settle_equals_full_settle() {
    let mut rng = DetRng::new(0xE13_5E771E);
    for case in 0..24u64 {
        let nl = random_netlist(&mut rng);
        nl.validate().expect("generated netlist is structurally valid");
        let inputs: Vec<NetId> = nl.inputs().to_vec();
        let reg_cells: Vec<CellId> = nl
            .cells()
            .filter(|(_, c)| matches!(c.op, CellOp::Register { .. }))
            .map(|(cid, _)| cid)
            .collect();
        let traced: Vec<NetId> = nl.nets().map(|(id, _)| id).take(8).collect();

        let mut ev = Simulator::new(&nl).expect("event sim builds");
        let mut full = Simulator::new(&nl).expect("full sim builds");
        ev.set_event_driven(true);
        full.set_event_driven(false);
        ev.enable_trace(&traced);
        full.enable_trace(&traced);

        for cycle in 0..1000u64 {
            if rng.chance(0.3) {
                let id = inputs[rng.below(inputs.len() as u64) as usize];
                let v = rng.next_u64();
                ev.poke_net(id, v);
                full.poke_net(id, v);
            }
            if rng.chance(0.005) {
                ev.reset();
                full.reset();
            }
            ev.step().expect("event step");
            full.step().expect("full step");
            for (nid, _) in nl.nets() {
                assert_eq!(
                    ev.peek_net(nid),
                    full.peek_net(nid),
                    "case {case} cycle {cycle}: net {nid} diverged"
                );
            }
            for &cid in &reg_cells {
                assert_eq!(
                    ev.register_state(cid),
                    full.register_state(cid),
                    "case {case} cycle {cycle}: register {cid} diverged"
                );
            }
        }
        assert_eq!(ev.settle_passes(), full.settle_passes(), "case {case}");
        assert!(
            ev.settle_ops() <= full.settle_ops(),
            "case {case}: event-driven can never do more work"
        );
        let (te, tf) = (ev.take_trace().unwrap(), full.take_trace().unwrap());
        assert_eq!(te.rows, tf.rows, "case {case}: trace rows diverged");
        assert_eq!(
            te.render(&nl),
            tf.render(&nl),
            "case {case}: rendered traces diverged"
        );
    }
}
