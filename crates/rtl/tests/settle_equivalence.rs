//! Differential property tests for the settle engines: on randomly
//! generated netlists, the event-driven, bit-packed, and rank-partitioned
//! simulators must agree with a forced scalar full-program simulator on
//! every net value, every register's stored state, and every trace row,
//! across long runs of random pokes and mid-run resets (deterministic
//! `DetRng` loops — no external dependencies). Generator profiles bias
//! toward RAM-heavy, wide-bus, and 1-bit-heavy shapes so each engine's
//! fast paths (packed words, aligned slots, partition claiming) are all
//! exercised.

use hermes_rtl::component::Comparison;
use hermes_rtl::netlist::{CellId, CellOp, NetId, Netlist};
use hermes_rtl::rng::DetRng;
use hermes_rtl::sim::Simulator;

/// Shape bias for the random netlist generator.
#[derive(Clone, Copy)]
struct Profile {
    /// Net width range (inclusive low, exclusive high).
    w_lo: u64,
    w_hi: u64,
    /// Probability that a width roll is forced to 1 bit (packing fodder).
    bit_bias: f64,
    /// Cell count range.
    cells_lo: u64,
    cells_hi: u64,
    /// Extra kind-roll weight landing on the RAM arm (0 = baseline 1/20).
    ram_bias: u64,
    /// RAM depth range high bound.
    ram_depth_hi: u64,
}

const BASELINE: Profile = Profile {
    w_lo: 1,
    w_hi: 33,
    bit_bias: 0.0,
    cells_lo: 5,
    cells_hi: 40,
    ram_bias: 0,
    ram_depth_hi: 17,
};

/// RAM-dominated: every other cell is a dual-port memory, deeper than
/// the baseline, so step()'s port sampling and read-first commits get a
/// dense workout against all engines.
const RAM_HEAVY: Profile = Profile {
    ram_bias: 20,
    ram_depth_hi: 65,
    cells_lo: 8,
    cells_hi: 30,
    ..BASELINE
};

/// Wide buses only (33–64 bits): nothing packs, shifts and sign
/// arithmetic run at full width.
const WIDE_BUS: Profile = Profile {
    w_lo: 33,
    w_hi: 65,
    cells_lo: 8,
    cells_hi: 40,
    ..BASELINE
};

/// 1-bit-heavy: most nets are single-bit and the netlist is large, so
/// the compiler forms many packed words (including partial and aligned
/// ones) and the partition plan spans several ranks.
const BIT_HEAVY: Profile = Profile {
    bit_bias: 0.75,
    cells_lo: 60,
    cells_hi: 160,
    ..BASELINE
};

/// Build a random, structurally valid netlist: combinational cells only
/// read already-created nets (so the graph is acyclic by construction),
/// registers and RAMs may read anything and source fresh nets.
fn random_netlist(rng: &mut DetRng) -> Netlist {
    random_netlist_with(rng, BASELINE)
}

fn random_netlist_with(rng: &mut DetRng, profile: Profile) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mut pool: Vec<NetId> = Vec::new();
    for i in 0..rng.range_u64(1, 5) {
        pool.push(nl.add_input(format!("in{i}"), rng.range_u64(profile.w_lo, profile.w_hi) as u32));
    }
    let cells = rng.range_u64(profile.cells_lo, profile.cells_hi);
    for c in 0..cells {
        let pick = |rng: &mut DetRng, pool: &[NetId]| pool[rng.below(pool.len() as u64) as usize];
        let w = |rng: &mut DetRng| {
            if rng.chance(profile.bit_bias) {
                1
            } else {
                rng.range_u64(profile.w_lo, profile.w_hi) as u32
            }
        };
        // rolls past the named arms land on the RAM arm; `ram_bias`
        // widens that tail
        let kind = rng.below(20 + profile.ram_bias);
        let a = pick(rng, &pool);
        let b = pick(rng, &pool);
        let sel = pick(rng, &pool);
        let out = match kind {
            0 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Add, &[a, b], &[y]).unwrap();
                y
            }
            1 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Sub, &[a, b], &[y]).unwrap();
                y
            }
            2 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Mul, &[a, b], &[y]).unwrap();
                y
            }
            3 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Div, &[a, b], &[y]).unwrap();
                y
            }
            4 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Mod, &[a, b], &[y]).unwrap();
                y
            }
            5 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::And, &[a, b], &[y]).unwrap();
                y
            }
            6 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Or, &[a, b], &[y]).unwrap();
                y
            }
            7 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Xor, &[a, b], &[y]).unwrap();
                y
            }
            8 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Not, &[a], &[y]).unwrap();
                y
            }
            9 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Shl, &[a, b], &[y]).unwrap();
                y
            }
            10 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::ShrL, &[a, b], &[y]).unwrap();
                y
            }
            11 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::ShrA, &[a, b], &[y]).unwrap();
                y
            }
            12 => {
                let cmp = match rng.below(4) {
                    0 => Comparison::Eq,
                    1 => Comparison::LtS,
                    2 => Comparison::GeU,
                    _ => Comparison::Ne,
                };
                let y = nl.add_net(format!("y{c}"), 1);
                nl.add_cell(format!("c{c}"), CellOp::Cmp(cmp), &[a, b], &[y]).unwrap();
                y
            }
            13 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::Mux, &[sel, a, b], &[y]).unwrap();
                y
            }
            14 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(
                    format!("c{c}"),
                    CellOp::Const { value: rng.next_u64() },
                    &[],
                    &[y],
                )
                .unwrap();
                y
            }
            15 => {
                let aw = nl.net(a).width;
                let lo = rng.below(u64::from(aw)) as u32;
                let hi = lo + rng.below(u64::from(aw - lo)) as u32;
                let y = nl.add_net(format!("y{c}"), hi - lo + 1);
                nl.add_cell(format!("c{c}"), CellOp::Slice { lo, hi }, &[a], &[y]).unwrap();
                y
            }
            16 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::ZeroExtend, &[a], &[y]).unwrap();
                y
            }
            17 => {
                let y = nl.add_net(format!("y{c}"), w(rng));
                nl.add_cell(format!("c{c}"), CellOp::SignExtend, &[a], &[y]).unwrap();
                y
            }
            18 => {
                let has_enable = rng.chance(0.5);
                let q = nl.add_net(format!("q{c}"), w(rng));
                let ins: Vec<NetId> = if has_enable { vec![a, sel] } else { vec![a] };
                nl.add_cell(
                    format!("c{c}"),
                    CellOp::Register {
                        has_enable,
                        has_reset: rng.chance(0.7),
                    },
                    &ins,
                    &[q],
                )
                .unwrap();
                q
            }
            _ => {
                let depth = rng.range_u64(4, profile.ram_depth_hi) as u32;
                let dw = w(rng);
                let init: Vec<u64> = (0..depth).map(|_| rng.next_u64()).collect();
                let ra = nl.add_net(format!("ra{c}"), dw);
                let rb = nl.add_net(format!("rb{c}"), dw);
                let (wa, wb) = (pick(rng, &pool), pick(rng, &pool));
                let (ea, eb) = (pick(rng, &pool), pick(rng, &pool));
                nl.add_cell(
                    format!("c{c}"),
                    CellOp::RamTdp { depth, init },
                    &[a, wa, ea, b, wb, eb],
                    &[ra, rb],
                )
                .unwrap();
                pool.push(ra);
                rb
            }
        };
        pool.push(out);
    }
    // mark a few nets as outputs so the netlist resembles a real module
    for _ in 0..3 {
        let n = pool[rng.below(pool.len() as u64) as usize];
        nl.mark_output(n);
    }
    nl
}

#[test]
fn event_driven_settle_equals_full_settle() {
    let mut rng = DetRng::new(0xE13_5E771E);
    for case in 0..24u64 {
        let nl = random_netlist(&mut rng);
        nl.validate().expect("generated netlist is structurally valid");
        let inputs: Vec<NetId> = nl.inputs().to_vec();
        let reg_cells: Vec<CellId> = nl
            .cells()
            .filter(|(_, c)| matches!(c.op, CellOp::Register { .. }))
            .map(|(cid, _)| cid)
            .collect();
        let traced: Vec<NetId> = nl.nets().map(|(id, _)| id).take(8).collect();

        let mut ev = Simulator::new(&nl).expect("event sim builds");
        let mut full = Simulator::new(&nl).expect("full sim builds");
        ev.set_event_driven(true);
        full.set_event_driven(false);
        ev.enable_trace(&traced);
        full.enable_trace(&traced);

        for cycle in 0..1000u64 {
            if rng.chance(0.3) {
                let id = inputs[rng.below(inputs.len() as u64) as usize];
                let v = rng.next_u64();
                ev.poke_net(id, v);
                full.poke_net(id, v);
            }
            if rng.chance(0.005) {
                ev.reset();
                full.reset();
            }
            ev.step().expect("event step");
            full.step().expect("full step");
            for (nid, _) in nl.nets() {
                assert_eq!(
                    ev.peek_net(nid),
                    full.peek_net(nid),
                    "case {case} cycle {cycle}: net {nid} diverged"
                );
            }
            for &cid in &reg_cells {
                assert_eq!(
                    ev.register_state(cid),
                    full.register_state(cid),
                    "case {case} cycle {cycle}: register {cid} diverged"
                );
            }
        }
        assert_eq!(ev.settle_passes(), full.settle_passes(), "case {case}");
        assert!(
            ev.settle_ops() <= full.settle_ops(),
            "case {case}: event-driven can never do more work"
        );
        let (te, tf) = (ev.take_trace().unwrap(), full.take_trace().unwrap());
        assert_eq!(te.rows, tf.rows, "case {case}: trace rows diverged");
        assert_eq!(
            te.render(&nl),
            tf.render(&nl),
            "case {case}: rendered traces diverged"
        );
    }
}

/// Drive a panel of simulators in lockstep through random pokes, mid-run
/// resets, and steps, asserting every net, register, and trace row stays
/// identical to the reference (index 0) throughout.
fn lockstep(
    nl: &Netlist,
    sims: &mut [(&'static str, Simulator)],
    rng: &mut DetRng,
    cycles: u64,
    reset_p: f64,
    tag: &str,
) {
    let inputs: Vec<NetId> = nl.inputs().to_vec();
    let reg_cells: Vec<CellId> = nl
        .cells()
        .filter(|(_, c)| matches!(c.op, CellOp::Register { .. }))
        .map(|(cid, _)| cid)
        .collect();
    let traced: Vec<NetId> = nl.nets().map(|(id, _)| id).take(8).collect();
    for (_, s) in sims.iter_mut() {
        s.enable_trace(&traced);
    }
    for cycle in 0..cycles {
        if !inputs.is_empty() && rng.chance(0.3) {
            let id = inputs[rng.below(inputs.len() as u64) as usize];
            let v = rng.next_u64();
            for (_, s) in sims.iter_mut() {
                s.poke_net(id, v);
            }
        }
        if rng.chance(reset_p) {
            for (_, s) in sims.iter_mut() {
                s.reset();
            }
        }
        for (_, s) in sims.iter_mut() {
            s.step().expect("step");
        }
        let (ref_name, reference) = &sims[0];
        for (name, s) in &sims[1..] {
            for (nid, _) in nl.nets() {
                assert_eq!(
                    s.peek_net(nid),
                    reference.peek_net(nid),
                    "{tag} cycle {cycle}: net {nid} diverged ({name} vs {ref_name})"
                );
            }
            for &cid in &reg_cells {
                assert_eq!(
                    s.register_state(cid),
                    reference.register_state(cid),
                    "{tag} cycle {cycle}: register {cid} diverged ({name} vs {ref_name})"
                );
            }
        }
    }
    let reference = sims[0].1.take_trace().unwrap();
    for (name, s) in &mut sims[1..] {
        let t = s.take_trace().unwrap();
        assert_eq!(t.rows, reference.rows, "{tag}: trace rows diverged ({name})");
    }
}

/// Triple check across generator profiles: packed-event vs scalar-event
/// vs scalar-full must stay bit-identical on RAM-heavy, wide-bus, and
/// 1-bit-heavy netlists through frequent mid-run resets.
#[test]
fn packed_scalar_full_triple_check() {
    let mut rng = DetRng::new(0xE16_7121);
    for (pname, profile) in [
        ("ram_heavy", RAM_HEAVY),
        ("wide_bus", WIDE_BUS),
        ("bit_heavy", BIT_HEAVY),
    ] {
        for case in 0..8u64 {
            let nl = random_netlist_with(&mut rng, profile);
            nl.validate().expect("generated netlist is structurally valid");
            let mut full = Simulator::new_with_packing(&nl, false).expect("full sim");
            full.set_event_driven(false);
            let packed = Simulator::new_with_packing(&nl, true).expect("packed sim");
            let scalar = Simulator::new_with_packing(&nl, true).expect("scalar sim");
            let mut scalar = scalar;
            // keep one event-driven sim genuinely scalar even on netlists
            // where the compiler would pack
            if scalar.packed_words() > 0 {
                scalar = Simulator::new_with_packing(&nl, false).expect("scalar rebuild");
            }
            let mut sims = [
                ("scalar_full", full),
                ("packed_event", packed),
                ("scalar_event", scalar),
            ];
            lockstep(
                &nl,
                &mut sims,
                &mut rng,
                400,
                0.02,
                &format!("{pname} case {case}"),
            );
        }
    }
}

/// Partitioned mode (grain forced to 1 so every pass engages) must match
/// the serial engine at several worker counts, packed and scalar alike.
#[test]
fn partitioned_matches_serial_across_jobs() {
    let mut rng = DetRng::new(0xE16_9A27);
    for (pname, profile) in [("bit_heavy", BIT_HEAVY), ("ram_heavy", RAM_HEAVY)] {
        for case in 0..6u64 {
            let nl = random_netlist_with(&mut rng, profile);
            nl.validate().expect("generated netlist is structurally valid");
            let serial = Simulator::new_with_packing(&nl, true).expect("serial sim");
            let part = |jobs: usize, pack: bool| {
                let mut s = Simulator::new_with_packing(&nl, pack).expect("partitioned sim");
                s.set_partition_grain(1);
                s.set_settle_jobs(jobs);
                s
            };
            let mut sims = [
                ("serial", serial),
                ("packed_j2", part(2, true)),
                ("packed_j4", part(4, true)),
                ("scalar_j4", part(4, false)),
            ];
            lockstep(
                &nl,
                &mut sims,
                &mut rng,
                250,
                0.02,
                &format!("{pname} case {case}"),
            );
            // identical counters at every worker count (engaged passes
            // only exist where the plan has >1 partition)
            let (j2, j4) = (&sims[1].1, &sims[2].1);
            assert_eq!(j2.settle_ops(), j4.settle_ops(), "{pname} case {case}");
            assert_eq!(
                j2.settle_parallel_ops(),
                j4.settle_parallel_ops(),
                "{pname} case {case}"
            );
            assert_eq!(
                j2.settle_parallel_passes(),
                j4.settle_parallel_passes(),
                "{pname} case {case}"
            );
        }
    }
}
