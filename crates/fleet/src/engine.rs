//! The fleet engine: one balancer, N shard engines, one timeline.
//!
//! Every shard is an independent [`ServeEngine`] (own admission queue,
//! own accelerator pool) that the fleet drives externally through the
//! serve crate's stepping API (`submit`/`advance`/`next_due`). The fleet
//! itself runs on a single [`hermes_kernel::Scheduler`] timeline with
//! five timer domains — arrival, shard, chaos, scaler, revive — popped in
//! deterministic `(time, domain, seq)` order, so the whole fleet is as
//! replayable as one engine: byte-identical across `--jobs` and across
//! the `HERMES_EVENT_KERNEL` knob.
//!
//! Routing: a request's tenant hashes onto the consistent-hash
//! [`HashRing`]; that home shard takes it unless the home's queue
//! pressure is at the power-of-two-choices threshold, in which case a
//! second deterministic candidate is consulted and the less-loaded of
//! the two wins. Saturated shards still reject at admission (the
//! balancer never queues), so fleet-wide saturation degrades to
//! accounted shedding, never deadlock.
//!
//! Failover: a `ShardKill` fault evacuates the victim's queued and
//! in-flight requests and re-offers them to surviving shards through the
//! same routing path (counted `failover_rerouted`); with the whole ring
//! down they are accounted as balancer-shed. The victim rejoins the ring
//! after its outage.
//!
//! Elasticity: the [`Autoscaler`] reads the p99 of the *window* of
//! served-latency observations added since its last evaluation (a bucket
//! delta over the merged per-shard histograms) and either spawns a shard
//! or drains one — the drained shard leaves the ring, finishes what it
//! holds, and is only then retired (drain-then-kill).

use crate::ring::HashRing;
use crate::scaler::{Autoscaler, FleetSample, ScaleAction, ScalerConfig};
use crate::{mix64, Tick};
use hermes_chaos::plan::{FaultKind, FaultPlan};
use hermes_kernel::{DomainId, DomainRegistry, Scheduler, WheelStats};
use hermes_obs::{ClockDomain, Histogram, Recorder};
use hermes_serve::engine::{ServeConfig, ServeEngine, ServeReport};
use hermes_serve::model::AcceleratorModel;
use hermes_serve::request::Request;

/// Salt separating tenant-key hashing from every other mix64 use.
const TENANT_SALT: u64 = 0x7e4a_4a17_5a1f_ed01;
/// Salt deriving the second power-of-two-choices candidate.
const PO2C_SALT: u64 = 0x0a17_e44a_7e5a_1f0d;

/// Fleet-level configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Initial shard count.
    pub shards: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Home-shard queue pressure (queued + pending) at or above which the
    /// power-of-two-choices fallback consults a second candidate.
    pub po2c_threshold: usize,
    /// Per-shard serving configuration.
    pub serve: ServeConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            vnodes: 128,
            po2c_threshold: 8,
            serve: ServeConfig::default(),
        }
    }
}

/// One shard's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// On the ring, serving.
    Live,
    /// Killed by chaos; off the ring until `until`.
    Dead {
        /// First tick the shard may rejoin the ring.
        until: Tick,
    },
    /// Scale-down in progress: off the ring, finishing what it holds.
    Draining,
    /// Drained and finished; its report is folded into the fleet's.
    Retired,
}

struct Shard {
    engine: ServeEngine,
    state: ShardState,
    /// Set at retirement (drain-then-kill); live shards finish at the end.
    report: Option<ServeReport>,
}

/// The fleet timers posted into the kernel, one domain each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FleetTimer {
    /// Next request reaches the balancer.
    Arrival,
    /// Shard `i` has work due (its `next_due`).
    Shard(usize),
    /// A scheduled chaos fault.
    Chaos,
    /// The next autoscaler evaluation.
    Scaler,
    /// Shard `i`'s outage ends.
    Revive(usize),
}

struct FleetDomains {
    arrival: DomainId,
    shard: DomainId,
    chaos: DomainId,
    scaler: DomainId,
    revive: DomainId,
}

impl FleetDomains {
    fn register() -> Self {
        let mut reg = DomainRegistry::new();
        FleetDomains {
            arrival: reg.register("arrival"),
            shard: reg.register("shard"),
            chaos: reg.register("chaos"),
            scaler: reg.register("scaler"),
            revive: reg.register("revive"),
        }
    }
}

/// Last posted due tick per timer kind (see the serve engine's memo).
#[derive(Debug, Default)]
struct FleetMemo {
    arrival: Option<Tick>,
    shard: Vec<Option<Tick>>,
    scaler: Option<Tick>,
}

/// The accounted outcome of one fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    /// Requests offered to the balancer (the whole arrival stream).
    pub offered: u64,
    /// Served across shards.
    pub served: u64,
    /// Shed across shards (all reasons).
    pub shed: u64,
    /// Rejected across shards (queue-full, quota, draining).
    pub rejected: u64,
    /// Settled at the balancer because no shard was routable (arrival or
    /// failover with an empty ring).
    pub balancer_shed: u64,
    /// Requests evacuated from killed shards and re-offered to survivors.
    pub failover_rerouted: u64,
    /// Requests re-queued inside shards out of killed pool batches.
    pub requeued: u64,
    /// Shard-kill faults applied.
    pub shard_kills: u64,
    /// Shards that rejoined the ring after an outage.
    pub revives: u64,
    /// Autoscaler scale-up actions taken.
    pub scale_ups: u64,
    /// Completed drain-then-kill scale-downs.
    pub scale_downs: u64,
    /// Requests routed per shard (every shard ever spawned, index order).
    pub routed: Vec<u64>,
    /// Requests the power-of-two-choices fallback diverted off their
    /// home shard.
    pub routed_po2c: u64,
    /// Batches dispatched across shards.
    pub batches: u64,
    /// Items across dispatched batches.
    pub batch_items: u64,
    /// Tick of the last processed fleet event.
    pub makespan: Tick,
    /// p50 served latency over the merged per-shard histograms.
    pub p50_latency: u64,
    /// p99 served latency over the merged per-shard histograms.
    pub p99_latency: u64,
    /// Per-shard output checksums folded in index order.
    pub output_checksum: u64,
    /// Every shard's own report, index order.
    pub shard_reports: Vec<ServeReport>,
}

impl FleetReport {
    /// The fleet-wide accounting invariant: every offered request ended
    /// in exactly one place.
    pub fn accounted(&self) -> bool {
        self.served + self.shed + self.rejected + self.balancer_shed == self.offered
    }

    /// Routing skew: `max(routed) / mean(routed)` in fixed-point
    /// hundredths over every shard ever spawned (100 = perfectly even).
    pub fn skew_x100(&self) -> u64 {
        let sum: u64 = self.routed.iter().sum();
        let max = self.routed.iter().copied().max().unwrap_or(0);
        if sum == 0 {
            return 100;
        }
        max * 100 * self.routed.len() as u64 / sum
    }

    /// Deterministic multi-line rendering — the byte-identity artifact
    /// the CI jobs/kernel-knob gates diff. Includes every shard's own
    /// render, so a single diverging shard is immediately visible.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "fleet: shards {} offered {} served {} shed {} rejected {} balancer-shed {}\n",
            self.shard_reports.len(),
            self.offered,
            self.served,
            self.shed,
            self.rejected,
            self.balancer_shed,
        ));
        s.push_str(&format!(
            "routing: routed {:?} po2c {} skew-x100 {}\n",
            self.routed,
            self.routed_po2c,
            self.skew_x100(),
        ));
        s.push_str(&format!(
            "failover: kills {} rerouted {} revives {} requeued {}\n",
            self.shard_kills, self.failover_rerouted, self.revives, self.requeued,
        ));
        s.push_str(&format!(
            "autoscale: ups {} downs {}\n",
            self.scale_ups, self.scale_downs,
        ));
        s.push_str(&format!(
            "batches {} items {} makespan {} p50 {} p99 {}\n",
            self.batches, self.batch_items, self.makespan, self.p50_latency, self.p99_latency,
        ));
        for (i, r) in self.shard_reports.iter().enumerate() {
            s.push_str(&format!("--- shard {i}\n"));
            s.push_str(&r.render());
        }
        s.push_str(&format!("output-checksum {:#018x}\n", self.output_checksum));
        s
    }
}

/// The sharded serving fleet.
pub struct FleetEngine {
    cfg: FleetConfig,
    model: AcceleratorModel,
    arrivals: Vec<Request>,
    cursor: usize,
    shards: Vec<Shard>,
    ring: HashRing,
    plan: Option<FaultPlan>,
    scaler: Option<Autoscaler>,
    obs: Recorder,
    now: Tick,
    event_kernel: bool,
    memo: FleetMemo,
    /// `(revive tick, shard)` pairs awaiting a timer post.
    pending_revives: Vec<(Tick, usize)>,
    next_eval: Tick,
    /// Cumulative merged latency snapshot at the last scaler evaluation.
    prev_latency: Option<Histogram>,
    wakes: u64,
    kernel_stats: WheelStats,
    // accounting
    offered: u64,
    balancer_shed: u64,
    failover_rerouted: u64,
    shard_kills: u64,
    revives: u64,
    scale_ups: u64,
    scale_downs: u64,
    routed: Vec<u64>,
    routed_po2c: u64,
}

impl FleetEngine {
    /// A fleet over `arrivals` (any order; sorted by `(arrival, id)`
    /// internally) with `cfg.shards` initial shards.
    pub fn new(cfg: FleetConfig, model: AcceleratorModel, mut arrivals: Vec<Request>) -> Self {
        arrivals.sort_by_key(|r| (r.arrival, r.id));
        let mut fleet = FleetEngine {
            ring: HashRing::new(cfg.vnodes),
            shards: Vec::new(),
            plan: None,
            scaler: None,
            obs: Recorder::disabled(),
            now: 0,
            event_kernel: hermes_kernel::event_kernel_enabled(),
            memo: FleetMemo::default(),
            pending_revives: Vec::new(),
            next_eval: 0,
            prev_latency: None,
            wakes: 0,
            kernel_stats: WheelStats::default(),
            cursor: 0,
            offered: 0,
            balancer_shed: 0,
            failover_rerouted: 0,
            shard_kills: 0,
            revives: 0,
            scale_ups: 0,
            scale_downs: 0,
            routed: Vec::new(),
            routed_po2c: 0,
            model,
            arrivals,
            cfg,
        };
        for _ in 0..fleet.cfg.shards.max(1) {
            fleet.spawn_shard();
        }
        fleet
    }

    /// Attach a chaos plan; `ShardKill` events are applied at their tick,
    /// every other kind is ignored (they target other campaigns).
    #[must_use]
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Attach an autoscaler evaluating every `cfg.eval_interval` ticks.
    #[must_use]
    pub fn with_scaler(mut self, cfg: ScalerConfig) -> Self {
        self.next_eval = cfg.eval_interval.max(1);
        self.scaler = Some(Autoscaler::new(cfg));
        self
    }

    /// Attach a recorder. Each shard already spawned (and every later
    /// one) records under a `shard<i>` namespace via
    /// [`Recorder::child_named`]; their streams are absorbed into this
    /// recorder at retirement/finish.
    #[must_use]
    pub fn with_recorder(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let child = self.obs.child_named(&format!("shard{i}"));
            shard.engine.set_recorder(child);
        }
        self
    }

    /// Override the `HERMES_EVENT_KERNEL` selection for the fleet and
    /// every shard (results are byte-identical either way).
    #[must_use]
    pub fn with_event_kernel(mut self, on: bool) -> Self {
        self.event_kernel = on;
        for shard in &mut self.shards {
            shard.engine.set_event_kernel(on);
        }
        self
    }

    /// Ticks the fleet woke on (processed steps).
    pub fn wakes(&self) -> u64 {
        self.wakes
    }

    /// The fleet's recorder (shard streams are absorbed into it at
    /// retirement/finish; absorb it into a parent after `run`).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Scheduler counters of the last `run`.
    pub fn kernel_stats(&self) -> &WheelStats {
        &self.kernel_stats
    }

    /// Live (routable) shard indices, ascending.
    fn live_shards(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&i| self.shards[i].state == ShardState::Live)
            .collect()
    }

    fn spawn_shard(&mut self) {
        let i = self.shards.len();
        let engine = ServeEngine::new(self.cfg.serve.clone(), self.model.clone(), Vec::new())
            .with_recorder(self.obs.child_named(&format!("shard{i}")))
            .with_event_kernel(self.event_kernel);
        self.shards.push(Shard { engine, state: ShardState::Live, report: None });
        self.ring.add(i);
        self.routed.push(0);
        self.memo.shard.push(None);
    }

    /// Route one request: consistent-hash home, power-of-two-choices
    /// fallback under pressure. Returns `false` when no shard is
    /// routable (the caller accounts the request as balancer-shed).
    fn route(&mut self, req: Request) -> bool {
        let key = mix64(u64::from(req.tenant) ^ TENANT_SALT);
        let Some(home) = self.ring.shard_for(key) else {
            return false;
        };
        let mut target = home;
        let home_load = self.shards[home].engine.queued_hint();
        if home_load >= self.cfg.po2c_threshold {
            if let Some(alt) = self.ring.shard_for(mix64(key ^ PO2C_SALT)) {
                if alt != home && self.shards[alt].engine.queued_hint() < home_load {
                    target = alt;
                    self.routed_po2c += 1;
                }
            }
        }
        self.routed[target] += 1;
        self.shards[target].engine.submit(req);
        true
    }

    /// Kill one live shard: off the ring, evacuate, re-route, schedule
    /// the revive. The `hint` picks among live shards (modulo), so a
    /// plan generated for any shard count stays applicable.
    fn kill_shard(&mut self, hint: usize, down: u64) {
        let live = self.live_shards();
        if live.is_empty() {
            return;
        }
        let victim = live[hint % live.len()];
        let until = self.now + down.max(1);
        self.shard_kills += 1;
        self.shards[victim].state = ShardState::Dead { until };
        self.ring.remove(victim);
        self.pending_revives.push((until, victim));
        self.obs.instant(
            "fleet",
            "shard-kill",
            ClockDomain::Cpu,
            self.now,
            &[("shard", victim.to_string()), ("until", until.to_string())],
        );
        let evacuated = self.shards[victim].engine.evacuate();
        for req in evacuated {
            if self.route(req) {
                self.failover_rerouted += 1;
            } else {
                self.balancer_shed += 1;
            }
        }
    }

    /// The served-latency observations added since the last call: a
    /// bucket-count delta over the merged per-shard class histograms
    /// (engines only ever add observations, so the delta is exact).
    fn latency_window(&mut self) -> Histogram {
        let hists: Vec<&Histogram> =
            self.shards.iter().flat_map(|s| s.engine.class_latency().iter()).collect();
        let merged = Histogram::merge_all(&hists);
        let window = match &self.prev_latency {
            Some(prev) if prev.counts.len() == merged.counts.len() => Histogram {
                bounds: merged.bounds.clone(),
                counts: merged.counts.iter().zip(&prev.counts).map(|(a, b)| a - b).collect(),
                count: merged.count - prev.count,
                sum: merged.sum - prev.sum,
                max: merged.max,
            },
            _ => merged.clone(),
        };
        self.prev_latency = Some(merged);
        window
    }

    /// One autoscaler evaluation: sample the fleet, ask the state
    /// machine, apply its action.
    fn evaluate_scaler(&mut self) {
        let live = self.live_shards();
        let draining =
            self.shards.iter().filter(|s| s.state == ShardState::Draining).count();
        let queued: usize = live.iter().map(|&i| self.shards[i].engine.queued_hint()).sum();
        let busy: usize = live.iter().map(|&i| self.shards[i].engine.pool_busy()).sum();
        let slots: usize = live.iter().map(|&i| self.shards[i].engine.pool_size()).sum();
        let window = self.latency_window();
        let sample = FleetSample {
            window_p99: window.percentile(0.99),
            window_served: window.count,
            queued,
            busy,
            slots,
            live_shards: live.len(),
            draining,
        };
        let action = match self.scaler.as_mut() {
            Some(sc) => sc.evaluate(&sample),
            None => None,
        };
        match action {
            Some(ScaleAction::Up) => {
                let i = self.shards.len();
                self.spawn_shard();
                self.scale_ups += 1;
                self.obs.instant(
                    "fleet",
                    "scale-up",
                    ClockDomain::Cpu,
                    self.now,
                    &[("shard", i.to_string())],
                );
            }
            Some(ScaleAction::Down) => {
                // drain the highest-indexed live shard (LIFO elasticity)
                if let Some(&victim) = self.live_shards().last() {
                    self.shards[victim].state = ShardState::Draining;
                    self.ring.remove(victim);
                    let residue = self.shards[victim].engine.drain();
                    self.obs.instant(
                        "fleet",
                        "scale-down-drain",
                        ClockDomain::Cpu,
                        self.now,
                        &[
                            ("shard", victim.to_string()),
                            ("queued", residue.queued.to_string()),
                            ("in_flight", residue.in_flight.to_string()),
                        ],
                    );
                }
            }
            None => {}
        }
    }

    /// Whether anything can still happen: arrivals pending, or any shard
    /// still holding work.
    fn work_remains(&self) -> bool {
        self.cursor < self.arrivals.len()
            || self.shards.iter().any(|s| !s.engine.quiescent())
    }

    /// Process every fleet phase due at the current tick, in fixed order:
    /// revive, chaos, scaler, route-arrivals, advance-shards, retire.
    fn step(&mut self) {
        let now = self.now;
        // 1. outages ending now: rejoin the ring (index order)
        for i in 0..self.shards.len() {
            if let ShardState::Dead { until } = self.shards[i].state {
                if until <= now {
                    self.shards[i].state = ShardState::Live;
                    self.ring.add(i);
                    self.revives += 1;
                    self.obs.instant(
                        "fleet",
                        "shard-revive",
                        ClockDomain::Cpu,
                        now,
                        &[("shard", i.to_string())],
                    );
                }
            }
        }
        // 2. chaos faults due now
        let faults: Vec<_> = match self.plan.as_mut() {
            Some(plan) => plan.drain_until(now),
            None => Vec::new(),
        };
        for ev in faults {
            if let FaultKind::ShardKill { shard, down_cycles } = ev.kind {
                self.kill_shard(usize::from(shard), u64::from(down_cycles));
            }
        }
        // 3. autoscaler evaluation due now
        if self.scaler.is_some() && self.next_eval == now {
            self.evaluate_scaler();
            let interval = self.scaler.as_ref().map_or(1, |s| s.config().eval_interval.max(1));
            self.next_eval = now + interval;
        }
        // 4. route arrivals due now
        while self.cursor < self.arrivals.len() && self.arrivals[self.cursor].arrival <= now {
            let req = self.arrivals[self.cursor].clone();
            self.cursor += 1;
            self.offered += 1;
            if !self.route(req) {
                self.balancer_shed += 1;
            }
        }
        // 5. advance every shard with work due or deliveries pending
        for i in 0..self.shards.len() {
            let shard = &mut self.shards[i];
            if matches!(shard.state, ShardState::Live | ShardState::Draining) {
                let due = shard.engine.next_due().is_some_and(|d| d <= now);
                if due || shard.engine.has_incoming() {
                    shard.engine.advance(now);
                }
            }
        }
        // 6. retire drained shards that have quiesced (drain-then-kill)
        for i in 0..self.shards.len() {
            if self.shards[i].state == ShardState::Draining && self.shards[i].engine.quiescent() {
                let report = self.shards[i].engine.finish();
                self.obs.absorb(self.shards[i].engine.recorder());
                self.obs.instant(
                    "fleet",
                    "shard-retire",
                    ClockDomain::Cpu,
                    now,
                    &[("shard", i.to_string()), ("served", report.served.to_string())],
                );
                self.shards[i].report = Some(report);
                self.shards[i].state = ShardState::Retired;
                self.scale_downs += 1;
            }
        }
        let queued: usize = self.shards.iter().map(|s| s.engine.queued_hint()).sum();
        self.obs.gauge_set("fleet", "queued", queued as i64);
        self.obs.gauge_set("fleet", "live_shards", self.live_shards().len() as i64);
    }

    fn post_timer(
        sched: &mut Scheduler<FleetTimer>,
        memo: &mut Option<Tick>,
        due: Option<Tick>,
        now: Tick,
        domain: DomainId,
        timer: FleetTimer,
    ) {
        if let Some(t) = due {
            if t > now && *memo != Some(t) {
                sched.post(t, domain, timer).expect("future timer posts");
                *memo = Some(t);
            }
        }
    }

    fn post_timers(&mut self, sched: &mut Scheduler<FleetTimer>, d: &FleetDomains) {
        let now = self.now;
        let arrival = self.arrivals.get(self.cursor).map(|r| r.arrival);
        Self::post_timer(sched, &mut self.memo.arrival, arrival, now, d.arrival, FleetTimer::Arrival);
        for i in 0..self.shards.len() {
            let due = match self.shards[i].state {
                ShardState::Live | ShardState::Draining => self.shards[i].engine.next_due(),
                _ => None,
            };
            Self::post_timer(sched, &mut self.memo.shard[i], due, now, d.shard, FleetTimer::Shard(i));
        }
        if self.scaler.is_some() && self.work_remains() {
            let eval = Some(self.next_eval);
            Self::post_timer(sched, &mut self.memo.scaler, eval, now, d.scaler, FleetTimer::Scaler);
        }
        for (t, i) in std::mem::take(&mut self.pending_revives) {
            sched.post(t, d.revive, FleetTimer::Revive(i)).expect("revive is in the future");
        }
    }

    /// Whether a popped timer still predicts tick `t` against live state.
    fn timer_live(&self, timer: FleetTimer, t: Tick) -> bool {
        match timer {
            FleetTimer::Arrival => {
                self.arrivals.get(self.cursor).map(|r| r.arrival) == Some(t)
            }
            FleetTimer::Shard(i) => match self.shards.get(i).map(|s| s.state) {
                Some(ShardState::Live | ShardState::Draining) => {
                    self.shards[i].engine.next_due() == Some(t)
                }
                _ => false,
            },
            FleetTimer::Chaos => {
                self.work_remains()
                    && self.plan.as_ref().and_then(FaultPlan::peek_cycle) == Some(t)
            }
            FleetTimer::Scaler => {
                self.scaler.is_some() && self.work_remains() && self.next_eval == t
            }
            FleetTimer::Revive(i) => {
                self.shards.get(i).map(|s| s.state) == Some(ShardState::Dead { until: t })
            }
        }
    }

    fn next_wake(&mut self, sched: &mut Scheduler<FleetTimer>) -> Option<Tick> {
        while let Some(ev) = sched.pop_next() {
            if ev.time > self.now && self.timer_live(ev.payload, ev.time) {
                return Some(ev.time);
            }
        }
        None
    }

    /// Run the fleet to completion and account every request.
    pub fn run(&mut self) -> FleetReport {
        let mut sched: Scheduler<FleetTimer> = Scheduler::new(self.event_kernel);
        let domains = FleetDomains::register();
        if let Some(plan) = &self.plan {
            for cycle in plan.pending_cycles() {
                if cycle > 0 {
                    sched
                        .post(cycle, domains.chaos, FleetTimer::Chaos)
                        .expect("fault timeline is in the future");
                }
            }
        }
        loop {
            self.step();
            self.wakes += 1;
            self.post_timers(&mut sched, &domains);
            match self.next_wake(&mut sched) {
                Some(t) => {
                    debug_assert!(t > self.now, "fleet clock must advance");
                    self.now = t;
                }
                None => break,
            }
        }
        self.kernel_stats = *sched.stats();
        self.finalize()
    }

    fn finalize(&mut self) -> FleetReport {
        let mut shard_reports = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            let report = match self.shards[i].report.take() {
                Some(r) => r,
                None => {
                    let r = self.shards[i].engine.finish();
                    self.obs.absorb(self.shards[i].engine.recorder());
                    r
                }
            };
            shard_reports.push(report);
        }
        let hists: Vec<&Histogram> =
            self.shards.iter().flat_map(|s| s.engine.class_latency().iter()).collect();
        let merged = Histogram::merge_all(&hists);
        let mut checksum = 0u64;
        for r in &shard_reports {
            checksum = hermes_serve::fnv1a_words(checksum, &[r.output_checksum as i64]);
        }
        let report = FleetReport {
            offered: self.offered,
            served: shard_reports.iter().map(|r| r.served).sum(),
            shed: shard_reports.iter().map(ServeReport::shed).sum(),
            rejected: shard_reports.iter().map(ServeReport::rejected).sum(),
            balancer_shed: self.balancer_shed,
            failover_rerouted: self.failover_rerouted,
            requeued: shard_reports.iter().map(|r| r.requeued).sum(),
            shard_kills: self.shard_kills,
            revives: self.revives,
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            routed: self.routed.clone(),
            routed_po2c: self.routed_po2c,
            batches: shard_reports.iter().map(|r| r.batches).sum(),
            batch_items: shard_reports.iter().map(|r| r.batch_items).sum(),
            makespan: self.now,
            p50_latency: merged.percentile(0.50).unwrap_or(0),
            p99_latency: merged.percentile(0.99).unwrap_or(0),
            output_checksum: checksum,
            shard_reports,
        };
        for (name, v) in [
            ("offered", report.offered),
            ("served", report.served),
            ("shed", report.shed),
            ("rejected", report.rejected),
            ("balancer_shed", report.balancer_shed),
            ("failover_rerouted", report.failover_rerouted),
            ("shard_kills", report.shard_kills),
            ("scale_ups", report.scale_ups),
            ("scale_downs", report.scale_downs),
        ] {
            self.obs.counter_add("fleet", name, v);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{self, FleetWorkloadConfig};
    use hermes_chaos::plan::FaultPlanConfig;
    use hermes_serve::workload as serve_workload;

    fn model() -> AcceleratorModel {
        AcceleratorModel::new("double", 20, 40, |xs| xs.iter().map(|&x| x * 2).collect())
    }

    #[test]
    fn single_shard_fleet_degenerates_to_the_bare_engine_byte_identically() {
        for (load, seed) in [(60, 5), (150, 5), (250, 12)] {
            let wl = serve_workload::WorkloadConfig::default().at_load_pct(load);
            let arrivals = serve_workload::generate(seed, &wl);
            let mut bare = ServeEngine::new(ServeConfig::default(), model(), arrivals.clone());
            let baseline = bare.run();
            let cfg = FleetConfig { shards: 1, po2c_threshold: usize::MAX, ..FleetConfig::default() };
            let mut fleet = FleetEngine::new(cfg, model(), arrivals);
            let report = fleet.run();
            assert!(report.accounted(), "{report:?}");
            assert_eq!(report.shard_reports.len(), 1);
            assert_eq!(
                report.shard_reports[0], baseline,
                "single-shard fleet must equal the bare engine (load {load} seed {seed})"
            );
            assert_eq!(report.shard_reports[0].render(), baseline.render());
            assert_eq!(report.offered, baseline.offered);
            assert_eq!(report.balancer_shed, 0);
        }
    }

    #[test]
    fn fleet_spreads_load_and_accounts_everything() {
        let wl = FleetWorkloadConfig { requests: 8192, tenants: 256, ..FleetWorkloadConfig::default() };
        let arrivals = workload::generate(7, &wl);
        let mut fleet = FleetEngine::new(FleetConfig::default(), model(), arrivals);
        let report = fleet.run();
        assert!(report.accounted(), "{report:?}");
        assert_eq!(report.offered, 8192);
        assert!(report.served > 0);
        assert!(report.routed.iter().all(|&n| n > 0), "every shard took load: {:?}", report.routed);
        assert!(report.skew_x100() < 200, "skew too high: {} {:?}", report.skew_x100(), report.routed);
    }

    #[test]
    fn saturated_fleet_sheds_globally_instead_of_deadlocking() {
        // a same-tick flood far past total queue capacity: admission must
        // reject the overflow, the fleet must terminate and account it all
        let serve = ServeConfig { queue_depth: 8, tenant_quota: 4, ..ServeConfig::default() };
        let cfg = FleetConfig { shards: 2, serve, ..FleetConfig::default() };
        let arrivals: Vec<Request> = (0..600)
            .map(|i| Request {
                id: i,
                tenant: (i % 16) as u16,
                class: (i % 2) as u8,
                arrival: i / 200,
                deadline: i / 200 + 300,
                input: vec![i as i64],
            })
            .collect();
        let mut fleet = FleetEngine::new(cfg, model(), arrivals);
        let report = fleet.run();
        assert!(report.accounted(), "{report:?}");
        assert!(report.rejected > 0, "overflow must be rejected: {report:?}");
        assert!(report.served > 0, "capacity still serves: {report:?}");
        assert_eq!(report.balancer_shed, 0, "shards reject, the balancer never sheds here");
    }

    #[test]
    fn shard_kill_failover_reroutes_and_loses_nothing() {
        let wl = FleetWorkloadConfig {
            requests: 6000,
            tenants: 128,
            gap_scale_x256: 16,
            ..FleetWorkloadConfig::default()
        };
        let arrivals = workload::generate(21, &wl);
        let span = arrivals.last().unwrap().arrival;
        let plan = FaultPlan::generate(33, &FaultPlanConfig::shard_only(span, 5, 4000, 4));
        let cfg = FleetConfig { shards: 4, ..FleetConfig::default() };
        let mut fleet = FleetEngine::new(cfg, model(), arrivals).with_chaos(plan);
        let report = fleet.run();
        assert!(report.accounted(), "failover must lose nothing: {report:?}");
        assert_eq!(report.shard_kills, 5, "{report:?}");
        assert!(report.failover_rerouted > 0, "kills landed on live work: {report:?}");
        assert!(report.revives > 0, "outages end within the run: {report:?}");
        assert!(report.served > 0);
    }

    #[test]
    fn autoscaler_scales_up_under_burn_and_drains_down_when_quiet() {
        // phase 1: a hard burst that saturates two shards; phase 2: a long
        // sparse tail that leaves the grown fleet idle
        let burst = FleetWorkloadConfig {
            requests: 3000,
            tenants: 64,
            gap_scale_x256: 8,
            gap_cap_x256: 2048,
            ..FleetWorkloadConfig::default()
        };
        let mut arrivals = workload::generate(9, &burst);
        let burst_end = arrivals.last().unwrap().arrival;
        // constant 900-tick gaps (cap == scale) whose phase rotates past
        // the 200-tick eval boundary, so most evaluations see an idle fleet
        let tail = FleetWorkloadConfig {
            requests: 80,
            tenants: 64,
            gap_scale_x256: 900 * 256,
            gap_cap_x256: 900 * 256,
            first_id: 3000,
            start: burst_end + 500,
            ..FleetWorkloadConfig::default()
        };
        arrivals.extend(workload::generate(10, &tail));
        let cfg = FleetConfig { shards: 2, ..FleetConfig::default() };
        let scaler = ScalerConfig {
            eval_interval: 200,
            p99_slo: 1500,
            queue_high: 16,
            up_consecutive: 2,
            down_consecutive: 3,
            cooldown_evals: 1,
            min_shards: 2,
            max_shards: 5,
            ..ScalerConfig::default()
        };
        let mut fleet = FleetEngine::new(cfg, model(), arrivals).with_scaler(scaler);
        let report = fleet.run();
        assert!(report.accounted(), "{report:?}");
        assert!(report.scale_ups >= 1, "burst must scale up: {report:?}");
        assert!(report.scale_downs >= 1, "quiet tail must drain-then-kill: {report:?}");
        assert!(
            report.shard_reports.len() > 2,
            "scale-up spawned shards: {}",
            report.shard_reports.len()
        );
        // drained shards served before retiring, and their rejects (if
        // any) are still accounted fleet-wide
        let retired_served: u64 =
            report.shard_reports[2..].iter().map(|r| r.served).sum();
        assert!(retired_served > 0, "grown shards actually took load: {report:?}");
    }

    #[test]
    fn fleet_is_byte_identical_across_jobs_and_kernel_knob() {
        let run = |jobs: usize, kernel: bool| {
            let wl = FleetWorkloadConfig { requests: 4000, ..FleetWorkloadConfig::default() };
            let arrivals = workload::generate(13, &wl);
            let span = arrivals.last().unwrap().arrival;
            let plan = FaultPlan::generate(5, &FaultPlanConfig::shard_only(span, 3, 3000, 4));
            let serve = ServeConfig { jobs, ..ServeConfig::default() };
            let cfg = FleetConfig { serve, ..FleetConfig::default() };
            let mut fleet = FleetEngine::new(cfg, model(), arrivals)
                .with_chaos(plan)
                .with_scaler(ScalerConfig { eval_interval: 1000, ..ScalerConfig::default() })
                .with_event_kernel(kernel);
            fleet.run().render()
        };
        let base = run(1, true);
        assert_eq!(base, run(4, true), "worker count must not change results");
        assert_eq!(base, run(1, false), "kernel knob must not change results");
    }

    #[test]
    fn recorder_namespaces_shards_and_sees_fleet_counters() {
        let wl = FleetWorkloadConfig { requests: 512, ..FleetWorkloadConfig::default() };
        let arrivals = workload::generate(3, &wl);
        let mut fleet = FleetEngine::new(FleetConfig { shards: 2, ..FleetConfig::default() }, model(), arrivals)
            .with_recorder(Recorder::new());
        let report = fleet.run();
        let snap = fleet.obs.snapshot();
        let offered = snap
            .counters
            .iter()
            .find(|(sub, name, _)| sub == "fleet" && name == "offered")
            .expect("fleet counters exported");
        assert_eq!(offered.2, report.offered);
        // per-shard serve counters live under their shard namespace
        for i in 0..2 {
            let ns = format!("shard{i}/serve");
            assert!(
                snap.counters.iter().any(|(sub, name, _)| *sub == ns && name == "served"),
                "missing {ns}/served in {:?}",
                snap.counters.iter().map(|(s, n, _)| format!("{s}/{n}")).collect::<Vec<_>>()
            );
        }
    }
}
