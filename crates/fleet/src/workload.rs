//! The fleet-scale arrival process: a heavy-tailed (bounded Pareto)
//! open-loop stream over many tenants.
//!
//! Fleet experiments need burstiness a Poisson-ish uniform-gap stream
//! cannot produce: most inter-arrival gaps are tiny (a burst), a few are
//! enormous (a lull), and the balancer/autoscaler must survive both. The
//! generator draws gaps from an integer bounded Pareto (`alpha = 1`):
//! `gap = scale * 65536 / u` with `u` uniform on `[1, 65536]`, capped so
//! one lull cannot dominate the makespan. Gaps accumulate in 1/256-tick
//! fixed point so mean rates well above one request per tick are
//! representable. Everything is a seeded [`DetRng`] draw — the stream is
//! a pure function of `(seed, config)`.

use hermes_rtl::rng::DetRng;
use hermes_serve::request::Request;
use hermes_serve::workload::ClassProfile;

/// Heavy-tailed fleet workload shape.
#[derive(Debug, Clone)]
pub struct FleetWorkloadConfig {
    /// Total requests in the stream.
    pub requests: usize,
    /// Pareto scale (minimum gap) in 1/256-tick fixed point.
    pub gap_scale_x256: u64,
    /// Cap on one gap in 1/256-tick fixed point (bounds a single lull).
    pub gap_cap_x256: u64,
    /// Tenants, drawn uniformly per request.
    pub tenants: u16,
    /// Priority class mix (same shape as the single-node workload).
    pub classes: Vec<ClassProfile>,
    /// Payload words per request.
    pub payload_words: usize,
    /// First request id (streams composed from phases stay id-disjoint).
    pub first_id: u64,
    /// Tick the stream starts at.
    pub start: u64,
}

impl Default for FleetWorkloadConfig {
    fn default() -> Self {
        FleetWorkloadConfig {
            requests: 4096,
            // mean gap ≈ 6.5 * scale ticks under the default cap
            gap_scale_x256: 64,
            gap_cap_x256: 64 * 256,
            tenants: 64,
            classes: vec![
                ClassProfile { weight: 1, deadline_budget: 600, deadline_jitter: 100 },
                ClassProfile { weight: 3, deadline_budget: 4000, deadline_jitter: 800 },
            ],
            payload_words: 2,
            first_id: 0,
            start: 0,
        }
    }
}

/// Generate the arrival stream for `cfg` from `seed` (sorted by arrival
/// tick; ids are `first_id..first_id + requests`).
pub fn generate(seed: u64, cfg: &FleetWorkloadConfig) -> Vec<Request> {
    let mut rng = DetRng::new(seed ^ 0xf1ee_7f1e_e7f1_ee7f);
    let total_weight: u64 = cfg.classes.iter().map(|c| c.weight.max(1)).sum();
    let scale = cfg.gap_scale_x256.max(1);
    let cap = cfg.gap_cap_x256.max(scale);
    let mut acc_x256: u64 = cfg.start * 256;
    let mut out = Vec::with_capacity(cfg.requests);
    for i in 0..cfg.requests {
        // bounded Pareto gap: u uniform on [1, 65536], gap ∝ 1/u
        let u = rng.below(65536) + 1;
        acc_x256 += (scale * 65536 / u).min(cap);
        let arrival = acc_x256 >> 8;
        // weighted class pick, then signed deadline jitter — the same
        // shapes (and draw discipline) as the single-node workload
        let mut pick = rng.below(total_weight);
        let mut class = 0u8;
        for (c, p) in cfg.classes.iter().enumerate() {
            let w = p.weight.max(1);
            if pick < w {
                class = c as u8;
                break;
            }
            pick -= w;
        }
        let profile = &cfg.classes[class as usize];
        let jitter = if profile.deadline_jitter == 0 {
            0
        } else {
            rng.below(2 * profile.deadline_jitter + 1) as i64 - profile.deadline_jitter as i64
        };
        let budget = profile.deadline_budget.saturating_add_signed(jitter).max(1);
        let tenant = rng.below(u64::from(cfg.tenants.max(1))) as u16;
        let input: Vec<i64> = (0..cfg.payload_words).map(|_| rng.range_i64(-1000, 1000)).collect();
        out.push(Request {
            id: cfg.first_id + i as u64,
            tenant,
            class,
            arrival,
            deadline: arrival + budget,
            input,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_sorted_and_well_formed() {
        let cfg = FleetWorkloadConfig::default();
        let a = generate(11, &cfg);
        let b = generate(11, &cfg);
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, generate(12, &cfg), "different seed, different stream");
        assert_eq!(a.len(), cfg.requests);
        for w in a.windows(2) {
            assert!(w[0].arrival <= w[1].arrival, "sorted by arrival");
            assert_eq!(w[0].id + 1, w[1].id, "dense ids");
        }
        for r in &a {
            assert!(r.deadline > r.arrival, "deadline after arrival: {r:?}");
            assert!(u64::from(r.tenant) < u64::from(cfg.tenants));
            assert!((r.class as usize) < cfg.classes.len());
            assert_eq!(r.input.len(), cfg.payload_words);
        }
    }

    #[test]
    fn gaps_are_heavy_tailed() {
        let cfg = FleetWorkloadConfig { requests: 20_000, ..FleetWorkloadConfig::default() };
        let a = generate(3, &cfg);
        let gaps: Vec<u64> = a.windows(2).map(|w| w[1].arrival - w[0].arrival).collect();
        let mean = gaps.iter().sum::<u64>() / gaps.len() as u64;
        let max = *gaps.iter().max().unwrap();
        let zero = gaps.iter().filter(|&&g| g == 0).count();
        // bursty head: many same-tick arrivals; heavy tail: the largest
        // lull dwarfs the mean
        assert!(zero * 4 > gaps.len(), "bursts expected: {zero}/{}", gaps.len());
        assert!(max >= mean * 20, "tail expected: max {max} mean {mean}");
        assert!(max <= cfg.gap_cap_x256 / 256 + 1, "cap bounds a single lull");
    }

    #[test]
    fn phases_compose_with_disjoint_ids_and_shifted_clock() {
        let burst = FleetWorkloadConfig { requests: 100, ..FleetWorkloadConfig::default() };
        let a = generate(5, &burst);
        let tail = FleetWorkloadConfig {
            requests: 50,
            first_id: 100,
            start: a.last().unwrap().arrival + 1000,
            ..FleetWorkloadConfig::default()
        };
        let b = generate(6, &tail);
        assert!(b[0].id == 100 && b[0].arrival > a.last().unwrap().arrival);
    }
}
