//! The consistent-hash ring mapping tenant keys to shards.
//!
//! Each shard contributes `vnodes` virtual points on a 64-bit circle; a
//! key routes to the shard owning the first point at or after the key's
//! hash (wrapping). The classic guarantee follows: adding a shard steals
//! keys only *for the new shard*, and removing one redistributes only
//! *its own* keys — every other tenant keeps its home, which is what
//! keeps per-tenant queue state and cache affinity stable across
//! scale-up, scale-down, and failover.

use crate::mix64;

/// A consistent-hash ring over shard indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted virtual points: `(hash, shard)`.
    points: Vec<(u64, usize)>,
    /// Virtual nodes contributed per shard.
    vnodes: usize,
}

impl HashRing {
    /// An empty ring whose shards will contribute `vnodes` points each
    /// (at least one).
    pub fn new(vnodes: usize) -> Self {
        HashRing { points: Vec::new(), vnodes: vnodes.max(1) }
    }

    fn point(shard: usize, vnode: usize) -> u64 {
        // two rounds keep shard and vnode contributions independent
        mix64(mix64(shard as u64 ^ 0x51bb_a7e5_0f2e_a11d) ^ (vnode as u64))
    }

    /// Add `shard`'s virtual points (idempotent).
    pub fn add(&mut self, shard: usize) {
        if self.contains(shard) {
            return;
        }
        for v in 0..self.vnodes {
            let p = (Self::point(shard, v), shard);
            let at = self.points.partition_point(|&q| q < p);
            self.points.insert(at, p);
        }
    }

    /// Remove every point of `shard` (idempotent).
    pub fn remove(&mut self, shard: usize) {
        self.points.retain(|&(_, s)| s != shard);
    }

    /// Whether `shard` currently contributes points.
    pub fn contains(&self, shard: usize) -> bool {
        self.points.iter().any(|&(_, s)| s == shard)
    }

    /// Whether no shard is routable.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The shard owning `key`: the first point at or after `key`'s
    /// position, wrapping past the top. `None` on an empty ring.
    pub fn shard_for(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let at = self.points.partition_point(|&(h, _)| h < key);
        let (_, shard) = self.points[at % self.points.len()];
        Some(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Vec<u64> {
        (0..512u64).map(|t| mix64(t ^ 0xfee1_dead)).collect()
    }

    #[test]
    fn routes_every_key_and_is_deterministic() {
        let mut ring = HashRing::new(64);
        for s in 0..4 {
            ring.add(s);
        }
        for k in keys() {
            let a = ring.shard_for(k).expect("non-empty ring routes");
            assert_eq!(Some(a), ring.shard_for(k));
            assert!(a < 4);
        }
        assert_eq!(ring.shard_for(1), ring.clone().shard_for(1));
    }

    #[test]
    fn empty_ring_routes_nothing() {
        let ring = HashRing::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.shard_for(42), None);
    }

    #[test]
    fn scale_up_moves_keys_only_to_the_new_shard() {
        let mut ring = HashRing::new(64);
        for s in 0..8 {
            ring.add(s);
        }
        let before: Vec<usize> = keys().iter().map(|&k| ring.shard_for(k).unwrap()).collect();
        ring.add(8);
        let mut moved = 0;
        for (k, &old) in keys().iter().zip(&before) {
            let new = ring.shard_for(*k).unwrap();
            if new != old {
                assert_eq!(new, 8, "a moved key may only move to the new shard");
                moved += 1;
            }
        }
        // the new shard takes roughly 1/9 of the keys, never the majority
        assert!(moved > 0, "scale-up must take some keys");
        assert!(moved < keys().len() / 4, "scale-up moved too much: {moved}");
    }

    #[test]
    fn removal_redistributes_only_the_dead_shards_keys() {
        let mut ring = HashRing::new(64);
        for s in 0..8 {
            ring.add(s);
        }
        let before: Vec<usize> = keys().iter().map(|&k| ring.shard_for(k).unwrap()).collect();
        ring.remove(3);
        assert!(!ring.contains(3));
        for (k, &old) in keys().iter().zip(&before) {
            let new = ring.shard_for(*k).unwrap();
            if old != 3 {
                assert_eq!(new, old, "a surviving shard's keys must not move");
            } else {
                assert_ne!(new, 3, "the dead shard's keys must move off it");
            }
        }
        // re-adding restores the exact original mapping
        ring.add(3);
        let after: Vec<usize> = keys().iter().map(|&k| ring.shard_for(k).unwrap()).collect();
        assert_eq!(after, before, "re-add restores the original ownership");
    }

    #[test]
    fn vnodes_bound_the_load_spread() {
        let mut ring = HashRing::new(128);
        for s in 0..8 {
            ring.add(s);
        }
        let mut per = [0u64; 8];
        for k in keys() {
            per[ring.shard_for(k).unwrap()] += 1;
        }
        let max = *per.iter().max().unwrap();
        let mean = keys().len() as u64 / 8;
        assert!(
            max * 100 <= mean * 160,
            "key spread too skewed: {per:?} (max {max}, mean {mean})"
        );
    }
}
