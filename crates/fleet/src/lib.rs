//! # hermes-fleet
//!
//! The sharded serving fleet of the HERMES workspace: N independent
//! [`hermes_serve`] engines (shards), each with its own admission queue
//! and accelerator pool, behind one global balancer (DESIGN.md §15,
//! experiment E19).
//!
//! The paper's ecosystem story scales past one board: a constellation of
//! NG-ULTRA nodes serving one workload needs routing, elasticity, and
//! failover on top of the single-node runtime. This crate supplies that
//! layer, entirely inside the deterministic simulation:
//!
//! * [`ring`] — the consistent-hash ring: tenants map to shards through
//!   virtual nodes, so adding or removing a shard moves only the keys
//!   that must move;
//! * [`workload`] — a heavy-tailed (bounded Pareto) open-loop arrival
//!   process over many tenants, the fleet-scale counterpart of
//!   [`hermes_serve::workload`];
//! * [`scaler`] — the histogram-driven autoscaler: scale up on sustained
//!   p99 deadline-pressure burn, drain-then-kill on sustained idleness;
//! * [`engine`] — the [`FleetEngine`](engine::FleetEngine): routes each
//!   request to its home shard (load-aware power-of-two-choices fallback
//!   under pressure), steps every shard on one `hermes-kernel` timeline,
//!   applies `ShardKill` chaos by evacuating and re-routing the victim's
//!   work, and produces the accounted [`FleetReport`](engine::FleetReport).
//!
//! ## Determinism contract
//!
//! The whole fleet advances on a single [`hermes_kernel::Scheduler`]
//! timeline; every routing, scaling, and failover decision is a function
//! of tick arithmetic and seeded draws. Worker count only parallelizes
//! payload evaluation inside each shard, so fleet reports are
//! byte-identical across `--jobs` and across the `HERMES_EVENT_KERNEL`
//! knob.
//!
//! ## Accounting invariant
//!
//! Fleet-wide: `served + shed + rejected + balancer_shed == offered`,
//! where the first three sum over shards. A shard kill evacuates the
//! victim's queued and in-flight requests and re-offers them to surviving
//! shards (counted as `failover_rerouted`) — nothing is ever silently
//! lost, even when the whole ring is briefly empty
//! ([`engine::FleetReport::accounted`] checks it; E19 and `ci.sh` gate
//! on it).

pub mod engine;
pub mod ring;
pub mod scaler;
pub mod workload;

/// A tick of the simulated fleet clock (same clock as the shards').
pub type Tick = u64;

/// SplitMix64 finalizer: the deterministic 64-bit mixer behind ring
/// points and tenant keys. Distinct inputs spread uniformly; no RNG
/// state, so routing is a pure function of the key.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::mix64;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // consecutive inputs land far apart (avalanche sanity)
        let d = mix64(100) ^ mix64(101);
        assert!(d.count_ones() > 16, "poor avalanche: {d:#x}");
    }
}
