//! The histogram-driven autoscaler: a deterministic state machine over
//! the fleet's windowed p99 deadline-pressure signal.
//!
//! Every `eval_interval` fleet ticks the engine hands the scaler one
//! [`FleetSample`]: the p99 of the served-latency observations *added
//! since the last evaluation* (a bucket-count delta over the merged
//! per-shard histograms — see `FleetEngine::latency_window`), plus queue
//! and occupancy gauges. Scale-up requires `up_consecutive` consecutive
//! hot evaluations (sustained burn, not a blip); scale-down requires
//! `down_consecutive` consecutive cold ones and begins with a *drain* —
//! the victim shard leaves the ring, finishes what it holds, and only
//! then is retired (drain-then-kill, so elasticity never breaks the
//! accounting invariant). A cooldown after every action keeps the machine
//! from flapping.

/// Autoscaler thresholds and bounds.
#[derive(Debug, Clone)]
pub struct ScalerConfig {
    /// Fleet ticks between evaluations.
    pub eval_interval: u64,
    /// Windowed p99 served latency at or above this is a burn signal.
    pub p99_slo: u64,
    /// Minimum served observations in a window for the p99 to count
    /// (tiny windows are noise, never a scaling signal).
    pub min_window: u64,
    /// Queued requests per live shard at or above this is a burn signal
    /// even without latency evidence (saturated shards serve nothing, so
    /// latency alone can look deceptively healthy).
    pub queue_high: usize,
    /// Busy instances at or below this fraction of all instances
    /// (x100) with an empty queue is an idle signal.
    pub idle_low_x100: u64,
    /// Consecutive hot evaluations before scaling up.
    pub up_consecutive: u32,
    /// Consecutive cold evaluations before draining a shard.
    pub down_consecutive: u32,
    /// Evaluations to sit out after any action.
    pub cooldown_evals: u32,
    /// Never drain below this many live shards.
    pub min_shards: usize,
    /// Never grow above this many shards.
    pub max_shards: usize,
}

impl Default for ScalerConfig {
    fn default() -> Self {
        ScalerConfig {
            eval_interval: 2000,
            p99_slo: 2000,
            min_window: 16,
            queue_high: 32,
            idle_low_x100: 25,
            up_consecutive: 2,
            down_consecutive: 2,
            cooldown_evals: 2,
            min_shards: 1,
            max_shards: 8,
        }
    }
}

/// One evaluation window's inputs.
#[derive(Debug, Clone, Copy)]
pub struct FleetSample {
    /// p99 of served latencies observed in this window (`None` when the
    /// window served nothing).
    pub window_p99: Option<u64>,
    /// Served observations in this window.
    pub window_served: u64,
    /// Requests queued (or pending admission) across live shards.
    pub queued: usize,
    /// Busy accelerator instances across live shards.
    pub busy: usize,
    /// Total accelerator instances across live shards.
    pub slots: usize,
    /// Live (routable) shards.
    pub live_shards: usize,
    /// Shards currently draining toward retirement.
    pub draining: usize,
}

/// What the fleet should do after an evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Add one shard to the ring.
    Up,
    /// Drain one shard off the ring, retiring it once quiescent.
    Down,
}

/// The autoscaler state machine.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    cfg: ScalerConfig,
    up_streak: u32,
    down_streak: u32,
    cooldown: u32,
}

impl Autoscaler {
    /// A scaler in the steady state.
    pub fn new(cfg: ScalerConfig) -> Self {
        Autoscaler { cfg, up_streak: 0, down_streak: 0, cooldown: 0 }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &ScalerConfig {
        &self.cfg
    }

    /// Evaluate one window. Pure tick/integer arithmetic — no clocks, no
    /// randomness — so the action stream is replayable.
    pub fn evaluate(&mut self, s: &FleetSample) -> Option<ScaleAction> {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            self.up_streak = 0;
            self.down_streak = 0;
            return None;
        }
        let burn = s.window_served >= self.cfg.min_window
            && s.window_p99.is_some_and(|p| p >= self.cfg.p99_slo);
        let pressure = s.queued >= self.cfg.queue_high * s.live_shards.max(1);
        let hot = burn || pressure;
        let cold = s.queued == 0 && s.busy as u64 * 100 <= s.slots as u64 * self.cfg.idle_low_x100;
        if hot {
            self.up_streak += 1;
            self.down_streak = 0;
            if self.up_streak >= self.cfg.up_consecutive
                && s.live_shards + s.draining < self.cfg.max_shards
            {
                self.up_streak = 0;
                self.cooldown = self.cfg.cooldown_evals;
                return Some(ScaleAction::Up);
            }
        } else if cold {
            self.down_streak += 1;
            self.up_streak = 0;
            // one drain at a time: a draining shard is already shrinking
            // capacity, acting again on the same evidence would flap
            if self.down_streak >= self.cfg.down_consecutive
                && s.draining == 0
                && s.live_shards > self.cfg.min_shards
            {
                self.down_streak = 0;
                self.cooldown = self.cfg.cooldown_evals;
                return Some(ScaleAction::Down);
            }
        } else {
            self.up_streak = 0;
            self.down_streak = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_sample() -> FleetSample {
        FleetSample {
            window_p99: Some(5000),
            window_served: 100,
            queued: 0,
            busy: 4,
            slots: 4,
            live_shards: 2,
            draining: 0,
        }
    }

    fn cold_sample() -> FleetSample {
        FleetSample {
            window_p99: None,
            window_served: 0,
            queued: 0,
            busy: 0,
            slots: 4,
            live_shards: 2,
            draining: 0,
        }
    }

    #[test]
    fn sustained_burn_scales_up_after_streak_then_cools_down() {
        let mut sc = Autoscaler::new(ScalerConfig { up_consecutive: 3, ..ScalerConfig::default() });
        assert_eq!(sc.evaluate(&hot_sample()), None);
        assert_eq!(sc.evaluate(&hot_sample()), None);
        assert_eq!(sc.evaluate(&hot_sample()), Some(ScaleAction::Up));
        // cooldown absorbs further evidence
        assert_eq!(sc.evaluate(&hot_sample()), None);
        assert_eq!(sc.evaluate(&hot_sample()), None);
        // then the streak must rebuild from zero
        assert_eq!(sc.evaluate(&hot_sample()), None);
        assert_eq!(sc.evaluate(&hot_sample()), None);
        assert_eq!(sc.evaluate(&hot_sample()), Some(ScaleAction::Up));
    }

    #[test]
    fn a_blip_never_scales() {
        let mut sc = Autoscaler::new(ScalerConfig { up_consecutive: 2, ..ScalerConfig::default() });
        assert_eq!(sc.evaluate(&hot_sample()), None);
        // one healthy window resets the streak
        let healthy = FleetSample { window_p99: Some(100), queued: 8, ..hot_sample() };
        assert_eq!(sc.evaluate(&healthy), None);
        assert_eq!(sc.evaluate(&hot_sample()), None, "streak rebuilt from zero");
    }

    #[test]
    fn queue_pressure_alone_is_a_burn_signal() {
        let mut sc = Autoscaler::new(ScalerConfig {
            up_consecutive: 1,
            cooldown_evals: 0,
            ..ScalerConfig::default()
        });
        let saturated = FleetSample {
            window_p99: None,
            window_served: 0,
            queued: 200,
            ..hot_sample()
        };
        assert_eq!(sc.evaluate(&saturated), Some(ScaleAction::Up));
    }

    #[test]
    fn sustained_idle_drains_but_respects_min_shards_and_single_drain() {
        let mut sc = Autoscaler::new(ScalerConfig {
            down_consecutive: 2,
            cooldown_evals: 0,
            min_shards: 1,
            ..ScalerConfig::default()
        });
        assert_eq!(sc.evaluate(&cold_sample()), None);
        assert_eq!(sc.evaluate(&cold_sample()), Some(ScaleAction::Down));
        // while one shard is draining, no second drain
        let draining = FleetSample { draining: 1, ..cold_sample() };
        assert_eq!(sc.evaluate(&draining), None);
        assert_eq!(sc.evaluate(&draining), None);
        // at the floor, no drain at all
        let floor = FleetSample { live_shards: 1, ..cold_sample() };
        assert_eq!(sc.evaluate(&floor), None);
        assert_eq!(sc.evaluate(&floor), None);
    }

    #[test]
    fn max_shards_bounds_growth_including_draining_capacity() {
        let mut sc = Autoscaler::new(ScalerConfig {
            up_consecutive: 1,
            cooldown_evals: 0,
            max_shards: 2,
            ..ScalerConfig::default()
        });
        assert_eq!(sc.evaluate(&hot_sample()), None, "2 live == max, no growth");
        let with_drain = FleetSample { live_shards: 1, draining: 1, ..hot_sample() };
        assert_eq!(sc.evaluate(&with_drain), None, "draining still counts toward max");
    }

    #[test]
    fn tiny_windows_are_not_latency_evidence() {
        let mut sc = Autoscaler::new(ScalerConfig {
            up_consecutive: 1,
            cooldown_evals: 0,
            min_window: 50,
            ..ScalerConfig::default()
        });
        let sparse = FleetSample { window_served: 3, queued: 0, ..hot_sample() };
        assert_eq!(sc.evaluate(&sparse), None, "3 observations cannot prove burn");
    }
}
