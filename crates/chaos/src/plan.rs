//! The fault plane: a deterministic, seeded schedule of faults keyed by
//! cycle and subsystem.
//!
//! A [`FaultPlan`] is generated once from a seed and a [`FaultPlanConfig`]
//! (per-subsystem intensities over a campaign duration) and then *consumed*
//! by a scenario driver: faults scheduled at or before the current cycle
//! are drained and applied to the matching layer. Two runs with the same
//! seed and config produce byte-identical schedules, so every chaos
//! campaign is replayable.

use hermes_rtl::rng::DetRng;

/// The subsystem a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subsystem {
    /// The AXI interconnect / slave memory.
    Axi,
    /// The redundant boot flash.
    Flash,
    /// The SpaceWire boot link.
    SpaceWire,
    /// Partition memory at hypervisor run time.
    PartitionMemory,
    /// Native partition tasks.
    Task,
    /// A serving-runtime accelerator-pool instance (`hermes-serve`).
    AcceleratorPool,
    /// A hostile guest partition probing the hypervisor's isolation
    /// boundaries (see [`crate::hostile`]).
    HostilePartition,
    /// A whole serving shard — an entire `hermes-serve` engine with its
    /// queue and pool — in a fleet (`hermes-fleet`).
    ServingShard,
}

/// What a hostile partition probes (see [`FaultKind::HostileProbe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeClass {
    /// Load from a neighbor partition's memory.
    MemRead,
    /// Store into a neighbor partition's memory.
    MemWrite,
    /// Jump into a neighbor partition's memory.
    MemExec,
    /// A port hypercall with an out-of-range `r1` port index.
    PortIndex,
    /// An undefined `ecall` immediate.
    HypercallFuzz,
    /// A privileged service (`RequestModeChange`) from a non-system
    /// partition.
    PrivilegedService,
}

impl ProbeClass {
    /// All probe classes, in a stable order.
    pub const ALL: [ProbeClass; 6] = [
        ProbeClass::MemRead,
        ProbeClass::MemWrite,
        ProbeClass::MemExec,
        ProbeClass::PortIndex,
        ProbeClass::HypercallFuzz,
        ProbeClass::PrivilegedService,
    ];

    /// Stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ProbeClass::MemRead => "mem-read",
            ProbeClass::MemWrite => "mem-write",
            ProbeClass::MemExec => "mem-exec",
            ProbeClass::PortIndex => "port-index",
            ProbeClass::HypercallFuzz => "hypercall-fuzz",
            ProbeClass::PrivilegedService => "privileged-service",
        }
    }
}

/// One concrete fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The AXI slave answers the next read burst with SLVERR.
    AxiReadSlvErr,
    /// The AXI slave answers the next write burst with SLVERR.
    AxiWriteSlvErr,
    /// The AXI slave stalls (no beats, no responses) for `cycles`.
    AxiStall {
        /// Stall length in bus cycles.
        cycles: u32,
    },
    /// One bit of one flash copy rots.
    FlashBitRot {
        /// Which redundant copy (0..COPIES).
        copy: u8,
        /// Normalized byte position in `[0, 2^16)`, scaled to flash size.
        pos_num: u16,
        /// Bit within the byte.
        bit: u8,
    },
    /// A whole 256-byte flash page of one copy reads as 0xFF (stuck erase).
    FlashStuckPage {
        /// Which redundant copy.
        copy: u8,
        /// Normalized page position in `[0, 2^16)`, scaled to page count.
        pos_num: u16,
    },
    /// A SpaceWire packet of the next transfer is corrupted in flight
    /// `repeats` consecutive times (beyond-CRC corruption persistence).
    SpwCorrupt {
        /// Packet index within the transfer.
        packet: u8,
        /// Bit to flip within the packet payload.
        bit: u16,
        /// How many consecutive serves are corrupted.
        repeats: u8,
    },
    /// An SEU strikes partition memory.
    Seu {
        /// Normalized address in `[0, 2^16)`, scaled to the region size.
        pos_num: u16,
        /// Bit within the byte.
        bit: u8,
    },
    /// The native task of the targeted partition panics (returns an error)
    /// at its next activation.
    TaskPanic,
    /// An accelerator-pool instance dies mid-batch: its in-flight work must
    /// be re-queued and the instance stays down for `down_cycles`.
    PoolKill {
        /// Pool instance index (modulo the pool size at apply time).
        instance: u8,
        /// How long the instance stays down, in serve ticks.
        down_cycles: u32,
    },
    /// An accelerator-pool instance stalls: an in-flight batch finishes
    /// `cycles` late (late completions are shed, never silently dropped).
    PoolStall {
        /// Pool instance index (modulo the pool size at apply time).
        instance: u8,
        /// Stall length in serve ticks.
        cycles: u32,
    },
    /// A whole serving shard dies: its queued and in-flight requests must
    /// be evacuated and re-routed to surviving shards, and the shard
    /// stays down for `down_cycles` before rejoining the ring.
    ShardKill {
        /// Fleet shard index (modulo the live shard count at apply time).
        shard: u8,
        /// How long the shard stays down, in fleet ticks.
        down_cycles: u32,
    },
    /// A hostile partition fires one adversarial probe at its next
    /// activation. The campaign driver compiles the probe into guest
    /// machine code (see [`crate::hostile`]).
    HostileProbe {
        /// What the probe attacks.
        class: ProbeClass,
        /// Normalized target selector in `[0, 2^16)` — scaled to the
        /// victim count for memory probes, used directly otherwise.
        target_num: u16,
        /// Free selector: byte offset within the victim region, port
        /// index, or hypercall immediate, depending on `class`.
        sel: u16,
    },
}

impl FaultKind {
    /// The subsystem this fault targets.
    pub fn subsystem(self) -> Subsystem {
        match self {
            FaultKind::AxiReadSlvErr | FaultKind::AxiWriteSlvErr | FaultKind::AxiStall { .. } => {
                Subsystem::Axi
            }
            FaultKind::FlashBitRot { .. } | FaultKind::FlashStuckPage { .. } => Subsystem::Flash,
            FaultKind::SpwCorrupt { .. } => Subsystem::SpaceWire,
            FaultKind::Seu { .. } => Subsystem::PartitionMemory,
            FaultKind::TaskPanic => Subsystem::Task,
            FaultKind::PoolKill { .. } | FaultKind::PoolStall { .. } => Subsystem::AcceleratorPool,
            FaultKind::ShardKill { .. } => Subsystem::ServingShard,
            FaultKind::HostileProbe { .. } => Subsystem::HostilePartition,
        }
    }
}

/// A scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Campaign cycle at which the fault strikes.
    pub cycle: u64,
    /// The fault.
    pub kind: FaultKind,
}

/// Fault intensities for plan generation (counts over the duration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlanConfig {
    /// Campaign length in cycles.
    pub duration: u64,
    /// AXI SLVERR count (split between read and write paths).
    pub axi_slverrs: u32,
    /// AXI stall count.
    pub axi_stalls: u32,
    /// Maximum single stall length in cycles.
    pub axi_stall_max: u32,
    /// Flash bit-rot count.
    pub flash_bitrot: u32,
    /// Flash stuck-page count.
    pub flash_stuck_pages: u32,
    /// SpaceWire corruption count.
    pub spw_corruptions: u32,
    /// Maximum persistence of a SpaceWire corruption (consecutive serves).
    pub spw_max_repeats: u8,
    /// SEU count in partition memory.
    pub seus: u32,
    /// Native-task panic count.
    pub task_panics: u32,
    /// Accelerator-pool instance kills (serving campaigns; 0 elsewhere).
    pub pool_kills: u32,
    /// Accelerator-pool instance stalls (serving campaigns; 0 elsewhere).
    pub pool_stalls: u32,
    /// Maximum pool downtime / stall length, in serve ticks.
    pub pool_down_max: u32,
    /// Pool size the instance indices are drawn from (modulo at apply
    /// time, so a plan stays valid for smaller pools).
    pub pool_instances: u8,
    /// Hostile-partition probe count (isolation campaigns; 0 elsewhere).
    pub hostile_probes: u32,
    /// Whole-shard kills (fleet campaigns; 0 elsewhere).
    pub shard_kills: u32,
    /// Maximum shard downtime, in fleet ticks.
    pub shard_down_max: u32,
    /// Fleet size the shard indices are drawn from (modulo at apply time,
    /// so a plan stays valid for smaller fleets).
    pub shard_count: u8,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            duration: 100_000,
            axi_slverrs: 4,
            axi_stalls: 2,
            axi_stall_max: 200,
            flash_bitrot: 32,
            flash_stuck_pages: 1,
            spw_corruptions: 2,
            spw_max_repeats: 3,
            seus: 16,
            task_panics: 2,
            // the classic campaigns predate the serving runtime: pool
            // faults default off so existing plans stay byte-identical
            pool_kills: 0,
            pool_stalls: 0,
            pool_down_max: 400,
            pool_instances: 4,
            // likewise off by default: hostile probes only appear in
            // explicit isolation campaigns
            hostile_probes: 0,
            // and shard kills only in explicit fleet campaigns
            shard_kills: 0,
            shard_down_max: 4000,
            shard_count: 8,
        }
    }
}

impl FaultPlanConfig {
    /// A serving-campaign config: only accelerator-pool faults, every
    /// classic category zeroed. `instances` is the pool size kill/stall
    /// targets are drawn from.
    pub fn pool_only(duration: u64, kills: u32, stalls: u32, down_max: u32, instances: u8) -> Self {
        FaultPlanConfig {
            duration,
            axi_slverrs: 0,
            axi_stalls: 0,
            axi_stall_max: 1,
            flash_bitrot: 0,
            flash_stuck_pages: 0,
            spw_corruptions: 0,
            spw_max_repeats: 1,
            seus: 0,
            task_panics: 0,
            pool_kills: kills,
            pool_stalls: stalls,
            pool_down_max: down_max.max(1),
            pool_instances: instances.max(1),
            hostile_probes: 0,
            shard_kills: 0,
            shard_down_max: 1,
            shard_count: 1,
        }
    }

    /// An isolation-campaign config: only hostile-partition probes, every
    /// other category zeroed.
    pub fn hostile_only(duration: u64, probes: u32) -> Self {
        FaultPlanConfig {
            hostile_probes: probes,
            ..FaultPlanConfig::pool_only(duration, 0, 0, 1, 1)
        }
    }

    /// A fleet-campaign config: only whole-shard kills, every other
    /// category zeroed. `shards` is the fleet size kill targets are drawn
    /// from. Because shard faults draw after every other category, adding
    /// them to an existing pool/hostile config (struct-update syntax on
    /// [`FaultPlanConfig::pool_only`]) never perturbs that config's
    /// schedule.
    pub fn shard_only(duration: u64, kills: u32, down_max: u32, shards: u8) -> Self {
        FaultPlanConfig {
            shard_kills: kills,
            shard_down_max: down_max.max(1),
            shard_count: shards.max(1),
            ..FaultPlanConfig::pool_only(duration, 0, 0, 1, 1)
        }
    }
}

/// A deterministic schedule of faults, sorted by cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    cursor: usize,
    /// The seed the plan was generated from (for reports).
    pub seed: u64,
}

impl FaultPlan {
    /// Generate a plan from a seed and a config.
    pub fn generate(seed: u64, cfg: &FaultPlanConfig) -> Self {
        let mut rng = DetRng::new(seed);
        let mut events = Vec::new();
        let dur = cfg.duration.max(1);
        let at = |rng: &mut DetRng| rng.below(dur);
        for i in 0..cfg.axi_slverrs {
            let kind = if i % 2 == 0 {
                FaultKind::AxiReadSlvErr
            } else {
                FaultKind::AxiWriteSlvErr
            };
            events.push(FaultEvent { cycle: at(&mut rng), kind });
        }
        for _ in 0..cfg.axi_stalls {
            let cycles = rng.range_u64(1, u64::from(cfg.axi_stall_max.max(2))) as u32;
            events.push(FaultEvent {
                cycle: at(&mut rng),
                kind: FaultKind::AxiStall { cycles },
            });
        }
        for _ in 0..cfg.flash_bitrot {
            events.push(FaultEvent {
                cycle: at(&mut rng),
                kind: FaultKind::FlashBitRot {
                    copy: rng.below(3) as u8,
                    pos_num: rng.below(1 << 16) as u16,
                    bit: rng.below(8) as u8,
                },
            });
        }
        for _ in 0..cfg.flash_stuck_pages {
            events.push(FaultEvent {
                cycle: at(&mut rng),
                kind: FaultKind::FlashStuckPage {
                    copy: rng.below(3) as u8,
                    pos_num: rng.below(1 << 16) as u16,
                },
            });
        }
        for _ in 0..cfg.spw_corruptions {
            events.push(FaultEvent {
                cycle: at(&mut rng),
                kind: FaultKind::SpwCorrupt {
                    packet: rng.below(4) as u8,
                    bit: rng.below(8 * 256) as u16,
                    repeats: rng.range_u64(1, u64::from(cfg.spw_max_repeats.max(1)) + 1) as u8,
                },
            });
        }
        for _ in 0..cfg.seus {
            events.push(FaultEvent {
                cycle: at(&mut rng),
                kind: FaultKind::Seu {
                    pos_num: rng.below(1 << 16) as u16,
                    bit: rng.below(8) as u8,
                },
            });
        }
        for _ in 0..cfg.task_panics {
            events.push(FaultEvent {
                cycle: at(&mut rng),
                kind: FaultKind::TaskPanic,
            });
        }
        // pool faults draw last so plans without them (the pre-serve
        // campaigns) consume the identical rng stream as before
        for _ in 0..cfg.pool_kills {
            events.push(FaultEvent {
                cycle: at(&mut rng),
                kind: FaultKind::PoolKill {
                    instance: rng.below(u64::from(cfg.pool_instances.max(1))) as u8,
                    down_cycles: rng.range_u64(1, u64::from(cfg.pool_down_max.max(2))) as u32,
                },
            });
        }
        for _ in 0..cfg.pool_stalls {
            events.push(FaultEvent {
                cycle: at(&mut rng),
                kind: FaultKind::PoolStall {
                    instance: rng.below(u64::from(cfg.pool_instances.max(1))) as u8,
                    cycles: rng.range_u64(1, u64::from(cfg.pool_down_max.max(2))) as u32,
                },
            });
        }
        // hostile probes draw after pool faults for the same reason: every
        // earlier campaign keeps its exact historical schedule
        for _ in 0..cfg.hostile_probes {
            events.push(FaultEvent {
                cycle: at(&mut rng),
                kind: FaultKind::HostileProbe {
                    class: ProbeClass::ALL[rng.below(ProbeClass::ALL.len() as u64) as usize],
                    target_num: rng.below(1 << 16) as u16,
                    sel: rng.below(1 << 16) as u16,
                },
            });
        }
        // shard kills draw last of all — the newest category always
        // appends to the draw order, so every existing campaign (classic,
        // pool, hostile) keeps its exact historical schedule
        for _ in 0..cfg.shard_kills {
            events.push(FaultEvent {
                cycle: at(&mut rng),
                kind: FaultKind::ShardKill {
                    shard: rng.below(u64::from(cfg.shard_count.max(1))) as u8,
                    down_cycles: rng.range_u64(1, u64::from(cfg.shard_down_max.max(2))) as u32,
                },
            });
        }
        events.sort_by_key(|e| e.cycle);
        FaultPlan {
            events,
            cursor: 0,
            seed,
        }
    }

    /// All scheduled events (consumed or not).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events targeting a subsystem.
    pub fn count(&self, subsystem: Subsystem) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind.subsystem() == subsystem)
            .count()
    }

    /// Drain every event scheduled at or before `cycle` (in order). Each
    /// event is returned exactly once across the plan's lifetime.
    pub fn drain_until(&mut self, cycle: u64) -> Vec<FaultEvent> {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].cycle <= cycle {
            self.cursor += 1;
        }
        self.events[start..self.cursor].to_vec()
    }

    /// Whether every event has been drained.
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.events.len()
    }

    /// Cycle of the next undrained event, if any — lets an event-stepped
    /// driver (the serve engine) jump straight to the next fault instead
    /// of polling every cycle.
    pub fn peek_cycle(&self) -> Option<u64> {
        self.events.get(self.cursor).map(|e| e.cycle)
    }

    /// The distinct cycles of every undrained event, in order — the
    /// event-kernel drivers post the whole fault timeline up front
    /// instead of peeking the plan every tick.
    pub fn pending_cycles(&self) -> impl Iterator<Item = u64> + '_ {
        let mut last = None;
        self.events[self.cursor..].iter().filter_map(move |e| {
            if last == Some(e.cycle) {
                None
            } else {
                last = Some(e.cycle);
                Some(e.cycle)
            }
        })
    }

    /// Map a normalized 16-bit position onto `[0, size)`.
    pub fn scale(pos_num: u16, size: u64) -> u64 {
        (u64::from(pos_num) * size) >> 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let cfg = FaultPlanConfig::default();
        let a = FaultPlan::generate(5, &cfg);
        let b = FaultPlan::generate(5, &cfg);
        assert_eq!(a, b);
        let c = FaultPlan::generate(6, &cfg);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn plan_is_sorted_and_complete() {
        let cfg = FaultPlanConfig::default();
        let plan = FaultPlan::generate(1, &cfg);
        assert!(plan.events().windows(2).all(|w| w[0].cycle <= w[1].cycle));
        let want = (cfg.axi_slverrs
            + cfg.axi_stalls
            + cfg.flash_bitrot
            + cfg.flash_stuck_pages
            + cfg.spw_corruptions
            + cfg.seus
            + cfg.task_panics
            + cfg.pool_kills
            + cfg.pool_stalls
            + cfg.hostile_probes
            + cfg.shard_kills) as usize;
        assert_eq!(plan.events().len(), want);
        assert_eq!(plan.count(Subsystem::Flash), (cfg.flash_bitrot + cfg.flash_stuck_pages) as usize);
    }

    #[test]
    fn pool_faults_default_off_and_generate_in_range() {
        let base = FaultPlanConfig::default();
        assert_eq!(FaultPlan::generate(4, &base).count(Subsystem::AcceleratorPool), 0);
        // enabling pool faults must not disturb the classic fault stream
        let serving = FaultPlanConfig {
            pool_kills: 3,
            pool_stalls: 2,
            ..base
        };
        let classic = FaultPlan::generate(4, &base);
        let chaotic = FaultPlan::generate(4, &serving);
        assert_eq!(chaotic.count(Subsystem::AcceleratorPool), 5);
        let non_pool = |p: &FaultPlan| {
            let mut v: Vec<FaultEvent> = p
                .events()
                .iter()
                .filter(|e| e.kind.subsystem() != Subsystem::AcceleratorPool)
                .copied()
                .collect();
            v.sort_by_key(|e| (e.cycle, format!("{:?}", e.kind)));
            v
        };
        assert_eq!(non_pool(&classic), non_pool(&chaotic));
        for ev in chaotic.events() {
            match ev.kind {
                FaultKind::PoolKill { instance, down_cycles } => {
                    assert!(instance < serving.pool_instances);
                    assert!((1..serving.pool_down_max).contains(&down_cycles));
                }
                FaultKind::PoolStall { instance, cycles } => {
                    assert!(instance < serving.pool_instances);
                    assert!((1..serving.pool_down_max).contains(&cycles));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn hostile_probes_default_off_and_preserve_classic_stream() {
        let base = FaultPlanConfig::default();
        assert_eq!(
            FaultPlan::generate(11, &base).count(Subsystem::HostilePartition),
            0
        );
        let hostile = FaultPlanConfig {
            hostile_probes: 24,
            ..base
        };
        let classic = FaultPlan::generate(11, &base);
        let adversarial = FaultPlan::generate(11, &hostile);
        assert_eq!(adversarial.count(Subsystem::HostilePartition), 24);
        let benign = |p: &FaultPlan| {
            let mut v: Vec<FaultEvent> = p
                .events()
                .iter()
                .filter(|e| e.kind.subsystem() != Subsystem::HostilePartition)
                .copied()
                .collect();
            v.sort_by_key(|e| (e.cycle, format!("{:?}", e.kind)));
            v
        };
        assert_eq!(benign(&classic), benign(&adversarial));
        let only = FaultPlan::generate(11, &FaultPlanConfig::hostile_only(50_000, 12));
        assert_eq!(only.events().len(), 12);
        assert!(only
            .events()
            .iter()
            .all(|e| e.kind.subsystem() == Subsystem::HostilePartition && e.cycle < 50_000));
    }

    #[test]
    fn shard_kills_default_off_and_preserve_every_earlier_stream() {
        let base = FaultPlanConfig::default();
        assert_eq!(FaultPlan::generate(23, &base).count(Subsystem::ServingShard), 0);
        // shard kills draw last: enabling them perturbs no earlier
        // category, whatever mix of categories is already on
        let mixed = FaultPlanConfig {
            pool_kills: 3,
            pool_stalls: 2,
            hostile_probes: 4,
            ..base
        };
        let fleet = FaultPlanConfig { shard_kills: 5, ..mixed };
        let before = FaultPlan::generate(23, &mixed);
        let after = FaultPlan::generate(23, &fleet);
        assert_eq!(after.count(Subsystem::ServingShard), 5);
        let sans_shard = |p: &FaultPlan| {
            let mut v: Vec<FaultEvent> = p
                .events()
                .iter()
                .filter(|e| e.kind.subsystem() != Subsystem::ServingShard)
                .copied()
                .collect();
            v.sort_by_key(|e| (e.cycle, format!("{:?}", e.kind)));
            v
        };
        assert_eq!(sans_shard(&before), sans_shard(&after));
        // pool_only composes the same way: adding shard kills on top of a
        // serving campaign keeps the pool schedule byte-identical (the
        // E14 seed-99 campaign must replay exactly under a fleet config)
        let serving = FaultPlanConfig::pool_only(80_000, 6, 4, 500, 2);
        let with_shards = FaultPlanConfig { shard_kills: 3, shard_down_max: 900, shard_count: 8, ..serving };
        let p_serving = FaultPlan::generate(99, &serving);
        let p_fleet = FaultPlan::generate(99, &with_shards);
        assert_eq!(sans_shard(&p_serving), sans_shard(&p_fleet));
        // shard_only draws only shard kills, in range
        let only = FaultPlan::generate(7, &FaultPlanConfig::shard_only(60_000, 9, 700, 8));
        assert_eq!(only.events().len(), 9);
        for ev in only.events() {
            match ev.kind {
                FaultKind::ShardKill { shard, down_cycles } => {
                    assert!(shard < 8);
                    assert!((1..700).contains(&down_cycles));
                    assert!(ev.cycle < 60_000);
                }
                _ => panic!("unexpected kind {:?}", ev.kind),
            }
        }
    }

    #[test]
    fn drain_returns_each_event_once() {
        let mut plan = FaultPlan::generate(9, &FaultPlanConfig::default());
        let total = plan.events().len();
        let mut seen = 0;
        for t in (0..=100_000u64).step_by(1000) {
            seen += plan.drain_until(t).len();
        }
        assert_eq!(seen, total);
        assert!(plan.exhausted());
        assert!(plan.drain_until(u64::MAX).is_empty());
    }

    #[test]
    fn scale_maps_into_range() {
        assert_eq!(FaultPlan::scale(0, 100), 0);
        assert!(FaultPlan::scale(u16::MAX, 100) < 100);
        assert_eq!(FaultPlan::scale(1 << 15, 1 << 16), 1 << 15);
    }
}
