//! # hermes-chaos
//!
//! Cross-layer fault-injection plane and staged-recovery chaos campaigns.
//!
//! The paper's central robustness claim is that the NG-ULTRA ecosystem
//! survives faults *transparently to the application*: TMR flash redundancy
//! and integrity checks in BL1 (Section IV), health-monitor containment in
//! XtratuM-NG (Section III). Every other crate exercises its own mechanism
//! in isolation; this crate injects **correlated faults across every layer
//! at once** — flash bit-rot, SpaceWire packet corruption, AXI SLVERR and
//! bus stalls, SEUs in partition memory, native-task panics — from one
//! deterministic seeded schedule, and measures that the stack degrades
//! gracefully instead of crashing.
//!
//! * [`plan`] — the [`FaultPlan`](plan::FaultPlan): a seeded schedule of
//!   faults keyed by cycle and subsystem;
//! * [`hostile`] — adversarial spatial-isolation campaigns: a seeded
//!   hostile guest probes its neighbors' memory, ports, and privileged
//!   services, under a zero-silent-leak invariant;
//! * [`report`] — the [`ChaosReport`](report::ChaosReport): injected-fault
//!   and recovery-stage accounting, availability and MTTR;
//! * [`scenario`] — end-to-end campaigns (boot under flash rot, mission
//!   run under SEU flux and bus errors) spanning `boot`, `axi`, `xng`, and
//!   `rad`.
//!
//! ## Example
//!
//! ```
//! use hermes_chaos::scenario;
//!
//! let outcome = scenario::full_campaign(42);
//! assert!(outcome.report.boot_succeeded);
//! assert_eq!(outcome.report.silent_corruptions, 0);
//! assert!(outcome.report.availability() > 0.5);
//! ```

pub mod hostile;
pub mod plan;
pub mod report;
pub mod scenario;
