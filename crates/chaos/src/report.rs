//! The chaos campaign report: injected-fault accounting, exercised
//! recovery stages, availability, and mean time to recovery.
//!
//! A campaign passes only if every fault was either *recovered* by one of
//! the stack's mechanisms or *contained* (detected and isolated) — a fault
//! that changes observable mission output without any detection is a
//! **silent corruption**, the one outcome a qualified space stack must
//! never produce.

use std::fmt::Write as _;

/// Counters for each recovery mechanism the stack implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStages {
    /// AXI transactions re-issued after SLVERR/timeout.
    pub axi_retries: u64,
    /// Flash bytes repaired by TMR majority vote.
    pub flash_voted_bytes: u64,
    /// Sequential flash copy fallbacks (alternate copy passed CRC).
    pub flash_copy_fallbacks: u64,
    /// SpaceWire packets retransmitted after CRC failure.
    pub spw_retransmissions: u64,
    /// Boot attempts that failed over to an alternate boot source.
    pub boot_source_failovers: u64,
    /// Golden/fallback bitstream substitutions.
    pub golden_bitstream_substitutions: u64,
    /// Safe-mode boots (last-resort stage).
    pub safe_mode_boots: u64,
    /// Partition restarts by the health monitor.
    pub partition_restarts: u64,
    /// Health-monitor escalations (restart promoted to halt).
    pub hm_escalations: u64,
    /// Spare-partition failovers.
    pub spare_failovers: u64,
    /// Watchdog expiries detected.
    pub watchdog_expiries: u64,
    /// Memory words repaired by EDAC/scrubbing.
    pub edac_corrections: u64,
}

/// The campaign report.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Seed the fault plan was generated from.
    pub seed: u64,
    /// Faults injected, by subsystem label.
    pub injected: Vec<(String, u64)>,
    /// Recovery-stage counters.
    pub recovered: RecoveryStages,
    /// Whether the boot chain reached application hand-off.
    pub boot_succeeded: bool,
    /// Major frames the mission phase completed.
    pub frames_total: u64,
    /// Major frames in which every mission-critical function was served
    /// (by the primary or a spare partition).
    pub frames_available: u64,
    /// Cycles from each detected fault to the completed recovery action;
    /// used for the MTTR figure.
    pub recovery_latencies: Vec<u64>,
    /// Observable mission outputs that differed from the golden model
    /// without any detection event — must be zero.
    pub silent_corruptions: u64,
    /// Free-form notes (one line per noteworthy campaign event).
    pub notes: Vec<String>,
    /// Flight recorder injections are traced into live (disabled by
    /// default; see [`ChaosReport::set_obs`]).
    pub obs: hermes_obs::Recorder,
}

impl ChaosReport {
    /// Attach a flight recorder: each [`inject`](ChaosReport::inject) from
    /// here on emits a live `fault-injected` event, and
    /// [`export_obs`](ChaosReport::export_obs) can publish the recovery
    /// counters at campaign end.
    pub fn set_obs(&mut self, obs: hermes_obs::Recorder) {
        self.obs = obs;
    }

    /// Record an injected fault against a subsystem label.
    pub fn inject(&mut self, label: &str) {
        if let Some(e) = self.injected.iter_mut().find(|(l, _)| l == label) {
            e.1 += 1;
        } else {
            self.injected.push((label.to_string(), 1));
        }
        self.obs.counter_add("chaos", "faults_injected", 1);
        self.obs.instant(
            "chaos",
            "fault-injected",
            hermes_obs::ClockDomain::Seq,
            self.total_injected(),
            &[("label", label.to_string())],
        );
    }

    /// Publish the campaign's recovery counters and verdict into the
    /// attached flight recorder (one `recovery-fired` event per exercised
    /// stage, in the fixed stage order used by
    /// [`render`](ChaosReport::render)).
    pub fn export_obs(&self) {
        let r = &self.recovered;
        let mut fired = 0u64;
        for (label, n) in [
            ("axi-retry", r.axi_retries),
            ("flash-tmr-vote", r.flash_voted_bytes),
            ("flash-copy-fallback", r.flash_copy_fallbacks),
            ("spw-retransmission", r.spw_retransmissions),
            ("boot-source-failover", r.boot_source_failovers),
            ("golden-bitstream", r.golden_bitstream_substitutions),
            ("safe-mode-boot", r.safe_mode_boots),
            ("partition-restart", r.partition_restarts),
            ("hm-escalation", r.hm_escalations),
            ("spare-failover", r.spare_failovers),
            ("watchdog-expiry", r.watchdog_expiries),
            ("edac-correction", r.edac_corrections),
        ] {
            self.obs.counter_add("chaos", &format!("recovered.{label}"), n);
            if n > 0 {
                fired += 1;
                self.obs.instant(
                    "chaos",
                    "recovery-fired",
                    hermes_obs::ClockDomain::Seq,
                    fired,
                    &[("stage", label.to_string()), ("count", n.to_string())],
                );
            }
        }
        self.obs
            .counter_add("chaos", "silent_corruptions", self.silent_corruptions);
        self.obs.gauge_set(
            "chaos",
            "availability_pct_x100",
            (self.availability() * 10_000.0) as i64,
        );
        self.obs.instant(
            "chaos",
            "campaign-verdict",
            hermes_obs::ClockDomain::Seq,
            self.total_injected(),
            &[
                ("boot", if self.boot_succeeded { "success" } else { "safe-mode" }.to_string()),
                ("availability", format!("{:.4}", self.availability())),
                ("silent_corruptions", self.silent_corruptions.to_string()),
            ],
        );
    }

    /// Total faults injected.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().map(|(_, n)| n).sum()
    }

    /// Availability over the mission phase in `[0, 1]` (1.0 when no
    /// frames ran).
    pub fn availability(&self) -> f64 {
        if self.frames_total == 0 {
            1.0
        } else {
            self.frames_available as f64 / self.frames_total as f64
        }
    }

    /// Mean time to recovery in cycles (0 when nothing needed recovery).
    pub fn mttr(&self) -> f64 {
        if self.recovery_latencies.is_empty() {
            0.0
        } else {
            self.recovery_latencies.iter().sum::<u64>() as f64
                / self.recovery_latencies.len() as f64
        }
    }

    /// Whether every distinct recovery family was exercised at least once:
    /// flash redundancy, AXI retry, SpaceWire retransmission, and
    /// health-monitor containment (restart/escalation/failover).
    pub fn all_stages_exercised(&self) -> bool {
        let r = &self.recovered;
        (r.flash_voted_bytes > 0 || r.flash_copy_fallbacks > 0)
            && r.axi_retries > 0
            && r.spw_retransmissions > 0
            && r.partition_restarts > 0
            && r.hm_escalations > 0
            && r.spare_failovers > 0
            && r.watchdog_expiries > 0
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "chaos campaign report (seed {})", self.seed);
        let _ = writeln!(
            s,
            "  boot: {}   availability: {:.4}   MTTR: {:.0} cycles   silent corruptions: {}",
            if self.boot_succeeded { "SUCCESS" } else { "SAFE-MODE" },
            self.availability(),
            self.mttr(),
            self.silent_corruptions
        );
        let _ = writeln!(s, "  injected ({} total):", self.total_injected());
        for (label, n) in &self.injected {
            let _ = writeln!(s, "    {label:<28} {n:>6}");
        }
        let r = &self.recovered;
        let _ = writeln!(s, "  recovery stages exercised:");
        for (label, n) in [
            ("axi-retry", r.axi_retries),
            ("flash-tmr-vote (bytes)", r.flash_voted_bytes),
            ("flash-copy-fallback", r.flash_copy_fallbacks),
            ("spw-retransmission", r.spw_retransmissions),
            ("boot-source-failover", r.boot_source_failovers),
            ("golden-bitstream", r.golden_bitstream_substitutions),
            ("safe-mode-boot", r.safe_mode_boots),
            ("partition-restart", r.partition_restarts),
            ("hm-escalation", r.hm_escalations),
            ("spare-failover", r.spare_failovers),
            ("watchdog-expiry", r.watchdog_expiries),
            ("edac-correction", r.edac_corrections),
        ] {
            let _ = writeln!(s, "    {label:<28} {n:>6}");
        }
        for note in &self.notes {
            let _ = writeln!(s, "  note: {note}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_and_mttr() {
        let mut r = ChaosReport::default();
        assert_eq!(r.availability(), 1.0);
        assert_eq!(r.mttr(), 0.0);
        r.frames_total = 10;
        r.frames_available = 9;
        r.recovery_latencies = vec![100, 300];
        assert!((r.availability() - 0.9).abs() < 1e-12);
        assert!((r.mttr() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn inject_accumulates_labels() {
        let mut r = ChaosReport::default();
        r.inject("seu");
        r.inject("seu");
        r.inject("axi-slverr");
        assert_eq!(r.total_injected(), 3);
        assert_eq!(r.injected.len(), 2);
    }

    #[test]
    fn render_mentions_every_stage() {
        let mut r = ChaosReport {
            boot_succeeded: true,
            ..ChaosReport::default()
        };
        r.inject("flash-bitrot");
        let text = r.render();
        for label in ["axi-retry", "spare-failover", "watchdog-expiry", "SUCCESS"] {
            assert!(text.contains(label), "missing {label}");
        }
    }

    #[test]
    fn stage_gate_requires_all_families() {
        let mut r = ChaosReport::default();
        assert!(!r.all_stages_exercised());
        r.recovered = RecoveryStages {
            axi_retries: 1,
            flash_voted_bytes: 1,
            spw_retransmissions: 1,
            partition_restarts: 1,
            hm_escalations: 1,
            spare_failovers: 1,
            watchdog_expiries: 1,
            ..RecoveryStages::default()
        };
        assert!(r.all_stages_exercised());
    }
}
