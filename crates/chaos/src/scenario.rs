//! End-to-end chaos campaigns: one seeded fault plan driven through the
//! whole stack — boot chain, AXI interconnect, SpaceWire link, and the
//! partitioned hypervisor — with every recovery stage accounted for in a
//! [`ChaosReport`].
//!
//! The campaign mirrors a mission profile:
//!
//! 1. **Boot under flash rot** — the redundant boot flash accumulates
//!    bit rot and a stuck page before power-up; BL1 boots through TMR
//!    voting, with a pristine SpaceWire rescue link next on the ladder
//!    for seeds that corrupt a byte in two copies at once;
//! 2. **Bus under fire** — payload DMA traffic runs over an AXI slave
//!    that answers with SLVERR and stalls mid-campaign; the retrying
//!    master re-issues every transaction and the driver checks each
//!    round trip against the written data;
//! 3. **Mission under flux** — the hypervisor runs its major frames while
//!    SEUs strike a scrubbed SRAM region, the prime partition's task
//!    panics on schedule (restart → escalation → spare failover), a
//!    silent partition trips its watchdog, and a software update is
//!    fetched over the corrupted SpaceWire link.

use crate::plan::{FaultEvent, FaultKind, FaultPlan, FaultPlanConfig, Subsystem};
use crate::report::ChaosReport;
use hermes_axi::memory::MemoryTiming;
use hermes_axi::testbench::{AxiTestbench, RetryPolicy};
use hermes_boot::bl1::{BootOutcome, BootSource, StagedBoot};
use hermes_boot::flash::{Flash, FlashImageBuilder, RedundancyMode, LOADLIST_OFFSET};
use hermes_boot::loadlist::LoadList;
use hermes_boot::spacewire::{RemoteNode, SpaceWireLink, PACKET_PAYLOAD, RETRY_BUDGET};
use hermes_cpu::memmap::layout;
use hermes_rtl::rng::DetRng;
use hermes_xng::config::{PartitionConfig, Plan, Slot, XngConfig};
use hermes_xng::hypervisor::Hypervisor;
use hermes_xng::partition::native_task;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One hypervisor major frame in the mission configuration: three slots
/// plus three context switches (see [`mission_under_flux`]).
const FRAME_CYCLES: u64 = 1_000 + 500 + 1_000 + 3 * 150;

/// Size of the scrubbed SRAM scratch region SEUs are aimed at.
const SCRATCH_SIZE: u64 = 0x1000;

/// Base of the scrubbed scratch region (clear of the boot report).
const SCRATCH_BASE: u32 = layout::SRAM_BASE + 0x4_0000;

/// Outcome of a full chaos campaign.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The chaos accounting: injections, recoveries, availability, MTTR.
    pub report: ChaosReport,
    /// The boot phase outcome (report, cluster, bitstreams).
    pub boot: BootOutcome,
}

/// Build the canonical mission flash: one application per entry, TMR
/// redundancy. Deterministic, so it can be rebuilt pristine for the
/// SpaceWire rescue publication.
fn mission_flash() -> (Flash, LoadList) {
    let words = hermes_cpu::isa::assemble("addi r1, r0, 42\nhalt").expect("static program");
    let mut builder = FlashImageBuilder::new();
    let app = builder.add_software(layout::DDR_BASE, layout::DDR_BASE, &words);
    let data = builder.add_data(layout::SRAM_BASE + 0x2_0000, &[0xA5; 512]);
    let list = LoadList {
        entries: vec![app, data],
    };
    let flash = builder.build(&list, RedundancyMode::Tmr);
    (flash, list)
}

/// Force one byte of one flash copy to read as 0xFF (stuck-erase bits).
fn stick_byte(flash: &mut Flash, copy: usize, offset: u32) {
    let Ok(bytes) = flash.read_copy(copy, offset, 1) else {
        return;
    };
    for bit in 0..8 {
        if bytes[0] & (1 << bit) == 0 {
            flash.flip_bit(copy, offset, bit);
        }
    }
}

/// Apply the plan's flash faults to a flash device.
///
/// Rot is aimed at the 8 KiB load-list window: BL1 reads every byte of it
/// redundantly, so each injected fault is *observable* (rot elsewhere in
/// the array stays latent and would inflate the injection count without
/// testing anything). One byte is never corrupted in two different copies
/// — that exceeds TMR's correction capacity by construction, and the
/// beyond-capacity path (boot-source failover, safe mode) is exercised by
/// the `StagedBoot` ladder tests in `hermes-boot` instead.
fn rot_flash(flash: &mut Flash, events: &[FaultEvent], report: &mut ChaosReport) {
    let window = 8 * 1024u64;
    let mut rotted: std::collections::HashMap<u32, u8> = std::collections::HashMap::new();
    for ev in events {
        match ev.kind {
            FaultKind::FlashBitRot { copy, pos_num, bit } => {
                let off = LOADLIST_OFFSET + FaultPlan::scale(pos_num, window) as u32;
                if *rotted.entry(off).or_insert(copy) != copy {
                    continue;
                }
                flash.flip_bit(usize::from(copy), off, bit);
                report.inject("flash-bitrot");
            }
            FaultKind::FlashStuckPage { copy, pos_num } => {
                let pages = window / 256;
                let off = LOADLIST_OFFSET + (FaultPlan::scale(pos_num, pages) * 256) as u32;
                for i in 0..256 {
                    if *rotted.entry(off + i).or_insert(copy) != copy {
                        continue;
                    }
                    stick_byte(flash, usize::from(copy), off + i);
                }
                report.inject("flash-stuck-page");
            }
            _ => {}
        }
    }
}

/// Boot the mission flash after seeded rot, with a pristine SpaceWire
/// rescue link next on the degradation ladder. Returns the boot outcome;
/// recovery counters land in `report`.
///
/// # Panics
///
/// Panics only if the pristine rescue publication itself fails, which
/// would be a testbench construction bug.
pub fn boot_under_flash_rot(seed: u64, report: &mut ChaosReport) -> BootOutcome {
    let plan = FaultPlan::generate(seed, &FaultPlanConfig::default());
    let (mut flash, list) = mission_flash();
    rot_flash(&mut flash, plan.events(), report);

    // rescue ladder rung: the same images served by a remote SpaceWire node
    let (pristine, _) = mission_flash();
    let rescue = BootSource::spacewire_from_flash(pristine, &list)
        .expect("pristine flash publishes cleanly");

    let mut ladder = StagedBoot::new(vec![
        BootSource::Flash(flash),
        BootSource::SpaceWire(rescue),
    ]);
    ladder.app_run_budget = 10_000;
    let out = ladder.boot().expect("ladder ends in safe mode, not error");

    let r = &mut report.recovered;
    r.flash_voted_bytes += out.report.flash_corrected_bytes;
    r.spw_retransmissions += out.report.spw_retransmissions;
    r.boot_source_failovers += u64::from(out.report.boot_source_failovers);
    r.golden_bitstream_substitutions += u64::from(out.report.golden_bitstream_substitutions);
    r.safe_mode_boots += u64::from(out.report.safe_mode);
    report.boot_succeeded = out.report.success;
    if out.report.flash_corrected_bytes > 0 {
        report.notes.push(format!(
            "boot: TMR vote corrected {} flash bytes",
            out.report.flash_corrected_bytes
        ));
    }
    if out.report.boot_source_failovers > 0 {
        report
            .notes
            .push("boot: primary flash unbootable, failed over on the ladder".into());
    }
    out
}

/// Drive payload DMA traffic over an AXI slave while the plan's bus
/// faults strike, with the retrying master recovering each transaction.
/// Every round trip is verified against the written data; a mismatch is a
/// silent corruption.
pub fn bus_under_fire(seed: u64, events: &[FaultEvent], report: &mut ChaosReport) {
    let mut tb =
        AxiTestbench::new(64 * 1024, MemoryTiming::default()).with_retry(RetryPolicy::default());
    // tight hang budget so long stalls surface as timeouts and exercise
    // the retry path instead of silently waiting out the stall
    tb.timeout_cycles = 100;
    let mut rng = DetRng::new(seed ^ 0xB05_F11E);

    for ev in events {
        match ev.kind {
            FaultKind::AxiReadSlvErr => {
                tb.memory_mut().inject_read_slverr(1);
                report.inject("axi-read-slverr");
            }
            FaultKind::AxiWriteSlvErr => {
                tb.memory_mut().inject_write_slverr(1);
                report.inject("axi-write-slverr");
            }
            FaultKind::AxiStall { cycles } => {
                tb.memory_mut().inject_stall(cycles);
                report.inject("axi-stall");
            }
            _ => continue,
        }
        // one DMA descriptor per fault: write a block, read it back
        let addr = rng.below(63 * 1024 / 64) * 64;
        let block = rng.bytes(64);
        let retries_before = tb.stats().retries;
        let wrote = tb.write_blocking(addr, &block);
        let read = tb.read_blocking(addr, block.len());
        match (wrote, read) {
            (Ok(wcycles), Ok((data, rcycles))) => {
                if data != block {
                    report.silent_corruptions += 1;
                } else if tb.stats().retries > retries_before {
                    // recovery cost: the whole (retried) round trip
                    report.recovery_latencies.push(wcycles + rcycles);
                }
            }
            _ => report
                .notes
                .push("bus: transaction abandoned after retry budget".into()),
        }
    }
    let stats = tb.stats();
    report.recovered.axi_retries += stats.retries;
    report.notes.push(format!(
        "bus: {} retries over {} slverrs + {} timeouts, {} give-ups",
        stats.retries, stats.slverrs, stats.timeouts, stats.retry_give_ups
    ));
}

/// Fetch a software update over a SpaceWire link carrying the plan's
/// persistent packet corruptions (all within the CRC retry budget, so the
/// transfer recovers through retransmission).
pub fn update_over_corrupted_link(seed: u64, events: &[FaultEvent], report: &mut ChaosReport) {
    let mut rng = DetRng::new(seed ^ 0x5_9A4E);
    let payload = rng.bytes(4 * PACKET_PAYLOAD);
    let mut remote = RemoteNode::new();
    remote.publish("update", payload.clone());
    for ev in events {
        if let FaultKind::SpwCorrupt {
            packet,
            bit,
            repeats,
        } = ev.kind
        {
            let repeats = u32::from(repeats).min(RETRY_BUDGET);
            remote.inject_persistent_fault("update", usize::from(packet), usize::from(bit), repeats);
            report.inject("spw-corruption");
        }
    }
    let mut link = SpaceWireLink::new(remote);
    match link.fetch("update") {
        Ok(data) => {
            if data != payload {
                report.silent_corruptions += 1;
            }
            if link.retransmissions > 0 {
                // each retransmitted packet costs one packet time
                report
                    .recovery_latencies
                    .push(link.retransmissions * hermes_boot::spacewire::CYCLES_PER_PACKET);
            }
        }
        Err(e) => report.notes.push(format!("spw: update fetch failed: {e}")),
    }
    report.recovered.spw_retransmissions += link.retransmissions;
}

/// Run the hypervisor mission phase under SEU flux and task panics.
///
/// Configuration: a prime partition (restart limit 1, spare configured),
/// a silent partition with a watchdog, a worker producing the mission
/// output, and a cold spare. The plan's `Seu` events strike a scrubbed
/// SRAM scratch region; `TaskPanic` events make the prime task fail at
/// its next activation. Availability counts frames in which both the
/// worker and the prime-or-spare function produced output.
///
/// # Panics
///
/// Panics only on hypervisor construction errors (static configuration).
pub fn mission_under_flux(seed: u64, events: &[FaultEvent], report: &mut ChaosReport) {
    let mut cfg = XngConfig::new("chaos-mission");
    let spare = cfg.add_partition(PartitionConfig::new("spare"));
    let prime = cfg.add_partition(
        PartitionConfig::new("prime")
            .with_restart_limit(1)
            .with_spare(spare),
    );
    let watched = cfg.add_partition(PartitionConfig::new("watched").with_watchdog(2_500));
    let worker = cfg.add_partition(PartitionConfig::new("worker"));
    cfg.set_plan(
        0,
        Plan::new(vec![
            Slot::new(prime, 1_000),
            Slot::new(watched, 500),
            Slot::new(worker, 1_000),
        ]),
    );
    let mut hv = Hypervisor::new(cfg).expect("static mission config validates");

    // shared fault/output state between the driver and the native tasks
    let pending_panics = Arc::new(AtomicU64::new(0));
    let prime_out = Arc::new(AtomicU64::new(0));
    let spare_out = Arc::new(AtomicU64::new(0));
    let worker_out = Arc::new(AtomicU64::new(0));
    let worker_sum = Arc::new(AtomicU64::new(0));

    {
        let (panics, out) = (pending_panics.clone(), prime_out.clone());
        hv.attach_native(
            prime,
            native_task("prime", move |ctx| {
                ctx.consume(200);
                if panics.load(Ordering::Relaxed) > 0 {
                    panics.fetch_sub(1, Ordering::Relaxed);
                    return Err("seu-induced task panic".into());
                }
                out.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }),
        )
        .expect("prime exists");
    }
    {
        let out = spare_out.clone();
        hv.attach_native(
            spare,
            native_task("spare", move |ctx| {
                ctx.consume(200);
                out.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }),
        )
        .expect("spare exists");
    }
    // `watched` keeps its Idle workload: dispatched on schedule but never
    // showing liveness, so its watchdog keeps expiring
    {
        let (out, sum) = (worker_out.clone(), worker_sum.clone());
        hv.attach_native(
            worker,
            native_task("worker", move |ctx| {
                ctx.consume(300);
                let n = out.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(n.wrapping_mul(2654435761) & 0xFFFF, Ordering::Relaxed);
                Ok(())
            }),
        )
        .expect("worker exists");
    }

    // known pattern in the scrubbed scratch region
    let mut rng = DetRng::new(seed ^ 0x5C4A7C8);
    let pattern = rng.bytes(SCRATCH_SIZE as usize);
    hv.cluster_mut()
        .bus
        .load_bytes(SCRATCH_BASE, &pattern)
        .expect("scratch region is mapped");

    let duration = FaultPlanConfig::default().duration;
    let frames = duration / FRAME_CYCLES;
    let mut cursor = 0usize;
    let mut golden_worker = 0u64;
    let mut outage_frames = 0u64;
    let mut outage_open = false;
    for frame in 0..frames {
        let frame_end = (frame + 1) * FRAME_CYCLES;
        // deliver this frame's scheduled runtime faults
        while cursor < events.len() && events[cursor].cycle < frame_end {
            match events[cursor].kind {
                FaultKind::Seu { pos_num, bit } => {
                    let addr = SCRATCH_BASE + FaultPlan::scale(pos_num, SCRATCH_SIZE) as u32;
                    if hv.flip_memory_bit(addr, bit).is_ok() {
                        report.inject("seu");
                    }
                }
                FaultKind::TaskPanic => {
                    pending_panics.fetch_add(1, Ordering::Relaxed);
                    report.inject("task-panic");
                }
                _ => {}
            }
            cursor += 1;
        }

        let function_before = prime_out.load(Ordering::Relaxed) + spare_out.load(Ordering::Relaxed);
        let worker_before = worker_out.load(Ordering::Relaxed);
        if hv.run(FRAME_CYCLES).is_err() {
            report.notes.push("mission: hypervisor substrate error".into());
            break;
        }
        report.frames_total += 1;
        golden_worker += 1;

        // end-of-frame scrub pass over the SEU target region
        let stored = hv
            .cluster_mut()
            .bus
            .read_bytes(SCRATCH_BASE, SCRATCH_SIZE as usize)
            .expect("scratch region is mapped");
        let mut corrected = 0u64;
        for (i, (&got, &want)) in stored.iter().zip(pattern.iter()).enumerate() {
            if got != want {
                hv.cluster_mut()
                    .bus
                    .load_bytes(SCRATCH_BASE + i as u32, &[want])
                    .expect("scratch region is mapped");
                corrected += 1;
            }
        }
        report.recovered.edac_corrections += corrected;

        let function_served = prime_out.load(Ordering::Relaxed) + spare_out.load(Ordering::Relaxed)
            > function_before;
        let worker_served = worker_out.load(Ordering::Relaxed) > worker_before;
        if function_served && worker_served {
            report.frames_available += 1;
            if outage_open {
                // restart/failover completed: record the outage as MTTR
                report.recovery_latencies.push(outage_frames * FRAME_CYCLES);
                outage_open = false;
                outage_frames = 0;
            }
        } else {
            outage_open = true;
            outage_frames += 1;
        }
    }

    // mission output integrity: replay the worker's pure function
    let produced = worker_out.load(Ordering::Relaxed);
    let golden_sum: u64 = (0..produced).map(|n| n.wrapping_mul(2654435761) & 0xFFFF).sum();
    if produced < golden_worker || worker_sum.load(Ordering::Relaxed) != golden_sum {
        report.silent_corruptions += 1;
    }

    // recovery accounting from the hypervisor
    let r = &mut report.recovered;
    r.partition_restarts += hv.stats(prime).restarts
        + hv.stats(watched).restarts
        + hv.stats(worker).restarts
        + hv.stats(spare).restarts;
    r.hm_escalations += hv.hm_escalations;
    r.spare_failovers += hv.spare_failovers;
    r.watchdog_expiries +=
        hv.stats(prime).watchdog_expiries + hv.stats(watched).watchdog_expiries;
    // each watchdog detection took at most one window
    for _ in 0..hv.stats(watched).watchdog_expiries.min(8) {
        report.recovery_latencies.push(2_500);
    }
    report.notes.push(format!(
        "mission: prime restarted {} time(s), escalated {} time(s), {} spare failover(s)",
        hv.stats(prime).restarts,
        hv.hm_escalations,
        hv.spare_failovers
    ));
}

/// The full campaign: one seed, one fault plan, every layer.
///
/// Boot under flash rot, bus traffic under SLVERR/stall fire, a software
/// update over a corrupted SpaceWire link, and a hypervisor mission phase
/// under SEU flux with task panics — all recoveries accounted in the
/// returned [`ChaosReport`].
pub fn full_campaign(seed: u64) -> CampaignOutcome {
    full_campaign_traced(seed, &hermes_obs::Recorder::disabled())
}

/// [`full_campaign`] with flight-recorder output: fault injections are
/// traced live as the phases run, the BL1 boot timeline is merged in from
/// the [`BootReport`](hermes_boot::report::BootReport), and the recovery
/// counters are published at campaign end. All campaign events land in a
/// [`Recorder::child`](hermes_obs::Recorder::child) that is absorbed into
/// `obs` before returning, so per-seed campaigns fanned out in parallel
/// merge deterministically in seed order.
pub fn full_campaign_traced(seed: u64, obs: &hermes_obs::Recorder) -> CampaignOutcome {
    let child = obs.child();
    let mut report = ChaosReport {
        seed,
        obs: child.clone(),
        ..ChaosReport::default()
    };
    let outcome = run_campaign_phases(seed, &mut report);
    outcome.report.obs_export(&child, "boot");
    report.export_obs();
    obs.absorb(&child);
    CampaignOutcome {
        report,
        boot: outcome,
    }
}

fn run_campaign_phases(seed: u64, report: &mut ChaosReport) -> BootOutcome {
    let mut plan = FaultPlan::generate(seed, &FaultPlanConfig::default());
    let events = plan.drain_until(u64::MAX);
    let by = |s: Subsystem| -> Vec<FaultEvent> {
        events
            .iter()
            .copied()
            .filter(|e| e.kind.subsystem() == s)
            .collect()
    };

    let boot = boot_under_flash_rot(seed, report);
    bus_under_fire(seed, &by(Subsystem::Axi), report);
    update_over_corrupted_link(seed, &by(Subsystem::SpaceWire), report);
    let mut mission: Vec<FaultEvent> = by(Subsystem::PartitionMemory);
    mission.extend(by(Subsystem::Task));
    mission.sort_by_key(|e| e.cycle);
    mission_under_flux(seed, &mission, report);

    boot
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_boot::report::BOOT_REPORT_ADDR;

    #[test]
    fn boot_phase_recovers_from_rot() {
        let mut report = ChaosReport::default();
        let out = boot_under_flash_rot(7, &mut report);
        assert!(
            out.report.success || out.report.boot_source_failovers > 0,
            "boot either succeeds or climbs the ladder"
        );
        assert!(report.boot_succeeded);
        assert!(
            report.recovered.flash_voted_bytes > 0 || report.recovered.boot_source_failovers > 0,
            "flash redundancy exercised: {:?}",
            report.recovered
        );
        // report deposited for the next stage
        let stored = out.cluster.bus.read_bytes(BOOT_REPORT_ADDR, 4).unwrap();
        assert_eq!(&stored, b"HRPT");
    }

    #[test]
    fn bus_phase_retries_and_round_trips() {
        let mut report = ChaosReport::default();
        let plan = FaultPlan::generate(11, &FaultPlanConfig::default());
        let events: Vec<FaultEvent> = plan
            .events()
            .iter()
            .copied()
            .filter(|e| e.kind.subsystem() == Subsystem::Axi)
            .collect();
        assert!(!events.is_empty());
        bus_under_fire(11, &events, &mut report);
        assert!(report.recovered.axi_retries > 0, "{:?}", report.recovered);
        assert_eq!(report.silent_corruptions, 0);
    }

    #[test]
    fn update_fetch_rides_out_corruption() {
        let mut report = ChaosReport::default();
        let plan = FaultPlan::generate(3, &FaultPlanConfig::default());
        let events: Vec<FaultEvent> = plan
            .events()
            .iter()
            .copied()
            .filter(|e| e.kind.subsystem() == Subsystem::SpaceWire)
            .collect();
        assert!(!events.is_empty());
        update_over_corrupted_link(3, &events, &mut report);
        assert!(report.recovered.spw_retransmissions > 0);
        assert_eq!(report.silent_corruptions, 0);
    }

    #[test]
    fn mission_phase_contains_flux() {
        let mut report = ChaosReport::default();
        let plan = FaultPlan::generate(21, &FaultPlanConfig::default());
        let events: Vec<FaultEvent> = plan
            .events()
            .iter()
            .copied()
            .filter(|e| {
                matches!(
                    e.kind.subsystem(),
                    Subsystem::PartitionMemory | Subsystem::Task
                )
            })
            .collect();
        mission_under_flux(21, &events, &mut report);
        assert!(report.frames_total > 10);
        assert!(report.availability() > 0.5);
        assert_eq!(report.silent_corruptions, 0);
        let r = &report.recovered;
        assert!(r.partition_restarts > 0, "{r:?}");
        assert!(r.hm_escalations > 0, "{r:?}");
        assert!(r.spare_failovers > 0, "{r:?}");
        assert!(r.watchdog_expiries > 0, "{r:?}");
        assert!(r.edac_corrections > 0, "{r:?}");
    }

    #[test]
    fn full_campaign_exercises_every_stage() {
        let outcome = full_campaign(42);
        let report = &outcome.report;
        assert!(report.boot_succeeded);
        assert_eq!(report.silent_corruptions, 0, "{}", report.render());
        assert!(report.availability() > 0.5, "{}", report.render());
        assert!(
            report.all_stages_exercised(),
            "every recovery family must fire:\n{}",
            report.render()
        );
        assert!(report.total_injected() > 20);
        assert!(report.mttr() > 0.0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = full_campaign(9);
        let b = full_campaign(9);
        assert_eq!(a.report.injected, b.report.injected);
        assert_eq!(a.report.recovered, b.report.recovered);
        assert_eq!(a.report.frames_available, b.report.frames_available);
        assert_eq!(a.report.recovery_latencies, b.report.recovery_latencies);
    }
}
