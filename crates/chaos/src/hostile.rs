//! Hostile-partition chaos: a seeded adversary guest probes the
//! hypervisor's spatial-isolation boundary and every probe must land as an
//! attributed health-monitor event.
//!
//! Where [`crate::scenario`] injects *environmental* faults (SEUs, bus
//! errors, flash rot) and checks the stack recovers, this module injects a
//! *malicious tenant*: a guest partition compiled on the fly to read,
//! write, and execute its neighbors' memory, pass out-of-range port
//! indices, fuzz undefined hypercall immediates, and invoke privileged
//! services it has no right to. The campaign's hard invariant is **zero
//! silent leaks**:
//!
//! * every probe is accounted — probe count equals trap count, a probe
//!   that produces no health event is a silent breach;
//! * victim memory is poisoned with seeded sentinels before the campaign
//!   and checksummed after it — any drift is a spatial-isolation failure;
//! * no trap is ever blamed on a victim;
//! * the HM escalation ladder (restart limit → halt → spare failover)
//!   engages against a persistent adversary exactly as it does against an
//!   accidental fault.
//!
//! Campaigns run under either isolation mechanism
//! ([`IsolationMode::MpuReprogram`] or [`IsolationMode::ProtectionKeys`])
//! so E15 can compare their containment *and* their cost side by side.

use crate::plan::{FaultKind, FaultPlan, FaultPlanConfig, ProbeClass};
use hermes_cpu::isa::assemble;
use hermes_cpu::memmap::layout;
use hermes_obs::Recorder;
use hermes_rtl::rng::DetRng;
use hermes_xng::config::{IsolationMode, MemRegion, PartitionConfig, Plan, Slot, XngConfig};
use hermes_xng::health::HmEvent;
use hermes_xng::hypercall::Hypercall;
use hermes_xng::hypervisor::{Hypervisor, IsolationStats};
use hermes_xng::PartitionId;

/// Size of every partition's memory region in the campaign arena.
pub const REGION_SIZE: u32 = 0x1000;

/// Base of the hostile partition's own region (victims follow above it).
const ARENA_BASE: u32 = layout::SRAM_BASE;

/// Slot length of the hostile partition (cycles): long enough for any
/// probe program to reach its faulting instruction.
const HOSTILE_SLOT: u64 = 60;

/// Slot length of each (idle) victim partition.
const VICTIM_SLOT: u64 = 20;

/// How many run chunks a probe may take before it is declared silent
/// (generous: a probe faults within its first slot).
const PROBE_BUDGET_CHUNKS: u32 = 40;

/// Configuration of one hostile campaign.
#[derive(Debug, Clone, Copy)]
pub struct HostileCampaignConfig {
    /// Seed for the fault plan, probe synthesis, and sentinel patterns.
    pub seed: u64,
    /// Number of victim partitions sharing the arena with the adversary.
    pub victims: usize,
    /// Number of adversarial probes to fire.
    pub probes: u32,
    /// Spatial-isolation mechanism under test.
    pub isolation: IsolationMode,
}

/// Per-probe-class accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Probes fired in this class.
    pub probes: u64,
    /// Probes that landed as an attributed health event.
    pub trapped: u64,
}

/// The outcome of one hostile campaign.
#[derive(Debug, Clone)]
pub struct HostileReport {
    /// Campaign seed.
    pub seed: u64,
    /// Victim partition count.
    pub victims: usize,
    /// Isolation mechanism the campaign ran under.
    pub isolation: IsolationMode,
    /// Probes fired.
    pub probes: u64,
    /// Probes that landed as an attributed health-monitor event.
    pub trapped: u64,
    /// Probes that produced **no** health event — must be zero.
    pub silent: u64,
    /// Accounting per probe class, indexed like [`ProbeClass::ALL`].
    pub by_class: [ClassStats; 6],
    /// Whether every victim sentinel checksum survived the campaign.
    pub sentinels_intact: bool,
    /// Isolation traps wrongly attributed to victims — must be zero.
    pub victim_blamed: u64,
    /// Isolation traps correctly attributed to the hostile partition.
    pub hostile_isolation_traps: u64,
    /// HM escalations during the persistent-adversary phase.
    pub hm_escalations: u64,
    /// Spare failovers during the persistent-adversary phase.
    pub spare_failovers: u64,
    /// Gate-crossing vs. MPU-reprogram cost accounting.
    pub iso: IsolationStats,
}

impl HostileReport {
    /// The campaign's hard invariant: every probe accounted, no sentinel
    /// drift, no victim blamed.
    pub fn zero_silent_leaks(&self) -> bool {
        self.silent == 0 && self.probes == self.trapped && self.sentinels_intact
            && self.victim_blamed == 0
    }
}

/// Base address of victim `i`'s region.
fn victim_base(i: usize) -> u32 {
    ARENA_BASE + REGION_SIZE * (i as u32 + 1)
}

/// Build the campaign arena: one hostile guest partition plus `victims`
/// idle victim partitions, each with its own `REGION_SIZE` region.
fn arena_config(victims: usize, isolation: IsolationMode) -> (XngConfig, PartitionId, Vec<PartitionId>) {
    let mut cfg = XngConfig::new("hostile-arena");
    let hostile = cfg.add_partition(PartitionConfig::new("hostile").with_memory(MemRegion {
        base: ARENA_BASE,
        size: REGION_SIZE,
        writable: true,
    }));
    let mut vs = Vec::with_capacity(victims);
    for i in 0..victims {
        vs.push(
            cfg.add_partition(PartitionConfig::new(format!("victim{i}")).with_memory(MemRegion {
                base: victim_base(i),
                size: REGION_SIZE,
                writable: true,
            })),
        );
    }
    let mut slots = vec![Slot::new(hostile, HOSTILE_SLOT)];
    slots.extend(vs.iter().map(|&v| Slot::new(v, VICTIM_SLOT)));
    cfg.set_plan(0, Plan::new(slots));
    cfg.context_switch_cycles = 1;
    cfg.isolation = isolation;
    (cfg, hostile, vs)
}

/// Compile one probe into guest assembly.
///
/// `target_num` selects the victim (memory probes) or the port hypercall
/// (port probes); `sel` is the free selector — byte offset, port index, or
/// fuzzed immediate.
fn synth_probe(class: ProbeClass, target_num: u16, sel: u16, victims: usize) -> String {
    let victim = FaultPlan::scale(target_num, victims.max(1) as u64) as usize;
    // word-aligned offset that keeps a 4-byte access inside the region
    let offset = (u32::from(sel) % REGION_SIZE) & !3;
    let addr = victim_base(victim) + offset;
    let (hi, lo) = (addr >> 16, addr & 0xFFFF);
    match class {
        ProbeClass::MemRead => {
            format!("lui r1, {hi:#x}\nori r1, r1, {lo:#x}\nlw r2, (r1)\nhalt")
        }
        ProbeClass::MemWrite => {
            format!("lui r1, {hi:#x}\nori r1, r1, {lo:#x}\nsw r2, (r1)\nhalt")
        }
        ProbeClass::MemExec => {
            format!("lui r1, {hi:#x}\nori r1, r1, {lo:#x}\njalr r0, r1, 0\nhalt")
        }
        ProbeClass::PortIndex => {
            // the hostile partition declares zero ports, so every index is
            // out of range; sweep all four port hypercalls
            let codes = [
                Hypercall::WriteSampling,
                Hypercall::ReadSampling,
                Hypercall::SendQueuing,
                Hypercall::RecvQueuing,
            ];
            let code = codes[usize::from(target_num) % codes.len()].code();
            format!("ori r1, r0, {sel:#x}\necall {code:#x}\nhalt")
        }
        ProbeClass::HypercallFuzz => {
            // force the immediate into the undefined space (all defined
            // codes are below 0x12, so the high bit guarantees None)
            let code = if Hypercall::decode(sel).is_some() {
                sel | 0x8000
            } else {
                sel
            };
            format!("ecall {code:#x}\nhalt")
        }
        ProbeClass::PrivilegedService => {
            // RequestModeChange from a non-system partition
            let mode = sel % 4;
            format!(
                "ori r1, r0, {mode:#x}\necall {code:#x}\nhalt",
                code = Hypercall::RequestModeChange.code()
            )
        }
    }
}

fn class_index(class: ProbeClass) -> usize {
    ProbeClass::ALL
        .iter()
        .position(|&c| c == class)
        .expect("class is in ALL")
}

/// Run one hostile campaign (see module docs).
///
/// # Panics
///
/// Panics only on static construction errors (arena config validation,
/// probe assembly) — never on hostile guest behavior.
pub fn hostile_campaign(cfg: &HostileCampaignConfig) -> HostileReport {
    hostile_campaign_traced(cfg, &Recorder::disabled())
}

/// [`hostile_campaign`] with flight-recorder output: each probe is traced
/// as an instant event with its class and verdict, and the campaign
/// counters are published at the end. All events land in a child recorder
/// absorbed into `obs` before returning, so parallel per-seed campaigns
/// merge deterministically.
///
/// # Panics
///
/// See [`hostile_campaign`].
pub fn hostile_campaign_traced(cfg: &HostileCampaignConfig, obs: &Recorder) -> HostileReport {
    let child = obs.child();
    let victims = cfg.victims.max(1);
    let (arena, hostile, vs) = arena_config(victims, cfg.isolation);
    let mut hv = Hypervisor::new(arena).expect("static arena config validates");
    hv.set_obs(child.clone());

    // poison every victim region with a seeded sentinel pattern and
    // record its checksum: any post-campaign drift is a spatial breach
    let mut rng = DetRng::new(cfg.seed ^ 0x5E17_1E15);
    let mut baselines = Vec::with_capacity(victims);
    for i in 0..victims {
        let pattern = rng.bytes(REGION_SIZE as usize);
        hv.cluster_mut()
            .bus
            .load_bytes(victim_base(i), &pattern)
            .expect("victim region is mapped");
        baselines.push(
            hv.cluster()
                .bus
                .checksum(victim_base(i), REGION_SIZE as usize)
                .expect("victim region is mapped"),
        );
    }

    let duration = 10_000 * u64::from(cfg.probes.max(1));
    let mut plan = FaultPlan::generate(cfg.seed, &FaultPlanConfig::hostile_only(duration, cfg.probes));
    // one major frame: every slot plus a context switch per slot
    let frame = HOSTILE_SLOT + victims as u64 * VICTIM_SLOT + (victims as u64 + 1);

    let mut report = HostileReport {
        seed: cfg.seed,
        victims,
        isolation: cfg.isolation,
        probes: 0,
        trapped: 0,
        silent: 0,
        by_class: [ClassStats::default(); 6],
        sentinels_intact: true,
        victim_blamed: 0,
        hostile_isolation_traps: 0,
        hm_escalations: 0,
        spare_failovers: 0,
        iso: IsolationStats::default(),
    };

    for ev in plan.drain_until(u64::MAX) {
        let FaultKind::HostileProbe { class, target_num, sel } = ev.kind else {
            continue;
        };
        let asm = synth_probe(class, target_num, sel, victims);
        let prog = assemble(&asm).expect("probe assembles");
        hv.attach_guest(hostile, ARENA_BASE, vec![(ARENA_BASE, prog)])
            .expect("hostile partition exists");
        let baseline = hv.health().log().len();
        let mut landed = false;
        for _ in 0..PROBE_BUDGET_CHUNKS {
            hv.run(frame).expect("substrate survives hostile guests");
            if hv.health().log().len() > baseline {
                landed = true;
                break;
            }
        }
        report.probes += 1;
        let idx = class_index(class);
        report.by_class[idx].probes += 1;
        if landed {
            report.trapped += 1;
            report.by_class[idx].trapped += 1;
        } else {
            report.silent += 1;
        }
        child.instant(
            "chaos",
            "hostile-probe",
            hermes_obs::ClockDomain::Hv,
            hv.time(),
            &[
                ("class", class.label().to_string()),
                ("landed", landed.to_string()),
            ],
        );
    }

    // zero-silent-leak audit: sentinel checksums and trap attribution
    for (i, &want) in baselines.iter().enumerate() {
        let got = hv
            .cluster()
            .bus
            .checksum(victim_base(i), REGION_SIZE as usize)
            .expect("victim region is mapped");
        if got != want {
            report.sentinels_intact = false;
            child.warning("chaos", &format!("sentinel drift in victim{i}"));
        }
    }
    report.victim_blamed = vs.iter().map(|&v| hv.stats(v).isolation_traps).sum();
    report.hostile_isolation_traps = hv.stats(hostile).isolation_traps;
    report.iso = hv.isolation_stats();

    // persistent-adversary phase: the same arena, but the hostile
    // partition now has a restart limit and a cold spare — the HM ladder
    // must escalate restart → halt → failover against a guest that traps
    // on every single activation
    let mut cfg2 = XngConfig::new("hostile-escalation");
    let spare = cfg2.add_partition(PartitionConfig::new("spare"));
    let hostile2 = cfg2.add_partition(
        PartitionConfig::new("hostile")
            .with_memory(MemRegion {
                base: ARENA_BASE,
                size: REGION_SIZE,
                writable: true,
            })
            .with_restart_limit(2)
            .with_spare(spare),
    );
    let victim = cfg2.add_partition(PartitionConfig::new("victim").with_memory(MemRegion {
        base: victim_base(0),
        size: REGION_SIZE,
        writable: true,
    }));
    cfg2.set_plan(
        0,
        Plan::new(vec![Slot::new(hostile2, HOSTILE_SLOT), Slot::new(victim, VICTIM_SLOT)]),
    );
    cfg2.context_switch_cycles = 1;
    cfg2.isolation = cfg.isolation;
    let mut hv2 = Hypervisor::new(cfg2).expect("static escalation config validates");
    hv2.set_obs(child.clone());
    let relentless = synth_probe(ProbeClass::MemRead, 0, 0, 1);
    let prog = assemble(&relentless).expect("probe assembles");
    hv2.attach_guest(hostile2, ARENA_BASE, vec![(ARENA_BASE, prog)])
        .expect("hostile partition exists");
    // enough frames for: trap, restart, trap, restart, trap, escalate
    hv2.run(40 * (HOSTILE_SLOT + VICTIM_SLOT + 2))
        .expect("substrate survives escalation");
    report.hm_escalations = hv2.hm_escalations;
    report.spare_failovers = hv2.spare_failovers;

    child.counter_add("chaos", "hostile_probes", report.probes);
    child.counter_add("chaos", "hostile_trapped", report.trapped);
    child.counter_add("chaos", "hostile_silent", report.silent);
    obs.absorb(&child);
    report
}

/// Outcome of a pure hypercall-fuzz sweep (see [`hypercall_fuzz_campaign`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzReport {
    /// Sweep seed.
    pub seed: u64,
    /// Undefined immediates fired.
    pub attempts: u64,
    /// Attempts attributed as [`HmEvent::IllegalHypercall`].
    pub attributed: u64,
    /// Attempts that produced no health event — must be zero.
    pub silent: u64,
}

/// Fuzz the undefined hypercall space: fire `attempts` seeded `ecall`
/// immediates (forced into the undefined space) from a guest partition and
/// check each one lands as an attributed [`HmEvent::IllegalHypercall`] —
/// never a panic, never a silent success.
///
/// # Panics
///
/// Panics only on static construction errors.
pub fn hypercall_fuzz_campaign(seed: u64, attempts: u32) -> FuzzReport {
    let mut cfg = XngConfig::new("fuzz");
    let g = cfg.add_partition(PartitionConfig::new("fuzzer").with_memory(MemRegion {
        base: ARENA_BASE,
        size: REGION_SIZE,
        writable: true,
    }));
    cfg.set_plan(0, Plan::new(vec![Slot::new(g, HOSTILE_SLOT)]));
    cfg.context_switch_cycles = 1;
    let mut hv = Hypervisor::new(cfg).expect("static fuzz config validates");
    let mut rng = DetRng::new(seed ^ 0xF0_22ED);
    let mut report = FuzzReport {
        seed,
        attempts: 0,
        attributed: 0,
        silent: 0,
    };
    for _ in 0..attempts {
        let mut code = (rng.next_u32() & 0xFFFF) as u16;
        if Hypercall::decode(code).is_some() {
            code |= 0x8000;
        }
        let prog = assemble(&format!("ecall {code:#x}\nhalt")).expect("probe assembles");
        hv.attach_guest(g, ARENA_BASE, vec![(ARENA_BASE, prog)])
            .expect("fuzzer partition exists");
        let baseline = hv.health().count_for(HmEvent::IllegalHypercall, g);
        for _ in 0..PROBE_BUDGET_CHUNKS {
            hv.run(HOSTILE_SLOT + 2).expect("substrate survives fuzzing");
            if hv.health().count_for(HmEvent::IllegalHypercall, g) > baseline {
                break;
            }
        }
        report.attempts += 1;
        if hv.health().count_for(HmEvent::IllegalHypercall, g) > baseline {
            report.attributed += 1;
        } else {
            report.silent += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_has_zero_silent_leaks_under_both_isolation_modes() {
        for isolation in [IsolationMode::MpuReprogram, IsolationMode::ProtectionKeys] {
            let report = hostile_campaign(&HostileCampaignConfig {
                seed: 42,
                victims: 2,
                probes: 12,
                isolation,
            });
            assert_eq!(report.probes, 12);
            assert_eq!(report.trapped, 12, "{isolation:?}: {report:?}");
            assert_eq!(report.silent, 0);
            assert!(report.sentinels_intact, "{isolation:?}");
            assert_eq!(report.victim_blamed, 0, "{isolation:?}");
            assert!(report.zero_silent_leaks());
            assert!(report.hm_escalations >= 1, "{isolation:?}: {report:?}");
            assert!(report.spare_failovers >= 1, "{isolation:?}: {report:?}");
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = HostileCampaignConfig {
            seed: 7,
            victims: 3,
            probes: 8,
            isolation: IsolationMode::ProtectionKeys,
        };
        let a = hostile_campaign(&cfg);
        let b = hostile_campaign(&cfg);
        assert_eq!(a.trapped, b.trapped);
        assert_eq!(a.by_class, b.by_class);
        assert_eq!(a.iso, b.iso);
    }

    #[test]
    fn isolation_modes_differ_only_in_cost_not_containment() {
        let mk = |isolation| {
            hostile_campaign(&HostileCampaignConfig {
                seed: 21,
                victims: 2,
                probes: 10,
                isolation,
            })
        };
        let mpu = mk(IsolationMode::MpuReprogram);
        let keys = mk(IsolationMode::ProtectionKeys);
        assert!(mpu.zero_silent_leaks());
        assert!(keys.zero_silent_leaks());
        // the mechanisms diverge in *cost*: reprogramming pays per guest
        // dispatch, keys install the table once and then swap the active key
        assert!(mpu.iso.mpu_reprograms > 1);
        assert_eq!(mpu.iso.gate_crossings, 0);
        assert!(keys.iso.mpu_reprograms >= 1);
        assert!(keys.iso.gate_crossings > keys.iso.mpu_reprograms);
    }

    #[test]
    fn probe_synthesis_always_assembles() {
        let mut rng = DetRng::new(99);
        for _ in 0..200 {
            let class = ProbeClass::ALL[rng.below(6) as usize];
            let asm = synth_probe(
                class,
                rng.below(1 << 16) as u16,
                rng.below(1 << 16) as u16,
                4,
            );
            assert!(assemble(&asm).is_ok(), "unassemblable probe: {asm}");
        }
    }

    #[test]
    fn fuzz_sweep_attributes_every_attempt() {
        let report = hypercall_fuzz_campaign(3, 24);
        assert_eq!(report.attempts, 24);
        assert_eq!(report.attributed, 24);
        assert_eq!(report.silent, 0);
    }
}
