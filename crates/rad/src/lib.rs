//! # hermes-rad
//!
//! Radiation-effects substrate: single-event-upset (SEU) injection, the
//! hardening mechanisms the paper's NG-ULTRA platform provides ("triple
//! modular redundancy, error correction mechanisms, and memory integrity
//! checks which are completely transparent to the application developer"),
//! and campaign tooling to *measure* their effectiveness instead of
//! asserting it.
//!
//! * [`tmr`] — triple-modular-redundant storage with majority voting and
//!   vote-and-repair scrubbing;
//! * [`edac`] — Hamming SECDED(39,32) error-detection-and-correction
//!   memory (corrects any single-bit error per word, detects any
//!   double-bit error);
//! * [`seu`] — a deterministic upset-injection environment;
//! * [`scrub`] — periodic scrubbing policies;
//! * [`campaign`] — end-to-end fault campaigns comparing unprotected, TMR,
//!   and EDAC memories (and configuration bitstreams) under identical
//!   upset sequences.
//!
//! ## Example
//!
//! ```
//! use hermes_rad::campaign::{Campaign, Protection};
//!
//! let report = Campaign::new(4096, 0x5EED)
//!     .upsets(300)
//!     .scrub_interval(Some(64))
//!     .run(Protection::Edac);
//! assert_eq!(report.silent_corruptions, 0, "SECDED + scrubbing holds");
//! ```

pub mod campaign;
pub mod edac;
pub mod scrub;
pub mod seu;
pub mod tmr;
