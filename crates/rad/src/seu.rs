//! Single-event-upset environment.
//!
//! Generates deterministic upset sequences (seeded) so that different
//! protection schemes can be compared under *identical* radiation: the same
//! `(time, bit)` pairs are replayed against each memory, scaled to its
//! storage size.

use hermes_rtl::rng::DetRng;

/// One upset event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Upset {
    /// Cycle at which the upset strikes.
    pub time: u64,
    /// Normalized position in `[0, 1)` scaled to the target's bit count.
    pub position_num: u64,
    /// Denominator of the normalized position.
    pub position_den: u64,
}

impl Upset {
    /// The concrete bit index for a target of `bits` storage bits.
    pub fn bit_for(&self, bits: u64) -> u64 {
        ((self.position_num as u128 * bits as u128) / self.position_den as u128) as u64
    }
}

/// A deterministic upset-sequence generator.
#[derive(Debug, Clone)]
pub struct SeuEnvironment {
    rng: DetRng,
}

impl SeuEnvironment {
    /// Seeded environment.
    pub fn new(seed: u64) -> Self {
        SeuEnvironment {
            rng: DetRng::new(seed),
        }
    }

    /// Generate `count` upsets spread uniformly over `duration` cycles.
    pub fn generate(&mut self, count: usize, duration: u64) -> Vec<Upset> {
        const DEN: u64 = 1 << 48;
        let mut upsets: Vec<Upset> = (0..count)
            .map(|_| Upset {
                time: self.rng.below(duration.max(1)),
                position_num: self.rng.below(DEN),
                position_den: DEN,
            })
            .collect();
        upsets.sort_by_key(|u| u.time);
        upsets
    }
}

/// Convert an orbit-style upset rate (upsets per megabit per day) and a
/// device size into an expected upset count over a mission time.
pub fn expected_upsets(rate_per_mbit_day: f64, bits: u64, days: f64) -> f64 {
    rate_per_mbit_day * (bits as f64 / 1.0e6) * days
}

/// Representative orbital radiation environments, as SEU rates in upsets
/// per megabit per day for unhardened 28 nm SRAM (order-of-magnitude
/// figures from published on-orbit data; solar-quiet conditions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orbit {
    /// Low Earth orbit (ISS-like, ~400 km, 51°).
    Leo,
    /// Polar/sun-synchronous LEO (higher latitude exposure).
    PolarLeo,
    /// Geostationary orbit.
    Geo,
    /// Geostationary transfer orbit (repeated proton-belt crossings).
    Gto,
    /// Jovian environment (Europa-class mission).
    Jovian,
}

impl Orbit {
    /// Upsets per megabit per day.
    pub fn rate_per_mbit_day(self) -> f64 {
        match self {
            Orbit::Leo => 0.2,
            Orbit::PolarLeo => 0.5,
            Orbit::Geo => 1.0,
            Orbit::Gto => 3.0,
            Orbit::Jovian => 40.0,
        }
    }

    /// Expected upsets over a mission segment for a memory of `bits` bits.
    pub fn expected_upsets(self, bits: u64, days: f64) -> f64 {
        expected_upsets(self.rate_per_mbit_day(), bits, days)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = SeuEnvironment::new(7).generate(100, 1000);
        let b = SeuEnvironment::new(7).generate(100, 1000);
        assert_eq!(a, b);
        let c = SeuEnvironment::new(8).generate(100, 1000);
        assert_ne!(a, c);
    }

    #[test]
    fn sorted_by_time_and_in_range() {
        let upsets = SeuEnvironment::new(1).generate(500, 10_000);
        assert!(upsets.windows(2).all(|w| w[0].time <= w[1].time));
        for u in &upsets {
            assert!(u.time < 10_000);
            assert!(u.bit_for(1024) < 1024);
        }
    }

    #[test]
    fn same_upset_maps_proportionally() {
        let u = Upset {
            time: 0,
            position_num: 1 << 47, // exactly one half
            position_den: 1 << 48,
        };
        assert_eq!(u.bit_for(1000), 500);
        assert_eq!(u.bit_for(96), 48);
    }

    #[test]
    fn orbit_rates_are_ordered() {
        let mbit = 1_000_000u64;
        let leo = Orbit::Leo.expected_upsets(mbit, 365.0);
        let geo = Orbit::Geo.expected_upsets(mbit, 365.0);
        let jov = Orbit::Jovian.expected_upsets(mbit, 365.0);
        assert!(leo < geo && geo < jov);
        assert!(jov > 1000.0, "Jupiter is hostile: {jov}");
    }

    #[test]
    fn rate_arithmetic() {
        // 1 upset/Mbit/day over 10 Mbit for 5 days = 50 expected
        let e = expected_upsets(1.0, 10_000_000, 5.0);
        assert!((e - 50.0).abs() < 1e-9);
    }
}
