//! Triple modular redundancy.
//!
//! [`TmrWord`] keeps three copies of a value and returns the bitwise
//! majority on read; [`TmrMemory`] applies the same discipline to a word
//! array. Voting masks any single-copy corruption; scrubbing
//! (vote-and-rewrite) prevents independent upsets from accumulating into
//! two-copy agreement failures.

/// A majority-voted triplicated word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TmrWord {
    copies: [u32; 3],
}

impl TmrWord {
    /// Store `value` in all copies.
    pub fn new(value: u32) -> Self {
        TmrWord {
            copies: [value; 3],
        }
    }

    /// Write all three copies.
    pub fn write(&mut self, value: u32) {
        self.copies = [value; 3];
    }

    /// Bitwise-majority read.
    pub fn read(&self) -> u32 {
        let [a, b, c] = self.copies;
        (a & b) | (a & c) | (b & c)
    }

    /// Whether the three copies currently disagree anywhere.
    pub fn has_divergence(&self) -> bool {
        let [a, b, c] = self.copies;
        !(a == b && b == c)
    }

    /// Vote and rewrite all copies; returns `true` if a repair happened.
    pub fn scrub(&mut self) -> bool {
        if self.has_divergence() {
            let v = self.read();
            self.copies = [v; 3];
            true
        } else {
            false
        }
    }

    /// Flip one bit of one copy (fault-injection hook).
    pub fn flip_bit(&mut self, copy: usize, bit: u32) {
        if copy < 3 && bit < 32 {
            self.copies[copy] ^= 1 << bit;
        }
    }
}

/// Statistics of a [`TmrMemory`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TmrStats {
    /// Scrub passes that repaired at least one word.
    pub repairs: u64,
}

/// A word array with TMR protection.
#[derive(Debug, Clone)]
pub struct TmrMemory {
    words: Vec<TmrWord>,
    /// Statistics.
    pub stats: TmrStats,
}

impl TmrMemory {
    /// Zero-initialized memory of `len` words.
    pub fn new(len: usize) -> Self {
        TmrMemory {
            words: vec![TmrWord::default(); len],
            stats: TmrStats::default(),
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Total storage bits (3 copies).
    pub fn storage_bits(&self) -> u64 {
        self.words.len() as u64 * 96
    }

    /// Write a word.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn write(&mut self, addr: usize, value: u32) {
        self.words[addr].write(value);
    }

    /// Majority-voted read.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn read(&self, addr: usize) -> u32 {
        self.words[addr].read()
    }

    /// Scrub the whole array.
    pub fn scrub(&mut self) {
        let mut repaired = false;
        for w in &mut self.words {
            repaired |= w.scrub();
        }
        if repaired {
            self.stats.repairs += 1;
        }
    }

    /// Flip a bit addressed over the whole triplicated array:
    /// `addr * 96 + copy * 32 + bit`.
    pub fn flip_bit(&mut self, bit: u64) {
        let addr = (bit / 96) as usize;
        let rem = bit % 96;
        if addr < self.words.len() {
            self.words[addr].flip_bit((rem / 32) as usize, (rem % 32) as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_copy_corruption_masked() {
        let mut w = TmrWord::new(0xDEAD_BEEF);
        w.flip_bit(1, 13);
        assert_eq!(w.read(), 0xDEAD_BEEF);
        assert!(w.has_divergence());
        assert!(w.scrub());
        assert!(!w.has_divergence());
    }

    #[test]
    fn two_copy_agreement_wins() {
        let mut w = TmrWord::new(0);
        w.flip_bit(0, 4);
        w.flip_bit(1, 4);
        assert_eq!(w.read(), 0x10, "two corrupted copies out-vote the clean one");
    }

    #[test]
    fn different_bits_in_different_copies_still_vote_clean() {
        let mut w = TmrWord::new(0xFFFF_0000);
        w.flip_bit(0, 0);
        w.flip_bit(1, 31);
        w.flip_bit(2, 15);
        assert_eq!(w.read(), 0xFFFF_0000);
    }

    #[test]
    fn memory_scrub_counts_repairs() {
        let mut m = TmrMemory::new(32);
        for a in 0..32 {
            m.write(a, a as u32);
        }
        m.flip_bit(5 * 96 + 32 + 3); // word 5, copy 1, bit 3
        m.scrub();
        assert_eq!(m.stats.repairs, 1);
        m.scrub();
        assert_eq!(m.stats.repairs, 1, "clean scrub counts nothing");
        for a in 0..32 {
            assert_eq!(m.read(a), a as u32);
        }
    }
}
