//! Hamming SECDED(39,32) error detection and correction.
//!
//! Each 32-bit data word is stored with 6 Hamming parity bits plus one
//! overall parity bit. Any single-bit error (data or parity) is corrected;
//! any double-bit error is detected but not correctable — the standard
//! EDAC scheme of rad-hard memory controllers.

/// Number of Hamming parity bits for 32 data bits.
const HAMMING_BITS: u32 = 6;
/// Total code length: 32 data + 6 hamming + 1 overall parity.
pub const CODE_BITS: u32 = 32 + HAMMING_BITS + 1;

/// Outcome of decoding one word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decode {
    /// No error.
    Clean(u32),
    /// Single-bit error corrected.
    Corrected(u32),
    /// Double-bit error detected; data unreliable.
    DoubleError,
}

/// Position map: code bit index (1-based Hamming position) for each of the
/// 32 data bits. Positions that are powers of two hold parity.
fn data_positions() -> [u32; 32] {
    let mut positions = [0u32; 32];
    let mut pos = 1u32;
    let mut di = 0usize;
    while di < 32 {
        if !pos.is_power_of_two() {
            positions[di] = pos;
            di += 1;
        }
        pos += 1;
    }
    positions
}

/// Encode a 32-bit word into a SECDED codeword (low 39 bits used).
pub fn encode(data: u32) -> u64 {
    let positions = data_positions();
    let mut code: u64 = 0;
    for (i, &p) in positions.iter().enumerate() {
        if (data >> i) & 1 == 1 {
            code |= 1u64 << (p - 1);
        }
    }
    // Hamming parity bits at positions 1,2,4,8,16,32
    for k in 0..HAMMING_BITS {
        let p = 1u32 << k;
        let mut parity = 0u64;
        for pos in 1..=38u32 {
            if pos & p != 0 {
                parity ^= (code >> (pos - 1)) & 1;
            }
        }
        if parity == 1 {
            code |= 1u64 << (p - 1);
        }
    }
    // overall parity (bit 39) makes total parity even
    let overall = (code.count_ones() & 1) as u64;
    code | (overall << 38)
}

/// Decode a codeword, correcting single-bit errors.
pub fn decode(code: u64) -> Decode {
    let code = code & ((1u64 << CODE_BITS) - 1);
    // syndrome over the 38 Hamming-covered bits
    let mut syndrome = 0u32;
    for k in 0..HAMMING_BITS {
        let p = 1u32 << k;
        let mut parity = 0u64;
        for pos in 1..=38u32 {
            if pos & p != 0 {
                parity ^= (code >> (pos - 1)) & 1;
            }
        }
        if parity == 1 {
            syndrome |= p;
        }
    }
    let overall_ok = code.count_ones().is_multiple_of(2);
    let extract = |code: u64| -> u32 {
        let positions = data_positions();
        let mut data = 0u32;
        for (i, &p) in positions.iter().enumerate() {
            if (code >> (p - 1)) & 1 == 1 {
                data |= 1 << i;
            }
        }
        data
    };
    match (syndrome, overall_ok) {
        (0, true) => Decode::Clean(extract(code)),
        (0, false) => {
            // overall parity bit itself flipped
            Decode::Corrected(extract(code))
        }
        (s, false) if s <= 38 => {
            // single-bit error at position s: flip and extract
            let fixed = code ^ (1u64 << (s - 1));
            Decode::Corrected(extract(fixed))
        }
        _ => Decode::DoubleError,
    }
}

/// Statistics of an [`EdacMemory`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdacStats {
    /// Words read back clean.
    pub clean_reads: u64,
    /// Single-bit corrections performed.
    pub corrections: u64,
    /// Double-bit detections (uncorrectable).
    pub double_errors: u64,
    /// Words rewritten by scrubbing.
    pub scrubbed: u64,
}

/// A word-addressed memory protected by SECDED codes.
#[derive(Debug, Clone)]
pub struct EdacMemory {
    words: Vec<u64>,
    /// Accumulated statistics.
    pub stats: EdacStats,
}

impl EdacMemory {
    /// A zero-initialized memory of `len` 32-bit words.
    pub fn new(len: usize) -> Self {
        EdacMemory {
            words: vec![encode(0); len],
            stats: EdacStats::default(),
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Total storage bits (for upset-rate normalization).
    pub fn storage_bits(&self) -> u64 {
        self.words.len() as u64 * u64::from(CODE_BITS)
    }

    /// Write a word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: usize, value: u32) {
        self.words[addr] = encode(value);
    }

    /// Read a word, transparently correcting single-bit errors (the
    /// corrected codeword is written back, as EDAC controllers do).
    ///
    /// Returns `None` on an uncorrectable double error.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&mut self, addr: usize) -> Option<u32> {
        match decode(self.words[addr]) {
            Decode::Clean(v) => {
                self.stats.clean_reads += 1;
                Some(v)
            }
            Decode::Corrected(v) => {
                self.stats.corrections += 1;
                self.words[addr] = encode(v);
                Some(v)
            }
            Decode::DoubleError => {
                self.stats.double_errors += 1;
                None
            }
        }
    }

    /// Scrub one word: read + rewrite if correctable. Returns `false` on an
    /// uncorrectable word.
    pub fn scrub_word(&mut self, addr: usize) -> bool {
        match decode(self.words[addr]) {
            Decode::Clean(_) => true,
            Decode::Corrected(v) => {
                self.words[addr] = encode(v);
                self.stats.corrections += 1;
                self.stats.scrubbed += 1;
                true
            }
            Decode::DoubleError => {
                self.stats.double_errors += 1;
                false
            }
        }
    }

    /// Flip one stored bit (fault-injection hook). `bit` indexes the whole
    /// array as `addr * CODE_BITS + code_bit`.
    pub fn flip_bit(&mut self, bit: u64) {
        let addr = (bit / u64::from(CODE_BITS)) as usize;
        let b = (bit % u64::from(CODE_BITS)) as u32;
        if addr < self.words.len() {
            self.words[addr] ^= 1u64 << b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        for v in [0u32, 1, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x5555_5555] {
            assert_eq!(decode(encode(v)), Decode::Clean(v));
        }
    }

    #[test]
    fn corrects_every_single_bit_error() {
        let data = 0xA5C3_1E07u32;
        let code = encode(data);
        for bit in 0..CODE_BITS {
            let corrupted = code ^ (1u64 << bit);
            match decode(corrupted) {
                Decode::Corrected(v) => assert_eq!(v, data, "bit {bit}"),
                other => panic!("bit {bit}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn detects_every_double_bit_error() {
        let data = 0x1234_5678u32;
        let code = encode(data);
        for b1 in 0..CODE_BITS {
            for b2 in (b1 + 1)..CODE_BITS {
                let corrupted = code ^ (1u64 << b1) ^ (1u64 << b2);
                match decode(corrupted) {
                    Decode::DoubleError => {}
                    Decode::Clean(_) => {
                        panic!("double error {b1},{b2} read as clean")
                    }
                    Decode::Corrected(v) => {
                        // A SECDED miscorrection would be silent corruption.
                        panic!("double error {b1},{b2} miscorrected to {v:#x}")
                    }
                }
            }
        }
    }

    #[test]
    fn memory_read_corrects_and_writes_back() {
        let mut m = EdacMemory::new(16);
        m.write(3, 0xCAFE_F00D);
        m.flip_bit(3 * u64::from(CODE_BITS) + 7);
        assert_eq!(m.read(3), Some(0xCAFE_F00D));
        assert_eq!(m.stats.corrections, 1);
        // second read is clean: write-back repaired the stored word
        assert_eq!(m.read(3), Some(0xCAFE_F00D));
        assert_eq!(m.stats.clean_reads, 1);
    }

    #[test]
    fn memory_double_error_detected() {
        let mut m = EdacMemory::new(4);
        m.write(0, 42);
        m.flip_bit(0);
        m.flip_bit(1);
        assert_eq!(m.read(0), None);
        assert_eq!(m.stats.double_errors, 1);
    }

    #[test]
    fn scrub_repairs_latent_errors() {
        let mut m = EdacMemory::new(8);
        for a in 0..8 {
            m.write(a, a as u32 * 11);
        }
        m.flip_bit(2 * u64::from(CODE_BITS) + 5);
        m.flip_bit(6 * u64::from(CODE_BITS) + 30);
        for a in 0..8 {
            assert!(m.scrub_word(a));
        }
        assert_eq!(m.stats.scrubbed, 2);
        for a in 0..8 {
            assert_eq!(m.read(a), Some(a as u32 * 11));
        }
    }
}
