//! Scrubbing policies.
//!
//! A scrubber periodically walks protected storage and repairs latent
//! single-copy/single-bit errors before a second, overlapping upset turns
//! them into uncorrectable (TMR two-copy / EDAC double-bit) failures. The
//! scrub interval is the key trade-off the E8 campaign sweeps.

/// A fixed-interval scrubbing schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scrubber {
    /// Cycles between full scrub passes (`None` = never scrub).
    pub interval: Option<u64>,
    last_pass: u64,
    /// Completed passes.
    pub passes: u64,
}

impl Scrubber {
    /// A scrubber with the given interval.
    pub fn new(interval: Option<u64>) -> Self {
        Scrubber {
            interval,
            last_pass: 0,
            passes: 0,
        }
    }

    /// Whether a pass is due at `now`; advances the schedule when it is.
    pub fn due(&mut self, now: u64) -> bool {
        match self.interval {
            Some(iv) if now.saturating_sub(self.last_pass) >= iv => {
                self.last_pass = now;
                self.passes += 1;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_scrubs_when_disabled() {
        let mut s = Scrubber::new(None);
        assert!(!s.due(0));
        assert!(!s.due(1_000_000));
        assert_eq!(s.passes, 0);
    }

    #[test]
    fn fires_on_interval() {
        let mut s = Scrubber::new(Some(100));
        assert!(!s.due(50));
        assert!(s.due(100));
        assert!(!s.due(150));
        assert!(s.due(205));
        assert_eq!(s.passes, 2);
    }
}
