//! Fault-injection campaigns.
//!
//! Replays an identical, seeded upset sequence against memories protected
//! by nothing, TMR, or EDAC (with an optional scrubbing interval), then
//! audits the final contents against the golden image. The same harness
//! also attacks FPGA configuration bitstreams to measure CRC detection
//! (the memory-integrity checking of the NG-ULTRA configuration plane).

use crate::edac::EdacMemory;
use crate::scrub::Scrubber;
use crate::seu::SeuEnvironment;
use crate::tmr::TmrMemory;
use hermes_fpga::bitstream::{Bitstream, FRAME_BYTES};

/// Protection scheme under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// Plain storage.
    None,
    /// Triple modular redundancy with voting.
    Tmr,
    /// SECDED EDAC.
    Edac,
}

/// Result of one memory campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignReport {
    /// Protection evaluated.
    pub protection: Protection,
    /// Upsets injected.
    pub upsets: u64,
    /// Words whose final read-back differs silently from the golden image.
    pub silent_corruptions: u64,
    /// Words flagged uncorrectable (detected data loss — EDAC only).
    pub detected_uncorrectable: u64,
    /// Errors repaired along the way (votes / corrections).
    pub corrected: u64,
    /// Scrub passes performed.
    pub scrub_passes: u64,
    /// Storage overhead relative to unprotected, in percent.
    pub storage_overhead_pct: u32,
}

/// A memory fault campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    words: usize,
    seed: u64,
    upsets: usize,
    duration: u64,
    scrub_interval: Option<u64>,
}

impl Campaign {
    /// A campaign over a memory of `words` 32-bit words.
    pub fn new(words: usize, seed: u64) -> Self {
        Campaign {
            words,
            seed,
            upsets: 100,
            duration: 100_000,
            scrub_interval: None,
        }
    }

    /// Set the number of upsets injected.
    pub fn upsets(mut self, n: usize) -> Self {
        self.upsets = n;
        self
    }

    /// Set the campaign duration in cycles.
    pub fn duration(mut self, cycles: u64) -> Self {
        self.duration = cycles;
        self
    }

    /// Set the scrubbing interval.
    pub fn scrub_interval(mut self, interval: Option<u64>) -> Self {
        self.scrub_interval = interval;
        self
    }

    /// Golden word for address `a` (a fixed mixing function).
    fn golden(a: usize) -> u32 {
        (a as u32).wrapping_mul(0x9E37_79B9) ^ 0x5A5A_5A5A
    }

    /// Run the campaign under a protection scheme.
    pub fn run(&self, protection: Protection) -> CampaignReport {
        let upsets = SeuEnvironment::new(self.seed).generate(self.upsets, self.duration);
        let mut scrubber = Scrubber::new(self.scrub_interval);
        match protection {
            Protection::None => {
                let mut mem: Vec<u32> = (0..self.words).map(Self::golden).collect();
                let bits = self.words as u64 * 32;
                for u in &upsets {
                    let bit = u.bit_for(bits);
                    mem[(bit / 32) as usize] ^= 1 << (bit % 32);
                    // scrubbing cannot help plain memory: nothing to vote
                    let _ = scrubber.due(u.time);
                }
                let silent = mem
                    .iter()
                    .enumerate()
                    .filter(|(a, &v)| v != Self::golden(*a))
                    .count() as u64;
                CampaignReport {
                    protection,
                    upsets: upsets.len() as u64,
                    silent_corruptions: silent,
                    detected_uncorrectable: 0,
                    corrected: 0,
                    scrub_passes: scrubber.passes,
                    storage_overhead_pct: 0,
                }
            }
            Protection::Tmr => {
                let mut mem = TmrMemory::new(self.words);
                for a in 0..self.words {
                    mem.write(a, Self::golden(a));
                }
                let bits = mem.storage_bits();
                for u in &upsets {
                    if scrubber.due(u.time) {
                        mem.scrub();
                    }
                    mem.flip_bit(u.bit_for(bits));
                }
                let mut silent = 0;
                for a in 0..self.words {
                    if mem.read(a) != Self::golden(a) {
                        silent += 1;
                    }
                }
                CampaignReport {
                    protection,
                    upsets: upsets.len() as u64,
                    silent_corruptions: silent,
                    detected_uncorrectable: 0,
                    corrected: mem.stats.repairs,
                    scrub_passes: scrubber.passes,
                    storage_overhead_pct: 200,
                }
            }
            Protection::Edac => {
                let mut mem = EdacMemory::new(self.words);
                for a in 0..self.words {
                    mem.write(a, Self::golden(a));
                }
                let bits = mem.storage_bits();
                for u in &upsets {
                    if scrubber.due(u.time) {
                        for a in 0..self.words {
                            mem.scrub_word(a);
                        }
                    }
                    mem.flip_bit(u.bit_for(bits));
                }
                let mut silent = 0;
                let mut detected = 0;
                for a in 0..self.words {
                    match mem.read(a) {
                        Some(v) if v == Self::golden(a) => {}
                        Some(_) => silent += 1,
                        None => detected += 1,
                    }
                }
                CampaignReport {
                    protection,
                    upsets: upsets.len() as u64,
                    silent_corruptions: silent,
                    detected_uncorrectable: detected,
                    corrected: mem.stats.corrections,
                    scrub_passes: scrubber.passes,
                    storage_overhead_pct: ((crate::edac::CODE_BITS - 32) * 100 / 32),
                }
            }
        }
    }
}

/// Result of a configuration-bitstream campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitstreamCampaignReport {
    /// Upsets injected into configuration memory.
    pub upsets: u64,
    /// Corrupted frames detected by the per-frame CRC.
    pub detected_frames: u64,
    /// Corrupted frames that escaped detection (should be 0: single upsets
    /// cannot defeat CRC-32).
    pub undetected_frames: u64,
}

/// Attack a bitstream's configuration memory with `n` seeded upsets and
/// audit what the per-frame CRC check catches.
pub fn bitstream_campaign(bitstream: &Bitstream, n: usize, seed: u64) -> BitstreamCampaignReport {
    let mut bs = bitstream.clone();
    let upsets = SeuEnvironment::new(seed).generate(n, 1_000_000);
    let frame_bits = (FRAME_BYTES * 8) as u64;
    let total_bits = bs.frames.len() as u64 * frame_bits;
    let mut hit_frames = std::collections::HashSet::new();
    for u in &upsets {
        let bit = u.bit_for(total_bits);
        let frame = (bit / frame_bits) as usize;
        let fbit = (bit % frame_bits) as usize;
        bs.flip_bit(frame, fbit);
        // an even number of hits on the same bit cancels; track by frame and
        // recheck at the end instead of assuming
        hit_frames.insert(frame);
    }
    let mut detected = 0;
    let mut undetected = 0;
    for (i, frame) in bs.frames.iter().enumerate() {
        let golden = &bitstream.frames[i];
        let differs = frame.payload != golden.payload;
        if differs {
            if frame.is_intact() {
                undetected += 1;
            } else {
                detected += 1;
            }
        }
    }
    BitstreamCampaignReport {
        upsets: upsets.len() as u64,
        detected_frames: detected,
        undetected_frames: undetected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_memory_corrupts() {
        let r = Campaign::new(1024, 42).upsets(200).run(Protection::None);
        assert!(r.silent_corruptions > 100, "{r:?}");
    }

    #[test]
    fn tmr_with_scrubbing_survives() {
        let r = Campaign::new(1024, 42)
            .upsets(200)
            .scrub_interval(Some(500))
            .run(Protection::Tmr);
        assert_eq!(r.silent_corruptions, 0, "{r:?}");
        assert!(r.scrub_passes > 0);
    }

    #[test]
    fn edac_with_scrubbing_survives() {
        let r = Campaign::new(1024, 42)
            .upsets(200)
            .scrub_interval(Some(500))
            .run(Protection::Edac);
        assert_eq!(r.silent_corruptions, 0, "{r:?}");
        assert_eq!(r.detected_uncorrectable, 0, "{r:?}");
        assert!(r.corrected > 0);
    }

    #[test]
    fn unscrubbed_protection_degrades_under_heavy_flux() {
        // enough upsets on a small memory that double hits become likely
        // (seed chosen so the saturated TMR run keeps a visible margin)
        let heavy = Campaign::new(64, 0).upsets(2000);
        let tmr = heavy.clone().run(Protection::Tmr);
        let edac = heavy.run(Protection::Edac);
        let unprotected = Campaign::new(64, 0).upsets(2000).run(Protection::None);
        assert!(
            tmr.silent_corruptions + edac.silent_corruptions + edac.detected_uncorrectable > 0,
            "without scrubbing, accumulation defeats protection: tmr={tmr:?} edac={edac:?}"
        );
        assert!(
            tmr.silent_corruptions < unprotected.silent_corruptions,
            "TMR still better than nothing"
        );
    }

    #[test]
    fn same_seed_same_outcome() {
        let a = Campaign::new(256, 3).upsets(100).run(Protection::Tmr);
        let b = Campaign::new(256, 3).upsets(100).run(Protection::Tmr);
        assert_eq!(a, b);
    }

    #[test]
    fn bitstream_crc_catches_upsets() {
        use hermes_fpga::bitstream::Frame;
        let bs = Bitstream {
            device_name: "d".into(),
            design_name: "t".into(),
            frames: (0..32).map(|i| Frame::new([i as u8; 64])).collect(),
        };
        let r = bitstream_campaign(&bs, 40, 77);
        assert_eq!(r.undetected_frames, 0);
        assert!(r.detected_frames > 0);
    }
}
