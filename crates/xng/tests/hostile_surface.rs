//! Adversarial fuzzing of the hypervisor's guest-facing surface.
//!
//! Every probe here is hostile by construction: undefined `ecall`
//! immediates, out-of-range port indices on all four port hypercalls, and
//! cross-domain memory access under protection keys. The invariant is
//! uniform — each probe must land as an attributed health-monitor event
//! (never a panic, never a silent success), and the system must keep
//! scheduling.

use hermes_cpu::isa::assemble;
use hermes_cpu::memmap::layout;
use hermes_rtl::rng::DetRng;
use hermes_xng::config::{IsolationMode, MemRegion, PartitionConfig, Plan, Slot, XngConfig};
use hermes_xng::health::HmEvent;
use hermes_xng::hypercall::Hypercall;
use hermes_xng::hypervisor::Hypervisor;
use hermes_xng::PartitionId;

/// A single-guest hypervisor with tight slots for fast probe turnaround.
fn probe_hv() -> (Hypervisor, PartitionId) {
    let mut cfg = XngConfig::new("probe");
    let g = cfg.add_partition(PartitionConfig::new("probe").with_memory(MemRegion {
        base: layout::SRAM_BASE,
        size: 0x1000,
        writable: true,
    }));
    cfg.set_plan(0, Plan::new(vec![Slot::new(g, 60)]));
    cfg.context_switch_cycles = 1;
    (Hypervisor::new(cfg).unwrap(), g)
}

/// Load `asm` into the probe partition and run until the health log grows
/// (returning the number of new entries) or a frame budget expires.
fn run_probe(hv: &mut Hypervisor, pid: PartitionId, asm: &str) -> usize {
    let prog = assemble(asm).expect("probe assembles");
    hv.attach_guest(pid, layout::SRAM_BASE, vec![(layout::SRAM_BASE, prog)])
        .unwrap();
    let baseline = hv.health().log().len();
    for _ in 0..40 {
        hv.run(10).unwrap();
        if hv.health().log().len() > baseline {
            break;
        }
    }
    hv.health().log().len() - baseline
}

#[test]
fn fuzzed_undefined_hypercalls_trap_and_never_panic() {
    let (mut hv, pid) = probe_hv();
    let mut rng = DetRng::new(0xC0FF_EE15);
    let mut probed = 0u32;
    for _ in 0..96 {
        let mut code = (rng.next_u32() & 0xFFFF) as u16;
        if Hypercall::decode(code).is_some() {
            // force into the undefined space (all defined codes are
            // below 0x12, so the high bit guarantees None)
            code |= 0x8000;
        }
        assert!(Hypercall::decode(code).is_none());
        let before = hv.health().count_for(HmEvent::IllegalHypercall, pid);
        let grew = run_probe(&mut hv, pid, &format!("ecall {code:#x}\nhalt"));
        assert!(grew > 0, "hypercall {code:#x} produced no health event");
        assert!(
            hv.health().count_for(HmEvent::IllegalHypercall, pid) > before,
            "hypercall {code:#x} not attributed as IllegalHypercall"
        );
        assert!(!hv.is_system_halted());
        probed += 1;
    }
    assert_eq!(probed, 96);
    // every probe is accounted: no silent successes anywhere in the sweep
    assert!(hv.health().count_for(HmEvent::IllegalHypercall, pid) >= probed as usize);
}

#[test]
fn out_of_range_port_indices_trap_on_all_four_port_hypercalls() {
    let (mut hv, pid) = probe_hv();
    let mut rng = DetRng::new(0x0BAD_70AD);
    let port_calls = [
        Hypercall::WriteSampling,
        Hypercall::ReadSampling,
        Hypercall::SendQueuing,
        Hypercall::RecvQueuing,
    ];
    for round in 0..8 {
        for hc in port_calls {
            // the probe partition declares zero ports, so every index is
            // out of range; sweep both small and huge values
            let idx = if round % 2 == 0 {
                rng.below(16) as u32
            } else {
                rng.next_u32() | 0x8000_0000
            };
            let before = hv.health().count_for(HmEvent::IllegalHypercall, pid);
            let asm = format!(
                "lui r1, {hi:#x}\nori r1, r1, {lo:#x}\necall {code:#x}\nhalt",
                hi = idx >> 16,
                lo = idx & 0xFFFF,
                code = hc.code(),
            );
            let grew = run_probe(&mut hv, pid, &asm);
            assert!(grew > 0, "{hc:?} index {idx} produced no health event");
            let log = hv.health().log();
            let entry = &log[log.len() - 1];
            assert_eq!(entry.event, HmEvent::IllegalHypercall, "{hc:?} index {idx}");
            assert_eq!(entry.partition, Some(pid));
            assert!(
                entry.detail.contains("bad port index"),
                "{hc:?}: detail `{}`",
                entry.detail
            );
            assert!(
                hv.health().count_for(HmEvent::IllegalHypercall, pid) > before
            );
            assert!(!hv.is_system_halted());
        }
    }
}

#[test]
fn cross_domain_probe_lands_as_domain_fault_under_keys() {
    let mut cfg = XngConfig::new("keys");
    let rogue = cfg.add_partition(PartitionConfig::new("rogue").with_memory(MemRegion {
        base: layout::SRAM_BASE,
        size: 0x1000,
        writable: true,
    }));
    let victim = cfg.add_partition(PartitionConfig::new("victim").with_memory(MemRegion {
        base: layout::SRAM_BASE + 0x1000,
        size: 0x1000,
        writable: true,
    }));
    cfg.set_plan(0, Plan::new(vec![Slot::new(rogue, 60), Slot::new(victim, 60)]));
    cfg.context_switch_cycles = 1;
    cfg.isolation = IsolationMode::ProtectionKeys;
    let mut hv = Hypervisor::new(cfg).unwrap();
    let attack = assemble(&format!(
        "lui r1, {hi:#x}\nori r1, r1, 0x1000\nlw r2, (r1)\nhalt",
        hi = layout::SRAM_BASE >> 16
    ))
    .unwrap();
    hv.attach_guest(rogue, layout::SRAM_BASE, vec![(layout::SRAM_BASE, attack)])
        .unwrap();
    let spin = assemble("spin:\necall 0x08\njal r0, spin").unwrap();
    hv.attach_guest(
        victim,
        layout::SRAM_BASE + 0x1000,
        vec![(layout::SRAM_BASE + 0x1000, spin)],
    )
    .unwrap();
    hv.run(2_000).unwrap();
    assert!(hv.stats(rogue).isolation_traps >= 1);
    assert!(
        hv.health()
            .log()
            .iter()
            .any(|e| e.event == HmEvent::PartitionTrap
                && e.partition == Some(rogue)
                && e.detail.contains("DomainFault")),
        "cross-domain probe attributed as DomainFault: {:?}",
        hv.health().log()
    );
    assert_eq!(hv.stats(victim).isolation_traps, 0, "victim never blamed");
    let iso = hv.isolation_stats();
    assert!(iso.gate_crossings >= 2);
    assert_eq!(iso.mpu_reprograms, 1, "union table installed once per core");
}
