//! Partition runtime state and workloads.
//!
//! A partition hosts either a **guest** machine-code image executed on the
//! `hermes-cpu` cluster (full virtualization of the modelled ISA, under MPU
//! enforcement) or a **native** Rust task (paravirtualization — the
//! "partial virtualization, where the hypervisor provides partitions with a
//! similar interface to … the underlying hardware platform" of
//! Section III). Native tasks interact with the system exclusively through
//! [`TaskCtx`].

use crate::ports::PortTable;
use crate::{PartitionId, XngError};
use std::fmt;

/// Saved virtual-CPU context of a guest partition on one core.
#[derive(Debug, Clone, Default)]
pub struct VcpuContext {
    /// General registers.
    pub regs: [u32; 16],
    /// Program counter.
    pub pc: u32,
    /// Whether the vCPU has been started at least once.
    pub started: bool,
}

/// Partition operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionMode {
    /// Awaiting first dispatch (or restart): cold start.
    #[default]
    Cold,
    /// Running normally.
    Normal,
    /// Permanently stopped (by itself or the health monitor).
    Halted,
}

/// A guest memory image: `(address, words)` pairs loaded at (re)start.
pub type GuestImage = Vec<(u32, Vec<u32>)>;

/// The workload hosted by a partition.
pub enum Workload {
    /// Nothing attached (scheduling hole).
    Idle,
    /// Guest machine code.
    Guest {
        /// Entry point.
        entry: u32,
        /// Memory image reloaded on cold start.
        image: GuestImage,
    },
    /// A native Rust task.
    Native(Box<dyn NativeTask>),
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Workload::Idle => write!(f, "Idle"),
            Workload::Guest { entry, .. } => write!(f, "Guest @ {entry:#x}"),
            Workload::Native(t) => write!(f, "Native({})", t.name()),
        }
    }
}

/// The interface native tasks use to interact with the hypervisor.
pub struct TaskCtx<'a> {
    pub(crate) pid: PartitionId,
    pub(crate) now: u64,
    pub(crate) budget: u64,
    pub(crate) consumed: u64,
    pub(crate) ports: &'a mut PortTable,
    pub(crate) trace: &'a mut Vec<String>,
    pub(crate) halt_requested: bool,
}

impl TaskCtx<'_> {
    /// This partition's id.
    pub fn partition_id(&self) -> PartitionId {
        self.pid
    }

    /// Current system time in cycles (slot start).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Cycles remaining in this activation's budget.
    pub fn remaining(&self) -> u64 {
        self.budget.saturating_sub(self.consumed)
    }

    /// Charge `cycles` of computation to this activation. Consuming more
    /// than the budget is allowed (the health monitor flags the overrun).
    pub fn consume(&mut self, cycles: u64) {
        self.consumed += cycles;
    }

    /// Write a message to one of this partition's source ports.
    ///
    /// # Errors
    ///
    /// See [`PortTable::write`].
    pub fn write_port(&mut self, port: &str, data: &[u8]) -> Result<(), XngError> {
        self.ports.write(self.pid, port, data, self.now)
    }

    /// Read the latest message from a sampling destination port, with age.
    ///
    /// # Errors
    ///
    /// See [`PortTable::read_sampling`].
    pub fn read_sampling(&self, port: &str) -> Result<Option<(Vec<u8>, u64)>, XngError> {
        self.ports.read_sampling(self.pid, port, self.now)
    }

    /// Dequeue a message from a queuing destination port.
    ///
    /// # Errors
    ///
    /// See [`PortTable::read_queuing`].
    pub fn read_queuing(&mut self, port: &str) -> Result<Option<Vec<u8>>, XngError> {
        Ok(self.ports.read_queuing(self.pid, port)?.map(|m| m.data))
    }

    /// Append a line to the partition trace.
    pub fn trace(&mut self, line: impl Into<String>) {
        self.trace.push(line.into());
    }

    /// Request a permanent halt of this partition.
    pub fn halt(&mut self) {
        self.halt_requested = true;
    }
}

/// A native partition task.
pub trait NativeTask: Send {
    /// Task name for diagnostics.
    fn name(&self) -> &str;

    /// One activation (invoked once per scheduling slot).
    ///
    /// # Errors
    ///
    /// An `Err` is reported to the health monitor as a partition error.
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Result<(), String>;

    /// Reset internal state on partition restart.
    fn reset(&mut self) {}
}

struct ClosureTask<F> {
    name: String,
    f: F,
}

impl<F> NativeTask for ClosureTask<F>
where
    F: FnMut(&mut TaskCtx<'_>) -> Result<(), String> + Send,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Result<(), String> {
        (self.f)(ctx)
    }
}

/// Wrap a closure as a [`NativeTask`].
pub fn native_task<F>(name: impl Into<String>, f: F) -> Box<dyn NativeTask>
where
    F: FnMut(&mut TaskCtx<'_>) -> Result<(), String> + Send + 'static,
{
    Box::new(ClosureTask {
        name: name.into(),
        f,
    })
}

/// Per-partition runtime bookkeeping.
#[derive(Debug)]
pub struct PartitionRt {
    /// The workload.
    pub workload: Workload,
    /// Operating mode.
    pub mode: PartitionMode,
    /// Saved vCPU contexts, one per core.
    pub vcpus: Vec<VcpuContext>,
    /// Trace lines (from hypercalls / TaskCtx).
    pub trace: Vec<String>,
    /// Statistics.
    pub stats: PartitionStats,
}

/// Per-partition statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Slot activations.
    pub activations: u64,
    /// CPU cycles consumed.
    pub cpu_cycles: u64,
    /// Hypercalls serviced.
    pub hypercalls: u64,
    /// Traps taken to the health monitor.
    pub traps: u64,
    /// Restarts performed by the health monitor.
    pub restarts: u64,
    /// Maximum observed delay between nominal and actual slot start.
    pub max_start_jitter: u64,
    /// Slot overruns (native tasks exceeding their budget).
    pub overruns: u64,
    /// Watchdog expiries attributed to this partition.
    pub watchdog_expiries: u64,
    /// Spatial-isolation traps (MPU faults and protection-domain faults)
    /// attributed to this partition — the subset of `traps` that
    /// represents attempted cross-partition access.
    pub isolation_traps: u64,
}

impl PartitionRt {
    /// A new idle partition runtime.
    pub fn new(cores: usize) -> Self {
        PartitionRt {
            workload: Workload::Idle,
            mode: PartitionMode::Cold,
            vcpus: vec![VcpuContext::default(); cores],
            trace: Vec::new(),
            stats: PartitionStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PartitionConfig, XngConfig};

    #[test]
    fn closure_task_runs() {
        let cfg = {
            let mut c = XngConfig::new("t");
            c.add_partition(PartitionConfig::new("p"));
            c
        };
        let mut ports = PortTable::from_config(&cfg);
        let mut trace = Vec::new();
        let mut task = native_task("demo", |ctx| {
            ctx.consume(10);
            ctx.trace("hello");
            Ok(())
        });
        let mut ctx = TaskCtx {
            pid: PartitionId(0),
            now: 0,
            budget: 100,
            consumed: 0,
            ports: &mut ports,
            trace: &mut trace,
            halt_requested: false,
        };
        task.step(&mut ctx).unwrap();
        assert_eq!(ctx.consumed, 10);
        assert_eq!(ctx.remaining(), 90);
        assert_eq!(trace, vec!["hello".to_string()]);
    }

    #[test]
    fn workload_debug() {
        assert_eq!(format!("{:?}", Workload::Idle), "Idle");
        let g = Workload::Guest {
            entry: 0x1000,
            image: vec![],
        };
        assert!(format!("{g:?}").contains("0x1000"));
    }
}
