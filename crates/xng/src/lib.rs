//! # hermes-xng
//!
//! A time-and-space-partitioning (TSP) hypervisor modelled after XtratuM
//! Next Generation, the bare-metal space-qualified hypervisor the HERMES
//! project ports to the NG-ULTRA's quad-core ARM R52 cluster (Section III
//! of the paper).
//!
//! Like its model, `hermes-xng` provides:
//!
//! * **partitions** — isolated virtual machines hosting either guest
//!   machine code (run on the `hermes-cpu` cluster, under MPU enforcement)
//!   or native Rust tasks (paravirtualized applications);
//! * **time partitioning** — per-core cyclic plans of fixed slots inside a
//!   major frame (ARINC-653 style), with measured context-switch overhead
//!   and slot-start jitter;
//! * **space partitioning** — per-partition memory regions programmed into
//!   the core MPU before dispatch; violations trap to the health monitor;
//! * **inter-partition communication** — sampling and queuing ports over
//!   configured channels;
//! * **hypercalls** — a paravirtualized service interface (`ecall` from
//!   guest code);
//! * **a health monitor** — configurable per-event actions (ignore,
//!   restart, halt partition, halt system) with an event log.
//!
//! ## Example
//!
//! ```
//! use hermes_xng::config::{PartitionConfig, Plan, Slot, XngConfig};
//! use hermes_xng::hypervisor::Hypervisor;
//! use hermes_xng::partition::native_task;
//!
//! # fn main() -> Result<(), hermes_xng::XngError> {
//! let mut config = XngConfig::new("demo");
//! let a = config.add_partition(PartitionConfig::new("ctrl"));
//! let b = config.add_partition(PartitionConfig::new("payload"));
//! config.set_plan(0, Plan::new(vec![Slot::new(a, 10_000), Slot::new(b, 10_000)]));
//!
//! let mut hv = Hypervisor::new(config)?;
//! hv.attach_native(a, native_task("ctrl-task", |ctx| { ctx.consume(100); Ok(()) }))?;
//! hv.attach_native(b, native_task("payload-task", |ctx| { ctx.consume(200); Ok(()) }))?;
//! hv.run(40_000)?;
//! assert!(hv.stats(a).activations >= 2);
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod health;
pub mod hypercall;
pub mod hypervisor;
pub mod partition;
pub mod ports;

use std::fmt;

/// Identifier of a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(pub u32);

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Errors produced by the hypervisor.
#[derive(Debug, Clone, PartialEq)]
pub enum XngError {
    /// Configuration is inconsistent.
    Config {
        /// Detail message.
        detail: String,
    },
    /// Unknown partition id.
    NoSuchPartition(PartitionId),
    /// Unknown port name for a partition.
    NoSuchPort {
        /// The partition.
        partition: PartitionId,
        /// The port name.
        port: String,
    },
    /// Port direction or type misuse.
    PortMisuse {
        /// Detail message.
        detail: String,
    },
    /// The system was halted by the health monitor.
    SystemHalted,
    /// Error from the CPU substrate.
    Cpu(hermes_cpu::CpuError),
    /// Config text parse error.
    Parse {
        /// 1-based line.
        line: usize,
        /// Detail message.
        detail: String,
    },
}

impl fmt::Display for XngError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XngError::Config { detail } => write!(f, "bad configuration: {detail}"),
            XngError::NoSuchPartition(p) => write!(f, "no such partition {p}"),
            XngError::NoSuchPort { partition, port } => {
                write!(f, "partition {partition} has no port `{port}`")
            }
            XngError::PortMisuse { detail } => write!(f, "port misuse: {detail}"),
            XngError::SystemHalted => write!(f, "system halted by health monitor"),
            XngError::Cpu(e) => write!(f, "cpu error: {e}"),
            XngError::Parse { line, detail } => {
                write!(f, "config parse error at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for XngError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XngError::Cpu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hermes_cpu::CpuError> for XngError {
    fn from(e: hermes_cpu::CpuError) -> Self {
        XngError::Cpu(e)
    }
}
