//! The hypervisor core: cyclic dispatch, hypercall service, health
//! monitoring, and statistics.
//!
//! Each core follows its own cyclic plan. At every slot boundary the
//! hypervisor charges a fixed context-switch cost, programs the core MPU
//! with the incoming partition's memory regions, and either restores the
//! guest vCPU (guest partitions) or invokes the native task once (native
//! partitions). Guest `ecall`s are serviced as hypercalls; guest traps are
//! routed to the health monitor.
//!
//! The per-cycle engine is exact but wasteful when every core is quiet
//! (native partitions between activations, yielded or halted guests):
//! nothing can happen until the next slot boundary or watchdog deadline.
//! With the unified event kernel enabled (`HERMES_EVENT_KERNEL`, default
//! on — see DESIGN.md §14), [`Hypervisor::run`] posts those deadlines
//! into a [`hermes_kernel::Scheduler`] and fast-forwards quiet gaps in
//! one `bulk_advance` instead of polling every tick. Every popped timer
//! is validated against live state before it is trusted, so the schedule
//! — dispatch instants, watchdog expiries, HM escalations, statistics —
//! is bit-identical to the polling engine.

use crate::config::{IsolationMode, XngConfig};
use crate::health::{HealthMonitor, HmAction, HmEvent};
use crate::hypercall::Hypercall;
use crate::partition::{
    NativeTask, PartitionMode, PartitionRt, PartitionStats, TaskCtx, VcpuContext, Workload,
};
use crate::ports::PortTable;
use crate::{PartitionId, XngError};
use hermes_cpu::cluster::{Cluster, CORE_COUNT};
use hermes_cpu::hart::{Event, TrapCause};
use hermes_cpu::mpu::{reprogram_cost, MpuRegion, Privilege, GATE_CROSS_CYCLES};
use hermes_kernel::{DomainId, DomainRegistry, Scheduler, WheelStats};
use hermes_obs::{ClockDomain, Recorder, TraceCtx};

/// Flight-recorder subsystem name used by the hypervisor.
const OBS_SUB: &str = "xng";

/// Spatial-isolation accounting: what the configured
/// [`IsolationMode`] cost at partition dispatch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IsolationStats {
    /// Full MPU region-table reprograms performed.
    pub mpu_reprograms: u64,
    /// Cycles modelled for those reprograms.
    pub mpu_reprogram_cycles: u64,
    /// Protection-key gate crossings (active-key swaps) performed.
    pub gate_crossings: u64,
    /// Cycles modelled for those gate crossings.
    pub gate_cross_cycles: u64,
}

impl IsolationStats {
    /// Total modelled isolation cycles across both mechanisms.
    pub fn total_cycles(&self) -> u64 {
        self.mpu_reprogram_cycles + self.gate_cross_cycles
    }
}

#[derive(Debug, Clone, Default)]
struct CoreSched {
    slot_idx: usize,
    elapsed: u64,
    switching: u64,
    current: Option<PartitionId>,
    cycles_at_dispatch: u64,
}

/// A timer posted into the event kernel. The payload carries only the
/// timer's identity — its due time is recomputed from live hypervisor
/// state at pop, so stale entries (superseded by a mode change, failover,
/// or watchdog kick) are recognised and discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum XngTimer {
    /// `switching` on this core reaches zero (slot dispatch).
    Dispatch(usize),
    /// This core's current slot elapses (retire + next-slot switch).
    Retire(usize),
    /// This partition's liveness watchdog deadline.
    Watchdog(usize),
}

/// Event-kernel domain ids for the hypervisor's timer classes; the
/// `(time, domain, seq)` tie-break keeps same-tick pops deterministic.
struct XngDomains {
    dispatch: DomainId,
    retire: DomainId,
    watchdog: DomainId,
}

impl XngDomains {
    fn register() -> Self {
        let mut reg = DomainRegistry::new();
        XngDomains {
            dispatch: reg.register("xng.dispatch"),
            retire: reg.register("xng.retire"),
            watchdog: reg.register("xng.watchdog"),
        }
    }
}

/// Last posted due time per timer, so an unchanged deadline is not
/// reposted every wake. A memoised time `t > now` is guaranteed to still
/// be pending in the scheduler: pops only consume entries up to the
/// winning wake, which becomes the new `now`.
struct XngMemo {
    dispatch: [Option<u64>; CORE_COUNT],
    retire: [Option<u64>; CORE_COUNT],
    watchdog: Vec<Option<u64>>,
}

impl XngMemo {
    fn new(partitions: usize) -> Self {
        XngMemo {
            dispatch: [None; CORE_COUNT],
            retire: [None; CORE_COUNT],
            watchdog: vec![None; partitions],
        }
    }

    /// Forget every memoised post. Used when pending entries may have
    /// been consumed without becoming the current time (a budget-capped
    /// advance): reposting duplicates is harmless, missing a wake is not.
    fn clear(&mut self) {
        self.dispatch = [None; CORE_COUNT];
        self.retire = [None; CORE_COUNT];
        self.watchdog.iter_mut().for_each(|w| *w = None);
    }
}

/// The hypervisor.
pub struct Hypervisor {
    config: XngConfig,
    cluster: Cluster,
    ports: PortTable,
    hm: HealthMonitor,
    partitions: Vec<PartitionRt>,
    cores: Vec<CoreSched>,
    time: u64,
    /// Pending scheduling-mode switch (mode index), applied at the next
    /// tick boundary.
    pending_mode: Option<usize>,
    current_mode: Option<usize>,
    /// Completed mode changes.
    pub mode_changes: u64,
    /// Per-partition absolute watchdog deadlines (`None` = disarmed).
    watchdogs: Vec<Option<u64>>,
    /// Health-monitor escalations: restarts promoted to halts because a
    /// partition exhausted its restart limit.
    pub hm_escalations: u64,
    /// Spare-partition failovers: plan slots rewritten to a spare after a
    /// partition was halted.
    pub spare_failovers: u64,
    /// Spatial-isolation cost accounting.
    isolation_stats: IsolationStats,
    /// Whether the union protection-key table is installed on each core
    /// ([`IsolationMode::ProtectionKeys`] installs it lazily, once).
    key_installed: [bool; CORE_COUNT],
    /// Flight recorder (disabled by default; see [`Hypervisor::set_obs`]).
    obs: Recorder,
    /// Causal trace context attached to dispatch instants (see
    /// [`Hypervisor::set_trace_ctx`]).
    trace: TraceCtx,
    /// Whether [`run`](Hypervisor::run) fast-forwards quiet gaps through
    /// the unified event kernel (DESIGN.md §14).
    event_kernel: bool,
    /// The persistent timer scheduler (wheel or reference, per the knob).
    sched: Scheduler<XngTimer>,
    domains: XngDomains,
    memo: XngMemo,
    /// Ticks executed by the full per-cycle engine.
    ticks_polled: u64,
    /// Quiet ticks fast-forwarded without entering the engine.
    ticks_skipped: u64,
}

impl Hypervisor {
    /// Boot a hypervisor from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`XngError::Config`] if validation fails.
    pub fn new(config: XngConfig) -> Result<Self, XngError> {
        config.validate()?;
        let partitions = (0..config.partitions.len())
            .map(|_| PartitionRt::new(CORE_COUNT))
            .collect();
        let ports = PortTable::from_config(&config);
        // every core boots into a context-switch window so the first slot's
        // partition is dispatched like any other
        let boot_core = CoreSched {
            switching: config.context_switch_cycles.max(1),
            ..CoreSched::default()
        };
        let watchdogs = vec![None; config.partitions.len()];
        let event_kernel = hermes_kernel::event_kernel_enabled();
        let memo = XngMemo::new(config.partitions.len());
        Ok(Hypervisor {
            cluster: Cluster::new(),
            ports,
            hm: HealthMonitor::new(),
            partitions,
            cores: vec![boot_core; CORE_COUNT],
            time: 0,
            pending_mode: None,
            current_mode: None,
            mode_changes: 0,
            watchdogs,
            hm_escalations: 0,
            spare_failovers: 0,
            isolation_stats: IsolationStats::default(),
            key_installed: [false; CORE_COUNT],
            obs: Recorder::disabled(),
            trace: TraceCtx::untraced(),
            event_kernel,
            sched: Scheduler::new(event_kernel),
            domains: XngDomains::register(),
            memo,
            ticks_polled: 0,
            ticks_skipped: 0,
            config,
        })
    }

    /// Override the `HERMES_EVENT_KERNEL` default for this hypervisor
    /// (tests and experiments pass it explicitly — process-global env
    /// mutation is racy under the multithreaded test harness). Resets the
    /// scheduler: pending timers are re-derived from live state.
    pub fn set_event_kernel(&mut self, on: bool) {
        self.event_kernel = on;
        self.sched = Scheduler::new(on);
        self.memo.clear();
    }

    /// Ticks that ran the full per-cycle engine.
    pub fn ticks_polled(&self) -> u64 {
        self.ticks_polled
    }

    /// Quiet ticks fast-forwarded by the event kernel instead of being
    /// polled.
    pub fn ticks_skipped(&self) -> u64 {
        self.ticks_skipped
    }

    /// Event-kernel scheduler counters (posted/popped/cascades/occupancy).
    pub fn kernel_stats(&self) -> &WheelStats {
        self.sched.stats()
    }

    /// Attach a flight recorder: every partition dispatch
    /// (context switch), hypercall, and health-monitor event is traced on
    /// the `Hv` clock domain (the ARINC-653-style schedule timeline).
    pub fn set_obs(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// Attach (or clear, with `None`) a causal trace context: subsequent
    /// partition-dispatch (`context-switch`) instants link into that
    /// trace, tying a serve request's causal tree to the XNG schedule
    /// timeline that ran its partition.
    pub fn set_trace_ctx(&mut self, ctx: Option<TraceCtx>) {
        self.trace = ctx.unwrap_or_default();
    }

    /// The attached flight recorder (disabled unless [`set_obs`] was
    /// called).
    ///
    /// [`set_obs`]: Hypervisor::set_obs
    pub fn obs(&self) -> &Recorder {
        &self.obs
    }

    /// Report a health-monitor event and trace it on the `Hv` clock.
    fn report_hm(
        &mut self,
        now: u64,
        event: HmEvent,
        pid: Option<PartitionId>,
        detail: String,
    ) -> HmAction {
        let action = self.hm.report(&self.config.hm_table, now, event, pid, detail);
        self.obs.counter_add(OBS_SUB, "hm_events", 1);
        self.obs.instant(
            OBS_SUB,
            "hm-event",
            ClockDomain::Hv,
            now,
            &[
                ("event", format!("{event:?}")),
                (
                    "partition",
                    pid.map_or_else(|| "-".to_string(), |p| p.0.to_string()),
                ),
                ("action", format!("{action:?}")),
            ],
        );
        action
    }

    /// Attach a guest machine-code workload to a partition. The image is
    /// `(address, words)` pairs; it is loaded now and reloaded on restart.
    ///
    /// # Errors
    ///
    /// Returns [`XngError::NoSuchPartition`] or a CPU load error.
    pub fn attach_guest(
        &mut self,
        pid: PartitionId,
        entry: u32,
        image: Vec<(u32, Vec<u32>)>,
    ) -> Result<(), XngError> {
        let rt = self
            .partitions
            .get_mut(pid.0 as usize)
            .ok_or(XngError::NoSuchPartition(pid))?;
        for (addr, words) in &image {
            self.cluster.load_program(0, *addr, words)?;
        }
        rt.workload = Workload::Guest { entry, image };
        rt.mode = PartitionMode::Cold;
        Ok(())
    }

    /// Attach a native task to a partition.
    ///
    /// # Errors
    ///
    /// Returns [`XngError::NoSuchPartition`].
    pub fn attach_native(
        &mut self,
        pid: PartitionId,
        task: Box<dyn NativeTask>,
    ) -> Result<(), XngError> {
        let rt = self
            .partitions
            .get_mut(pid.0 as usize)
            .ok_or(XngError::NoSuchPartition(pid))?;
        rt.workload = Workload::Native(task);
        rt.mode = PartitionMode::Cold;
        Ok(())
    }

    /// Current system time in cycles.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Whether the health monitor halted the system.
    pub fn is_system_halted(&self) -> bool {
        self.hm.system_halted
    }

    /// Partition statistics.
    ///
    /// # Panics
    ///
    /// Panics on an invalid id.
    pub fn stats(&self, pid: PartitionId) -> PartitionStats {
        self.partitions[pid.0 as usize].stats
    }

    /// Partition trace lines.
    ///
    /// # Panics
    ///
    /// Panics on an invalid id.
    pub fn trace(&self, pid: PartitionId) -> &[String] {
        &self.partitions[pid.0 as usize].trace
    }

    /// Partition mode.
    ///
    /// # Panics
    ///
    /// Panics on an invalid id.
    pub fn mode(&self, pid: PartitionId) -> PartitionMode {
        self.partitions[pid.0 as usize].mode
    }

    /// The health monitor (log access).
    pub fn health(&self) -> &HealthMonitor {
        &self.hm
    }

    /// Spatial-isolation cost accounting (gate crossings vs. MPU
    /// reprograms).
    pub fn isolation_stats(&self) -> IsolationStats {
        self.isolation_stats
    }

    /// The context-switch window charged before dispatching `pid`. The
    /// base cost always applies; when
    /// [`XngConfig::charge_isolation_cycles`] is set, guest dispatches
    /// additionally pay the configured isolation mechanism — a full MPU
    /// reprogram scaling with the partition's region count, or one
    /// constant-cost protection-key gate crossing. Boot, mode-change, and
    /// failover switches keep the base cost: they are rare, and charging
    /// them would blur the per-slot comparison E15 makes.
    fn switch_window(&self, pid: PartitionId) -> u64 {
        let base = self.config.context_switch_cycles.max(1);
        if !self.config.charge_isolation_cycles {
            return base;
        }
        if !matches!(
            self.partitions[pid.0 as usize].workload,
            Workload::Guest { .. }
        ) {
            return base;
        }
        base + match self.config.isolation {
            IsolationMode::MpuReprogram => {
                reprogram_cost(self.config.partitions[pid.0 as usize].memory.len())
            }
            IsolationMode::ProtectionKeys => GATE_CROSS_CYCLES,
        }
    }

    /// The port switchboard (testbench access).
    pub fn ports_mut(&mut self) -> &mut PortTable {
        &mut self.ports
    }

    /// The underlying cluster (interference statistics etc.).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable cluster access (fault injection / test setup).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Flip one bit of system memory — the SEU injection point of the
    /// chaos fault plane.
    ///
    /// # Errors
    ///
    /// Propagates bus errors for unmapped addresses.
    pub fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> Result<(), XngError> {
        let byte = self.cluster.bus.read_bytes(addr, 1)?[0];
        self.cluster
            .bus
            .load_bytes(addr, &[byte ^ (1 << (bit % 8))])?;
        Ok(())
    }

    /// Record liveness for a partition: push its watchdog deadline out by
    /// the configured window (no-op without a watchdog).
    fn kick_watchdog(&mut self, pid: PartitionId) {
        if let Some(w) = self.config.partitions[pid.0 as usize].watchdog_cycles {
            self.watchdogs[pid.0 as usize] = Some(self.time + w);
        }
    }

    /// Request a switch to the alternate scheduling mode registered with
    /// [`XngConfig::add_mode`]. Applied at the next hypervisor tick: every
    /// core's current partition is preempted and its context saved, the new
    /// per-core plans start from their first slot, and each core pays one
    /// context switch — XtratuM's plan/mode-change semantics.
    ///
    /// # Errors
    ///
    /// Returns [`XngError::Config`] for an unknown mode index.
    pub fn request_mode_change(&mut self, mode: usize) -> Result<(), XngError> {
        if mode >= self.config.modes.len() {
            return Err(XngError::Config {
                detail: format!("no such scheduling mode {mode}"),
            });
        }
        self.pending_mode = Some(mode);
        Ok(())
    }

    /// Index of the active alternate mode (`None` = the boot plans).
    pub fn current_mode(&self) -> Option<usize> {
        self.current_mode
    }

    fn apply_mode_change(&mut self, mode: usize) -> Result<(), XngError> {
        // preempt every core, saving guest contexts
        for core in 0..CORE_COUNT {
            self.retire(core)?;
        }
        self.config.plans = self.config.modes[mode].1.clone();
        let cs = self.config.context_switch_cycles.max(1);
        for core in &mut self.cores {
            core.slot_idx = 0;
            core.elapsed = 0;
            core.switching = cs;
            core.current = None;
        }
        self.current_mode = Some(mode);
        self.mode_changes += 1;
        Ok(())
    }

    /// Run for `cycles` hypervisor cycles (stops early if the health
    /// monitor halts the system).
    ///
    /// With the event kernel enabled, quiet stretches — no core active,
    /// no mode change pending, nothing due this tick — are crossed in one
    /// bulk advance to the next scheduled timer instead of one engine
    /// pass per cycle. The observable schedule is identical either way.
    ///
    /// # Errors
    ///
    /// Propagates CPU substrate errors.
    pub fn run(&mut self, cycles: u64) -> Result<(), XngError> {
        let mut remaining = cycles;
        while remaining > 0 {
            if self.hm.system_halted {
                break;
            }
            if self.event_kernel && self.idle_now() && !self.due_now() {
                self.post_timers();
                let horizon = self.time + remaining;
                let k = match self.next_wake(horizon) {
                    Some(wake) => wake - self.time,
                    // nothing fires in (now, horizon]: the whole budget
                    // is quiet time
                    None => remaining,
                };
                self.bulk_advance(k);
                self.ticks_skipped += k;
                remaining -= k;
                continue;
            }
            self.tick()?;
            self.ticks_polled += 1;
            remaining -= 1;
        }
        Ok(())
    }

    /// Whether this tick is pure time: no core can make progress and no
    /// state transition is pending. (A halted partition with an armed
    /// watchdog is excluded conservatively — the next engine pass disarms
    /// it, then fast-forwarding resumes.)
    fn idle_now(&self) -> bool {
        self.pending_mode.is_none()
            && !self.cluster.any_active()
            && !self
                .watchdogs
                .iter()
                .enumerate()
                .any(|(i, w)| w.is_some() && self.partitions[i].mode == PartitionMode::Halted)
    }

    /// Whether any timer fires on the *current* tick (those are never
    /// posted — the kernel only holds strictly-future times — so the
    /// engine must run now).
    fn due_now(&self) -> bool {
        for core in 0..CORE_COUNT {
            if self.config.plans[core].slots.is_empty() {
                continue;
            }
            let cs = &self.cores[core];
            if cs.switching > 0 {
                if cs.switching == 1 {
                    return true;
                }
            } else {
                let slot = self.config.plans[core].slots[cs.slot_idx];
                if cs.elapsed + 1 >= slot.duration {
                    return true;
                }
            }
        }
        self.watchdogs.iter().enumerate().any(|(i, w)| {
            w.is_some_and(|d| d <= self.time)
                && self.partitions[i].mode != PartitionMode::Halted
        })
    }

    /// Post every strictly-future timer deadline into the scheduler,
    /// memo-deduplicated so an unchanged deadline is posted once.
    fn post_timers(&mut self) {
        let now = self.time;
        for core in 0..CORE_COUNT {
            if self.config.plans[core].slots.is_empty() {
                continue;
            }
            let cs = &self.cores[core];
            if cs.switching > 0 {
                let due = now + cs.switching - 1;
                Self::post_timer(
                    &mut self.sched,
                    &mut self.memo.dispatch[core],
                    due,
                    now,
                    self.domains.dispatch,
                    XngTimer::Dispatch(core),
                );
            } else {
                let slot = self.config.plans[core].slots[cs.slot_idx];
                let due = now + slot.duration.saturating_sub(cs.elapsed + 1);
                Self::post_timer(
                    &mut self.sched,
                    &mut self.memo.retire[core],
                    due,
                    now,
                    self.domains.retire,
                    XngTimer::Retire(core),
                );
            }
        }
        for i in 0..self.watchdogs.len() {
            let Some(deadline) = self.watchdogs[i] else {
                continue;
            };
            if self.partitions[i].mode == PartitionMode::Halted {
                continue;
            }
            Self::post_timer(
                &mut self.sched,
                &mut self.memo.watchdog[i],
                deadline,
                now,
                self.domains.watchdog,
                XngTimer::Watchdog(i),
            );
        }
    }

    fn post_timer(
        sched: &mut Scheduler<XngTimer>,
        memo: &mut Option<u64>,
        due: u64,
        now: u64,
        domain: DomainId,
        timer: XngTimer,
    ) {
        if due > now && *memo != Some(due) {
            sched
                .post(due, domain, timer)
                .expect("timer deadline is in the future");
            *memo = Some(due);
        }
    }

    /// Whether a popped timer still reflects live state: its due time,
    /// recomputed now, must equal the posted time.
    fn timer_live(&self, timer: XngTimer, t: u64) -> bool {
        match timer {
            XngTimer::Dispatch(core) => {
                let cs = &self.cores[core];
                !self.config.plans[core].slots.is_empty()
                    && cs.switching > 0
                    && self.time + cs.switching - 1 == t
            }
            XngTimer::Retire(core) => {
                let cs = &self.cores[core];
                if self.config.plans[core].slots.is_empty() || cs.switching > 0 {
                    return false;
                }
                let slot = self.config.plans[core].slots[cs.slot_idx];
                self.time + slot.duration.saturating_sub(cs.elapsed + 1) == t
            }
            XngTimer::Watchdog(pid) => {
                self.watchdogs[pid] == Some(t)
                    && self.partitions[pid].mode != PartitionMode::Halted
            }
        }
    }

    /// Pop until a live timer surfaces; its time is the next tick where
    /// anything can happen. Stale pops (superseded deadlines) are
    /// discarded — validation makes them harmless. Entries beyond
    /// `horizon` (the farthest this `run` may advance) are left pending,
    /// so the kernel's hand never runs ahead of hypervisor time and every
    /// memoised post stays either pending or behind `now`.
    fn next_wake(&mut self, horizon: u64) -> Option<u64> {
        loop {
            match self.sched.peek_time() {
                None => return None,
                Some(t) if t > horizon => return None,
                Some(_) => {
                    let ev = self.sched.pop_next().expect("peeked entry pops");
                    if ev.time > self.time && self.timer_live(ev.payload, ev.time) {
                        return Some(ev.time);
                    }
                }
            }
        }
    }

    /// Apply `k` quiet ticks at once: exactly the state every skipped
    /// engine pass would have touched — per-core slot clocks, the cluster
    /// cycle counter, and system time. Callers guarantee nothing fires in
    /// the crossed interval, so `switching` stays positive and `elapsed`
    /// stays short of the slot duration.
    fn bulk_advance(&mut self, k: u64) {
        for core in 0..CORE_COUNT {
            if self.config.plans[core].slots.is_empty() {
                continue;
            }
            let slot = self.config.plans[core].slots[self.cores[core].slot_idx];
            let cs = &mut self.cores[core];
            if cs.switching > 0 {
                debug_assert!(k < cs.switching, "advance crosses a dispatch");
                cs.switching -= k;
            } else {
                debug_assert!(cs.elapsed + k < slot.duration, "advance crosses a retire");
                cs.elapsed += k;
            }
        }
        self.cluster.cycles += k;
        self.cluster.bus.shared_accesses_this_cycle = 0;
        self.time += k;
    }

    fn tick(&mut self) -> Result<(), XngError> {
        if let Some(mode) = self.pending_mode.take() {
            self.apply_mode_change(mode)?;
        }
        // per-core slot engine
        for core in 0..CORE_COUNT {
            let plan_len = self.config.plans[core].slots.len();
            if plan_len == 0 {
                continue;
            }
            // clone what we need to appease the borrow checker
            let slot = self.config.plans[core].slots[self.cores[core].slot_idx];
            if self.cores[core].switching > 0 {
                self.cores[core].switching -= 1;
                if self.cores[core].switching == 0 {
                    self.dispatch(core, slot.partition)?;
                }
                continue;
            }
            self.cores[core].elapsed += 1;
            if self.cores[core].elapsed >= slot.duration {
                self.retire(core)?;
                let next_idx = (self.cores[core].slot_idx + 1) % plan_len;
                self.cores[core].slot_idx = next_idx;
                self.cores[core].elapsed = 0;
                let next_pid = self.config.plans[core].slots[next_idx].partition;
                self.cores[core].switching = self.switch_window(next_pid);
            }
        }

        // watchdog sweep: partitions must show liveness within their window
        for i in 0..self.partitions.len() {
            let Some(deadline) = self.watchdogs[i] else {
                continue;
            };
            if self.partitions[i].mode == PartitionMode::Halted {
                self.watchdogs[i] = None;
                continue;
            }
            if self.time < deadline {
                continue;
            }
            let pid = PartitionId(i as u32);
            self.partitions[i].stats.watchdog_expiries += 1;
            let window = self.config.partitions[i].watchdog_cycles.unwrap_or(0);
            let action = self.report_hm(
                self.time,
                HmEvent::WatchdogExpiry,
                Some(pid),
                format!("no liveness for {window} cycles"),
            );
            // re-arm so a stuck partition keeps a ticking watchdog even if
            // the configured action is Ignore
            self.kick_watchdog(pid);
            self.apply_hm_action(pid, None, action);
        }

        // step guest cores
        let events = self.cluster.step()?;
        for ev in events {
            let Some(pid) = self.cores[ev.core].current else {
                continue;
            };
            match ev.event {
                Event::Halted => {
                    self.partitions[pid.0 as usize].mode = PartitionMode::Halted;
                }
                Event::HypervisorCall(code) => {
                    self.service_hypercall(ev.core, pid, code)?;
                }
                Event::UnhandledTrap(cause) => {
                    self.partitions[pid.0 as usize].stats.traps += 1;
                    if matches!(
                        cause,
                        TrapCause::MpuDataFault
                            | TrapCause::MpuFetchFault
                            | TrapCause::DomainFault
                    ) {
                        self.partitions[pid.0 as usize].stats.isolation_traps += 1;
                        self.obs
                            .counter_add(OBS_SUB, &format!("isolation_traps_p{}", pid.0), 1);
                    }
                    let action = self.report_hm(
                        self.time,
                        HmEvent::PartitionTrap,
                        Some(pid),
                        format!("core {}: {cause:?}", ev.core),
                    );
                    self.apply_hm_action(pid, Some(ev.core), action);
                }
                _ => {}
            }
        }
        self.time += 1;
        Ok(())
    }

    /// Apply a health-monitor action. `core` is the offending core when
    /// the event is attributable to one; `None` (e.g. watchdog sweep)
    /// stops every core currently running the partition.
    ///
    /// Restart actions escalate: once the partition has exhausted its
    /// configured restart limit, the restart is promoted to a permanent
    /// halt, and a halted partition with a configured spare fails over —
    /// its plan slots are rewritten to the spare.
    fn apply_hm_action(&mut self, pid: PartitionId, core: Option<usize>, action: HmAction) {
        match core {
            Some(c) => self.cluster.core_mut(c).running = false,
            None => {
                for c in 0..CORE_COUNT {
                    if self.cores[c].current == Some(pid) {
                        self.cluster.core_mut(c).running = false;
                    }
                }
            }
        }
        let mut action = action;
        if action == HmAction::RestartPartition {
            if let Some(limit) = self.config.partitions[pid.0 as usize].restart_limit {
                if self.partitions[pid.0 as usize].stats.restarts >= u64::from(limit) {
                    action = HmAction::HaltPartition;
                    self.hm_escalations += 1;
                    self.obs.counter_add(OBS_SUB, "hm_escalations", 1);
                    self.obs.instant(
                        OBS_SUB,
                        "hm-escalation",
                        ClockDomain::Hv,
                        self.time,
                        &[("partition", pid.0.to_string())],
                    );
                }
            }
        }
        match action {
            HmAction::Ignore => {}
            HmAction::RestartPartition => {
                let rt = &mut self.partitions[pid.0 as usize];
                rt.mode = PartitionMode::Cold;
                rt.stats.restarts += 1;
                if let Workload::Native(t) = &mut rt.workload {
                    t.reset();
                }
                // a restarted partition gets a fresh liveness window
                self.kick_watchdog(pid);
            }
            HmAction::HaltPartition => {
                self.partitions[pid.0 as usize].mode = PartitionMode::Halted;
                self.watchdogs[pid.0 as usize] = None;
                if let Some(spare) = self.config.partitions[pid.0 as usize].spare {
                    self.failover_to_spare(pid, spare);
                }
            }
            HmAction::HaltSystem => { /* flag already set by the monitor */ }
        }
    }

    /// Rewrite the active plans so `spare` takes over every slot of the
    /// halted `failed` partition, cold-starting the spare at its next
    /// dispatch.
    fn failover_to_spare(&mut self, failed: PartitionId, spare: PartitionId) {
        let mut rewritten = 0usize;
        for (c, plan) in self.config.plans.iter_mut().enumerate() {
            let mut touched = false;
            for slot in &mut plan.slots {
                if slot.partition == failed {
                    slot.partition = spare;
                    rewritten += 1;
                    touched = true;
                }
            }
            // preempt the core if the failed partition is on it right now
            if touched && self.cores[c].current == Some(failed) {
                self.cluster.core_mut(c).running = false;
                self.cores[c].current = None;
                self.cores[c].elapsed = 0;
                self.cores[c].switching = self.config.context_switch_cycles.max(1);
            }
        }
        if rewritten > 0 {
            self.spare_failovers += 1;
            self.partitions[spare.0 as usize].mode = PartitionMode::Cold;
            self.obs.counter_add(OBS_SUB, "spare_failovers", 1);
            self.obs.instant(
                OBS_SUB,
                "spare-failover",
                ClockDomain::Hv,
                self.time,
                &[
                    ("failed", failed.0.to_string()),
                    ("spare", spare.0.to_string()),
                    ("slots", rewritten.to_string()),
                ],
            );
        }
    }

    /// Slot end: save guest context and stop the core.
    fn retire(&mut self, core: usize) -> Result<(), XngError> {
        let Some(pid) = self.cores[core].current.take() else {
            return Ok(());
        };
        let rt = &mut self.partitions[pid.0 as usize];
        let hart = self.cluster.core_mut(core);
        if matches!(rt.workload, Workload::Guest { .. }) {
            let mut ctx = VcpuContext {
                regs: [0; 16],
                pc: hart.pc,
                started: true,
            };
            for i in 0..16 {
                ctx.regs[i] = hart.reg(i as u8);
            }
            rt.vcpus[core] = ctx;
            let executed = hart.cycles - self.cores[core].cycles_at_dispatch;
            rt.stats.cpu_cycles += executed;
        }
        hart.running = false;
        Ok(())
    }

    /// Slot start: establish spatial isolation and launch the partition.
    ///
    /// Under [`IsolationMode::MpuReprogram`] the incoming partition's
    /// regions replace the core's MPU table; under
    /// [`IsolationMode::ProtectionKeys`] the union key table is installed
    /// once per core and only the active-key register is swapped.
    fn dispatch(&mut self, core: usize, pid: PartitionId) -> Result<(), XngError> {
        self.cores[core].current = Some(pid);
        let cs = self.config.context_switch_cycles;
        let pconf = &self.config.partitions[pid.0 as usize];
        let regions: Vec<MpuRegion> = match self.config.isolation {
            IsolationMode::MpuReprogram => pconf
                .memory
                .iter()
                .map(|m| MpuRegion {
                    base: m.base,
                    size: m.size,
                    user_read: true,
                    user_write: m.writable,
                    user_exec: true,
                    key: hermes_cpu::mpu::KEY_SHARED,
                })
                .collect(),
            IsolationMode::ProtectionKeys => self.config.key_table(),
        };
        let slot = self.config.plans[core].slots[self.cores[core].slot_idx];

        if self.partitions[pid.0 as usize].mode == PartitionMode::Halted {
            return Ok(());
        }
        self.obs.counter_add(OBS_SUB, "context_switches", 1);
        self.obs.trace_instant(
            OBS_SUB,
            "context-switch",
            ClockDomain::Hv,
            self.time,
            &[
                ("core", core.to_string()),
                ("partition", pid.0.to_string()),
                ("slot", self.cores[core].slot_idx.to_string()),
            ],
            self.trace,
        );
        // arm the watchdog at first dispatch; liveness kicks push it out
        if self.watchdogs[pid.0 as usize].is_none() {
            self.kick_watchdog(pid);
        }
        let rt = &mut self.partitions[pid.0 as usize];
        rt.stats.activations += 1;
        rt.stats.max_start_jitter = rt.stats.max_start_jitter.max(cs);

        match &mut rt.workload {
            Workload::Idle => {}
            Workload::Guest { entry, image } => {
                // a cold (re)start reloads the image once and resets every
                // vCPU; a vCPU dispatched on an additional core for the
                // first time starts at the entry point (guest SMP)
                let entry = *entry;
                if rt.mode == PartitionMode::Cold {
                    let image = image.clone();
                    for (addr, words) in &image {
                        self.cluster.load_program(core, *addr, words)?;
                    }
                    let rt = &mut self.partitions[pid.0 as usize];
                    for vcpu in &mut rt.vcpus {
                        vcpu.started = false;
                    }
                    rt.mode = PartitionMode::Normal;
                }
                {
                    let rt = &mut self.partitions[pid.0 as usize];
                    if !rt.vcpus[core].started {
                        rt.vcpus[core] = VcpuContext {
                            regs: [0; 16],
                            pc: entry,
                            started: true,
                        };
                    }
                }
                let rt = &self.partitions[pid.0 as usize];
                let ctx = rt.vcpus[core].clone();
                let isolation = self.config.isolation;
                let hart = self.cluster.core_mut(core);
                match isolation {
                    IsolationMode::MpuReprogram => {
                        hart.mpu.program(&regions);
                        self.isolation_stats.mpu_reprograms += 1;
                        self.isolation_stats.mpu_reprogram_cycles +=
                            reprogram_cost(regions.len());
                        self.obs.counter_add(
                            OBS_SUB,
                            "mpu_reprogram_cycles",
                            reprogram_cost(regions.len()),
                        );
                    }
                    IsolationMode::ProtectionKeys => {
                        if !self.key_installed[core] {
                            // the union table is installed once per core;
                            // subsequent dispatches only cross the gate
                            hart.mpu.program(&regions);
                            self.key_installed[core] = true;
                            self.isolation_stats.mpu_reprograms += 1;
                            self.isolation_stats.mpu_reprogram_cycles +=
                                reprogram_cost(regions.len());
                        }
                        hart.mpu.active_key = XngConfig::domain_key(pid);
                        self.isolation_stats.gate_crossings += 1;
                        self.isolation_stats.gate_cross_cycles += GATE_CROSS_CYCLES;
                        self.obs
                            .counter_add(OBS_SUB, "gate_cross_cycles", GATE_CROSS_CYCLES);
                    }
                }
                hart.mpu.enabled = true;
                for (i, &v) in ctx.regs.iter().enumerate() {
                    hart.set_reg(i as u8, v);
                }
                hart.start(ctx.pc, Privilege::User);
                self.cores[core].cycles_at_dispatch = hart.cycles;
            }
            Workload::Native(task) => {
                rt.mode = PartitionMode::Normal;
                let budget = slot.duration.saturating_sub(cs);
                let mut ctx = TaskCtx {
                    pid,
                    now: self.time,
                    budget,
                    consumed: 0,
                    ports: &mut self.ports,
                    trace: &mut rt.trace,
                    halt_requested: false,
                };
                let result = task.step(&mut ctx);
                let consumed = ctx.consumed;
                let halt = ctx.halt_requested;
                rt.stats.cpu_cycles += consumed.min(budget);
                if halt {
                    rt.mode = PartitionMode::Halted;
                }
                if result.is_ok() && consumed <= budget {
                    // a successful on-budget activation is a liveness proof
                    self.kick_watchdog(pid);
                }
                if consumed > budget {
                    self.partitions[pid.0 as usize].stats.overruns += 1;
                    let action = self.report_hm(
                        self.time,
                        HmEvent::SlotOverrun,
                        Some(pid),
                        format!("consumed {consumed} of {budget}"),
                    );
                    self.apply_hm_action(pid, Some(core), action);
                }
                if let Err(e) = result {
                    self.partitions[pid.0 as usize].stats.traps += 1;
                    let action = self.report_hm(self.time, HmEvent::PartitionError, Some(pid), e);
                    self.apply_hm_action(pid, Some(core), action);
                }
            }
        }
        Ok(())
    }

    fn port_name(&self, pid: PartitionId, index: u32) -> Option<String> {
        self.config.partitions[pid.0 as usize]
            .ports
            .get(index as usize)
            .map(|p| p.name.clone())
    }

    fn service_hypercall(
        &mut self,
        core: usize,
        pid: PartitionId,
        code: u16,
    ) -> Result<(), XngError> {
        self.partitions[pid.0 as usize].stats.hypercalls += 1;
        self.obs.counter_add(OBS_SUB, "hypercalls", 1);
        self.obs.instant(
            OBS_SUB,
            "hypercall",
            ClockDomain::Hv,
            self.time,
            &[
                ("core", core.to_string()),
                ("partition", pid.0.to_string()),
                ("code", format!("{code:#x}")),
            ],
        );
        let Some(hc) = Hypercall::decode(code) else {
            let action = self.report_hm(
                self.time,
                HmEvent::IllegalHypercall,
                Some(pid),
                format!("unknown hypercall {code:#x}"),
            );
            self.apply_hm_action(pid, Some(core), action);
            return Ok(());
        };
        // any serviced hypercall is a liveness indication for the watchdog
        self.kick_watchdog(pid);
        let now = self.time;
        match hc {
            Hypercall::GetPartitionId => {
                self.cluster.core_mut(core).set_reg(1, pid.0);
            }
            Hypercall::GetSystemTime => {
                self.cluster.core_mut(core).set_reg(1, now as u32);
            }
            Hypercall::WriteSampling | Hypercall::SendQueuing => {
                let idx = self.cluster.core(core).reg(1);
                let word = self.cluster.core(core).reg(2);
                if let Some(name) = self.port_name(pid, idx) {
                    // port errors from guests are health events, not panics
                    if let Err(e) = self.ports.write(pid, &name, &word.to_le_bytes(), now) {
                        let action =
                            self.report_hm(now, HmEvent::IllegalHypercall, Some(pid), e.to_string());
                        self.apply_hm_action(pid, Some(core), action);
                    }
                } else {
                    let action = self.report_hm(
                        now,
                        HmEvent::IllegalHypercall,
                        Some(pid),
                        format!("bad port index {idx}"),
                    );
                    self.apply_hm_action(pid, Some(core), action);
                }
            }
            Hypercall::ReadSampling => {
                let idx = self.cluster.core(core).reg(1);
                // an out-of-range port index is a health event, exactly
                // like the write side — never a silent empty read
                let Some(name) = self.port_name(pid, idx) else {
                    let action = self.report_hm(
                        now,
                        HmEvent::IllegalHypercall,
                        Some(pid),
                        format!("bad port index {idx}"),
                    );
                    self.apply_hm_action(pid, Some(core), action);
                    return Ok(());
                };
                match self.ports.read_sampling(pid, &name, now) {
                    Ok(result) => {
                        let hart = self.cluster.core_mut(core);
                        match result {
                            Some((data, _age)) => {
                                let mut raw = [0u8; 4];
                                raw[..data.len().min(4)]
                                    .copy_from_slice(&data[..data.len().min(4)]);
                                hart.set_reg(1, u32::from_le_bytes(raw));
                                hart.set_reg(2, 1);
                            }
                            None => {
                                hart.set_reg(1, 0);
                                hart.set_reg(2, 0);
                            }
                        }
                    }
                    Err(e) => {
                        let action = self.report_hm(
                            now,
                            HmEvent::IllegalHypercall,
                            Some(pid),
                            e.to_string(),
                        );
                        self.apply_hm_action(pid, Some(core), action);
                    }
                }
            }
            Hypercall::RecvQueuing => {
                let idx = self.cluster.core(core).reg(1);
                let Some(name) = self.port_name(pid, idx) else {
                    let action = self.report_hm(
                        now,
                        HmEvent::IllegalHypercall,
                        Some(pid),
                        format!("bad port index {idx}"),
                    );
                    self.apply_hm_action(pid, Some(core), action);
                    return Ok(());
                };
                match self.ports.read_queuing(pid, &name) {
                    Ok(msg) => {
                        let hart = self.cluster.core_mut(core);
                        match msg {
                            Some(m) => {
                                let mut raw = [0u8; 4];
                                raw[..m.data.len().min(4)]
                                    .copy_from_slice(&m.data[..m.data.len().min(4)]);
                                hart.set_reg(1, u32::from_le_bytes(raw));
                                hart.set_reg(2, 1);
                            }
                            None => {
                                hart.set_reg(1, 0);
                                hart.set_reg(2, 0);
                            }
                        }
                    }
                    Err(e) => {
                        let action = self.report_hm(
                            now,
                            HmEvent::IllegalHypercall,
                            Some(pid),
                            e.to_string(),
                        );
                        self.apply_hm_action(pid, Some(core), action);
                    }
                }
            }
            Hypercall::HaltSelf => {
                self.partitions[pid.0 as usize].mode = PartitionMode::Halted;
                self.cluster.core_mut(core).running = false;
            }
            Hypercall::Yield => {
                // save context and idle until the next activation
                let hart = self.cluster.core_mut(core);
                let mut ctx = VcpuContext {
                    regs: [0; 16],
                    pc: hart.pc,
                    started: true,
                };
                for i in 0..16 {
                    ctx.regs[i] = hart.reg(i as u8);
                }
                hart.running = false;
                self.partitions[pid.0 as usize].vcpus[core] = ctx;
            }
            Hypercall::RequestModeChange => {
                let mode = self.cluster.core(core).reg(1) as usize;
                if !self.config.partitions[pid.0 as usize].system {
                    let action = self.report_hm(
                        now,
                        HmEvent::IllegalHypercall,
                        Some(pid),
                        "mode change from non-system partition".to_string(),
                    );
                    self.apply_hm_action(pid, Some(core), action);
                } else if self.request_mode_change(mode).is_err() {
                    let action = self.report_hm(
                        now,
                        HmEvent::IllegalHypercall,
                        Some(pid),
                        format!("bad mode index {mode}"),
                    );
                    self.apply_hm_action(pid, Some(core), action);
                }
            }
            Hypercall::TraceChar => {
                let c = self.cluster.core(core).reg(1) as u8;
                let rt = &mut self.partitions[pid.0 as usize];
                match rt.trace.last_mut() {
                    Some(last) if c != b'\n' => last.push(c as char),
                    _ if c == b'\n' => rt.trace.push(String::new()),
                    _ => rt.trace.push((c as char).to_string()),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{
        Channel, MemRegion, PartitionConfig, Plan, PortConfig, PortDirection, PortKind, Slot,
        XngConfig,
    };
    use crate::partition::native_task;
    use hermes_cpu::isa::assemble;
    use hermes_cpu::memmap::layout;

    fn two_native_partitions() -> (Hypervisor, PartitionId, PartitionId) {
        let mut cfg = XngConfig::new("t");
        let a = cfg.add_partition(PartitionConfig::new("a"));
        let b = cfg.add_partition(PartitionConfig::new("b"));
        cfg.set_plan(0, Plan::new(vec![Slot::new(a, 1000), Slot::new(b, 2000)]));
        let hv = Hypervisor::new(cfg).unwrap();
        (hv, a, b)
    }

    #[test]
    fn cyclic_activation_counts() {
        let (mut hv, a, b) = two_native_partitions();
        hv.attach_native(a, native_task("a", |c| {
            c.consume(100);
            Ok(())
        }))
        .unwrap();
        hv.attach_native(b, native_task("b", |c| {
            c.consume(100);
            Ok(())
        }))
        .unwrap();
        // 3 major frames of 3000 cycles + switches
        hv.run(9_600).unwrap();
        let (sa, sb) = (hv.stats(a), hv.stats(b));
        assert!(sa.activations >= 3, "a activated {}", sa.activations);
        assert!(sb.activations >= 3);
        assert!((sa.activations as i64 - sb.activations as i64).abs() <= 1);
    }

    #[test]
    fn dispatch_instants_link_into_an_attached_trace() {
        let (mut hv, a, b) = two_native_partitions();
        for pid in [a, b] {
            hv.attach_native(pid, native_task("t", |c| {
                c.consume(100);
                Ok(())
            }))
            .unwrap();
        }
        let obs = Recorder::new();
        let ctx = obs.mint_trace();
        hv.set_obs(obs.clone());
        hv.set_trace_ctx(Some(ctx));
        hv.run(9_600).unwrap();
        let snap = obs.snapshot();
        let switches: Vec<_> = snap
            .subsystems
            .iter()
            .flat_map(|s| s.events.iter())
            .filter(|e| e.name == "context-switch")
            .collect();
        assert!(!switches.is_empty());
        assert!(
            switches.iter().all(|e| e.trace.is_some_and(|t| t.trace_id == ctx.trace_id)),
            "every dispatch links into the attached trace"
        );
        // clearing the context restores plain instants
        hv.set_trace_ctx(None);
        hv.run(hv.time() + 3_200).unwrap();
        let snap = obs.snapshot();
        assert!(
            snap.subsystems
                .iter()
                .flat_map(|s| s.events.iter())
                .any(|e| e.name == "context-switch" && e.trace.is_none()),
            "untraced dispatches follow the clear"
        );
    }

    #[test]
    fn native_overrun_detected() {
        let (mut hv, a, b) = two_native_partitions();
        hv.attach_native(a, native_task("hog", |c| {
            c.consume(50_000); // way over the 1000-cycle slot
            Ok(())
        }))
        .unwrap();
        hv.attach_native(b, native_task("ok", |c| {
            c.consume(10);
            Ok(())
        }))
        .unwrap();
        hv.run(10_000).unwrap();
        assert!(hv.stats(a).overruns >= 1);
        assert!(hv.health().count(HmEvent::SlotOverrun) >= 1);
        // b unaffected: still activates on schedule
        assert!(hv.stats(b).activations >= 2);
    }

    #[test]
    fn failing_task_restarts_by_default() {
        let (mut hv, a, _) = two_native_partitions();
        hv.attach_native(a, native_task("flaky", |_| Err("boom".into())))
            .unwrap();
        hv.run(7_000).unwrap();
        let s = hv.stats(a);
        assert!(s.traps >= 2);
        assert!(s.restarts >= 2, "default HM action restarts");
    }

    #[test]
    fn halt_system_action() {
        let (mut hv, a, _) = {
            let mut cfg = XngConfig::new("t");
            let a = cfg.add_partition(PartitionConfig::new("a"));
            let b = cfg.add_partition(PartitionConfig::new("b"));
            cfg.set_plan(0, Plan::new(vec![Slot::new(a, 1000), Slot::new(b, 2000)]));
            cfg.set_hm_action(HmEvent::PartitionError, HmAction::HaltSystem);
            (Hypervisor::new(cfg).unwrap(), a, b)
        };
        hv.attach_native(a, native_task("bad", |_| Err("fatal".into())))
            .unwrap();
        hv.run(100_000).unwrap();
        assert!(hv.is_system_halted());
        assert!(hv.time() < 100_000, "run stopped early");
    }

    #[test]
    fn guest_partition_runs_and_hypercalls() {
        let mut cfg = XngConfig::new("t");
        let g = cfg.add_partition(
            PartitionConfig::new("guest")
                .with_memory(MemRegion {
                    base: layout::SRAM_BASE,
                    size: 0x1000,
                    writable: true,
                })
                .with_port(PortConfig {
                    name: "out".into(),
                    direction: PortDirection::Source,
                    kind: PortKind::Sampling,
                }),
        );
        let sink = cfg.add_partition(PartitionConfig::new("sink").with_port(PortConfig {
            name: "in".into(),
            direction: PortDirection::Destination,
            kind: PortKind::Sampling,
        }));
        cfg.add_channel(Channel {
            source: (g, "out".into()),
            destinations: vec![(sink, "in".into())],
            max_message: 8,
        });
        cfg.set_plan(0, Plan::new(vec![Slot::new(g, 2000), Slot::new(sink, 500)]));
        let mut hv = Hypervisor::new(cfg).unwrap();
        // guest: write 0xABCD to port 0, then yield forever
        let prog = assemble(
            r#"
            addi r1, r0, 0       ; port index
            lui  r2, 0xAB
            addi r2, r2, 0xCD
            ecall 0x03           ; write sampling
        spin:
            ecall 0x08           ; yield
            jal  r0, spin
            "#,
        )
        .unwrap();
        hv.attach_guest(g, layout::SRAM_BASE, vec![(layout::SRAM_BASE, prog)])
            .unwrap();
        hv.run(6_000).unwrap();
        assert!(hv.stats(g).hypercalls >= 2);
        let msg = hv
            .ports_mut()
            .read_sampling(sink, "in", 0)
            .unwrap()
            .expect("message routed");
        assert_eq!(
            u32::from_le_bytes([msg.0[0], msg.0[1], msg.0[2], msg.0[3]]),
            (0xAB << 16) + 0xCD
        );
    }

    #[test]
    fn rogue_guest_is_contained() {
        // guest writes outside its MPU region -> trap -> restart, while a
        // victim native partition keeps its schedule
        let mut cfg = XngConfig::new("t");
        let rogue = cfg.add_partition(PartitionConfig::new("rogue").with_memory(MemRegion {
            base: layout::SRAM_BASE,
            size: 0x1000,
            writable: true,
        }));
        let victim = cfg.add_partition(PartitionConfig::new("victim"));
        cfg.set_plan(
            0,
            Plan::new(vec![Slot::new(rogue, 1000), Slot::new(victim, 1000)]),
        );
        let mut hv = Hypervisor::new(cfg).unwrap();
        let attack = assemble(&format!(
            "lui r1, {hi}\nsw r0, (r1)\nhalt",
            hi = layout::DDR_BASE >> 16
        ))
        .unwrap();
        hv.attach_guest(rogue, layout::SRAM_BASE, vec![(layout::SRAM_BASE, attack)])
            .unwrap();
        hv.attach_native(victim, native_task("victim", |c| {
            c.consume(10);
            Ok(())
        }))
        .unwrap();
        hv.run(10_000).unwrap();
        assert!(hv.stats(rogue).traps >= 1, "MPU trap recorded");
        assert!(hv.stats(rogue).restarts >= 1);
        assert!(
            hv.stats(victim).activations >= 4,
            "victim schedule unaffected: {:?}",
            hv.stats(victim)
        );
        assert!(!hv.is_system_halted());
    }

    #[test]
    fn protection_keys_contain_cross_domain_guest() {
        use crate::config::IsolationMode;
        // two guests under protection keys: the rogue reads an address
        // inside the victim's (key-tagged) region — covered by the union
        // table, so only the domain key stands between them
        let mut cfg = XngConfig::new("keys");
        let rogue = cfg.add_partition(PartitionConfig::new("rogue").with_memory(MemRegion {
            base: layout::SRAM_BASE,
            size: 0x1000,
            writable: true,
        }));
        let victim = cfg.add_partition(PartitionConfig::new("victim").with_memory(MemRegion {
            base: layout::SRAM_BASE + 0x1000,
            size: 0x1000,
            writable: true,
        }));
        cfg.set_plan(
            0,
            Plan::new(vec![Slot::new(rogue, 1000), Slot::new(victim, 1000)]),
        );
        cfg.isolation = IsolationMode::ProtectionKeys;
        let mut hv = Hypervisor::new(cfg).unwrap();
        let attack = assemble(&format!(
            "lui r1, {hi}\nlw r2, 0x1000(r1)\nhalt",
            hi = layout::SRAM_BASE >> 16
        ))
        .unwrap();
        hv.attach_guest(rogue, layout::SRAM_BASE, vec![(layout::SRAM_BASE, attack)])
            .unwrap();
        let spin = assemble("spin:\necall 0x08\njal r0, spin").unwrap();
        hv.attach_guest(
            victim,
            layout::SRAM_BASE + 0x1000,
            vec![(layout::SRAM_BASE + 0x1000, spin)],
        )
        .unwrap();
        hv.run(10_000).unwrap();
        let s = hv.stats(rogue);
        assert!(s.traps >= 1, "cross-domain read trapped: {s:?}");
        assert!(s.isolation_traps >= 1, "attributed as an isolation trap");
        assert_eq!(hv.stats(victim).isolation_traps, 0);
        let iso = hv.isolation_stats();
        assert!(iso.gate_crossings >= 2, "every dispatch crosses the gate");
        assert_eq!(iso.mpu_reprograms, 1, "union table installed once");
        assert!(iso.gate_cross_cycles > 0);
        assert!(!hv.is_system_halted());
    }

    #[test]
    fn four_core_parallel_partitions() {
        let mut cfg = XngConfig::new("t");
        let p = cfg.add_partition(PartitionConfig::new("mc"));
        for core in 0..CORE_COUNT {
            cfg.set_plan(core, Plan::new(vec![Slot::new(p, 1000)]));
        }
        let mut hv = Hypervisor::new(cfg).unwrap();
        hv.attach_native(p, native_task("mc", |c| {
            c.consume(10);
            Ok(())
        }))
        .unwrap();
        hv.run(3000).unwrap();
        // one activation per core per frame: ~4 cores x ~2 frames
        assert!(
            hv.stats(p).activations >= 8,
            "multicore activations: {}",
            hv.stats(p).activations
        );
    }

    #[test]
    fn trace_accumulates() {
        let (mut hv, a, _) = two_native_partitions();
        hv.attach_native(a, native_task("tracer", |c| {
            c.trace(format!("t={}", c.now()));
            Ok(())
        }))
        .unwrap();
        hv.run(7000).unwrap();
        assert!(hv.trace(a).len() >= 2);
    }
    #[test]
    fn mode_change_switches_plans() {
        let mut cfg = XngConfig::new("modes");
        let a = cfg.add_partition(PartitionConfig::new("nominal"));
        let b = cfg.add_partition(PartitionConfig::new("safe"));
        cfg.set_plan(0, Plan::new(vec![Slot::new(a, 2_000)]));
        let mut safe_plans = vec![Plan::default(); hermes_cpu::cluster::CORE_COUNT];
        safe_plans[0] = Plan::new(vec![Slot::new(b, 2_000)]);
        let safe_mode = cfg.add_mode("safe", safe_plans);
        let mut hv = Hypervisor::new(cfg).unwrap();
        hv.attach_native(a, native_task("nominal", |c| {
            c.consume(10);
            Ok(())
        }))
        .unwrap();
        hv.attach_native(b, native_task("safe", |c| {
            c.consume(10);
            Ok(())
        }))
        .unwrap();
        hv.run(10_000).unwrap();
        assert!(hv.stats(a).activations >= 3);
        assert_eq!(hv.stats(b).activations, 0, "safe mode not active yet");
        assert_eq!(hv.current_mode(), None);

        hv.request_mode_change(safe_mode).unwrap();
        let a_before = hv.stats(a).activations;
        hv.run(10_000).unwrap();
        assert_eq!(hv.current_mode(), Some(safe_mode));
        assert_eq!(hv.mode_changes, 1);
        assert!(hv.stats(b).activations >= 3, "safe partition now runs");
        assert_eq!(
            hv.stats(a).activations,
            a_before,
            "nominal partition no longer scheduled"
        );
        assert!(hv.request_mode_change(99).is_err());
    }

    #[test]
    fn guest_mode_change_requires_system_partition() {
        let mut cfg = XngConfig::new("modes");
        let user = cfg.add_partition(PartitionConfig::new("user").with_memory(MemRegion {
            base: layout::SRAM_BASE,
            size: 0x1000,
            writable: true,
        }));
        let sys = cfg.add_partition(
            PartitionConfig::new("sys")
                .system()
                .with_memory(MemRegion {
                    base: layout::SRAM_BASE + 0x1000,
                    size: 0x1000,
                    writable: true,
                }),
        );
        cfg.set_plan(0, Plan::new(vec![Slot::new(user, 2_000), Slot::new(sys, 2_000)]));
        let mut alt = vec![Plan::default(); hermes_cpu::cluster::CORE_COUNT];
        alt[0] = Plan::new(vec![Slot::new(sys, 1_000)]);
        let mode = cfg.add_mode("alt", alt);
        let mut hv = Hypervisor::new(cfg).unwrap();
        // both guests request mode 0 then spin
        let prog = assemble("addi r1, r0, 0\necall 0x11\nspin:\njal r0, spin").unwrap();
        hv.attach_guest(user, layout::SRAM_BASE, vec![(layout::SRAM_BASE, prog.clone())])
            .unwrap();
        hv.attach_guest(
            sys,
            layout::SRAM_BASE + 0x1000,
            vec![(layout::SRAM_BASE + 0x1000, prog)],
        )
        .unwrap();
        // run just past the user partition's slot: its request is illegal
        hv.run(2_200).unwrap();
        assert!(hv.health().count(HmEvent::IllegalHypercall) >= 1);
        assert_eq!(hv.current_mode(), None, "user request denied");
        // the system partition's slot comes next; its request succeeds
        hv.run(4_000).unwrap();
        assert_eq!(hv.current_mode(), Some(mode));
        let _ = HmAction::Ignore;
    }
    #[test]
    fn guest_smp_runs_on_multiple_cores() {
        // one guest partition scheduled on cores 0 and 1: each vCPU starts
        // at the entry, reads its hart id, and parks
        let mut cfg = XngConfig::new("smp");
        let g = cfg.add_partition(PartitionConfig::new("smp").with_memory(MemRegion {
            base: layout::SRAM_BASE,
            size: 0x1000,
            writable: true,
        }));
        cfg.set_plan(0, Plan::new(vec![Slot::new(g, 3_000)]));
        cfg.set_plan(1, Plan::new(vec![Slot::new(g, 3_000)]));
        let mut hv = Hypervisor::new(cfg).unwrap();
        // store 100+hartid into SRAM[hartid*4], then yield forever
        let prog = assemble(&format!(
            r#"
            csrr r1, 6
            addi r2, r1, 100
            lui  r3, {sram}
            add  r4, r1, r1
            add  r4, r4, r4      ; hartid * 4
            add  r3, r3, r4
            sw   r2, (r3)
        spin:
            ecall 0x08
            jal  r0, spin
            "#,
            sram = layout::SRAM_BASE >> 16
        ))
        .unwrap();
        hv.attach_guest(g, layout::SRAM_BASE + 0x100, vec![(layout::SRAM_BASE + 0x100, prog)])
            .unwrap();
        hv.run(20_000).unwrap();
        let w0 = hv.cluster().bus.read_bytes(layout::SRAM_BASE, 4).unwrap();
        let w1 = hv.cluster().bus.read_bytes(layout::SRAM_BASE + 4, 4).unwrap();
        assert_eq!(u32::from_le_bytes(w0.try_into().unwrap()), 100, "core 0 vCPU ran");
        assert_eq!(u32::from_le_bytes(w1.try_into().unwrap()), 101, "core 1 vCPU ran");
        assert!(hv.stats(g).activations >= 4, "both cores activate the partition");
    }

    #[test]
    fn watchdog_expiry_restarts_silent_partition() {
        let mut cfg = XngConfig::new("wd");
        let a = cfg.add_partition(PartitionConfig::new("silent").with_watchdog(1_500));
        let b = cfg.add_partition(PartitionConfig::new("live"));
        cfg.set_plan(0, Plan::new(vec![Slot::new(a, 1000), Slot::new(b, 1000)]));
        let mut hv = Hypervisor::new(cfg).unwrap();
        // `a` stays Idle: it is dispatched on schedule but never shows
        // liveness (no successful activation, no hypercall)
        hv.attach_native(b, native_task("live", |c| {
            c.consume(10);
            Ok(())
        }))
        .unwrap();
        hv.run(20_000).unwrap();
        let s = hv.stats(a);
        assert!(s.watchdog_expiries >= 2, "watchdog keeps firing: {s:?}");
        assert!(s.restarts >= 2, "default action restarts: {s:?}");
        assert!(hv.health().count(HmEvent::WatchdogExpiry) >= 2);
        assert_eq!(hv.stats(b).watchdog_expiries, 0, "live partition untouched");
    }

    #[test]
    fn restart_limit_escalates_to_halt() {
        let mut cfg = XngConfig::new("esc");
        let a = cfg.add_partition(PartitionConfig::new("flaky").with_restart_limit(2));
        let b = cfg.add_partition(PartitionConfig::new("ok"));
        cfg.set_plan(0, Plan::new(vec![Slot::new(a, 1000), Slot::new(b, 1000)]));
        let mut hv = Hypervisor::new(cfg).unwrap();
        hv.attach_native(a, native_task("flaky", |_| Err("boom".into())))
            .unwrap();
        hv.attach_native(b, native_task("ok", |c| {
            c.consume(5);
            Ok(())
        }))
        .unwrap();
        hv.run(30_000).unwrap();
        assert_eq!(hv.mode(a), PartitionMode::Halted, "promoted to halt");
        assert_eq!(hv.stats(a).restarts, 2, "restart budget fully spent first");
        assert_eq!(hv.hm_escalations, 1);
        assert!(hv.stats(b).activations > 5, "healthy partition unaffected");
    }

    /// Build the same watchdog + restart-limit + guest scenario twice —
    /// event kernel forced off (per-cycle polling) and on (fast-forward)
    /// — and require the observable schedule to be bit-identical.
    fn kernel_equivalence_pair() -> (Hypervisor, Hypervisor) {
        let build = || {
            let mut cfg = XngConfig::new("eq");
            let a = cfg.add_partition(PartitionConfig::new("silent").with_watchdog(1_500));
            let b = cfg.add_partition(PartitionConfig::new("flaky").with_restart_limit(3));
            let g = cfg.add_partition(PartitionConfig::new("guest").with_memory(MemRegion {
                base: layout::SRAM_BASE,
                size: 0x1000,
                writable: true,
            }));
            cfg.set_plan(
                0,
                Plan::new(vec![Slot::new(a, 900), Slot::new(b, 700), Slot::new(g, 1_100)]),
            );
            cfg.set_plan(1, Plan::new(vec![Slot::new(b, 1_300)]));
            let mut hv = Hypervisor::new(cfg).unwrap();
            hv.attach_native(b, native_task("flaky", |c| {
                c.consume(40);
                if c.now() > 4_000 && c.now() < 9_000 {
                    Err("boom".into())
                } else {
                    Ok(())
                }
            }))
            .unwrap();
            let prog = assemble("spin:\necall 0x08\njal r0, spin").unwrap();
            hv.attach_guest(g, layout::SRAM_BASE, vec![(layout::SRAM_BASE, prog)])
                .unwrap();
            (hv, a, b, g)
        };
        let (mut off, ..) = build();
        off.set_event_kernel(false);
        let (mut on, ..) = build();
        on.set_event_kernel(true);
        (off, on)
    }

    #[test]
    fn event_kernel_schedule_is_bit_identical_to_polling() {
        let (mut off, mut on) = kernel_equivalence_pair();
        // several run() calls with awkward budgets exercise the horizon
        // cap: timers due beyond one call's budget must fire on the next
        for budget in [777u64, 1, 4_321, 9_999, 2, 15_000] {
            off.run(budget).unwrap();
            on.run(budget).unwrap();
            assert_eq!(off.time(), on.time());
        }
        for p in 0..3u32 {
            let pid = PartitionId(p);
            assert_eq!(off.stats(pid), on.stats(pid), "partition {p} stats");
            assert_eq!(off.mode(pid), on.mode(pid), "partition {p} mode");
        }
        assert_eq!(off.hm_escalations, on.hm_escalations);
        assert_eq!(
            off.health().log(),
            on.health().log(),
            "HM timeline identical, expiry instants included"
        );
        assert_eq!(off.cluster().cycles, on.cluster().cycles);
        assert_eq!(off.ticks_skipped(), 0, "polling engine never skips");
        assert!(on.ticks_skipped() > 0, "fast-forward engaged");
        assert_eq!(
            on.ticks_polled() + on.ticks_skipped(),
            off.ticks_polled(),
            "every tick is either polled or skipped"
        );
    }

    #[test]
    fn event_kernel_skips_most_quiet_ticks() {
        let (mut off, mut on) = kernel_equivalence_pair();
        off.run(40_000).unwrap();
        on.run(40_000).unwrap();
        assert!(
            on.ticks_polled() * 10 <= off.ticks_polled(),
            "native/yielded schedule is ≥90% quiet: polled {} of {}",
            on.ticks_polled(),
            off.ticks_polled()
        );
        let ks = on.kernel_stats();
        assert!(ks.posted > 0 && ks.popped > 0);
    }

    #[test]
    fn mode_change_matches_under_event_kernel() {
        let build = |kernel: bool| {
            let mut cfg = XngConfig::new("modes");
            let a = cfg.add_partition(PartitionConfig::new("nominal"));
            let b = cfg.add_partition(PartitionConfig::new("safe"));
            cfg.set_plan(0, Plan::new(vec![Slot::new(a, 2_000)]));
            let mut safe_plans = vec![Plan::default(); CORE_COUNT];
            safe_plans[0] = Plan::new(vec![Slot::new(b, 2_000)]);
            let mode = cfg.add_mode("safe", safe_plans);
            let mut hv = Hypervisor::new(cfg).unwrap();
            hv.set_event_kernel(kernel);
            hv.attach_native(a, native_task("nominal", |c| {
                c.consume(10);
                Ok(())
            }))
            .unwrap();
            hv.attach_native(b, native_task("safe", |c| {
                c.consume(10);
                Ok(())
            }))
            .unwrap();
            hv.run(10_000).unwrap();
            hv.request_mode_change(mode).unwrap();
            hv.run(10_000).unwrap();
            hv
        };
        let (off, on) = (build(false), build(true));
        for p in 0..2u32 {
            assert_eq!(off.stats(PartitionId(p)), on.stats(PartitionId(p)));
        }
        assert_eq!(off.mode_changes, on.mode_changes);
        assert_eq!(off.time(), on.time());
        assert!(on.ticks_skipped() > 0);
    }

    #[test]
    fn halted_partition_fails_over_to_spare() {
        let mut cfg = XngConfig::new("spare");
        let spare = cfg.add_partition(PartitionConfig::new("spare"));
        let a = cfg.add_partition(
            PartitionConfig::new("prime")
                .with_restart_limit(0)
                .with_spare(spare),
        );
        let b = cfg.add_partition(PartitionConfig::new("other"));
        cfg.set_plan(0, Plan::new(vec![Slot::new(a, 1000), Slot::new(b, 1000)]));
        let mut hv = Hypervisor::new(cfg).unwrap();
        hv.attach_native(a, native_task("prime", |_| Err("dead".into())))
            .unwrap();
        hv.attach_native(b, native_task("other", |c| {
            c.consume(5);
            Ok(())
        }))
        .unwrap();
        hv.attach_native(spare, native_task("spare", |c| {
            c.consume(5);
            Ok(())
        }))
        .unwrap();
        hv.run(20_000).unwrap();
        assert_eq!(hv.mode(a), PartitionMode::Halted);
        assert_eq!(hv.spare_failovers, 1);
        assert!(
            hv.stats(spare).activations >= 5,
            "spare took over the failed partition's slots: {:?}",
            hv.stats(spare)
        );
        assert_eq!(hv.stats(a).restarts, 0, "limit 0 escalates immediately");
    }
}
