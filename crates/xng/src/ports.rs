//! Inter-partition communication: sampling and queuing ports.
//!
//! Sampling ports carry last-value state data (a fresh write overwrites the
//! previous message; readers see validity); queuing ports carry FIFO
//! message streams with bounded depth. Channels fan a source port out to
//! one or more destination ports — the classic ARINC-653/XtratuM model.

use crate::config::{PortKind, XngConfig};
use crate::{PartitionId, XngError};
use std::collections::{HashMap, VecDeque};

/// A message with its write timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Payload bytes.
    pub data: Vec<u8>,
    /// Hypervisor time at which it was written.
    pub timestamp: u64,
}

#[derive(Debug, Clone)]
enum PortState {
    Sampling {
        last: Option<Message>,
    },
    Queuing {
        depth: u32,
        queue: VecDeque<Message>,
        overflows: u64,
    },
}

/// A channel source's fan-out: destination keys plus max message size.
type RouteFanout = (Vec<(PartitionId, String)>, u32);

/// The port switchboard owned by the hypervisor.
#[derive(Debug, Clone, Default)]
pub struct PortTable {
    /// destination (partition, port) -> state
    dests: HashMap<(PartitionId, String), PortState>,
    /// source (partition, port) -> destination keys
    routes: HashMap<(PartitionId, String), RouteFanout>,
    /// messages moved per channel source
    pub messages_routed: u64,
}

impl PortTable {
    /// Build the switchboard from a validated configuration.
    pub fn from_config(cfg: &XngConfig) -> PortTable {
        let mut table = PortTable::default();
        for (pi, p) in cfg.partitions.iter().enumerate() {
            for port in &p.ports {
                if port.direction == crate::config::PortDirection::Destination {
                    let state = match port.kind {
                        PortKind::Sampling => PortState::Sampling { last: None },
                        PortKind::Queuing { depth } => PortState::Queuing {
                            depth,
                            queue: VecDeque::new(),
                            overflows: 0,
                        },
                    };
                    table
                        .dests
                        .insert((PartitionId(pi as u32), port.name.clone()), state);
                }
            }
        }
        for ch in &cfg.channels {
            table.routes.insert(
                ch.source.clone(),
                (ch.destinations.clone(), ch.max_message),
            );
        }
        table
    }

    /// Write a message through a source port.
    ///
    /// # Errors
    ///
    /// Returns [`XngError::NoSuchPort`] for unknown sources and
    /// [`XngError::PortMisuse`] for oversized messages. Queuing overflow is
    /// *not* an error: the message is dropped and counted (the health
    /// monitor surfaces it).
    pub fn write(
        &mut self,
        partition: PartitionId,
        port: &str,
        data: &[u8],
        now: u64,
    ) -> Result<(), XngError> {
        let key = (partition, port.to_string());
        let (dests, max) = self
            .routes
            .get(&key)
            .cloned()
            .ok_or_else(|| XngError::NoSuchPort {
                partition,
                port: port.to_string(),
            })?;
        if data.len() as u32 > max {
            return Err(XngError::PortMisuse {
                detail: format!(
                    "message of {} bytes exceeds channel max {max}",
                    data.len()
                ),
            });
        }
        for dest in dests {
            let msg = Message {
                data: data.to_vec(),
                timestamp: now,
            };
            match self.dests.get_mut(&dest) {
                Some(PortState::Sampling { last }) => {
                    *last = Some(msg);
                    self.messages_routed += 1;
                }
                Some(PortState::Queuing {
                    depth,
                    queue,
                    overflows,
                }) => {
                    if queue.len() < *depth as usize {
                        queue.push_back(msg);
                        self.messages_routed += 1;
                    } else {
                        *overflows += 1;
                    }
                }
                None => {
                    return Err(XngError::NoSuchPort {
                        partition: dest.0,
                        port: dest.1,
                    })
                }
            }
        }
        Ok(())
    }

    /// Read from a sampling destination port: the last value plus its age.
    ///
    /// # Errors
    ///
    /// Returns [`XngError::NoSuchPort`] / [`XngError::PortMisuse`].
    pub fn read_sampling(
        &self,
        partition: PartitionId,
        port: &str,
        now: u64,
    ) -> Result<Option<(Vec<u8>, u64)>, XngError> {
        match self.dests.get(&(partition, port.to_string())) {
            Some(PortState::Sampling { last }) => Ok(last
                .as_ref()
                .map(|m| (m.data.clone(), now.saturating_sub(m.timestamp)))),
            Some(PortState::Queuing { .. }) => Err(XngError::PortMisuse {
                detail: format!("`{port}` is a queuing port"),
            }),
            None => Err(XngError::NoSuchPort {
                partition,
                port: port.to_string(),
            }),
        }
    }

    /// Pop from a queuing destination port.
    ///
    /// # Errors
    ///
    /// Returns [`XngError::NoSuchPort`] / [`XngError::PortMisuse`].
    pub fn read_queuing(
        &mut self,
        partition: PartitionId,
        port: &str,
    ) -> Result<Option<Message>, XngError> {
        match self.dests.get_mut(&(partition, port.to_string())) {
            Some(PortState::Queuing { queue, .. }) => Ok(queue.pop_front()),
            Some(PortState::Sampling { .. }) => Err(XngError::PortMisuse {
                detail: format!("`{port}` is a sampling port"),
            }),
            None => Err(XngError::NoSuchPort {
                partition,
                port: port.to_string(),
            }),
        }
    }

    /// Deliver a message directly to a destination port, bypassing
    /// channels — the testbench hook for environment inputs (sensor frames,
    /// telecommands) that have no on-board source partition.
    ///
    /// # Errors
    ///
    /// Returns [`XngError::NoSuchPort`] for unknown destinations.
    pub fn inject(
        &mut self,
        partition: PartitionId,
        port: &str,
        data: &[u8],
        now: u64,
    ) -> Result<(), XngError> {
        let msg = Message {
            data: data.to_vec(),
            timestamp: now,
        };
        match self.dests.get_mut(&(partition, port.to_string())) {
            Some(PortState::Sampling { last }) => {
                *last = Some(msg);
                Ok(())
            }
            Some(PortState::Queuing {
                depth,
                queue,
                overflows,
            }) => {
                if queue.len() < *depth as usize {
                    queue.push_back(msg);
                } else {
                    *overflows += 1;
                }
                Ok(())
            }
            None => Err(XngError::NoSuchPort {
                partition,
                port: port.to_string(),
            }),
        }
    }

    /// Total queue-overflow drops across all ports.
    pub fn total_overflows(&self) -> u64 {
        self.dests
            .values()
            .map(|s| match s {
                PortState::Queuing { overflows, .. } => *overflows,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Channel, PartitionConfig, PortConfig, PortDirection};

    fn cfg_two_partitions(kind: PortKind) -> XngConfig {
        let mut cfg = XngConfig::new("t");
        let a = cfg.add_partition(PartitionConfig::new("a").with_port(PortConfig {
            name: "out".into(),
            direction: PortDirection::Source,
            kind,
        }));
        let b = cfg.add_partition(PartitionConfig::new("b").with_port(PortConfig {
            name: "in".into(),
            direction: PortDirection::Destination,
            kind,
        }));
        cfg.add_channel(Channel {
            source: (a, "out".into()),
            destinations: vec![(b, "in".into())],
            max_message: 16,
        });
        cfg.validate().unwrap();
        cfg
    }

    #[test]
    fn sampling_overwrites_and_ages() {
        let cfg = cfg_two_partitions(PortKind::Sampling);
        let mut t = PortTable::from_config(&cfg);
        let (a, b) = (PartitionId(0), PartitionId(1));
        t.write(a, "out", &[1], 100).unwrap();
        t.write(a, "out", &[2], 200).unwrap();
        let (data, age) = t.read_sampling(b, "in", 250).unwrap().unwrap();
        assert_eq!(data, vec![2], "last value wins");
        assert_eq!(age, 50);
        // sampling reads do not consume
        assert!(t.read_sampling(b, "in", 300).unwrap().is_some());
    }

    #[test]
    fn queuing_preserves_order_and_bounds() {
        let cfg = cfg_two_partitions(PortKind::Queuing { depth: 2 });
        let mut t = PortTable::from_config(&cfg);
        let (a, b) = (PartitionId(0), PartitionId(1));
        t.write(a, "out", &[1], 0).unwrap();
        t.write(a, "out", &[2], 0).unwrap();
        t.write(a, "out", &[3], 0).unwrap(); // dropped
        assert_eq!(t.total_overflows(), 1);
        assert_eq!(t.read_queuing(b, "in").unwrap().unwrap().data, vec![1]);
        assert_eq!(t.read_queuing(b, "in").unwrap().unwrap().data, vec![2]);
        assert!(t.read_queuing(b, "in").unwrap().is_none());
    }

    #[test]
    fn oversized_message_rejected() {
        let cfg = cfg_two_partitions(PortKind::Sampling);
        let mut t = PortTable::from_config(&cfg);
        let err = t
            .write(PartitionId(0), "out", &[0u8; 64], 0)
            .unwrap_err();
        assert!(matches!(err, XngError::PortMisuse { .. }));
    }

    #[test]
    fn wrong_port_kind_rejected() {
        let cfg = cfg_two_partitions(PortKind::Sampling);
        let mut t = PortTable::from_config(&cfg);
        assert!(matches!(
            t.read_queuing(PartitionId(1), "in"),
            Err(XngError::PortMisuse { .. })
        ));
    }

    #[test]
    fn unknown_port_rejected() {
        let cfg = cfg_two_partitions(PortKind::Sampling);
        let mut t = PortTable::from_config(&cfg);
        assert!(matches!(
            t.write(PartitionId(0), "nope", &[], 0),
            Err(XngError::NoSuchPort { .. })
        ));
    }

    #[test]
    fn multicast_channels() {
        let mut cfg = XngConfig::new("t");
        let a = cfg.add_partition(PartitionConfig::new("a").with_port(PortConfig {
            name: "out".into(),
            direction: PortDirection::Source,
            kind: PortKind::Sampling,
        }));
        let mk_dest = |cfg: &mut XngConfig, name: &str| {
            cfg.add_partition(PartitionConfig::new(name).with_port(PortConfig {
                name: "in".into(),
                direction: PortDirection::Destination,
                kind: PortKind::Sampling,
            }))
        };
        let b = mk_dest(&mut cfg, "b");
        let c = mk_dest(&mut cfg, "c");
        cfg.add_channel(Channel {
            source: (a, "out".into()),
            destinations: vec![(b, "in".into()), (c, "in".into())],
            max_message: 8,
        });
        let mut t = PortTable::from_config(&cfg);
        t.write(a, "out", &[9], 1).unwrap();
        assert!(t.read_sampling(b, "in", 1).unwrap().is_some());
        assert!(t.read_sampling(c, "in", 1).unwrap().is_some());
    }
}
