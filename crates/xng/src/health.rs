//! The health monitor.
//!
//! Detects abnormal events (partition traps, deadline misses, port
//! overflows, watchdog expiry) and applies the configured action — the
//! mechanism by which a DAL-B hypervisor contains faults without
//! propagating them across partitions.

use crate::PartitionId;
use std::fmt;

/// Health-monitor event classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HmEvent {
    /// A guest partition trapped (MPU fault, illegal instruction, …).
    PartitionTrap,
    /// A native partition task returned an error.
    PartitionError,
    /// A partition exhausted its slot without yielding (overrun).
    SlotOverrun,
    /// A queuing port dropped a message.
    PortOverflow,
    /// A partition attempted a hypercall it is not allowed to make.
    IllegalHypercall,
    /// A partition's watchdog expired: no liveness indication (successful
    /// activation or hypercall) within its configured window.
    WatchdogExpiry,
}

/// Actions the monitor may take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HmAction {
    /// Log only.
    #[default]
    Ignore,
    /// Restart the offending partition (cold start at next slot).
    RestartPartition,
    /// Halt the offending partition permanently.
    HaltPartition,
    /// Halt the whole system.
    HaltSystem,
}

/// A logged health event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HmLogEntry {
    /// Time of detection (hypervisor cycles).
    pub time: u64,
    /// Event class.
    pub event: HmEvent,
    /// Offending partition, if attributable.
    pub partition: Option<PartitionId>,
    /// Action taken.
    pub action: HmAction,
    /// Free-form detail.
    pub detail: String,
}

impl fmt::Display for HmLogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {:?} {} -> {:?}: {}",
            self.time,
            self.event,
            self.partition
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            self.action,
            self.detail
        )
    }
}

/// The health monitor state.
#[derive(Debug, Clone, Default)]
pub struct HealthMonitor {
    log: Vec<HmLogEntry>,
    /// Whether a `HaltSystem` action fired.
    pub system_halted: bool,
}

impl HealthMonitor {
    /// An empty monitor.
    pub fn new() -> Self {
        HealthMonitor::default()
    }

    /// Record an event and return the action to apply (from the table,
    /// default [`HmAction::Ignore`] except traps, task errors, and
    /// watchdog expiries, which default to restart — the conservative
    /// space-domain choice).
    pub fn report(
        &mut self,
        table: &std::collections::HashMap<HmEvent, HmAction>,
        time: u64,
        event: HmEvent,
        partition: Option<PartitionId>,
        detail: impl Into<String>,
    ) -> HmAction {
        let action = table.get(&event).copied().unwrap_or(match event {
            HmEvent::PartitionTrap | HmEvent::PartitionError | HmEvent::WatchdogExpiry => {
                HmAction::RestartPartition
            }
            _ => HmAction::Ignore,
        });
        if action == HmAction::HaltSystem {
            self.system_halted = true;
        }
        self.log.push(HmLogEntry {
            time,
            event,
            partition,
            action,
            detail: detail.into(),
        });
        action
    }

    /// The event log.
    pub fn log(&self) -> &[HmLogEntry] {
        &self.log
    }

    /// Count events of a class.
    pub fn count(&self, event: HmEvent) -> usize {
        self.log.iter().filter(|e| e.event == event).count()
    }

    /// Count events of a class attributed to one partition (per-domain
    /// accounting for the hostile-chaos campaigns).
    pub fn count_for(&self, event: HmEvent, partition: PartitionId) -> usize {
        self.log
            .iter()
            .filter(|e| e.event == event && e.partition == Some(partition))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn default_actions() {
        let mut hm = HealthMonitor::new();
        let table = HashMap::new();
        let a = hm.report(&table, 10, HmEvent::PartitionTrap, Some(PartitionId(1)), "mpu");
        assert_eq!(a, HmAction::RestartPartition);
        let a = hm.report(&table, 11, HmEvent::PortOverflow, None, "q full");
        assert_eq!(a, HmAction::Ignore);
        let a = hm.report(&table, 12, HmEvent::WatchdogExpiry, Some(PartitionId(2)), "wd");
        assert_eq!(a, HmAction::RestartPartition);
        assert_eq!(hm.log().len(), 3);
        assert!(!hm.system_halted);
    }

    #[test]
    fn configured_actions_override() {
        let mut hm = HealthMonitor::new();
        let mut table = HashMap::new();
        table.insert(HmEvent::PartitionTrap, HmAction::HaltSystem);
        let a = hm.report(&table, 5, HmEvent::PartitionTrap, Some(PartitionId(0)), "x");
        assert_eq!(a, HmAction::HaltSystem);
        assert!(hm.system_halted);
    }

    #[test]
    fn log_entries_render() {
        let mut hm = HealthMonitor::new();
        hm.report(
            &HashMap::new(),
            42,
            HmEvent::SlotOverrun,
            Some(PartitionId(3)),
            "ran 120% of slot",
        );
        let s = hm.log()[0].to_string();
        assert!(s.contains("SlotOverrun"));
        assert!(s.contains("P3"));
        assert_eq!(hm.count(HmEvent::SlotOverrun), 1);
        assert_eq!(hm.count(HmEvent::PartitionTrap), 0);
    }
}
