//! The paravirtualized hypercall interface.
//!
//! Guest partitions issue hypercalls with the `ecall` instruction; the code
//! selects the service and registers `r1`/`r2` carry operands and results.
//! Native partitions reach the same services through
//! [`crate::partition::TaskCtx`]. XtratuM exposes an equivalent libXM call
//! surface to its partitions.

/// Hypercall codes (the `ecall` immediate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hypercall {
    /// `r1 = partition id`.
    GetPartitionId,
    /// `r1 = low 32 bits of system time (cycles)`.
    GetSystemTime,
    /// Write `r2` (one word) to sampling source port index `r1`.
    WriteSampling,
    /// Read sampling destination port index `r1`: `r1 = word`,
    /// `r2 = 1` if a message was present else 0.
    ReadSampling,
    /// Send `r2` (one word) on queuing source port index `r1`.
    SendQueuing,
    /// Receive from queuing destination port index `r1`: `r1 = word`,
    /// `r2 = 1` if a message was dequeued else 0.
    RecvQueuing,
    /// Halt the calling partition.
    HaltSelf,
    /// Yield the remainder of the slot.
    Yield,
    /// Emit the low byte of `r1` to the partition trace.
    TraceChar,
    /// Request a scheduling-mode change to mode index `r1` (system
    /// partitions only).
    RequestModeChange,
}

impl Hypercall {
    /// Decode an `ecall` immediate.
    pub fn decode(code: u16) -> Option<Hypercall> {
        Some(match code {
            0x01 => Hypercall::GetPartitionId,
            0x02 => Hypercall::GetSystemTime,
            0x03 => Hypercall::WriteSampling,
            0x04 => Hypercall::ReadSampling,
            0x05 => Hypercall::SendQueuing,
            0x06 => Hypercall::RecvQueuing,
            0x07 => Hypercall::HaltSelf,
            0x08 => Hypercall::Yield,
            0x10 => Hypercall::TraceChar,
            0x11 => Hypercall::RequestModeChange,
            _ => return None,
        })
    }

    /// The `ecall` immediate for this hypercall.
    pub fn code(self) -> u16 {
        match self {
            Hypercall::GetPartitionId => 0x01,
            Hypercall::GetSystemTime => 0x02,
            Hypercall::WriteSampling => 0x03,
            Hypercall::ReadSampling => 0x04,
            Hypercall::SendQueuing => 0x05,
            Hypercall::RecvQueuing => 0x06,
            Hypercall::HaltSelf => 0x07,
            Hypercall::Yield => 0x08,
            Hypercall::TraceChar => 0x10,
            Hypercall::RequestModeChange => 0x11,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_codes() {
        for hc in [
            Hypercall::GetPartitionId,
            Hypercall::GetSystemTime,
            Hypercall::WriteSampling,
            Hypercall::ReadSampling,
            Hypercall::SendQueuing,
            Hypercall::RecvQueuing,
            Hypercall::HaltSelf,
            Hypercall::Yield,
            Hypercall::TraceChar,
            Hypercall::RequestModeChange,
        ] {
            assert_eq!(Hypercall::decode(hc.code()), Some(hc));
        }
        assert_eq!(Hypercall::decode(0xFFFF), None);
    }

    #[test]
    fn decode_is_total_over_the_immediate_space() {
        // exhaustive sweep of every ecall immediate: exactly the ten
        // defined codes decode; everything else is None (and must end up
        // as an IllegalHypercall health event at the hypervisor layer,
        // never a panic or a silent success)
        let mut defined = 0u32;
        for code in 0..=0xFFFFu16 {
            if let Some(hc) = Hypercall::decode(code) {
                assert_eq!(hc.code(), code, "decode/code roundtrip at {code:#x}");
                defined += 1;
            }
        }
        assert_eq!(defined, 10);
    }
}
