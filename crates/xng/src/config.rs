//! Hypervisor configuration: partitions, memory, per-core cyclic plans,
//! ports and channels, and health-monitor actions.
//!
//! XtratuM is configured through an XML configuration file (the `XM_CF`);
//! [`XngConfig::from_xml`] accepts the same information in a compact XML
//! dialect, and a builder API covers programmatic use.

use crate::health::{HmAction, HmEvent};
use crate::{PartitionId, XngError};
use hermes_cpu::cluster::CORE_COUNT;
use hermes_cpu::mpu::{MpuRegion, KEY_SHARED, MAX_REGIONS};
use std::collections::HashMap;

/// A memory region granted to a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRegion {
    /// Base byte address.
    pub base: u32,
    /// Size in bytes.
    pub size: u32,
    /// Whether the partition may write it.
    pub writable: bool,
}

/// How spatial isolation is enforced at partition dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IsolationMode {
    /// Classic XtratuM behaviour: the hypervisor reprograms the full MPU
    /// region table with the incoming partition's regions at every
    /// dispatch (cost scales with region count).
    #[default]
    MpuReprogram,
    /// Protection-key domains (RustyMPK style): the union of all
    /// partitions' regions is installed once per core, each tagged with
    /// its owner's domain key, and dispatch only swaps the per-hart
    /// active-key register — a constant-cost *gate crossing*. Requires
    /// the union table to fit the MPU
    /// ([`hermes_cpu::mpu::MAX_REGIONS`]).
    ProtectionKeys,
}

/// Direction of a port, from the owning partition's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDirection {
    /// The partition sends.
    Source,
    /// The partition receives.
    Destination,
}

/// Port kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortKind {
    /// Last-value semantics (state data).
    Sampling,
    /// FIFO semantics (messages).
    Queuing {
        /// Queue capacity in messages.
        depth: u32,
    },
}

/// A port declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortConfig {
    /// Port name, unique within the partition.
    pub name: String,
    /// Direction.
    pub direction: PortDirection,
    /// Kind.
    pub kind: PortKind,
}

/// A partition declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Partition name.
    pub name: String,
    /// Memory regions (programmed into the MPU for guest partitions).
    pub memory: Vec<MemRegion>,
    /// Declared ports.
    pub ports: Vec<PortConfig>,
    /// Whether this is a system partition (may issue management
    /// hypercalls such as halting other partitions).
    pub system: bool,
    /// Per-partition watchdog window in cycles: the partition must show
    /// liveness (a successful activation or a hypercall) at least this
    /// often, or the health monitor receives a
    /// [`HmEvent::WatchdogExpiry`]. `None` disables the watchdog.
    pub watchdog_cycles: Option<u64>,
    /// Health-monitor escalation threshold: once the partition has been
    /// restarted this many times, a further `RestartPartition` action is
    /// promoted to `HaltPartition`. `None` allows unlimited restarts.
    pub restart_limit: Option<u32>,
    /// Spare partition taking over this partition's plan slots when it is
    /// halted (by escalation or directly) — cold-started at takeover.
    pub spare: Option<PartitionId>,
}

impl PartitionConfig {
    /// A partition with no memory or ports.
    pub fn new(name: impl Into<String>) -> Self {
        PartitionConfig {
            name: name.into(),
            memory: Vec::new(),
            ports: Vec::new(),
            system: false,
            watchdog_cycles: None,
            restart_limit: None,
            spare: None,
        }
    }

    /// Add a memory region.
    pub fn with_memory(mut self, region: MemRegion) -> Self {
        self.memory.push(region);
        self
    }

    /// Add a port.
    pub fn with_port(mut self, port: PortConfig) -> Self {
        self.ports.push(port);
        self
    }

    /// Mark as a system partition.
    pub fn system(mut self) -> Self {
        self.system = true;
        self
    }

    /// Arm a liveness watchdog with the given window in cycles.
    pub fn with_watchdog(mut self, cycles: u64) -> Self {
        self.watchdog_cycles = Some(cycles);
        self
    }

    /// Escalate restarts to a permanent halt after `limit` restarts.
    pub fn with_restart_limit(mut self, limit: u32) -> Self {
        self.restart_limit = Some(limit);
        self
    }

    /// Fail over to `spare` when this partition is halted.
    pub fn with_spare(mut self, spare: PartitionId) -> Self {
        self.spare = Some(spare);
        self
    }
}

/// One slot of a cyclic plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// The partition scheduled in the slot.
    pub partition: PartitionId,
    /// Slot length in cluster cycles.
    pub duration: u64,
}

impl Slot {
    /// Create a slot.
    pub fn new(partition: PartitionId, duration: u64) -> Self {
        Slot {
            partition,
            duration,
        }
    }
}

/// A per-core cyclic plan. The major frame is the sum of slot durations;
/// it repeats forever (mode changes swap plans).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Plan {
    /// Slots in order.
    pub slots: Vec<Slot>,
}

impl Plan {
    /// Create a plan from slots.
    pub fn new(slots: Vec<Slot>) -> Self {
        Plan { slots }
    }

    /// Major-frame length in cycles.
    pub fn major_frame(&self) -> u64 {
        self.slots.iter().map(|s| s.duration).sum()
    }

    /// The `(slot index, offset within slot)` at an absolute time.
    pub fn locate(&self, time: u64) -> Option<(usize, u64)> {
        let frame = self.major_frame();
        if frame == 0 {
            return None;
        }
        let mut t = time % frame;
        for (i, s) in self.slots.iter().enumerate() {
            if t < s.duration {
                return Some((i, t));
            }
            t -= s.duration;
        }
        None
    }
}

/// A channel connecting a source port to destination ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    /// Sending side `(partition, port name)`.
    pub source: (PartitionId, String),
    /// Receiving sides.
    pub destinations: Vec<(PartitionId, String)>,
    /// Maximum message bytes.
    pub max_message: u32,
}

/// Complete system configuration.
#[derive(Debug, Clone, Default)]
pub struct XngConfig {
    /// System name.
    pub name: String,
    /// Partitions, indexed by [`PartitionId`].
    pub partitions: Vec<PartitionConfig>,
    /// One cyclic plan per core.
    pub plans: Vec<Plan>,
    /// Named alternate scheduling modes (XtratuM plan/mode changes): each
    /// mode provides a full per-core plan set that can be switched to at
    /// run time by a system partition or the embedder.
    pub modes: Vec<(String, Vec<Plan>)>,
    /// Channels.
    pub channels: Vec<Channel>,
    /// Health-monitor action table.
    pub hm_table: HashMap<HmEvent, HmAction>,
    /// Context-switch overhead charged at each slot boundary, cycles.
    pub context_switch_cycles: u64,
    /// Spatial-isolation mechanism used at guest dispatch.
    pub isolation: IsolationMode,
    /// Whether the per-dispatch isolation cost (MPU reprogram or key gate
    /// crossing) is added to the context-switch window. Off by default so
    /// existing timing-sensitive configurations are unchanged; E15 turns
    /// it on to compare the two mechanisms.
    pub charge_isolation_cycles: bool,
}

impl XngConfig {
    /// An empty configuration with default HM actions and a 150-cycle
    /// context switch (measured figures for partition switches on R52-class
    /// hardware are in the hundred-cycle range).
    pub fn new(name: impl Into<String>) -> Self {
        XngConfig {
            name: name.into(),
            partitions: Vec::new(),
            plans: vec![Plan::default(); CORE_COUNT],
            modes: Vec::new(),
            channels: Vec::new(),
            hm_table: HashMap::new(),
            context_switch_cycles: 150,
            isolation: IsolationMode::default(),
            charge_isolation_cycles: false,
        }
    }

    /// The domain key of a partition under
    /// [`IsolationMode::ProtectionKeys`] (key 0 is reserved for shared
    /// regions).
    pub fn domain_key(pid: PartitionId) -> u8 {
        (pid.0 + 1) as u8
    }

    /// The union MPU table for [`IsolationMode::ProtectionKeys`]: every
    /// partition's regions tagged with its domain key. Regions declared
    /// identically (same base and size) by several partitions — legal only
    /// when read-only — collapse to a single [`KEY_SHARED`] entry, the
    /// usual way to grant a shared constant table to all domains.
    pub fn key_table(&self) -> Vec<MpuRegion> {
        let mut table: Vec<MpuRegion> = Vec::new();
        for (i, p) in self.partitions.iter().enumerate() {
            let key = Self::domain_key(PartitionId(i as u32));
            for m in &p.memory {
                if let Some(existing) = table
                    .iter_mut()
                    .find(|r| r.base == m.base && r.size == m.size)
                {
                    existing.key = KEY_SHARED;
                    continue;
                }
                table.push(MpuRegion {
                    base: m.base,
                    size: m.size,
                    user_read: true,
                    user_write: m.writable,
                    user_exec: true,
                    key,
                });
            }
        }
        table
    }

    /// Add a partition, returning its id.
    pub fn add_partition(&mut self, p: PartitionConfig) -> PartitionId {
        self.partitions.push(p);
        PartitionId(self.partitions.len() as u32 - 1)
    }

    /// Set the cyclic plan of a core.
    ///
    /// # Panics
    ///
    /// Panics if `core >= CORE_COUNT`.
    pub fn set_plan(&mut self, core: usize, plan: Plan) {
        self.plans[core] = plan;
    }

    /// Add a channel.
    pub fn add_channel(&mut self, channel: Channel) {
        self.channels.push(channel);
    }

    /// Register an alternate scheduling mode (a full per-core plan set).
    /// Returns the mode index used by
    /// [`Hypervisor::request_mode_change`](crate::hypervisor::Hypervisor::request_mode_change).
    ///
    /// # Panics
    ///
    /// Panics if `plans` does not cover every core.
    pub fn add_mode(&mut self, name: impl Into<String>, plans: Vec<Plan>) -> usize {
        assert_eq!(plans.len(), CORE_COUNT, "a mode must plan every core");
        self.modes.push((name.into(), plans));
        self.modes.len() - 1
    }

    /// Set a health-monitor action.
    pub fn set_hm_action(&mut self, event: HmEvent, action: HmAction) {
        self.hm_table.insert(event, action);
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`XngError::Config`] describing the first problem found.
    pub fn validate(&self) -> Result<(), XngError> {
        let err = |detail: String| Err(XngError::Config { detail });
        let plan_sets = std::iter::once(&self.plans).chain(self.modes.iter().map(|(_, p)| p));
        for plans in plan_sets {
            for (core, plan) in plans.iter().enumerate() {
                for slot in &plan.slots {
                    if slot.partition.0 as usize >= self.partitions.len() {
                        return err(format!(
                            "core {core} schedules unknown partition {}",
                            slot.partition
                        ));
                    }
                    if slot.duration == 0 {
                        return err(format!("core {core} has a zero-length slot"));
                    }
                }
            }
        }
        for ch in &self.channels {
            let check = |pid: PartitionId,
                             port: &str,
                             dir: PortDirection|
             -> Result<(), XngError> {
                let p = self
                    .partitions
                    .get(pid.0 as usize)
                    .ok_or(XngError::NoSuchPartition(pid))?;
                let pc = p.ports.iter().find(|pc| pc.name == port).ok_or_else(|| {
                    XngError::NoSuchPort {
                        partition: pid,
                        port: port.to_string(),
                    }
                })?;
                if pc.direction != dir {
                    return Err(XngError::Config {
                        detail: format!("port `{port}` of {pid} has the wrong direction"),
                    });
                }
                Ok(())
            };
            check(ch.source.0, &ch.source.1, PortDirection::Source)?;
            for (pid, port) in &ch.destinations {
                check(*pid, port, PortDirection::Destination)?;
            }
            if ch.destinations.is_empty() {
                return err("channel with no destinations".into());
            }
        }
        // per-partition robustness settings
        for (i, p) in self.partitions.iter().enumerate() {
            if p.watchdog_cycles == Some(0) {
                return err(format!("partition `{}` has a zero-cycle watchdog", p.name));
            }
            if let Some(m) = p.memory.iter().find(|m| m.size == 0) {
                return err(format!(
                    "partition `{}` declares a zero-size memory region at {:#x}",
                    p.name, m.base
                ));
            }
            if p.memory.len() > MAX_REGIONS {
                return err(format!(
                    "partition `{}` declares {} memory regions; the MPU supports at most {MAX_REGIONS}",
                    p.name,
                    p.memory.len()
                ));
            }
            if let Some(spare) = p.spare {
                if spare.0 as usize >= self.partitions.len() {
                    return err(format!(
                        "partition `{}` names unknown spare {spare}",
                        p.name
                    ));
                }
                if spare.0 as usize == i {
                    return err(format!("partition `{}` is its own spare", p.name));
                }
            }
        }
        // protection-key mode: the union table must fit the MPU, and the
        // key space (u8, 0 reserved) must cover every partition
        if self.isolation == IsolationMode::ProtectionKeys {
            if self.partitions.len() >= 255 {
                return err(format!(
                    "{} partitions exceed the 254-domain protection-key space",
                    self.partitions.len()
                ));
            }
            let table = self.key_table();
            if table.len() > MAX_REGIONS {
                return err(format!(
                    "protection-key table needs {} regions; the MPU supports at most {MAX_REGIONS} \
                     (region-table exhaustion)",
                    table.len()
                ));
            }
        }
        // partitions' memory regions must not overlap each other
        for (i, a) in self.partitions.iter().enumerate() {
            for b in self.partitions.iter().skip(i + 1) {
                for ra in &a.memory {
                    for rb in &b.memory {
                        let a_end = u64::from(ra.base) + u64::from(ra.size);
                        let b_end = u64::from(rb.base) + u64::from(rb.size);
                        if u64::from(ra.base) < b_end
                            && u64::from(rb.base) < a_end
                            && (ra.writable || rb.writable)
                        {
                            return err(format!(
                                "partitions `{}` and `{}` share writable memory",
                                a.name, b.name
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Parse the XML configuration dialect.
    ///
    /// ```xml
    /// <system name="demo" context_switch="150">
    ///   <partition name="aocs" system="true">
    ///     <memory base="0x40000000" size="0x10000" writable="true"/>
    ///     <port name="att_out" direction="source" kind="sampling"/>
    ///   </partition>
    ///   <plan core="0">
    ///     <slot partition="aocs" duration="10000"/>
    ///   </plan>
    ///   <channel source="aocs.att_out" dest="vbn.att_in" max="64"/>
    /// </system>
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`XngError::Parse`] with the offending line.
    pub fn from_xml(text: &str) -> Result<Self, XngError> {
        let mut cfg = XngConfig::new("unnamed");
        let mut names: HashMap<String, PartitionId> = HashMap::new();
        let mut current: Option<usize> = None;
        let mut current_mode: Option<usize> = None;
        let perr = |line: usize, detail: String| XngError::Parse { line, detail };
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = ln + 1;
            if line.is_empty()
                || line.starts_with("<?")
                || line.starts_with("<!--")
                || line == "</system>"
                || line == "</plan>"
            {
                continue;
            }
            if line == "</mode>" {
                current_mode = None;
                continue;
            }
            if line == "</partition>" {
                current = None;
                continue;
            }
            let attr = |name: &str| -> Option<String> {
                let pat = format!("{name}=\"");
                let start = line.find(&pat)? + pat.len();
                let end = line[start..].find('"')? + start;
                Some(line[start..end].to_string())
            };
            let num = |s: String| -> Result<u64, XngError> {
                let s = s.trim();
                if let Some(hex) = s.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    s.parse()
                }
                .map_err(|_| perr(lineno, format!("bad number `{s}`")))
            };
            if line.starts_with("<system") {
                if let Some(n) = attr("name") {
                    cfg.name = n;
                }
                if let Some(cs) = attr("context_switch") {
                    cfg.context_switch_cycles = num(cs)?;
                }
                match attr("isolation").as_deref() {
                    Some("keys") => cfg.isolation = IsolationMode::ProtectionKeys,
                    Some("mpu") | None => {}
                    Some(other) => {
                        return Err(perr(
                            lineno,
                            format!("bad isolation mode `{other}` (expected `mpu` or `keys`)"),
                        ))
                    }
                }
            } else if line.starts_with("<partition") {
                let name = attr("name")
                    .ok_or_else(|| perr(lineno, "partition needs a name".into()))?;
                let mut p = PartitionConfig::new(&name);
                if attr("system").as_deref() == Some("true") {
                    p.system = true;
                }
                if let Some(w) = attr("watchdog") {
                    p.watchdog_cycles = Some(num(w)?);
                }
                if let Some(r) = attr("restart_limit") {
                    p.restart_limit = Some(num(r)? as u32);
                }
                let id = cfg.add_partition(p);
                names.insert(name, id);
                if !line.ends_with("/>") {
                    current = Some(id.0 as usize);
                }
            } else if line.starts_with("<memory") {
                let idx = current
                    .ok_or_else(|| perr(lineno, "memory outside partition".into()))?;
                let base = num(attr("base")
                    .ok_or_else(|| perr(lineno, "memory needs base".into()))?)?;
                let size = num(attr("size")
                    .ok_or_else(|| perr(lineno, "memory needs size".into()))?)?;
                cfg.partitions[idx].memory.push(MemRegion {
                    base: base as u32,
                    size: size as u32,
                    writable: attr("writable").as_deref() == Some("true"),
                });
            } else if line.starts_with("<port") {
                let idx = current
                    .ok_or_else(|| perr(lineno, "port outside partition".into()))?;
                let name = attr("name")
                    .ok_or_else(|| perr(lineno, "port needs name".into()))?;
                let direction = match attr("direction").as_deref() {
                    Some("source") => PortDirection::Source,
                    Some("destination") => PortDirection::Destination,
                    other => {
                        return Err(perr(
                            lineno,
                            format!("bad port direction {other:?}"),
                        ))
                    }
                };
                let kind = match attr("kind").as_deref() {
                    Some("sampling") | None => PortKind::Sampling,
                    Some("queuing") => PortKind::Queuing {
                        depth: attr("depth").map(num).transpose()?.unwrap_or(8) as u32,
                    },
                    Some(other) => {
                        return Err(perr(lineno, format!("bad port kind `{other}`")))
                    }
                };
                cfg.partitions[idx].ports.push(PortConfig {
                    name,
                    direction,
                    kind,
                });
            } else if line.starts_with("<mode") {
                let name = attr("name")
                    .ok_or_else(|| perr(lineno, "mode needs a name".into()))?;
                current = None;
                current_mode =
                    Some(cfg.add_mode(name, vec![Plan::default(); CORE_COUNT]));
            } else if line.starts_with("<plan") {
                let core = num(attr("core")
                    .ok_or_else(|| perr(lineno, "plan needs core".into()))?)?
                    as usize;
                if core >= CORE_COUNT {
                    return Err(perr(lineno, format!("core {core} out of range")));
                }
                current = None;
                // slots follow until </plan>; remember which core via name
                match current_mode {
                    Some(m) => cfg.modes[m].1[core].slots.clear(),
                    None => cfg.plans[core].slots.clear(),
                }
                names.insert("__current_plan".into(), PartitionId(core as u32));
            } else if line.starts_with("<slot") {
                let core = names
                    .get("__current_plan")
                    .ok_or_else(|| perr(lineno, "slot outside plan".into()))?
                    .0 as usize;
                let pname = attr("partition")
                    .ok_or_else(|| perr(lineno, "slot needs partition".into()))?;
                let pid = *names
                    .get(&pname)
                    .ok_or_else(|| perr(lineno, format!("unknown partition `{pname}`")))?;
                let duration = num(attr("duration")
                    .ok_or_else(|| perr(lineno, "slot needs duration".into()))?)?;
                match current_mode {
                    Some(m) => cfg.modes[m].1[core].slots.push(Slot::new(pid, duration)),
                    None => cfg.plans[core].slots.push(Slot::new(pid, duration)),
                }
            } else if line.starts_with("<channel") {
                let parse_ep = |s: &str| -> Result<(PartitionId, String), XngError> {
                    let (p, port) = s
                        .split_once('.')
                        .ok_or_else(|| perr(lineno, format!("bad endpoint `{s}`")))?;
                    let pid = *names
                        .get(p)
                        .ok_or_else(|| perr(lineno, format!("unknown partition `{p}`")))?;
                    Ok((pid, port.to_string()))
                };
                let source = parse_ep(&attr("source")
                    .ok_or_else(|| perr(lineno, "channel needs source".into()))?)?;
                let dests = attr("dest")
                    .ok_or_else(|| perr(lineno, "channel needs dest".into()))?;
                let destinations = dests
                    .split(',')
                    .map(|d| parse_ep(d.trim()))
                    .collect::<Result<Vec<_>, _>>()?;
                cfg.channels.push(Channel {
                    source,
                    destinations,
                    max_message: attr("max").map(num).transpose()?.unwrap_or(64) as u32,
                });
            } else {
                return Err(perr(lineno, format!("unrecognized element `{line}`")));
            }
        }
        names.remove("__current_plan");
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_locate() {
        let plan = Plan::new(vec![
            Slot::new(PartitionId(0), 100),
            Slot::new(PartitionId(1), 50),
        ]);
        assert_eq!(plan.major_frame(), 150);
        assert_eq!(plan.locate(0), Some((0, 0)));
        assert_eq!(plan.locate(99), Some((0, 99)));
        assert_eq!(plan.locate(100), Some((1, 0)));
        assert_eq!(plan.locate(151), Some((0, 1)), "wraps the major frame");
    }

    #[test]
    fn validation_catches_bad_plan() {
        let mut cfg = XngConfig::new("t");
        cfg.set_plan(0, Plan::new(vec![Slot::new(PartitionId(7), 10)]));
        assert!(matches!(cfg.validate(), Err(XngError::Config { .. })));
    }

    #[test]
    fn validation_catches_overlapping_memory() {
        let mut cfg = XngConfig::new("t");
        cfg.add_partition(PartitionConfig::new("a").with_memory(MemRegion {
            base: 0x1000,
            size: 0x1000,
            writable: true,
        }));
        cfg.add_partition(PartitionConfig::new("b").with_memory(MemRegion {
            base: 0x1800,
            size: 0x1000,
            writable: false,
        }));
        assert!(matches!(cfg.validate(), Err(XngError::Config { .. })));
    }

    #[test]
    fn validation_catches_bad_robustness_settings() {
        let mut cfg = XngConfig::new("t");
        cfg.add_partition(PartitionConfig::new("a").with_watchdog(0));
        assert!(matches!(cfg.validate(), Err(XngError::Config { .. })));

        let mut cfg = XngConfig::new("t");
        cfg.add_partition(PartitionConfig::new("a").with_spare(PartitionId(9)));
        assert!(matches!(cfg.validate(), Err(XngError::Config { .. })));

        let mut cfg = XngConfig::new("t");
        let a = cfg.add_partition(PartitionConfig::new("a"));
        cfg.partitions[a.0 as usize].spare = Some(a);
        assert!(matches!(cfg.validate(), Err(XngError::Config { .. })));

        let mut cfg = XngConfig::new("t");
        let s = cfg.add_partition(PartitionConfig::new("spare"));
        cfg.add_partition(
            PartitionConfig::new("prime")
                .with_watchdog(5_000)
                .with_restart_limit(3)
                .with_spare(s),
        );
        cfg.validate().expect("well-formed robustness settings");
    }

    #[test]
    fn validation_catches_zero_size_region() {
        let mut cfg = XngConfig::new("t");
        cfg.add_partition(PartitionConfig::new("a").with_memory(MemRegion {
            base: 0x1000,
            size: 0,
            writable: true,
        }));
        assert!(matches!(cfg.validate(), Err(XngError::Config { .. })));
    }

    #[test]
    fn validation_catches_region_table_exhaustion() {
        // per-partition overflow: more regions than the MPU has slots
        let mut cfg = XngConfig::new("t");
        let mut p = PartitionConfig::new("fat");
        for i in 0..=MAX_REGIONS as u32 {
            p = p.with_memory(MemRegion {
                base: 0x1_0000 * i,
                size: 0x100,
                writable: true,
            });
        }
        cfg.add_partition(p);
        assert!(matches!(cfg.validate(), Err(XngError::Config { .. })));

        // key-mode union overflow: each partition fits alone, but the
        // union table does not
        let mut cfg = XngConfig::new("t");
        for pi in 0..3u32 {
            let mut p = PartitionConfig::new(format!("p{pi}"));
            for i in 0..6u32 {
                p = p.with_memory(MemRegion {
                    base: 0x10_0000 * pi + 0x1000 * i,
                    size: 0x100,
                    writable: true,
                });
            }
            cfg.add_partition(p);
        }
        cfg.validate().expect("fits per-partition in reprogram mode");
        cfg.isolation = IsolationMode::ProtectionKeys;
        match cfg.validate() {
            Err(XngError::Config { detail }) => {
                assert!(detail.contains("exhaustion"), "got: {detail}")
            }
            other => panic!("expected exhaustion error, got {other:?}"),
        }
    }

    #[test]
    fn key_table_tags_domains_and_shares_duplicates() {
        let mut cfg = XngConfig::new("t");
        let shared = MemRegion {
            base: 0x8000,
            size: 0x100,
            writable: false,
        };
        let a = cfg.add_partition(
            PartitionConfig::new("a")
                .with_memory(MemRegion {
                    base: 0x1000,
                    size: 0x1000,
                    writable: true,
                })
                .with_memory(shared),
        );
        let b = cfg.add_partition(
            PartitionConfig::new("b")
                .with_memory(MemRegion {
                    base: 0x4000,
                    size: 0x1000,
                    writable: true,
                })
                .with_memory(shared),
        );
        let table = cfg.key_table();
        assert_eq!(table.len(), 3, "duplicate read-only region collapses");
        let find = |base: u32| table.iter().find(|r| r.base == base).unwrap();
        assert_eq!(find(0x1000).key, XngConfig::domain_key(a));
        assert_eq!(find(0x4000).key, XngConfig::domain_key(b));
        assert_eq!(find(0x8000).key, KEY_SHARED);
        assert!(!find(0x8000).user_write);
    }

    #[test]
    fn xml_parses_isolation_mode() {
        let xml = r#"
            <system name="x" isolation="keys">
              <partition name="a"/>
              <plan core="0">
                <slot partition="a" duration="1000"/>
              </plan>
            </system>
        "#;
        let cfg = XngConfig::from_xml(xml).unwrap();
        assert_eq!(cfg.isolation, IsolationMode::ProtectionKeys);
        assert!(XngConfig::from_xml(
            "<system name=\"x\" isolation=\"bogus\">\n</system>"
        )
        .is_err());
    }

    #[test]
    fn xml_parses_watchdog_and_restart_limit() {
        let xml = r#"
            <system name="x">
              <partition name="a" watchdog="4000" restart_limit="2"/>
              <plan core="0">
                <slot partition="a" duration="1000"/>
              </plan>
            </system>
        "#;
        let cfg = XngConfig::from_xml(xml).unwrap();
        assert_eq!(cfg.partitions[0].watchdog_cycles, Some(4000));
        assert_eq!(cfg.partitions[0].restart_limit, Some(2));
    }

    #[test]
    fn read_only_sharing_is_legal() {
        let mut cfg = XngConfig::new("t");
        let shared = MemRegion {
            base: 0x1000,
            size: 0x1000,
            writable: false,
        };
        cfg.add_partition(PartitionConfig::new("a").with_memory(shared));
        cfg.add_partition(PartitionConfig::new("b").with_memory(shared));
        cfg.validate().expect("read-only sharing allowed");
    }

    #[test]
    fn xml_roundtrip_essentials() {
        let xml = r#"
            <system name="sat" context_switch="200">
              <partition name="aocs" system="true">
                <memory base="0x40000000" size="0x10000" writable="true"/>
                <port name="att" direction="source" kind="sampling"/>
              </partition>
              <partition name="vbn">
                <port name="att_in" direction="destination" kind="sampling"/>
                <port name="frames" direction="destination" kind="queuing" depth="4"/>
              </partition>
              <plan core="0">
                <slot partition="aocs" duration="10000"/>
                <slot partition="vbn" duration="20000"/>
              </plan>
              <channel source="aocs.att" dest="vbn.att_in" max="32"/>
            </system>
        "#;
        let cfg = XngConfig::from_xml(xml).unwrap();
        assert_eq!(cfg.name, "sat");
        assert_eq!(cfg.context_switch_cycles, 200);
        assert_eq!(cfg.partitions.len(), 2);
        assert!(cfg.partitions[0].system);
        assert_eq!(cfg.plans[0].slots.len(), 2);
        assert_eq!(cfg.plans[0].major_frame(), 30000);
        assert_eq!(cfg.channels.len(), 1);
        assert_eq!(cfg.channels[0].max_message, 32);
        assert!(matches!(
            cfg.partitions[1].ports[1].kind,
            PortKind::Queuing { depth: 4 }
        ));
    }

    #[test]
    fn xml_modes_parse() {
        let xml = r#"
            <system name="m">
              <partition name="a"/>
              <partition name="b"/>
              <plan core="0">
                <slot partition="a" duration="1000"/>
              </plan>
              <mode name="safe">
                <plan core="0">
                  <slot partition="b" duration="500"/>
                </plan>
              </mode>
            </system>
        "#;
        let cfg = XngConfig::from_xml(xml).unwrap();
        assert_eq!(cfg.modes.len(), 1);
        assert_eq!(cfg.modes[0].0, "safe");
        assert_eq!(cfg.modes[0].1[0].slots.len(), 1);
        assert_eq!(cfg.modes[0].1[0].slots[0].partition, PartitionId(1));
        assert_eq!(cfg.plans[0].slots[0].partition, PartitionId(0));
    }

    #[test]
    fn xml_errors_have_lines() {
        let bad = "<system name=\"x\">\n<bogus/>\n</system>";
        match XngConfig::from_xml(bad) {
            Err(XngError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn xml_channel_direction_checked() {
        let bad = r#"
            <system name="x">
              <partition name="a">
                <port name="p" direction="destination" kind="sampling"/>
              </partition>
              <partition name="b">
                <port name="q" direction="destination" kind="sampling"/>
              </partition>
              <channel source="a.p" dest="b.q"/>
            </system>
        "#;
        assert!(matches!(
            XngConfig::from_xml(bad),
            Err(XngError::Config { .. })
        ));
    }
}
