//! Property tests: ALU semantics of the hart against plain `i32`/`u32`
//! Rust arithmetic, and assembler round-trips under seeded random
//! operands (deterministic `DetRng` loops — no external dependencies).

use hermes_cpu::cluster::Cluster;
use hermes_cpu::isa::assemble;
use hermes_cpu::memmap::layout;
use hermes_rtl::rng::DetRng;

/// Run a tiny program that computes `r3 = r1 <op> r2` and halts.
fn run_alu(op: &str, a: u32, b: u32) -> u32 {
    let prog = assemble(&format!(
        r#"
        lui  r1, {a_hi}
        ori  r1, r1, {a_lo}
        lui  r2, {b_hi}
        ori  r2, r2, {b_lo}
        {op} r3, r1, r2
        halt
        "#,
        a_hi = a >> 16,
        a_lo = a & 0xFFFF,
        b_hi = b >> 16,
        b_lo = b & 0xFFFF,
    ))
    .expect("assembles");
    let mut cl = Cluster::new();
    cl.load_program(0, layout::SRAM_BASE, &prog).expect("load");
    cl.start_core(0, layout::SRAM_BASE);
    cl.run(100).expect("run");
    cl.core(0).reg(3)
}

#[test]
fn alu_matches_rust_semantics() {
    let mut rng = DetRng::new(0x15A1);
    for _ in 0..48 {
        let (a, b) = (rng.next_u32(), rng.next_u32());
        assert_eq!(run_alu("add", a, b), a.wrapping_add(b));
        assert_eq!(run_alu("sub", a, b), a.wrapping_sub(b));
        assert_eq!(run_alu("mul", a, b), a.wrapping_mul(b));
        assert_eq!(run_alu("and", a, b), a & b);
        assert_eq!(run_alu("or", a, b), a | b);
        assert_eq!(run_alu("xor", a, b), a ^ b);
        assert_eq!(run_alu("shl", a, b), a.wrapping_shl(b & 31));
        assert_eq!(run_alu("shr", a, b), a.wrapping_shr(b & 31));
        assert_eq!(run_alu("sra", a, b), ((a as i32).wrapping_shr(b & 31)) as u32);
        assert_eq!(run_alu("slt", a, b), u32::from((a as i32) < (b as i32)));
        assert_eq!(run_alu("sltu", a, b), u32::from(a < b));
        let div_expect = if b == 0 {
            u32::MAX
        } else {
            (a as i32).wrapping_div(b as i32) as u32
        };
        assert_eq!(run_alu("div", a, b), div_expect);
        let rem_expect = if b == 0 {
            a
        } else {
            (a as i32).wrapping_rem(b as i32) as u32
        };
        assert_eq!(run_alu("rem", a, b), rem_expect);
    }
}

/// `lui`+`ori` materializes any 32-bit constant exactly.
#[test]
fn constant_materialization() {
    let mut rng = DetRng::new(0x15A2);
    for case in 0..48 {
        let v = match case {
            0 => 0,
            1 => u32::MAX,
            _ => rng.next_u32(),
        };
        let prog = assemble(&format!(
            "lui r5, {}\nori r5, r5, {}\nhalt",
            v >> 16,
            v & 0xFFFF
        ))
        .expect("assembles");
        let mut cl = Cluster::new();
        cl.load_program(0, layout::SRAM_BASE, &prog).expect("load");
        cl.start_core(0, layout::SRAM_BASE);
        cl.run(10).expect("run");
        assert_eq!(cl.core(0).reg(5), v, "constant {v:#x}");
    }
}

/// Memory loads reproduce stored values for every width/sign variant.
#[test]
fn load_store_widths() {
    let mut rng = DetRng::new(0x15A3);
    for _ in 0..48 {
        let v = rng.next_u32();
        let off = (rng.below(64) as u32) * 4;
        let prog = assemble(&format!(
            r#"
            lui  r1, {sram}
            lui  r2, {hi}
            ori  r2, r2, {lo}
            sw   r2, {off}(r1)
            lw   r3, {off}(r1)
            lhu  r4, {off}(r1)
            lbu  r5, {off}(r1)
            lh   r6, {off}(r1)
            lb   r7, {off}(r1)
            halt
            "#,
            sram = layout::SRAM_BASE >> 16,
            hi = v >> 16,
            lo = v & 0xFFFF,
        ))
        .expect("assembles");
        let mut cl = Cluster::new();
        cl.load_program(0, layout::DDR_BASE, &prog).expect("load");
        cl.start_core(0, layout::DDR_BASE);
        cl.run(50).expect("run");
        let h = cl.core(0);
        assert_eq!(h.reg(3), v);
        assert_eq!(h.reg(4), v & 0xFFFF);
        assert_eq!(h.reg(5), v & 0xFF);
        assert_eq!(h.reg(6), (v as u16) as i16 as i32 as u32);
        assert_eq!(h.reg(7), (v as u8) as i8 as i32 as u32);
    }
}
