//! The system memory map and bus.
//!
//! Mirrors the NG-ULTRA processing-subsystem layout the BL1 specification
//! initializes: per-core tightly-coupled memories, shared on-chip SRAM,
//! external DDR, a boot-flash window, and a small MMIO block (UART capture
//! for test output).

use crate::CpuError;

/// Default memory layout constants (byte addresses).
pub mod layout {
    /// Base of core-0 TCM (each core's TCM is at `TCM_BASE + core * TCM_STRIDE`).
    pub const TCM_BASE: u32 = 0x0000_0000;
    /// Per-core TCM size (64 KiB, as on the R52).
    pub const TCM_SIZE: u32 = 0x0001_0000;
    /// Stride between per-core TCM windows.
    pub const TCM_STRIDE: u32 = 0x0010_0000;
    /// Shared on-chip SRAM base.
    pub const SRAM_BASE: u32 = 0x1000_0000;
    /// Shared SRAM size (1 MiB).
    pub const SRAM_SIZE: u32 = 0x0010_0000;
    /// External DDR base.
    pub const DDR_BASE: u32 = 0x4000_0000;
    /// DDR size modelled (16 MiB keeps tests fast; the map allows more).
    pub const DDR_SIZE: u32 = 0x0100_0000;
    /// Boot flash window base (read-only via the bus).
    pub const FLASH_BASE: u32 = 0x8000_0000;
    /// Flash window size (8 MiB).
    pub const FLASH_SIZE: u32 = 0x0080_0000;
    /// UART transmit register (write-only capture).
    pub const UART_TX: u32 = 0xF000_0000;
}

/// A contiguous RAM/ROM region.
#[derive(Debug, Clone)]
struct Region {
    name: String,
    base: u32,
    data: Vec<u8>,
    writable: bool,
}

/// The shared system bus.
#[derive(Debug, Clone)]
pub struct SystemBus {
    regions: Vec<Region>,
    uart: Vec<u8>,
    /// Count of accesses to shared (non-TCM) regions this cycle; the
    /// cluster uses it to model contention.
    pub shared_accesses_this_cycle: u32,
}

impl Default for SystemBus {
    fn default() -> Self {
        SystemBus::new()
    }
}

impl SystemBus {
    /// Build the default NG-ULTRA-like memory map for 4 cores.
    pub fn new() -> Self {
        use layout::*;
        let mut bus = SystemBus {
            regions: Vec::new(),
            uart: Vec::new(),
            shared_accesses_this_cycle: 0,
        };
        for core in 0..4u32 {
            bus.add_region(
                format!("tcm{core}"),
                TCM_BASE + core * TCM_STRIDE,
                TCM_SIZE as usize,
                true,
            );
        }
        bus.add_region("sram", SRAM_BASE, SRAM_SIZE as usize, true);
        bus.add_region("ddr", DDR_BASE, DDR_SIZE as usize, true);
        bus.add_region("flash", FLASH_BASE, FLASH_SIZE as usize, false);
        bus
    }

    /// Add a RAM (writable) or ROM region.
    pub fn add_region(&mut self, name: impl Into<String>, base: u32, size: usize, writable: bool) {
        self.regions.push(Region {
            name: name.into(),
            base,
            data: vec![0; size],
            writable,
        });
    }

    /// Whether an address lies in a TCM window (private, contention-free).
    pub fn is_tcm(&self, addr: u32) -> bool {
        use layout::*;
        (0..4).any(|c| {
            let base = TCM_BASE + c * TCM_STRIDE;
            addr >= base && addr < base + TCM_SIZE
        })
    }

    /// Read `size` bytes (1, 2, or 4) little-endian.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::Unmapped`] for holes in the map.
    pub fn read(&mut self, addr: u32, size: u32) -> Result<u32, CpuError> {
        if !self.is_tcm(addr) {
            self.shared_accesses_this_cycle += 1;
        }
        let idx = self
            .region_of_span(addr, size)
            .ok_or(CpuError::Unmapped { addr })?;
        let r = &self.regions[idx];
        let off = (addr - r.base) as usize;
        let mut v = 0u32;
        for i in 0..size as usize {
            v |= u32::from(r.data[off + i]) << (8 * i);
        }
        Ok(v)
    }

    /// Write `size` bytes (1, 2, or 4) little-endian. Writes to ROM are
    /// silently ignored (as on a real bus without an error response);
    /// writes to the UART register are captured.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::Unmapped`] for holes in the map.
    pub fn write(&mut self, addr: u32, size: u32, value: u32) -> Result<(), CpuError> {
        if addr == layout::UART_TX {
            self.uart.push(value as u8);
            return Ok(());
        }
        if !self.is_tcm(addr) {
            self.shared_accesses_this_cycle += 1;
        }
        let idx = self
            .region_of_span(addr, size)
            .ok_or(CpuError::Unmapped { addr })?;
        let r = &mut self.regions[idx];
        if !r.writable {
            return Ok(());
        }
        let off = (addr - r.base) as usize;
        for i in 0..size as usize {
            r.data[off + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    fn region_of_span(&self, addr: u32, size: u32) -> Option<usize> {
        self.regions.iter().position(|r| {
            addr >= r.base && (addr - r.base) as usize + size as usize <= r.data.len()
        })
    }

    /// Bulk load bytes (backdoor, no contention accounting).
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::LoadOverflow`] if the span exceeds the region.
    pub fn load_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), CpuError> {
        let idx = self
            .region_of_span(addr, bytes.len() as u32)
            .ok_or(CpuError::LoadOverflow {
                addr,
                bytes: bytes.len(),
            })?;
        let r = &mut self.regions[idx];
        let off = (addr - r.base) as usize;
        r.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Bulk read bytes (backdoor).
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::Unmapped`] if the span is not fully mapped.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Result<Vec<u8>, CpuError> {
        let idx = self
            .region_of_span(addr, len as u32)
            .ok_or(CpuError::Unmapped { addr })?;
        let r = &self.regions[idx];
        let off = (addr - r.base) as usize;
        Ok(r.data[off..off + len].to_vec())
    }

    /// FNV-1a checksum of a byte range (backdoor; no contention
    /// accounting). Used by the hostile-chaos campaigns to audit victim
    /// sentinel patterns after an attack: an intact checksum proves no
    /// cross-partition write landed.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::Unmapped`] if the span is not fully mapped.
    pub fn checksum(&self, addr: u32, len: usize) -> Result<u64, CpuError> {
        let bytes = self.read_bytes(addr, len)?;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(h)
    }

    /// Bytes written to the UART so far.
    pub fn uart_output(&self) -> &[u8] {
        &self.uart
    }

    /// Name of the region containing an address (diagnostics).
    pub fn region_name(&self, addr: u32) -> Option<&str> {
        self.region_of_span(addr, 1)
            .map(|i| self.regions[i].name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::layout::*;
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut bus = SystemBus::new();
        bus.write(SRAM_BASE + 4, 4, 0xDEAD_BEEF).unwrap();
        assert_eq!(bus.read(SRAM_BASE + 4, 4).unwrap(), 0xDEAD_BEEF);
        assert_eq!(bus.read(SRAM_BASE + 5, 1).unwrap(), 0xBE);
        bus.write(SRAM_BASE + 5, 1, 0x12).unwrap();
        assert_eq!(bus.read(SRAM_BASE + 4, 4).unwrap(), 0xDEAD_12EF);
    }

    #[test]
    fn unmapped_access_errors() {
        let mut bus = SystemBus::new();
        assert!(matches!(
            bus.read(0x2000_0000, 4),
            Err(CpuError::Unmapped { .. })
        ));
    }

    #[test]
    fn flash_is_read_only() {
        let mut bus = SystemBus::new();
        bus.load_bytes(FLASH_BASE, &[1, 2, 3, 4]).unwrap();
        bus.write(FLASH_BASE, 4, 0xFFFF_FFFF).unwrap();
        assert_eq!(bus.read(FLASH_BASE, 4).unwrap(), 0x0403_0201);
    }

    #[test]
    fn uart_captures_writes() {
        let mut bus = SystemBus::new();
        for &b in b"OK" {
            bus.write(UART_TX, 1, u32::from(b)).unwrap();
        }
        assert_eq!(bus.uart_output(), b"OK");
    }

    #[test]
    fn tcm_detection() {
        let bus = SystemBus::new();
        assert!(bus.is_tcm(TCM_BASE + 100));
        assert!(bus.is_tcm(TCM_BASE + TCM_STRIDE));
        assert!(!bus.is_tcm(SRAM_BASE));
    }

    #[test]
    fn contention_counter_tracks_shared_only() {
        let mut bus = SystemBus::new();
        bus.read(TCM_BASE, 4).unwrap();
        assert_eq!(bus.shared_accesses_this_cycle, 0);
        bus.read(SRAM_BASE, 4).unwrap();
        bus.read(DDR_BASE, 4).unwrap();
        assert_eq!(bus.shared_accesses_this_cycle, 2);
    }

    #[test]
    fn checksum_detects_single_byte_change() {
        let mut bus = SystemBus::new();
        bus.load_bytes(SRAM_BASE, &[7u8; 64]).unwrap();
        let before = bus.checksum(SRAM_BASE, 64).unwrap();
        assert_eq!(bus.checksum(SRAM_BASE, 64).unwrap(), before);
        bus.write(SRAM_BASE + 13, 1, 8).unwrap();
        assert_ne!(bus.checksum(SRAM_BASE, 64).unwrap(), before);
        assert!(bus.checksum(0x2000_0000, 4).is_err());
    }

    #[test]
    fn region_names() {
        let bus = SystemBus::new();
        assert_eq!(bus.region_name(SRAM_BASE), Some("sram"));
        assert_eq!(bus.region_name(0x2000_0000), None);
    }
}
