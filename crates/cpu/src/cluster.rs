//! The quad-core cluster.
//!
//! Four [`Hart`]s share one [`SystemBus`]. Each cluster cycle steps every
//! running core once; simultaneous accesses to shared (non-TCM) memory
//! stall the extra cores for one cycle each, modelling interconnect
//! contention — the interference that time-and-space partitioning is
//! designed to bound.

use crate::hart::{Event, Hart};
use crate::memmap::SystemBus;
use crate::mpu::Privilege;
use crate::CpuError;

/// Number of cores, as on the NG-ULTRA's R52 subsystem.
pub const CORE_COUNT: usize = 4;

/// What happened on one core during a cluster cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreEvent {
    /// Core index.
    pub core: usize,
    /// The event.
    pub event: Event,
}

/// The cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    harts: Vec<Hart>,
    /// The shared bus (public for device/backdoor access).
    pub bus: SystemBus,
    /// Total cluster cycles elapsed.
    pub cycles: u64,
    /// Total stall cycles inserted for shared-memory contention.
    pub contention_stalls: u64,
    stall: [u32; CORE_COUNT],
}

impl Default for Cluster {
    fn default() -> Self {
        Cluster::new()
    }
}

impl Cluster {
    /// A cluster with the default memory map, all cores stopped.
    pub fn new() -> Self {
        Cluster {
            harts: (0..CORE_COUNT as u32).map(Hart::new).collect(),
            bus: SystemBus::new(),
            cycles: 0,
            contention_stalls: 0,
            stall: [0; CORE_COUNT],
        }
    }

    /// Immutable core access.
    ///
    /// # Panics
    ///
    /// Panics if `core >= CORE_COUNT`.
    pub fn core(&self, core: usize) -> &Hart {
        &self.harts[core]
    }

    /// Mutable core access.
    ///
    /// # Panics
    ///
    /// Panics if `core >= CORE_COUNT`.
    pub fn core_mut(&mut self, core: usize) -> &mut Hart {
        &mut self.harts[core]
    }

    /// Load machine words at `addr` (typically into SRAM/DDR/TCM).
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::LoadOverflow`] if the program does not fit.
    pub fn load_program(&mut self, _core: usize, addr: u32, words: &[u32]) -> Result<(), CpuError> {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.bus.load_bytes(addr, &bytes)
    }

    /// Start a core at `pc` in privileged mode.
    ///
    /// # Panics
    ///
    /// Panics if `core >= CORE_COUNT`.
    pub fn start_core(&mut self, core: usize, pc: u32) {
        self.harts[core].start(pc, Privilege::Privileged);
    }

    /// Step the whole cluster one cycle; returns noteworthy per-core
    /// events (halts, hypervisor calls, unhandled traps).
    ///
    /// # Errors
    ///
    /// Propagates internal bus errors (never architectural faults, which
    /// become events).
    pub fn step(&mut self) -> Result<Vec<CoreEvent>, CpuError> {
        self.cycles += 1;
        self.bus.shared_accesses_this_cycle = 0;
        let mut events = Vec::new();
        let mut shared_before = 0u32;
        for i in 0..self.harts.len() {
            // stopped or parked harts make no progress and raise no events
            if !self.harts[i].running || self.harts[i].waiting {
                continue;
            }
            if self.stall[i] > 0 {
                self.stall[i] -= 1;
                continue;
            }
            let ev = self.harts[i].step(&mut self.bus)?;
            // contention: each additional shared access this cycle stalls
            let after = self.bus.shared_accesses_this_cycle;
            if after > shared_before && after > 1 {
                self.stall[i] += 1;
                self.contention_stalls += 1;
            }
            shared_before = after;
            match ev {
                Event::None | Event::Waiting => {}
                other => events.push(CoreEvent {
                    core: i,
                    event: other,
                }),
            }
        }
        Ok(events)
    }

    /// Run up to `max_cycles`, stopping early once no core is runnable.
    /// Returns all noteworthy events in order.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Self::step`].
    pub fn run(&mut self, max_cycles: u64) -> Result<Vec<CoreEvent>, CpuError> {
        let mut events = Vec::new();
        for _ in 0..max_cycles {
            let active = self
                .harts
                .iter()
                .any(|h| h.running && !h.waiting);
            if !active {
                break;
            }
            events.extend(self.step()?);
        }
        Ok(events)
    }

    /// Whether any core is still running (and not parked in `wfi`).
    pub fn any_active(&self) -> bool {
        self.harts.iter().any(|h| h.running && !h.waiting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::assemble;
    use crate::memmap::layout;

    #[test]
    fn four_cores_run_independently() {
        let mut cluster = Cluster::new();
        // each core sums its hartid+1 .. stored in its own TCM
        for core in 0..CORE_COUNT {
            let prog = assemble(
                r#"
                csrr r1, 6        ; hartid
                addi r1, r1, 1
                add  r2, r1, r1
                sw   r2, 0x80(r0) ; TCM-relative via base reg
                halt
                "#,
            )
            .unwrap();
            let base = layout::TCM_BASE + core as u32 * layout::TCM_STRIDE;
            cluster.load_program(core, base, &prog).unwrap();
            cluster.start_core(core, base);
        }
        cluster.run(100).unwrap();
        for core in 0..CORE_COUNT {
            assert_eq!(
                cluster.core(core).reg(2),
                2 * (core as u32 + 1),
                "core {core}"
            );
        }
    }

    #[test]
    fn contention_slows_shared_access() {
        // all four cores hammer shared SRAM
        let hammer = assemble(&format!(
            r#"
            lui  r1, {hi}
            addi r3, r0, 200
        loop:
            lw   r2, (r1)
            addi r3, r3, -1
            bne  r3, r0, loop
            halt
            "#,
            hi = layout::SRAM_BASE >> 16
        ))
        .unwrap();
        // single-core baseline
        let mut solo = Cluster::new();
        solo.load_program(0, layout::DDR_BASE, &hammer).unwrap();
        solo.start_core(0, layout::DDR_BASE);
        solo.run(1_000_000).unwrap();
        let solo_cycles = solo.core(0).cycles;

        let mut full = Cluster::new();
        for core in 0..CORE_COUNT {
            full.load_program(core, layout::DDR_BASE, &hammer).unwrap();
            full.start_core(core, layout::DDR_BASE);
        }
        full.run(1_000_000).unwrap();
        assert!(full.contention_stalls > 0, "contention must occur");
        assert!(
            full.cycles > solo_cycles,
            "4-core contention should stretch wall clock: {} vs {}",
            full.cycles,
            solo_cycles
        );
    }

    #[test]
    fn halt_events_reported() {
        let mut cluster = Cluster::new();
        let prog = assemble("halt").unwrap();
        cluster
            .load_program(0, layout::SRAM_BASE, &prog)
            .unwrap();
        cluster.start_core(0, layout::SRAM_BASE);
        let events = cluster.run(10).unwrap();
        assert!(events
            .iter()
            .any(|e| e.core == 0 && e.event == Event::Halted));
        assert!(!cluster.any_active());
    }

    #[test]
    fn idle_cluster_stops_early() {
        let mut cluster = Cluster::new();
        let events = cluster.run(1000).unwrap();
        assert!(events.is_empty());
        assert_eq!(cluster.cycles, 0);
    }
}
