//! # hermes-cpu
//!
//! Instruction-level simulator of the NG-ULTRA processing subsystem: a
//! quad-core real-time processor cluster modelled after the ARM Cortex-R52
//! (four cores at 600 MHz, per-core tightly-coupled memories, a memory
//! protection unit with two privilege levels, and precise exception
//! handling). The real R52 ISA is proprietary; this crate implements a
//! compact RISC ISA with the same *architectural features the HERMES
//! software stack depends on* — privileged/unprivileged execution, MPU
//! enforcement, traps, and a hypervisor-call instruction — which is what
//! the XtratuM-NG analogue (`hermes-xng`) and the boot chain
//! (`hermes-boot`) build on.
//!
//! ## Example
//!
//! ```
//! use hermes_cpu::isa::assemble;
//! use hermes_cpu::cluster::Cluster;
//!
//! # fn main() -> Result<(), hermes_cpu::CpuError> {
//! let program = assemble(r#"
//!     addi r1, r0, 10      ; n = 10
//!     addi r2, r0, 0       ; sum = 0
//! loop:
//!     add  r2, r2, r1
//!     addi r1, r1, -1
//!     bne  r1, r0, loop
//!     halt
//! "#)?;
//! let mut cluster = Cluster::new();
//! cluster.load_program(0, 0x1000, &program)?;
//! cluster.start_core(0, 0x1000);
//! cluster.run(1000)?;
//! assert_eq!(cluster.core(0).reg(2), 55);
//! # Ok(())
//! # }
//! ```

pub mod cluster;
pub mod hart;
pub mod isa;
pub mod memmap;
pub mod mpu;

use std::fmt;

/// Reference clock of the cluster, matching the paper's 600 MHz figure.
pub const CORE_CLOCK_HZ: u64 = 600_000_000;

/// Errors produced by the CPU model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuError {
    /// Assembly-language parse failure.
    Asm {
        /// 1-based source line.
        line: usize,
        /// Detail message.
        detail: String,
    },
    /// Memory access outside any mapped region.
    Unmapped {
        /// Offending address.
        addr: u32,
    },
    /// Invalid core index.
    NoSuchCore {
        /// The requested core.
        core: usize,
    },
    /// Program load would overflow the target region.
    LoadOverflow {
        /// Base address of the attempted load.
        addr: u32,
        /// Bytes attempted.
        bytes: usize,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::Asm { line, detail } => write!(f, "assembly error at line {line}: {detail}"),
            CpuError::Unmapped { addr } => write!(f, "unmapped address {addr:#010x}"),
            CpuError::NoSuchCore { core } => write!(f, "no such core {core}"),
            CpuError::LoadOverflow { addr, bytes } => {
                write!(f, "program load of {bytes} bytes at {addr:#010x} overflows region")
            }
        }
    }
}

impl std::error::Error for CpuError {}
